// Capacity planning (paper §I: "estimate the amount of storage space
// required for data archival"): given a TPC-H-like warehouse, project the
// on-disk footprint of every table's clustered index uncompressed vs
// compressed, using only 1% samples — then validate the projection against
// the exact sizes.
//
// Build & run:  ./build/examples/tpch_capacity_planning

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/format.h"
#include "common/random.h"
#include "datagen/tpch/tables.h"
#include "estimator/compression_fraction.h"
#include "estimator/sample_cf.h"
#include "index/index.h"

using namespace cfest;

namespace {

/// First column of each table is its primary key.
IndexDescriptor PrimaryIndex(const Table& table) {
  return {"pk", {table.schema().column(0).name}, /*clustered=*/true};
}

}  // namespace

int main() {
  std::printf("=== TPC-H archival capacity planning with SampleCF ===\n\n");
  tpch::TpchOptions options;
  options.scale_factor = 0.01;
  auto catalog_result = tpch::GenerateCatalog(options);
  if (!catalog_result.ok()) {
    std::fprintf(stderr, "dbgen failed: %s\n",
                 catalog_result.status().ToString().c_str());
    return 1;
  }
  auto catalog = std::move(catalog_result).ValueOrDie();

  const CompressionScheme scheme =
      CompressionScheme::Uniform(CompressionType::kDictionaryPage);
  TablePrinter report({"table", "rows", "uncompressed", "estimated CF'",
                       "projected compressed", "exact compressed",
                       "proj/exact"});
  uint64_t total_uncompressed = 0;
  uint64_t total_projected = 0;
  Random rng(2026);
  for (const std::string& name : catalog->TableNames()) {
    const Table& table = *std::move(catalog->GetTable(name)).ValueOrDie();
    const IndexDescriptor index = PrimaryIndex(table);

    // Page-granular uncompressed size is schema arithmetic (paper §I).
    IndexBuildOptions build;
    build.keep_pages = false;
    auto built = Index::Build(table, index, build);
    if (!built.ok()) {
      std::fprintf(stderr, "index build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    const uint64_t uncompressed = built->stats().page_bytes();

    // SampleCF on a 1% sample, but never fewer than ~500 rows — commercial
    // estimators likewise enforce a minimum sample so tiny tables do not
    // round to a single page.
    SampleCFOptions sample_options;
    sample_options.fraction = std::min(
        1.0, std::max(0.01, 500.0 / static_cast<double>(table.num_rows())));
    sample_options.metric = SizeMetric::kPageBytes;
    auto estimate = SampleCF(table, index, scheme, sample_options, &rng);
    if (!estimate.ok()) {
      std::fprintf(stderr, "SampleCF failed: %s\n",
                   estimate.status().ToString().c_str());
      return 1;
    }
    const uint64_t projected = static_cast<uint64_t>(
        estimate->cf.value * static_cast<double>(uncompressed));

    // Exact answer, for the report's last column.
    auto compressed = built->Compress(scheme, build);
    if (!compressed.ok()) {
      std::fprintf(stderr, "compress failed: %s\n",
                   compressed.status().ToString().c_str());
      return 1;
    }
    const uint64_t exact = compressed->stats().page_bytes();

    report.AddRow({name, std::to_string(table.num_rows()),
                   HumanBytes(uncompressed),
                   FormatDouble(estimate->cf.value),
                   HumanBytes(projected), HumanBytes(exact),
                   FormatDouble(static_cast<double>(projected) /
                                static_cast<double>(exact))});
    total_uncompressed += uncompressed;
    total_projected += projected;
  }
  report.Print();
  std::printf(
      "\nArchive projection: %s -> %s (%.1f%% of original), computed from "
      "1%% samples.\n",
      HumanBytes(total_uncompressed).c_str(),
      HumanBytes(total_projected).c_str(),
      100.0 * static_cast<double>(total_projected) /
          static_cast<double>(total_uncompressed));
  return 0;
}
