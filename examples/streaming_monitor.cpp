// Streaming compression monitoring: keep a live compression-fraction
// estimate while rows stream in (e.g. during a bulk load), using the
// reservoir-based single-pass estimator — no second scan, bounded memory.
//
// The monitor prints the evolving estimate at checkpoints and compares the
// final estimate against the exact CF of everything that streamed by.
//
// Build & run:  ./build/examples/streaming_monitor

#include <cstdio>
#include <memory>

#include "common/format.h"
#include "common/stats.h"
#include "datagen/tpch/tables.h"
#include "estimator/compression_fraction.h"
#include "estimator/streaming.h"

using namespace cfest;

int main() {
  std::printf("=== streaming CF monitor (reservoir SampleCF) ===\n\n");

  // The "incoming load": TPC-H orders rows.
  tpch::TpchOptions options;
  options.scale_factor = 0.02;  // 30k orders
  auto orders_result = tpch::GenerateOrders(options);
  if (!orders_result.ok()) {
    std::fprintf(stderr, "dbgen failed: %s\n",
                 orders_result.status().ToString().c_str());
    return 1;
  }
  auto orders = std::move(orders_result).ValueOrDie();

  IndexDescriptor index{"cx_orders", {"o_orderkey"}, /*clustered=*/true};
  const CompressionScheme scheme =
      CompressionScheme::Uniform(CompressionType::kPrefixDictionary);

  StreamingSampleCF::Options stream_options;
  stream_options.sample_capacity = 1500;
  auto monitor_result = StreamingSampleCF::Make(orders->schema(), index,
                                                scheme, stream_options);
  if (!monitor_result.ok()) {
    std::fprintf(stderr, "monitor setup failed: %s\n",
                 monitor_result.status().ToString().c_str());
    return 1;
  }
  StreamingSampleCF monitor = std::move(monitor_result).ValueOrDie();

  TablePrinter progress(
      {"rows streamed", "reservoir", "CF' estimate", "projected size"});
  const uint64_t checkpoint = orders->num_rows() / 5;
  for (RowId id = 0; id < orders->num_rows(); ++id) {
    if (!monitor.Add(orders->row(id)).ok()) {
      std::fprintf(stderr, "stream add failed\n");
      return 1;
    }
    if ((id + 1) % checkpoint == 0) {
      auto estimate = monitor.Estimate();
      if (!estimate.ok()) {
        std::fprintf(stderr, "estimate failed: %s\n",
                     estimate.status().ToString().c_str());
        return 1;
      }
      const uint64_t projected = static_cast<uint64_t>(
          estimate->cf.value * static_cast<double>(monitor.rows_seen()) *
          orders->row_width());
      progress.AddRow({std::to_string(monitor.rows_seen()),
                       std::to_string(monitor.reservoir_size()),
                       FormatDouble(estimate->cf.value),
                       HumanBytes(projected)});
    }
  }
  progress.Print();

  auto final_estimate = monitor.Estimate();
  auto truth = ComputeTrueCF(*orders, index, scheme);
  if (!final_estimate.ok() || !truth.ok()) {
    std::fprintf(stderr, "final comparison failed\n");
    return 1;
  }
  std::printf(
      "\nfinal estimate CF' = %.4f from a %llu-row reservoir; exact CF = "
      "%.4f (ratio error %.4f).\nThe monitor never held more than %llu rows "
      "in memory while %llu streamed by.\n",
      final_estimate->cf.value,
      static_cast<unsigned long long>(monitor.reservoir_size()),
      truth->value, RatioError(truth->value, final_estimate->cf.value),
      static_cast<unsigned long long>(stream_options.sample_capacity),
      static_cast<unsigned long long>(monitor.rows_seen()));
  return 0;
}
