// Physical design with compression under a storage bound — the scenario the
// paper's introduction uses to motivate the estimator: "automated physical
// design tools ... take as input a query workload and a storage bound to
// produce a set of indexes that can fit the storage bound".
//
// Each candidate index comes in an uncompressed and a compressed variant;
// the advisor sizes every variant with SampleCF and picks the best feasible
// set. Compression lets more indexes fit the bound.
//
// Build & run:  ./build/examples/design_advisor

#include <cstdio>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/cost_model.h"
#include "advisor/what_if.h"
#include "common/format.h"
#include "datagen/tpch/tables.h"

using namespace cfest;

int main() {
  std::printf("=== compression-aware index advisor ===\n\n");
  tpch::TpchOptions tpch_options;
  tpch_options.scale_factor = 0.01;
  auto catalog_result = tpch::GenerateCatalog(tpch_options);
  if (!catalog_result.ok()) {
    std::fprintf(stderr, "dbgen failed: %s\n",
                 catalog_result.status().ToString().c_str());
    return 1;
  }
  auto catalog = std::move(catalog_result).ValueOrDie();
  const Table& lineitem =
      *std::move(catalog->GetTable("lineitem")).ValueOrDie();
  const Table& orders = *std::move(catalog->GetTable("orders")).ValueOrDie();

  // The query workload: range scans with selectivities and frequencies.
  // Candidate benefits are *derived* from the cost model (paper §I: the
  // design tool must "reason about the I/O costs of query execution").
  const std::vector<Query> workload = {
      {"lineitem", "l_shipdate", 0.02, 10.0},
      {"lineitem", "l_shipmode", 0.14, 4.0},
      {"lineitem", "l_partkey", 0.001, 6.0},
      {"orders", "o_orderdate", 0.03, 8.0},
      {"orders", "o_clerk", 0.01, 2.0},
  };
  struct Spec {
    const Table* table;
    const char* table_name;
    IndexDescriptor index;
  };
  const std::vector<Spec> specs = {
      {&lineitem, "lineitem", {"ix_l_shipdate", {"l_shipdate"}, false}},
      {&lineitem, "lineitem", {"ix_l_shipmode", {"l_shipmode"}, false}},
      {&lineitem, "lineitem", {"ix_l_partkey", {"l_partkey"}, false}},
      {&orders, "orders", {"ix_o_orderdate", {"o_orderdate"}, false}},
      {&orders, "orders", {"ix_o_clerk", {"o_clerk"}, false}},
  };

  // Baseline physical design: just the two table heaps.
  CostModelParams cost_params;
  const std::vector<PhysicalOption> heaps = {
      {"lineitem", "", lineitem.data_bytes(), lineitem.num_rows(), false},
      {"orders", "", orders.data_bytes(), orders.num_rows(), false},
  };

  // Two variants per index: uncompressed and page-dictionary compressed.
  // Sizes come from SampleCF; benefits from the cost model on those sizes.
  std::vector<SizedCandidate> sized;
  SampleCFOptions options;
  options.fraction = 0.02;
  Random rng(99);
  for (const Spec& spec : specs) {
    for (bool compressed : {false, true}) {
      CandidateConfiguration config;
      config.table_name = spec.table_name;
      config.index = spec.index;
      config.scheme = CompressionScheme::Uniform(
          compressed ? CompressionType::kDictionaryPage
                     : CompressionType::kNone);
      auto result = EstimateCandidateSize(*spec.table, config, options, &rng);
      if (!result.ok()) {
        std::fprintf(stderr, "sizing failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      PhysicalOption option{spec.table_name, spec.index.key_columns[0],
                            result->estimated_bytes, spec.table->num_rows(),
                            compressed};
      auto benefit = CandidateBenefit(workload, heaps, option, cost_params);
      if (!benefit.ok()) {
        std::fprintf(stderr, "costing failed: %s\n",
                     benefit.status().ToString().c_str());
        return 1;
      }
      result->config.benefit = *benefit;
      sized.push_back(std::move(*result));
    }
  }

  TablePrinter candidates({"candidate", "scheme", "benefit", "est. CF'",
                           "est. size"});
  for (const SizedCandidate& c : sized) {
    candidates.AddRow({c.config.table_name + "." + c.config.index.name,
                       c.config.scheme.ToString(),
                       FormatDouble(c.config.benefit, 1),
                       FormatDouble(c.estimated_cf, 3),
                       HumanBytes(c.estimated_bytes)});
  }
  candidates.Print();

  // Pick configurations under a bound that cannot hold everything.
  uint64_t all_uncompressed = 0;
  for (const SizedCandidate& c : sized) {
    if (c.config.scheme.default_type == CompressionType::kNone) {
      all_uncompressed += c.estimated_bytes;
    }
  }
  const uint64_t bound = all_uncompressed / 2;
  std::printf("\nstorage bound: %s (all-uncompressed would need %s)\n\n",
              HumanBytes(bound).c_str(), HumanBytes(all_uncompressed).c_str());

  for (AdvisorStrategy strategy :
       {AdvisorStrategy::kGreedy, AdvisorStrategy::kOptimal}) {
    auto rec = SelectConfigurations(sized, bound, strategy);
    if (!rec.ok()) {
      std::fprintf(stderr, "selection failed: %s\n",
                   rec.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: benefit %.1f using %s\n",
                strategy == AdvisorStrategy::kGreedy ? "greedy " : "optimal",
                rec->total_benefit, HumanBytes(rec->total_bytes).c_str());
    for (const SizedCandidate& c : rec->selected) {
      std::printf("    %-28s %-18s %s\n",
                  (c.config.table_name + "." + c.config.index.name).c_str(),
                  c.config.scheme.ToString().c_str(),
                  HumanBytes(c.estimated_bytes).c_str());
    }
  }
  std::printf(
      "\nWithout compressed variants the same bound would fit fewer, less "
      "useful indexes —\nwhich is exactly why design tools need cheap, "
      "accurate CF estimates.\n");
  return 0;
}
