// Quickstart: the whole library in one file.
//
//  1. Define a schema and load a table.
//  2. See what null suppression and dictionary compression do to a column
//     (the paper's Fig. 1 layouts).
//  3. Estimate the compression fraction with SampleCF (Fig. 2) and compare
//     with the exact answer.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <string>

#include "common/format.h"
#include "common/random.h"
#include "common/stats.h"
#include "compression/compressor.h"
#include "datagen/table_gen.h"
#include "estimator/compression_fraction.h"
#include "estimator/sample_cf.h"

using namespace cfest;  // examples favour brevity

namespace {

// --- Fig. 1: what the compressors actually store --------------------------

void ShowFig1Layouts() {
  std::printf("Fig 1a — null suppression of 'abc' in a char(20):\n");
  auto ns = std::move(MakeColumnCompressor(CompressionType::kNullSuppression,
                                           CharType(20)))
                .ValueOrDie();
  std::string cell = "abc" + std::string(17, ' ');
  auto chunk = ns->NewChunk();
  const size_t before = chunk->Cost();
  chunk->Add(Slice(cell));
  std::printf("  uncompressed: 20 bytes ('abc' + 17 blanks)\n");
  std::printf("  compressed:   %zu bytes (1 length byte + 3 payload bytes)\n\n",
              chunk->Cost() - before);

  std::printf("Fig 1b — page dictionary for 5 copies of 'abcdefghij':\n");
  auto dict = std::move(MakeColumnCompressor(CompressionType::kDictionaryPage,
                                             CharType(10)))
                  .ValueOrDie();
  auto dict_chunk = dict->NewChunk();
  for (int i = 0; i < 5; ++i) dict_chunk->Add(Slice("abcdefghij"));
  std::printf("  uncompressed: 50 bytes (5 x 10)\n");
  std::printf(
      "  compressed:   %zu bytes (one 10-byte dictionary entry + 5 pointers "
      "of ceil(log2 d) bits + framing)\n\n",
      dict_chunk->Cost());
}

}  // namespace

int main() {
  std::printf("=== samplecf quickstart ===\n\n");
  ShowFig1Layouts();

  // --- A 100k-row table with a compressible column ------------------------
  auto table = std::move(GenerateTable(
                             {ColumnSpec::String(
                                  "city", 24, 500, FrequencySpec::Zipf(1.0),
                                  LengthSpec::Uniform(4, 18)),
                              ColumnSpec::Integer("amount", 0)},
                             100000, 42))
                   .ValueOrDie();
  std::printf("table: %llu rows, %s uncompressed\n\n",
              static_cast<unsigned long long>(table->num_rows()),
              HumanBytes(table->data_bytes()).c_str());

  // --- SampleCF (Fig. 2) vs exact ------------------------------------------
  IndexDescriptor index{"ix_city", {"city"}, /*clustered=*/false};
  for (CompressionType type : {CompressionType::kNullSuppression,
                               CompressionType::kDictionaryPage}) {
    const CompressionScheme scheme = CompressionScheme::Uniform(type);

    SampleCFOptions options;
    options.fraction = 0.01;  // the 1% sample the paper's Example 1 uses
    Random rng(7);
    auto estimate = SampleCF(*table, index, scheme, options, &rng);
    if (!estimate.ok()) {
      std::fprintf(stderr, "SampleCF failed: %s\n",
                   estimate.status().ToString().c_str());
      return 1;
    }

    auto truth = ComputeTrueCF(*table, index, scheme);
    if (!truth.ok()) {
      std::fprintf(stderr, "exact CF failed: %s\n",
                   truth.status().ToString().c_str());
      return 1;
    }

    std::printf("%-18s estimate CF' = %.4f (from %llu sampled rows)\n",
                CompressionTypeName(type), estimate->cf.value,
                static_cast<unsigned long long>(estimate->sample_rows));
    std::printf("%-18s exact    CF  = %.4f   ratio error %.4f\n\n", "",
                truth->value, RatioError(truth->value, estimate->cf.value));
  }

  std::printf(
      "SampleCF read 1%% of the data. Null suppression lands within a few "
      "percent (Theorem 1);\ndictionary compression at this d/n sits in the "
      "hard regime the paper analyses — run\n./build/examples/"
      "accuracy_explorer to see how the error shrinks with f.\n");
  return 0;
}
