// Accuracy explorer: an interactive-style CLI that sweeps the sampling
// fraction for a chosen compression scheme and data shape, printing the
// Monte-Carlo accuracy next to Theorem 1's confidence band. Useful for
// picking the cheapest f that meets an accuracy target.
//
// Usage: accuracy_explorer [compression] [n] [d]
//   compression: none | null_suppression | dictionary_page |
//                dictionary_global | rle | prefix   (default null_suppression)
//   n: rows (default 100000)    d: distinct values (default 1000)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/format.h"
#include "datagen/table_gen.h"
#include "estimator/analytic_model.h"
#include "estimator/evaluation.h"

using namespace cfest;

int main(int argc, char** argv) {
  CompressionType type = CompressionType::kNullSuppression;
  if (argc > 1) {
    auto parsed = CompressionTypeFromName(argv[1]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "unknown compression '%s'\n", argv[1]);
      return 1;
    }
    type = *parsed;
  }
  const uint64_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;
  const uint64_t d = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1000;
  if (n == 0 || d == 0 || d > n) {
    std::fprintf(stderr, "need 0 < d <= n\n");
    return 1;
  }

  std::printf("=== accuracy explorer: %s, n = %llu, d = %llu ===\n\n",
              CompressionTypeName(type), static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(d));
  auto table_result = GenerateTable(
      {ColumnSpec::String("a", 24, d, FrequencySpec::Zipf(1.0),
                          LengthSpec::Uniform(2, 20))},
      n, 4242);
  if (!table_result.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"f", "r", "mean CF'", "bias", "stddev",
                      "theorem-1 band (+-2 sigma)", "E[ratio err]",
                      "p90 est", "max err"});
  double truth = 0.0;
  for (double f : {0.001, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    EvaluationOptions options;
    options.fraction = f;
    options.trials = 60;
    auto eval = EvaluateSampleCF(**table_result, {"cx_a", {"a"}, true},
                                 CompressionScheme::Uniform(type), options);
    if (!eval.ok()) {
      std::fprintf(stderr, "evaluate failed: %s\n",
                   eval.status().ToString().c_str());
      return 1;
    }
    truth = eval->truth.value;
    const double band = 2.0 * eval->theorem1_bound;
    table.AddRow(
        {FormatDouble(f, 3),
         std::to_string(static_cast<uint64_t>(eval->mean_sample_rows)),
         FormatDouble(eval->estimate_summary.mean), FormatDouble(eval->bias, 5),
         FormatDouble(eval->estimate_summary.stddev, 5),
         FormatDouble(eval->truth.value - band) + " .. " +
             FormatDouble(eval->truth.value + band),
         FormatDouble(eval->mean_ratio_error),
         FormatDouble(eval->estimate_summary.p90),
         FormatDouble(eval->max_ratio_error)});
  }
  table.Print();
  std::printf("\nexact CF = %.4f. For null suppression the +-2 sigma band is "
              "a guaranteed ~95%% envelope\n(Theorem 1); for dictionary "
              "schemes it is diagnostic only — the estimator is biased.\n",
              truth);
  return 0;
}
