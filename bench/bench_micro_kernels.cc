// K-SIMD — hardware-fast sizing kernels (compression/kernels.h) and the
// incremental knapsack bound (advisor/search.h).
//
// Four experiments, three of them gated (the run aborts if a gate fails):
//
//   (a) NS length kernel — TotalNullSuppressedLength over width-8 integer
//       cells, SIMD dispatch vs the scalar reference. Gate: >= 2x when a
//       vector level is active, and bit-identical totals always.
//   (b) RLE run detection — CountRuns over 16-byte cells with ~8-cell
//       runs, SIMD vs scalar. Gate: >= 2x when a vector level is active,
//       and identical run counts always.
//   (c) End-to-end compress — CompressedIndexBuilder::AddRows (batched,
//       arena transpose + kernels) vs the per-row Add loop on the same
//       200k-row sorted input. Gate: bit-identical page stats (the batched
//       path is a pure fast path; see compressor.h). Speedup reported.
//   (d) Lazy-search bound — SearchSizedCandidates over 100k candidates,
//       incremental Fenwick bound vs the legacy per-node rescan. Gate:
//       identical selections, total benefit, total bytes, and node counts.
//       Wall-clock for both reported.
//
// MinMaxInts and HashBytes throughputs are reported without gates (their
// wins ride along with (a)/(b); the hash is an internal probe only).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/search.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/simd.h"
#include "compression/compressed_index.h"
#include "compression/kernels.h"
#include "compression/scheme.h"
#include "storage/schema.h"

namespace cfest {
namespace {

void CheckGate(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "GATE FAILED [%s]\n", what);
    std::exit(1);
  }
}

/// Runs fn repeatedly until ~0.2 s of wall clock, returns seconds per call.
template <typename Fn>
double TimePerCall(Fn&& fn) {
  fn();  // warm up (page in buffers, populate thread-local scratch)
  size_t reps = 1;
  for (;;) {
    bench::Timer timer;
    for (size_t r = 0; r < reps; ++r) fn();
    const double elapsed = timer.Seconds();
    if (elapsed >= 0.2) return elapsed / static_cast<double>(reps);
    reps = elapsed > 0.0
               ? std::max(reps + 1, static_cast<size_t>(
                                        0.25 * static_cast<double>(reps) /
                                        elapsed))
               : reps * 8;
  }
}

// ---------------------------------------------------------------------------
// (a) NS length kernel.
// ---------------------------------------------------------------------------

struct KernelOutcome {
  double scalar_seconds = 0;
  double simd_seconds = 0;
  double speedup = 1.0;
  bool identical = false;
};

KernelOutcome RunNsGate(size_t cells) {
  Random rng(101);
  const uint32_t w = 8;
  std::string buf(cells * w, '\0');
  for (size_t i = 0; i < cells; ++i) {
    // Uniform in [0, 2^32): the typical 4-significant-byte int64 column the
    // paper's l_i scan sees; the scalar loop pays ~4 byte-checks per cell.
    const uint64_t v = rng.NextBounded(uint64_t{1} << 32);
    std::memcpy(buf.data() + i * w, &v, w);
  }
  KernelOutcome out;
  volatile uint64_t sink = 0;
  out.scalar_seconds = TimePerCall([&] {
    sink = kernels::scalar::TotalNullSuppressedLength(buf.data(), w, cells,
                                                      /*is_string=*/false);
  });
  const uint64_t scalar_total = sink;
  out.simd_seconds = TimePerCall([&] {
    sink = kernels::TotalNullSuppressedLength(buf.data(), w, cells,
                                              /*is_string=*/false);
  });
  out.identical = sink == scalar_total;
  out.speedup = out.scalar_seconds / out.simd_seconds;
  return out;
}

// ---------------------------------------------------------------------------
// (b) RLE run detection.
// ---------------------------------------------------------------------------

KernelOutcome RunRleGate(size_t cells) {
  Random rng(102);
  const uint32_t w = 16;
  std::string buf(cells * w, '\0');
  size_t i = 0;
  while (i < cells) {
    // Runs of 1..16 cells, average ~8 — scalar pays a 16-byte memcmp per
    // boundary check.
    const size_t run = 1 + rng.NextBounded(16);
    char cell[16];
    for (char& c : cell) c = static_cast<char>(rng.NextBounded(256));
    for (size_t k = 0; k < run && i < cells; ++k, ++i) {
      std::memcpy(buf.data() + i * w, cell, w);
    }
  }
  KernelOutcome out;
  volatile size_t sink = 0;
  out.scalar_seconds = TimePerCall([&] {
    sink = kernels::scalar::CountRuns(buf.data(), w, cells, nullptr);
  });
  const size_t scalar_runs = sink;
  out.simd_seconds = TimePerCall(
      [&] { sink = kernels::CountRuns(buf.data(), w, cells, nullptr); });
  out.identical = sink == scalar_runs;
  out.speedup = out.scalar_seconds / out.simd_seconds;
  return out;
}

// ---------------------------------------------------------------------------
// Ride-along throughputs (no gates).
// ---------------------------------------------------------------------------

double MinMaxGibPerSec(size_t n) {
  Random rng(103);
  std::vector<int64_t> values(n);
  for (int64_t& v : values) v = static_cast<int64_t>(rng.NextU64());
  volatile int64_t sink = 0;
  const double sec = TimePerCall([&] {
    const kernels::MinMax mm = kernels::MinMaxInts(values.data(), n);
    sink = mm.min ^ mm.max;
  });
  (void)sink;
  return static_cast<double>(n * sizeof(int64_t)) / sec / (1 << 30);
}

double HashGibPerSec(size_t bytes) {
  Random rng(104);
  std::string data(bytes, '\0');
  for (char& c : data) c = static_cast<char>(rng.NextBounded(256));
  volatile uint64_t sink = 0;
  const double sec =
      TimePerCall([&] { sink = kernels::HashBytes(data.data(), bytes); });
  (void)sink;
  return static_cast<double>(bytes) / sec / (1 << 30);
}

// ---------------------------------------------------------------------------
// (c) End-to-end compress: AddRows vs per-row Add.
// ---------------------------------------------------------------------------

struct CompressOutcome {
  double per_row_seconds = 0;
  double batched_seconds = 0;
  double speedup = 1.0;
  bool identical = false;
  uint64_t data_pages = 0;
};

CompressOutcome RunCompressGate(size_t rows_n) {
  Random rng(105);
  Schema schema({{"k", Int64Type()},
                 {"status", CharType(12)},
                 {"qty", Int32Type()}});
  CompressionScheme scheme;
  scheme.per_column = {CompressionType::kFrameOfReference,
                       CompressionType::kRle,
                       CompressionType::kNullSuppression};
  std::string rows;
  rows.reserve(rows_n * schema.row_width());
  for (size_t i = 0; i < rows_n; ++i) {
    const uint64_t k = i / 3;  // sorted keys, small FOR range
    rows.append(reinterpret_cast<const char*>(&k), 8);
    std::string v = "s" + std::to_string(i / 40);  // ~40-cell RLE runs
    v.append(12 - v.size(), ' ');
    rows += v;
    const uint32_t q = static_cast<uint32_t>(rng.NextBounded(100000));
    rows.append(reinterpret_cast<const char*>(&q), 4);
  }
  IndexBuildOptions options;
  options.keep_pages = false;  // size accounting only; this is the what-if path
  auto build = [&](bool batched) {
    auto builder = bench::CheckResult(
        CompressedIndexBuilder::Make(schema, scheme, options),
        "compress builder");
    if (batched) {
      bench::CheckOk(builder->AddRows(rows.data(), rows_n), "AddRows");
    } else {
      for (size_t i = 0; i < rows_n; ++i) {
        bench::CheckOk(builder->Add(Slice(
                           rows.data() + i * schema.row_width(),
                           schema.row_width())),
                       "Add");
      }
    }
    return bench::CheckResult(builder->Finish(), "compress finish");
  };
  CompressOutcome out;
  {
    bench::Timer timer;
    const CompressedIndex reference = build(false);
    out.per_row_seconds = timer.Seconds();
    bench::Timer timer2;
    const CompressedIndex batched = build(true);
    out.batched_seconds = timer2.Seconds();
    out.identical =
        batched.stats().data_pages == reference.stats().data_pages &&
        batched.stats().used_bytes == reference.stats().used_bytes &&
        batched.stats().chunk_bytes == reference.stats().chunk_bytes;
    out.data_pages = batched.stats().data_pages;
  }
  out.speedup = out.per_row_seconds / out.batched_seconds;
  return out;
}

// ---------------------------------------------------------------------------
// (d) 100k-candidate lazy search: Fenwick bound vs legacy rescan.
// ---------------------------------------------------------------------------

struct SearchOutcome {
  double legacy_seconds = 0;
  double incremental_seconds = 0;
  double speedup = 1.0;
  bool identical = false;
  uint64_t nodes_visited = 0;
  size_t selected = 0;
};

/// 100k candidates: `real_n` positive-benefit items (random integer
/// benefits, ~1 KB..2 KB footprints) that the search genuinely deliberates
/// over, padded to `total_n` with zero-benefit candidates. The zero pad is
/// what makes the per-node cost visible: the legacy bound rescans the full
/// density order (all `total_n` positions) whenever the remaining real
/// items no longer fill the capacity, while the Fenwick bound descends in
/// O(log total_n) regardless. Benefits are integers, so both bound
/// implementations compute identical doubles and the searches branch
/// identically (see search.h).
std::vector<SizedCandidate> SearchWorkload(size_t real_n, size_t total_n,
                                           uint64_t* real_bytes_total) {
  Random rng(106);
  std::vector<SizedCandidate> candidates(total_n);
  *real_bytes_total = 0;
  for (size_t i = 0; i < total_n; ++i) {
    SizedCandidate& c = candidates[i];
    c.config.table_name = "t";
    c.config.index.name = "ix" + std::to_string(i);
    c.config.scheme =
        CompressionScheme::Uniform(CompressionType::kNullSuppression);
    if (i < real_n) {
      c.config.benefit = static_cast<double>(1 + rng.NextBounded(1000));
      c.estimated_bytes = 1024 + rng.NextBounded(1024);
      *real_bytes_total += c.estimated_bytes;
    } else {
      c.config.benefit = 0.0;
      c.estimated_bytes = 4096;
    }
    c.uncompressed_bytes = c.estimated_bytes * 2;
  }
  return candidates;
}

SearchOutcome RunSearchGate(size_t real_n, size_t total_n,
                            double capacity_fraction) {
  uint64_t real_bytes = 0;
  const std::vector<SizedCandidate> candidates =
      SearchWorkload(real_n, total_n, &real_bytes);
  const std::vector<size_t> order = OrderCandidatesForSelection(candidates);
  const uint64_t bound = static_cast<uint64_t>(
      capacity_fraction * static_cast<double>(real_bytes));
  SearchOutcome out;
  LazyAdvisorStats fast_stats;
  LazyAdvisorStats slow_stats;
  const AdvisorRecommendation fast = SearchSizedCandidates(
      candidates, order, bound, &fast_stats, /*incremental_bound=*/true);
  const AdvisorRecommendation slow = SearchSizedCandidates(
      candidates, order, bound, &slow_stats, /*incremental_bound=*/false);
  // The first calls above double as heap warm-up (copying 100k candidates
  // cold dominates either search); time alternating warm runs and keep the
  // per-mode minimum.
  out.incremental_seconds = 1e9;
  out.legacy_seconds = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    bench::Timer fast_timer;
    SearchSizedCandidates(candidates, order, bound, nullptr,
                          /*incremental_bound=*/true);
    out.incremental_seconds =
        std::min(out.incremental_seconds, fast_timer.Seconds());
    bench::Timer slow_timer;
    SearchSizedCandidates(candidates, order, bound, nullptr,
                          /*incremental_bound=*/false);
    out.legacy_seconds = std::min(out.legacy_seconds, slow_timer.Seconds());
  }
  out.identical = fast.total_benefit == slow.total_benefit &&
                  fast.total_bytes == slow.total_bytes &&
                  fast.selected.size() == slow.selected.size() &&
                  fast_stats.nodes_visited == slow_stats.nodes_visited &&
                  fast_stats.nodes_pruned == slow_stats.nodes_pruned;
  for (size_t i = 0; out.identical && i < fast.selected.size(); ++i) {
    out.identical = fast.selected[i].config.index.name ==
                    slow.selected[i].config.index.name;
  }
  out.nodes_visited = fast_stats.nodes_visited;
  out.selected = fast.selected.size();
  out.speedup = out.legacy_seconds / out.incremental_seconds;
  return out;
}

}  // namespace
}  // namespace cfest

int main() {
  using namespace cfest;
  bench::PrintHeader(
      "K-SIMD: hardware-fast sizing kernels",
      "SIMD column scans >= 2x scalar, bit-identical; batched compress == "
      "per-row pages; Fenwick search bound == legacy rescan selections");

  const SimdLevel active = ActiveSimdLevel();
  const bool vector_active = active > SimdLevel::kScalar;
  std::printf("simd: max %s, active %s\n", SimdLevelName(MaxSimdLevel()),
              SimdLevelName(active));

  constexpr size_t kCells = 1 << 18;
  const KernelOutcome ns = RunNsGate(kCells);
  std::printf(
      "ns lengths (w=8, %zu cells): scalar %.3f us, simd %.3f us, %.2fx, "
      "identical=%d\n",
      kCells, ns.scalar_seconds * 1e6, ns.simd_seconds * 1e6, ns.speedup,
      ns.identical ? 1 : 0);
  CheckGate(ns.identical, "ns totals bit-identical");

  const KernelOutcome rle = RunRleGate(kCells);
  std::printf(
      "rle runs (w=16, %zu cells): scalar %.3f us, simd %.3f us, %.2fx, "
      "identical=%d\n",
      kCells, rle.scalar_seconds * 1e6, rle.simd_seconds * 1e6, rle.speedup,
      rle.identical ? 1 : 0);
  CheckGate(rle.identical, "rle run counts identical");
  if (vector_active) {
    CheckGate(ns.speedup >= 2.0, "ns simd >= 2x scalar");
    CheckGate(rle.speedup >= 2.0, "rle simd >= 2x scalar");
  } else {
    std::printf("(scalar level active: speedup gates skipped)\n");
  }

  const double minmax_gib = MinMaxGibPerSec(1 << 16);
  const double hash_gib = HashGibPerSec(1 << 16);
  std::printf("minmax %.2f GiB/s, hash %.2f GiB/s\n", minmax_gib, hash_gib);

  const CompressOutcome compress = RunCompressGate(200000);
  std::printf(
      "compress 200k rows (%llu pages): per-row %.3f s, batched %.3f s, "
      "%.2fx, identical=%d\n",
      static_cast<unsigned long long>(compress.data_pages),
      compress.per_row_seconds, compress.batched_seconds, compress.speedup,
      compress.identical ? 1 : 0);
  CheckGate(compress.identical, "batched compress pages bit-identical");

  const SearchOutcome search = RunSearchGate(8000, 100000, 0.5);
  std::printf(
      "search 100k candidates (%zu selected, %llu nodes): legacy %.3f s, "
      "incremental %.3f s, %.2fx, identical=%d\n",
      search.selected, static_cast<unsigned long long>(search.nodes_visited),
      search.legacy_seconds, search.incremental_seconds, search.speedup,
      search.identical ? 1 : 0);
  CheckGate(search.identical, "incremental bound selections identical");
  // ~6x on this machine; gate well below that so a loaded CI runner still
  // passes while a regression to parity still trips.
  CheckGate(search.speedup >= 1.5, "incremental bound reduces wall-clock");

  bench::JsonEmitter json("micro_kernels");
  json.AddString("simd_active", SimdLevelName(active));
  json.AddDouble("ns_scalar_us", ns.scalar_seconds * 1e6);
  json.AddDouble("ns_simd_us", ns.simd_seconds * 1e6);
  json.AddDouble("ns_speedup", ns.speedup);
  json.AddDouble("rle_scalar_us", rle.scalar_seconds * 1e6);
  json.AddDouble("rle_simd_us", rle.simd_seconds * 1e6);
  json.AddDouble("rle_speedup", rle.speedup);
  json.AddDouble("minmax_gib_per_sec", minmax_gib);
  json.AddDouble("hash_gib_per_sec", hash_gib);
  json.AddDouble("compress_per_row_seconds", compress.per_row_seconds);
  json.AddDouble("compress_batched_seconds", compress.batched_seconds);
  json.AddDouble("compress_speedup", compress.speedup);
  json.AddInt("search_candidates", 100000);
  json.AddInt("search_nodes", static_cast<int64_t>(search.nodes_visited));
  json.AddDouble("search_legacy_seconds", search.legacy_seconds);
  json.AddDouble("search_incremental_seconds", search.incremental_seconds);
  json.AddDouble("search_speedup", search.speedup);
  json.AddBool("gates_passed", true);
  json.Print();
  return 0;
}
