// E-OBS — the observability layer's two contracts, gated on the 8-client
// concurrent-service workload (same catalog and shared-candidate shape as
// bench_concurrent_service):
//
//   (a) Parity: the metric registry and the legacy stats structs report
//       bit-identical numbers on a quiesced run — CatalogEstimationService
//       ::Stats (per-engine CacheStats sums + coalescer Stats) vs the
//       registry deltas for `cfest.engine.*` (lock_free_pins named by the
//       acceptance criteria, plus every other re-routed counter) and
//       `cfest.coalescer.*`. Exact equality, not a tolerance: both views
//       read the same Counter objects by construction.
//   (b) Overhead: with the full registry live (counters always on) the
//       steady-state concurrent workload with timing + tracing ENABLED
//       runs within 2% of the same workload with them runtime-disabled —
//       the disabled path reads no clocks and records no spans, standing
//       in for the CFEST_METRICS=OFF compiled-out baseline inside one
//       binary (interleaved best-of-N trials; tolerance overridable via
//       CFEST_OBS_TOLERANCE for loaded CI hosts).

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "datagen/table_gen.h"
#include "estimator/engine.h"
#include "estimator/service.h"
#include "storage/catalog.h"

namespace cfest {
namespace {

// The whole harness is moot when the registry is compiled out; the main
// below prints a marker instead.
#ifndef CFEST_METRICS_DISABLED

using metrics::MetricRegistry;
using metrics::MetricsSnapshot;

constexpr double kFraction = 0.06;
constexpr int kClients = 8;
constexpr int kParityRounds = 8;
// Each overhead measurement must dwarf scheduler noise: 8 barrier rounds
// is roughly three-quarters of a second of pure read-path CPU per block.
// The gate statistic is the median of per-pair CPU ratios — the two
// blocks of a pair run back to back and share host state, so their ratio
// cancels drift that an absolute best-of comparison cannot.
constexpr int kOverheadRounds = 8;
constexpr int kTrialsPerMode = 13;
constexpr uint64_t kAppendBatch = 400;
constexpr std::chrono::milliseconds kAppendPause{25};

std::unique_ptr<Table> GenerateOrders() {
  std::vector<ColumnSpec> specs = {
      ColumnSpec::Integer("o_key", 900, FrequencySpec::Zipf(0.9)),
      ColumnSpec::String("o_status", 24, 8, FrequencySpec::Zipf(1.0),
                         LengthSpec::Uniform(4, 12)),
      ColumnSpec::String("o_city", 32, 400, FrequencySpec::Uniform(),
                         LengthSpec::Uniform(6, 20)),
      ColumnSpec::Integer("o_amount", 50000, FrequencySpec::Uniform())};
  return bench::CheckResult(GenerateTable(specs, 100000, 7), "orders");
}

std::unique_ptr<Table> GenerateLineitem() {
  std::vector<ColumnSpec> specs = {
      ColumnSpec::Integer("l_partkey", 2000, FrequencySpec::Zipf(0.8)),
      ColumnSpec::String("l_shipmode", 24, 7, FrequencySpec::Uniform(),
                         LengthSpec::Uniform(3, 10)),
      ColumnSpec::Integer("l_quantity", 50, FrequencySpec::Uniform())};
  return bench::CheckResult(GenerateTable(specs, 120000, 11), "lineitem");
}

/// Same shared-candidate shape as bench_concurrent_service: 12 structural
/// candidates across both tables, 3 cosmetic copies each.
std::vector<CandidateConfiguration> SharedWorkload() {
  struct Spec {
    const char* table;
    const char* column;
    CompressionType type;
  };
  const Spec specs[] = {
      {"orders", "o_status", CompressionType::kDictionaryPage},
      {"orders", "o_status", CompressionType::kRle},
      {"orders", "o_city", CompressionType::kDictionaryPage},
      {"orders", "o_city", CompressionType::kPrefix},
      {"orders", "o_key", CompressionType::kFrameOfReference},
      {"orders", "o_amount", CompressionType::kNullSuppression},
      {"lineitem", "l_shipmode", CompressionType::kDictionaryPage},
      {"lineitem", "l_shipmode", CompressionType::kRle},
      {"lineitem", "l_partkey", CompressionType::kDictionaryGlobal},
      {"lineitem", "l_partkey", CompressionType::kNullSuppression},
      {"lineitem", "l_quantity", CompressionType::kRle},
      {"lineitem", "l_quantity", CompressionType::kFrameOfReference}};
  std::vector<CandidateConfiguration> candidates;
  for (int copy = 0; copy < 3; ++copy) {
    int k = 0;
    for (const Spec& s : specs) {
      CandidateConfiguration c;
      c.table_name = s.table;
      c.index = {"ix_" + std::to_string(copy) + "_" + std::to_string(k++),
                 {s.column},
                 false};
      c.scheme = CompressionScheme::Uniform(s.type);
      c.benefit = 1.0 + copy;
      candidates.push_back(std::move(c));
    }
  }
  return candidates;
}

std::vector<Row> DeltaRows(const Table& source, uint64_t delta) {
  std::vector<Row> rows;
  rows.reserve(delta);
  for (RowId id = 0; id < delta; ++id) {
    rows.push_back(bench::CheckResult(source.DecodeRow(id % source.num_rows()),
                                      "decode"));
  }
  return rows;
}

/// Whole-process CPU seconds (all threads). The overhead gate compares
/// CPU time, not wall clock: instrumentation cost IS extra CPU work, and
/// CPU time is immune to the scheduler preemption and host drift that
/// swamp a 2% wall-clock comparison on shared runners.
double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct RoundsCost {
  double wall_seconds = 0;
  double cpu_seconds = 0;
};

/// Barrier-synchronized client rounds of EstimateAll against `service`,
/// client `id` submitting `per_client[id]`. Returns wall-clock and
/// process-CPU seconds; aborts on any failed round.
RoundsCost ClientRounds(
    CatalogEstimationService& service,
    const std::vector<std::vector<CandidateConfiguration>>& per_client,
    int rounds) {
  const int clients = static_cast<int>(per_client.size());
  std::atomic<uint64_t> failures{0};
  std::barrier sync(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  bench::Timer timer;
  const double cpu_before = ProcessCpuSeconds();
  for (int id = 0; id < clients; ++id) {
    workers.emplace_back([&, id] {
      const std::vector<CandidateConfiguration>& candidates = per_client[id];
      for (int round = 0; round < rounds; ++round) {
        sync.arrive_and_wait();
        auto batch = service.EstimateAll(candidates);
        if (!batch.ok() || batch->size() != candidates.size()) ++failures;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  RoundsCost cost;
  cost.wall_seconds = timer.Seconds();
  cost.cpu_seconds = ProcessCpuSeconds() - cpu_before;
  if (failures.load() != 0) {
    std::fprintf(stderr, "FATAL: %llu failed client rounds\n",
                 static_cast<unsigned long long>(failures.load()));
    std::exit(1);
  }
  return cost;
}

/// Every client submits the same shared batch (coalescing exercised).
std::vector<std::vector<CandidateConfiguration>> Replicate(
    const std::vector<CandidateConfiguration>& candidates, int clients) {
  return std::vector<std::vector<CandidateConfiguration>>(clients,
                                                          candidates);
}

/// Per-client batches that are STRUCTURALLY unique — coalescing keys
/// ignore index names, so uniqueness has to come from the key-column set.
/// Each client appends a client-determined suffix of orders columns to
/// every index key (9 distinct suffixes cover 8 clients), so no request
/// ever coalesces across clients and every block executes exactly the
/// same estimates: deterministic work content for the overhead
/// comparison. Schemes are dictionary/RLE only — valid on any column
/// type, which the mixed int/string keys require.
std::vector<std::vector<CandidateConfiguration>> DistinctPerClient(
    int clients) {
  const char* const cols[] = {"o_key", "o_status", "o_city", "o_amount"};
  const CompressionType schemes[] = {CompressionType::kDictionaryPage,
                                     CompressionType::kRle};
  std::vector<std::vector<CandidateConfiguration>> per_client;
  per_client.reserve(clients);
  for (int id = 0; id < clients; ++id) {
    std::vector<CandidateConfiguration> own;
    int k = 0;
    for (const char* base : cols) {
      // The other three columns, in a fixed order per base column.
      std::vector<std::string> others;
      for (const char* c : cols) {
        if (c != base) others.push_back(c);
      }
      std::vector<std::string> key = {base};
      if (id < 3) {
        key.push_back(others[id]);
      } else {
        // Ordered pairs (a, b), a != b, enumerated for ids 3..8.
        const int pair = id - 3;
        const int a = pair / 2;
        int b = pair % 2;
        if (b >= a) ++b;
        key.push_back(others[a]);
        key.push_back(others[b]);
      }
      for (const CompressionType type : schemes) {
        CandidateConfiguration c;
        c.table_name = "orders";
        c.index = {"ov_" + std::to_string(id) + "_" + std::to_string(k++),
                   key, false};
        c.scheme = CompressionScheme::Uniform(type);
        c.benefit = 1.0;
        own.push_back(std::move(c));
      }
    }
    per_client.push_back(std::move(own));
  }
  return per_client;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

uint64_t Delta(const MetricsSnapshot& after, const MetricsSnapshot& before,
               const char* name) {
  return after.CounterValue(name) - before.CounterValue(name);
}

/// Gate (a): run the concurrent workload with streaming appends on a fresh
/// service; every legacy stats field must equal its registry delta.
void RunParityPhase(const Catalog& catalog, Catalog& mutable_catalog,
                    const std::vector<CandidateConfiguration>& candidates,
                    bench::JsonEmitter* json) {
  const MetricsSnapshot before = MetricRegistry::Global().Snapshot();

  CatalogEstimationServiceOptions options;
  options.base.fraction = kFraction;
  options.maintain_reservoirs = true;
  CatalogEstimationService service(catalog, options);
  bench::CheckResult(service.EstimateAll(candidates), "warm-up");

  const Table* orders =
      bench::CheckResult(catalog.GetTable("orders"), "orders table");
  const std::vector<Row> delta_rows = DeltaRows(*orders, kAppendBatch);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::thread appender([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto range = mutable_catalog.AppendRows("orders", delta_rows);
      if (!range.ok() || !service.NotifyAppend("orders", *range).ok()) {
        ++failures;
        return;
      }
      std::this_thread::sleep_for(kAppendPause);
    }
  });
  ClientRounds(service, Replicate(candidates, kClients), kParityRounds);
  stop.store(true, std::memory_order_relaxed);
  appender.join();
  if (failures.load() != 0) {
    std::fprintf(stderr, "FATAL: appender failed\n");
    std::exit(1);
  }

  // Quiesced: every writer joined. Both views now read the same counters.
  const CatalogEstimationService::Stats stats = service.stats();
  const MetricsSnapshot after = MetricRegistry::Global().Snapshot();

  struct Pair {
    const char* metric;
    uint64_t legacy;
  };
  const Pair pairs[] = {
      {"cfest.engine.lock_free_pins", stats.lock_free_pins},
      {"cfest.engine.locked_pins", stats.locked_pins},
      {"cfest.engine.samples_drawn", stats.samples_drawn},
      {"cfest.engine.index_builds", stats.index_builds},
      {"cfest.engine.index_cache_hits", stats.index_cache_hits},
      {"cfest.engine.invalidations", stats.invalidations},
      {"cfest.engine.epochs_published", stats.epochs_published},
      {"cfest.engine.epochs_retired", stats.epochs_retired},
      {"cfest.coalescer.requests", stats.coalesce_requests},
      {"cfest.coalescer.admitted", stats.coalesce_admitted},
      {"cfest.coalescer.merged", stats.coalesce_merged}};
  uint64_t mismatches = 0;
  for (const Pair& p : pairs) {
    const uint64_t registry = Delta(after, before, p.metric);
    if (registry != p.legacy) {
      ++mismatches;
      std::fprintf(stderr, "PARITY MISMATCH %s: registry %llu legacy %llu\n",
                   p.metric, static_cast<unsigned long long>(registry),
                   static_cast<unsigned long long>(p.legacy));
    }
  }
  std::printf("parity: %zu counters compared, %llu mismatches "
              "(lock_free_pins registry %llu == legacy %llu)\n",
              std::size(pairs), static_cast<unsigned long long>(mismatches),
              static_cast<unsigned long long>(
                  Delta(after, before, "cfest.engine.lock_free_pins")),
              static_cast<unsigned long long>(stats.lock_free_pins));
  json->AddInt("parity_counters", static_cast<int64_t>(std::size(pairs)));
  json->AddInt("parity_mismatches", static_cast<int64_t>(mismatches));
  json->AddInt("lock_free_pins", static_cast<int64_t>(stats.lock_free_pins));
  if (mismatches != 0) {
    std::fprintf(stderr, "FATAL: legacy stats diverge from the registry\n");
    std::exit(1);
  }
  if (stats.lock_free_pins == 0) {
    std::fprintf(stderr, "FATAL: workload exercised no lock-free pins\n");
    std::exit(1);
  }
}

/// Gate (b): interleaved best-of-N trials of the steady-state workload
/// (one warm service, no appender: the pure read path the overhead policy
/// protects) with timing+tracing enabled vs runtime-disabled.
void RunOverheadPhase(const Catalog& catalog, bench::JsonEmitter* json) {
  CatalogEstimationServiceOptions options;
  options.base.fraction = kFraction;
  CatalogEstimationService service(catalog, options);
  const std::vector<std::vector<CandidateConfiguration>> per_client =
      DistinctPerClient(kClients);
  // Untimed warm pass with full instrumentation on, so index builds,
  // trace-ring allocation, and CPU frequency ramp all land before
  // anything is timed.
  metrics::SetTimingEnabled(true);
  trace::SetEnabled(true);
  ClientRounds(service, per_client, 4);

  std::vector<double> pair_ratios;
  std::vector<double> enabled_cpu, baseline_cpu;
  std::vector<double> enabled_wall, baseline_wall;
  for (int trial = 0; trial < kTrialsPerMode; ++trial) {
    // The two legs of a pair run back to back (alternating which mode
    // leads), so each pair's ratio is taken under near-identical host
    // conditions; client-unique candidates make the work per block
    // identical, so the ratio is pure instrumentation cost + noise.
    double pair_enabled = 0, pair_baseline = 0;
    for (int leg = 0; leg < 2; ++leg) {
      const bool enabled_mode = (leg == 0) == (trial % 2 == 0);
      metrics::SetTimingEnabled(enabled_mode);
      trace::SetEnabled(enabled_mode);
      const RoundsCost cost =
          ClientRounds(service, per_client, kOverheadRounds);
      (enabled_mode ? pair_enabled : pair_baseline) = cost.cpu_seconds;
      (enabled_mode ? enabled_cpu : baseline_cpu).push_back(cost.cpu_seconds);
      (enabled_mode ? enabled_wall : baseline_wall)
          .push_back(cost.wall_seconds);
    }
    pair_ratios.push_back(pair_baseline > 0 ? pair_enabled / pair_baseline
                                            : 1.0);
  }
  metrics::SetTimingEnabled(true);
  trace::Reset();

  double tolerance = 1.02;
  if (const char* env = std::getenv("CFEST_OBS_TOLERANCE")) {
    tolerance = std::atof(env);
    if (!(tolerance > 1.0)) tolerance = 1.02;
  }
  const double ratio = Median(pair_ratios);
  std::printf("overhead: enabled %.3f cpu-s vs disabled %.3f cpu-s -> "
              "%.4fx (gate <= %.2fx, median pair ratio over %d pairs; "
              "wall %.3fs vs %.3fs)\n",
              Median(enabled_cpu), Median(baseline_cpu), ratio, tolerance,
              kTrialsPerMode, Median(enabled_wall), Median(baseline_wall));
  json->AddDouble("enabled_cpu_seconds", Median(enabled_cpu));
  json->AddDouble("baseline_cpu_seconds", Median(baseline_cpu));
  json->AddDouble("enabled_wall_seconds", Median(enabled_wall));
  json->AddDouble("baseline_wall_seconds", Median(baseline_wall));
  json->AddDouble("overhead_ratio", ratio);
  json->AddDouble("overhead_tolerance", tolerance);
  if (ratio > tolerance) {
    std::fprintf(stderr,
                 "FATAL: observability overhead %.4fx exceeds %.2fx gate\n",
                 ratio, tolerance);
    std::exit(1);
  }
}

#endif  // CFEST_METRICS_DISABLED

void Run() {
  bench::PrintHeader(
      "E-OBS / Observability layer",
      "Registry/legacy-stats bit parity on the concurrent workload; "
      "timing+tracing overhead within 2% of the disabled baseline.");

#ifdef CFEST_METRICS_DISABLED
  // The compiled-out build has no registry to compare against; the gates
  // are vacuous by construction.
  std::printf("CFEST_METRICS_DISABLED build: registry compiled out, "
              "nothing to gate\n");
  bench::JsonEmitter json("observability");
  json.AddBool("metrics_compiled_out", true);
  json.Print();
#else
  Catalog catalog;
  bench::CheckOk(catalog.AddTable("orders", GenerateOrders()), "orders");
  bench::CheckOk(catalog.AddTable("lineitem", GenerateLineitem()),
                 "lineitem");
  const std::vector<CandidateConfiguration> candidates = SharedWorkload();

  bench::JsonEmitter json("observability");
  json.AddInt("clients", kClients);
  json.AddInt("batch_candidates", static_cast<int64_t>(candidates.size()));
  json.AddDouble("fraction", kFraction);
  RunParityPhase(catalog, catalog, candidates, &json);
  RunOverheadPhase(catalog, &json);
  json.AddBool("metrics_compiled_out", false);
  json.Print();
#endif
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
