// A1 — dictionary design ablations (the knobs DESIGN.md §4 calls out):
//   (a) bit-packed ceil(log2 d_page) pointers vs byte-aligned pointers,
//   (b) full-width k-byte dictionary entries (the paper's model) vs
//       null-suppressed entries,
//   (c) the global model's pointer size p (the paper treats p as a given;
//       this quantifies how much CF = p/k + d/n moves with it).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "datagen/table_gen.h"
#include "estimator/compression_fraction.h"

namespace cfest {
namespace {

double TrueCF(const Table& table, const CompressionScheme& scheme) {
  return bench::CheckResult(
             ComputeTrueCF(table, {"cx_a", {"a"}, true}, scheme), "cf")
      .value;
}

void Run() {
  bench::PrintHeader(
      "A1 / Dictionary design ablations",
      "Pointer packing, entry encoding, and the global pointer size p.");

  const uint64_t n = 100000;
  {
    TablePrinter table({"d", "len dist", "bit-packed + full-width",
                        "byte-aligned ptrs", "NS entries",
                        "byte-aligned + NS"});
    for (uint64_t d : {8ull, 200ull, 5000ull}) {
      for (bool short_values : {false, true}) {
        auto data = bench::CheckResult(
            GenerateTable(
                {ColumnSpec::String("a", 24, d, FrequencySpec::Uniform(),
                                    short_values ? LengthSpec::Uniform(2, 8)
                                                 : LengthSpec::Full())},
                n, 1 + d),
            "generate");
        auto cf_for = [&](bool bit_packed, bool full_width) {
          CompressionOptions options;
          options.dict_bit_packed_pointers = bit_packed;
          options.dict_entries_full_width = full_width;
          return TrueCF(*data,
                        CompressionScheme::Uniform(
                            CompressionType::kDictionaryPage, options));
        };
        table.AddRow({std::to_string(d),
                      short_values ? "short (2-8/24)" : "full width",
                      FormatDouble(cf_for(true, true)),
                      FormatDouble(cf_for(false, true)),
                      FormatDouble(cf_for(true, false)),
                      FormatDouble(cf_for(false, false))});
      }
    }
    std::printf("(a)+(b) page-level dictionary, n = %llu, char(24):\n",
                static_cast<unsigned long long>(n));
    table.Print();
  }

  {
    TablePrinter table({"d", "p=1", "p=2", "p=4", "p=8",
                        "analytic p/k + d/n (p=4)"});
    for (uint64_t d : {100ull, 10000ull, 50000ull}) {
      auto data = bench::CheckResult(
          GenerateTable({ColumnSpec::String("a", 24, d,
                                            FrequencySpec::Uniform(),
                                            LengthSpec::Full())},
                        n, 31 + d),
          "generate");
      std::vector<std::string> row = {std::to_string(d)};
      for (uint32_t p : {1u, 2u, 4u, 8u}) {
        if (d > (p >= 4 ? d : (uint64_t{1} << (8 * p)))) {
          row.push_back("overflow");
          continue;
        }
        CompressionOptions options;
        options.global_pointer_bytes = p;
        row.push_back(FormatDouble(
            TrueCF(*data, CompressionScheme::Uniform(
                              CompressionType::kDictionaryGlobal, options))));
      }
      row.push_back(FormatDouble(4.0 / 24.0 +
                                 static_cast<double>(d) /
                                     static_cast<double>(n)));
      table.AddRow(row);
    }
    std::printf("\n(c) global-dictionary pointer size sweep, char(24):\n");
    table.Print();
  }
  std::printf(
      "\nTakeaways: bit packing matters most at small d (pointers round up "
      "to whole bytes\notherwise); NS entries matter when values are short "
      "relative to k; the p sweep shows\nCF moving by exactly (p - p')/k, "
      "matching the closed form.\n");
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
