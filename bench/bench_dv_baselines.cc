// E9 — SampleCF vs classical distinct-value estimators for dictionary
// compression. The paper ties CF'_DC to distinct-value estimation (its ref
// [1]); the natural baselines plug a DV estimate D-hat into the closed form
// CF = p/k + D-hat/n. SampleCF's implicit choice is the naive d'/r scale-up;
// this experiment quantifies what a smarter estimator would buy.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "common/stats.h"
#include "datagen/table_gen.h"
#include "estimator/analytic_model.h"
#include "estimator/compression_fraction.h"
#include "estimator/distinct_value.h"
#include "estimator/sample_cf.h"
#include "sampling/sampler.h"

namespace cfest {
namespace {

void Run() {
  bench::PrintHeader(
      "E9 / Distinct-value baselines vs SampleCF for dictionary compression",
      "Baselines: CF = p/k + Dhat/n with Dhat from GEE / Chao84 / Shlosser / "
      "scale-up.");

  const uint64_t n = 100000;
  const uint32_t k = 20;
  const uint32_t p = 4;
  const double f = 0.01;
  const uint32_t trials = 30;

  TablePrinter table({"d", "freq", "estimator", "mean CF'", "E[ratio err]",
                      "mean Dhat"});
  bench::Timer timer;
  for (uint64_t d : {100ull, 5000ull, 50000ull}) {
    for (const char* freq_label : {"uniform", "zipf(1)"}) {
      const bool zipf = std::string(freq_label) == "zipf(1)";
      auto table_ptr = bench::CheckResult(
          GenerateTable(
              {ColumnSpec::String("a", k, d,
                                  zipf ? FrequencySpec::Zipf(1.0)
                                       : FrequencySpec::Uniform(),
                                  LengthSpec::Full())},
              n, 7000 + d),
          "generate");
      ColumnPopulationStats stats = bench::CheckResult(
          AnalyzeColumn(*table_ptr, 0), "analyze");
      const double truth = AnalyticGlobalDictCF(stats, p);

      // SampleCF (constructive pipeline).
      {
        RunningStats err, mean;
        Random rng(99);
        for (uint32_t t = 0; t < trials; ++t) {
          SampleCFOptions options;
          options.fraction = f;
          Random trial_rng = rng.Fork();
          SampleCFResult result = bench::CheckResult(
              SampleCF(*table_ptr, {"cx_a", {"a"}, true},
                       CompressionScheme::Uniform(
                           CompressionType::kDictionaryGlobal),
                       options, &trial_rng),
              "samplecf");
          err.Add(RatioError(truth, result.cf.value));
          mean.Add(result.cf.value);
        }
        table.AddRow({std::to_string(d), freq_label, "SampleCF",
                      FormatDouble(mean.mean()), FormatDouble(err.mean()),
                      "-"});
      }

      // DV-estimator baselines on the same sampling fractions.
      auto sampler = MakeUniformWithReplacementSampler();
      for (DvEstimator estimator : AllDvEstimators()) {
        RunningStats err, mean, dhat_stats;
        Random rng(99);
        for (uint32_t t = 0; t < trials; ++t) {
          Random trial_rng = rng.Fork();
          auto sample = bench::CheckResult(
              sampler->Sample(*table_ptr, f, &trial_rng), "sample");
          SampleFrequencyProfile profile = bench::CheckResult(
              BuildFrequencyProfile(*sample, 0), "profile");
          const double dhat = EstimateDistinct(estimator, profile, n);
          const double cf = DictCFFromDvEstimate(dhat, n, p, k);
          err.Add(RatioError(truth, cf));
          mean.Add(cf);
          dhat_stats.Add(dhat);
        }
        table.AddRow({std::to_string(d), freq_label,
                      DvEstimatorName(estimator), FormatDouble(mean.mean()),
                      FormatDouble(err.mean()),
                      FormatDouble(dhat_stats.mean(), 0)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nGround truth: analytic CF_DC = p/k + d/n (p = %u, k = %u), n = "
      "%llu, f = %.2f.\nSampleCF's implicit distinct-value estimate is the "
      "linear scale-up d' * n/r (its CF' is\np/k + d'/r), and the two rows "
      "match almost exactly; Chao84/GEE cut the mid-d error,\nmatching the "
      "paper's observation that DV estimation is the hard core of the "
      "problem.\nelapsed %.1fs\n",
      p, k, static_cast<unsigned long long>(n), f, timer.Seconds());
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
