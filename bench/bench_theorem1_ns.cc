// E1 — Theorem 1 (null suppression): CF'_NS is unbiased and its standard
// deviation is at most 1/(2 sqrt(f n)).
//
// Sweeps declared width k, actual-length distribution, and sampling fraction
// f; for each cell reports the exact CF, the Monte-Carlo mean/bias/stddev of
// SampleCF, and the Theorem 1 bound. Reproduction holds if |bias| is
// statistically zero and stddev <= bound everywhere.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "datagen/table_gen.h"
#include "estimator/analytic_model.h"
#include "estimator/evaluation.h"

namespace cfest {
namespace {

struct LengthCase {
  const char* label;
  LengthSpec spec;
};

void Run() {
  bench::PrintHeader(
      "E1 / Theorem 1 — null suppression: unbiased, stddev <= 1/(2*sqrt(r))",
      "Paper: E[CF'_NS] = CF_NS and sigma(CF'_NS) <= 1/(2 sqrt(f n)).");

  const uint64_t n = 100000;
  const uint32_t trials = 100;
  const std::vector<uint32_t> widths = {20, 64, 200};
  const std::vector<LengthCase> lengths = {
      {"uniform", LengthSpec::Uniform(1, 0)},
      {"constant", LengthSpec::Constant(7)},
      {"bimodal", LengthSpec::Bimodal(1, 0)},
      {"full", LengthSpec::Full()},
  };
  const std::vector<double> fractions = {0.001, 0.01, 0.05, 0.10};

  TablePrinter table({"k", "lengths", "f", "r", "CF (exact)", "mean CF'",
                      "bias", "stddev", "bound 1/(2*sqrt(r))", "ok?"});
  bench::Timer timer;
  int violations = 0;
  for (uint32_t k : widths) {
    for (const LengthCase& len : lengths) {
      auto table_ptr = bench::CheckResult(
          GenerateTable({ColumnSpec::String("a", k, 5000,
                                            FrequencySpec::Uniform(),
                                            len.spec)},
                        n, 1000 + k),
          "generate");
      for (double f : fractions) {
        EvaluationOptions options;
        options.fraction = f;
        options.trials = trials;
        options.seed = 42;
        EvaluationResult eval = bench::CheckResult(
            EvaluateSampleCF(
                *table_ptr, {"cx_a", {"a"}, true},
                CompressionScheme::Uniform(CompressionType::kNullSuppression),
                options),
            "evaluate");
        const double bound = eval.theorem1_bound;
        // 5% slack absorbs per-page chunk framing and finite-trial noise.
        const bool ok = eval.estimate_summary.stddev <= bound * 1.05;
        if (!ok) ++violations;
        table.AddRow({std::to_string(k), len.label, FormatDouble(f, 3),
                      std::to_string(static_cast<uint64_t>(
                          eval.mean_sample_rows)),
                      FormatDouble(eval.truth.value),
                      FormatDouble(eval.estimate_summary.mean),
                      FormatDouble(eval.bias, 5),
                      FormatDouble(eval.estimate_summary.stddev, 5),
                      FormatDouble(bound, 5), ok ? "yes" : "NO"});
      }
    }
  }
  table.Print();
  std::printf("\nrows: n = %llu, trials per cell = %u, elapsed %.1fs\n",
              static_cast<unsigned long long>(n), trials, timer.Seconds());
  std::printf("bound violations: %d of %zu cells (expect 0)\n", violations,
              table.row_count());
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
