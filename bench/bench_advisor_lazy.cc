// A-LAZY — lazy interval-driven branch-and-bound advisor
// (advisor/search.h) versus the eager precision-targeted path.
//
// The eager advisor sizes every candidate to convergence before selecting;
// the lazy search starts from coarse interval estimates, prunes with
// optimistic/pessimistic byte bounds, and refines only candidates whose
// intervals straddle a feasibility decision. Two gates (the run aborts if
// either fails):
//
//   (a) selection equality — on seeded <= 24-candidate workloads whose
//       candidate footprints are tiered (decision margins wider than the
//       what-if estimation precision; see search.h on why razor-thin
//       boundaries cannot be promised by *any* estimate-driven advisor),
//       the lazy selections must be identical to the eager-optimal
//       reference at every probed bound;
//   (b) rows saved — on a 100+-candidate mixed-table workload, the total
//       rows sized by the lazy pass (sum over candidates of the sample
//       rows behind each final estimate) must be strictly below the eager
//       precision-targeted path's total, because most candidates never
//       get a converged estimate at all.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/search.h"
#include "bench_util.h"
#include "common/format.h"
#include "common/random.h"
#include "datagen/table_gen.h"
#include "estimator/adaptive.h"
#include "estimator/service.h"
#include "storage/catalog.h"

namespace cfest {
namespace {

constexpr double kRelError = 0.02;
constexpr double kConfidence = 0.95;

std::vector<ColumnSpec> WorkloadColumns() {
  return {ColumnSpec::String("status", 12, 6, FrequencySpec::Uniform(),
                             LengthSpec::Uniform(4, 10)),
          ColumnSpec::String("city", 24, 50, FrequencySpec::Zipf(1.0),
                             LengthSpec::Uniform(4, 20)),
          ColumnSpec::Integer("amount", 0)};
}

std::vector<std::string> SelectionKeys(const AdvisorRecommendation& rec) {
  std::vector<std::string> keys;
  for (const SizedCandidate& s : rec.selected) {
    keys.push_back(s.config.table_name + "/" + s.config.index.name + "/" +
                   s.config.scheme.ToString());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// ---------------------------------------------------------------------------
// Gate (a): selection equality on a tiered <= 24-candidate workload.
// ---------------------------------------------------------------------------

struct EqualityOutcome {
  size_t bounds_probed = 0;
  size_t mismatches = 0;
  size_t refined_total = 0;
  size_t candidates = 0;
};

EqualityOutcome RunEqualityGate() {
  // Two tables of different sizes tier the candidate footprints: the
  // decision margins at the probed bounds exceed the estimation noise.
  Catalog catalog;
  bench::CheckOk(
      catalog.AddTable("t1", bench::CheckResult(
                                 GenerateTable(WorkloadColumns(), 60000, 7),
                                 "t1")),
      "t1");
  bench::CheckOk(
      catalog.AddTable("t2", bench::CheckResult(
                                 GenerateTable(WorkloadColumns(), 15000, 11),
                                 "t2")),
      "t2");

  struct Spec {
    const char* col;
    CompressionType type;
    double benefit;
  };
  const std::vector<Spec> specs = {
      {"status", CompressionType::kNullSuppression, 7.3},
      {"status", CompressionType::kDictionaryPage, 6.1},
      {"status", CompressionType::kRle, 2.7},
      {"city", CompressionType::kNullSuppression, 5.9},
      {"city", CompressionType::kDictionaryPage, 8.2},
      {"city", CompressionType::kPrefix, 3.4},
      {"amount", CompressionType::kNullSuppression, 4.8},
      {"amount", CompressionType::kNone, 1.9},
  };
  std::vector<CandidateConfiguration> candidates;
  for (const char* tbl : {"t1", "t2"}) {
    for (const Spec& spec : specs) {
      CandidateConfiguration c;
      c.table_name = tbl;
      c.index = {std::string(tbl) + ".ix_" + spec.col + "_" +
                     CompressionTypeName(spec.type),
                 {spec.col},
                 /*clustered=*/false};
      c.scheme = CompressionScheme::Uniform(spec.type);
      c.benefit = spec.benefit + (tbl[1] == '2' ? 0.13 : 0.0);
      candidates.push_back(std::move(c));
    }
  }

  PrecisionTarget target;
  target.rel_error = kRelError;
  target.confidence = kConfidence;
  CatalogEstimationServiceOptions options;
  options.base.fraction = 0.005;
  options.num_threads = 1;

  const std::vector<uint64_t> bounds = {400000,  600000,  800000, 1200000,
                                        1800000, 2400000, 2800000, 3600000};
  EqualityOutcome outcome;
  outcome.candidates = candidates.size();
  TablePrinter out({"bound", "eager benefit", "lazy benefit", "selected",
                    "refined", "match"});
  for (uint64_t bound : bounds) {
    CatalogEstimationService eager_service(catalog, options);
    const AdvisorRecommendation eager = bench::CheckResult(
        AdviseConfigurations(eager_service, candidates, bound, target,
                             AdvisorStrategy::kOptimal),
        "eager-optimal");
    CatalogEstimationService lazy_service(catalog, options);
    LazyAdvisorStats stats;
    const AdvisorRecommendation lazy = bench::CheckResult(
        AdviseConfigurationsLazy(lazy_service, candidates, bound, target,
                                 &stats),
        "lazy");
    const bool match = SelectionKeys(eager) == SelectionKeys(lazy);
    ++outcome.bounds_probed;
    if (!match) ++outcome.mismatches;
    outcome.refined_total += stats.refined;
    out.AddRow({HumanBytes(bound), FormatDouble(eager.total_benefit, 2),
                FormatDouble(lazy.total_benefit, 2),
                std::to_string(lazy.selected.size()),
                std::to_string(stats.refined) + "/" +
                    std::to_string(stats.candidates),
                match ? "yes" : "NO"});
  }
  out.Print();
  return outcome;
}

// ---------------------------------------------------------------------------
// Gate (b): rows sized on a 100+-candidate mixed-table workload.
// ---------------------------------------------------------------------------

struct RowsOutcome {
  size_t candidates = 0;
  uint64_t eager_rows = 0;
  uint64_t lazy_rows = 0;
  uint64_t lazy_coarse_rows = 0;
  size_t refined = 0;
  uint64_t nodes_visited = 0;
  uint64_t nodes_pruned = 0;
  double eager_seconds = 0.0;
  double lazy_seconds = 0.0;
  double eager_benefit = 0.0;
  double lazy_benefit = 0.0;
  uint64_t bound = 0;
};

RowsOutcome RunRowsGate() {
  constexpr size_t kNumTables = 6;
  constexpr uint64_t kRowsPerTable = 60000;
  Catalog catalog;
  std::vector<std::string> table_names;
  for (size_t t = 0; t < kNumTables; ++t) {
    const std::string name = "tab" + std::to_string(t);
    bench::CheckOk(
        catalog.AddTable(name, bench::CheckResult(
                                   GenerateTable(WorkloadColumns(),
                                                 kRowsPerTable, 31 + t),
                                   name.c_str())),
        name.c_str());
    table_names.push_back(name);
  }

  // 6 key sets x 4 schemes per table = 144 candidates. Benefits follow
  // the shape real workload-derived candidate sets have — a few clear
  // winners (indexes the workload actually hits) and a long mediocre
  // tail (AutoAdmin-style syntactic enumeration) — which is exactly what
  // makes most candidates prunable before precise costing.
  const std::vector<std::vector<std::string>> key_sets = {
      {"status"},         {"city"},           {"amount"},
      {"status", "city"}, {"city", "amount"}, {"status", "amount"}};
  const std::vector<CompressionType> schemes = {
      CompressionType::kNullSuppression, CompressionType::kDictionaryPage,
      CompressionType::kRle, CompressionType::kNone};
  Random benefit_rng(2026);
  std::vector<CandidateConfiguration> candidates;
  for (const std::string& tbl : table_names) {
    for (size_t k = 0; k < key_sets.size(); ++k) {
      for (CompressionType type : schemes) {
        CandidateConfiguration c;
        c.table_name = tbl;
        c.index = {tbl + ".ix" + std::to_string(k) + "_" +
                       CompressionTypeName(type),
                   key_sets[k],
                   /*clustered=*/false};
        c.scheme = CompressionScheme::Uniform(type);
        const bool winner = benefit_rng.NextDouble() < 0.2;
        c.benefit = winner ? 5.0 * std::pow(6.0, benefit_rng.NextDouble())
                           : 0.05 * std::pow(10.0, benefit_rng.NextDouble());
        candidates.push_back(std::move(c));
      }
    }
  }

  PrecisionTarget target;
  target.rel_error = kRelError;
  target.confidence = kConfidence;
  CatalogEstimationServiceOptions options;
  options.base.fraction = 0.005;
  options.num_threads = 0;  // hardware concurrency for the fan-outs

  // A scarce storage bound — the advisor's realistic regime: only a
  // handful of winners fit, so almost every candidate is settled by its
  // interval bounds alone (certainly does not fit, or pruned by the
  // benefit bound) and never gets a converged estimate. A generous bound
  // would make most of the tail genuinely selectable, and *any* correct
  // advisor would then have to size it.
  uint64_t total_uncompressed = 0;
  for (const std::string& tbl : table_names) {
    const Table& table =
        *bench::CheckResult(catalog.GetTable(tbl), "GetTable");
    for (const auto& keys : key_sets) {
      total_uncompressed += bench::CheckResult(
          EstimateUncompressedIndexBytes(table, {"ix", keys, false}),
          "uncompressed");
    }
  }
  const uint64_t bound = total_uncompressed / 40;

  CatalogEstimationService eager_service(catalog, options);
  bench::Timer eager_timer;
  AdaptiveBatchResult adaptive;
  const AdvisorRecommendation eager = bench::CheckResult(
      AdviseConfigurations(eager_service, candidates, bound, target,
                           AdvisorStrategy::kGreedy, &adaptive),
      "eager precision-targeted");
  const double eager_seconds = eager_timer.Seconds();

  CatalogEstimationService lazy_service(catalog, options);
  bench::Timer lazy_timer;
  LazyAdvisorStats stats;
  const AdvisorRecommendation lazy = bench::CheckResult(
      AdviseConfigurationsLazy(lazy_service, candidates, bound, target,
                               &stats),
      "lazy");
  const double lazy_seconds = lazy_timer.Seconds();

  RowsOutcome outcome;
  outcome.candidates = candidates.size();
  for (const AdaptiveCandidateResult& r : adaptive.candidates) {
    outcome.eager_rows += r.rows_sampled;
  }
  outcome.lazy_rows = stats.total_rows_sized;
  outcome.lazy_coarse_rows = stats.coarse_rows;
  outcome.refined = stats.refined;
  outcome.nodes_visited = stats.nodes_visited;
  outcome.nodes_pruned = stats.nodes_pruned;
  outcome.eager_seconds = eager_seconds;
  outcome.lazy_seconds = lazy_seconds;
  outcome.eager_benefit = eager.total_benefit;
  outcome.lazy_benefit = lazy.total_benefit;
  outcome.bound = bound;
  return outcome;
}

void Run() {
  bench::PrintHeader(
      "A-LAZY / lazy branch-and-bound advisor — size only what the search "
      "needs",
      "gate (a): lazy selections identical to eager-optimal on a tiered "
      "16-candidate, 2-table workload across 8 storage bounds; gate (b): "
      "strictly fewer total rows sized than the eager precision-targeted "
      "path on a 144-candidate, 6-table scarce-bound workload.");

  std::printf("gate (a): selection equality, %.3g rel. error at %.3g "
              "confidence\n\n",
              kRelError, kConfidence);
  const EqualityOutcome equality = RunEqualityGate();

  std::printf("\ngate (b): 144-candidate scarce-bound workload\n");
  const RowsOutcome rows = RunRowsGate();
  std::printf(
      "  bound %s; eager (greedy, precision-targeted): benefit %.2f, %llu "
      "rows sized, %.3f s\n"
      "  lazy: benefit %.2f, %llu rows sized (%llu coarse), %zu/%zu "
      "candidates refined, %llu nodes (%llu pruned), %.3f s\n"
      "  rows saved: %.2fx fewer\n",
      HumanBytes(rows.bound).c_str(), rows.eager_benefit,
      static_cast<unsigned long long>(rows.eager_rows), rows.eager_seconds,
      rows.lazy_benefit, static_cast<unsigned long long>(rows.lazy_rows),
      static_cast<unsigned long long>(rows.lazy_coarse_rows), rows.refined,
      rows.candidates,
      static_cast<unsigned long long>(rows.nodes_visited),
      static_cast<unsigned long long>(rows.nodes_pruned), rows.lazy_seconds,
      rows.lazy_rows > 0 ? static_cast<double>(rows.eager_rows) /
                               static_cast<double>(rows.lazy_rows)
                         : 0.0);

  bench::JsonEmitter json("advisor_lazy");
  json.AddDouble("target_rel_error", kRelError);
  json.AddDouble("confidence", kConfidence);
  json.AddInt("equality_bounds", static_cast<int64_t>(equality.bounds_probed));
  json.AddInt("equality_mismatches",
              static_cast<int64_t>(equality.mismatches));
  json.AddInt("equality_candidates",
              static_cast<int64_t>(equality.candidates));
  json.AddInt("rows_candidates", static_cast<int64_t>(rows.candidates));
  json.AddInt("rows_bound", static_cast<int64_t>(rows.bound));
  json.AddInt("eager_rows_sized", static_cast<int64_t>(rows.eager_rows));
  json.AddInt("lazy_rows_sized", static_cast<int64_t>(rows.lazy_rows));
  json.AddInt("lazy_coarse_rows",
              static_cast<int64_t>(rows.lazy_coarse_rows));
  json.AddInt("lazy_refined", static_cast<int64_t>(rows.refined));
  json.AddInt("lazy_nodes_visited",
              static_cast<int64_t>(rows.nodes_visited));
  json.AddInt("lazy_nodes_pruned", static_cast<int64_t>(rows.nodes_pruned));
  json.AddDouble("eager_seconds", rows.eager_seconds);
  json.AddDouble("lazy_seconds", rows.lazy_seconds);
  json.AddDouble("eager_benefit", rows.eager_benefit);
  json.AddDouble("lazy_benefit", rows.lazy_benefit);
  json.AddDouble("rows_saved_factor",
                 rows.lazy_rows > 0
                     ? static_cast<double>(rows.eager_rows) /
                           static_cast<double>(rows.lazy_rows)
                     : 0.0);
  json.Print();

  if (equality.mismatches != 0) {
    std::fprintf(stderr,
                 "FATAL: lazy selections diverge from eager-optimal on "
                 "%zu of %zu bounds\n",
                 equality.mismatches, equality.bounds_probed);
    std::exit(1);
  }
  if (rows.lazy_rows >= rows.eager_rows) {
    std::fprintf(stderr,
                 "FATAL: lazy sized %llu rows, not strictly fewer than the "
                 "eager path's %llu\n",
                 static_cast<unsigned long long>(rows.lazy_rows),
                 static_cast<unsigned long long>(rows.eager_rows));
    std::exit(1);
  }
}

}  // namespace
}  // namespace cfest

int main() { cfest::Run(); }
