// M2 — google-benchmark micro suite: sampler throughput and the SampleCF
// end-to-end latency at typical fractions.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/random.h"
#include "datagen/table_gen.h"
#include "estimator/sample_cf.h"
#include "sampling/sampler.h"

namespace cfest {
namespace {

std::unique_ptr<Table>& SharedTable() {
  static std::unique_ptr<Table> table = std::move(
      GenerateTable({ColumnSpec::String("a", 20, 1000,
                                        FrequencySpec::Uniform(),
                                        LengthSpec::Uniform(1, 16)),
                     ColumnSpec::Integer("b", 100)},
                    200000, 77))
                                            .ValueOrDie();
  return table;
}

std::unique_ptr<RowSampler> MakeSampler(int which) {
  switch (which) {
    case 0:
      return MakeUniformWithReplacementSampler();
    case 1:
      return MakeUniformWithoutReplacementSampler();
    case 2:
      return MakeBernoulliSampler();
    case 3:
      return MakeReservoirSampler();
    default:
      return MakeBlockSampler(0);
  }
}

const char* SamplerLabel(int which) {
  switch (which) {
    case 0:
      return "uniform_wr";
    case 1:
      return "uniform_wor";
    case 2:
      return "bernoulli";
    case 3:
      return "reservoir";
    default:
      return "block";
  }
}

void BM_SampleIds(benchmark::State& state) {
  const Table& table = *SharedTable();
  auto sampler = MakeSampler(static_cast<int>(state.range(0)));
  Random rng(5);
  for (auto _ : state) {
    auto ids = sampler->SampleIds(table, 0.01, &rng);
    benchmark::DoNotOptimize(ids);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2000);
  state.SetLabel(SamplerLabel(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_SampleIds)->DenseRange(0, 4);

void BM_MaterializeSamplePercent(benchmark::State& state) {
  const Table& table = *SharedTable();
  auto sampler = MakeUniformWithReplacementSampler();
  Random rng(7);
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto sample = sampler->Sample(table, fraction, &rng);
    benchmark::DoNotOptimize(sample);
  }
  state.SetLabel("f=" + std::to_string(state.range(0)) + "%");
}
BENCHMARK(BM_MaterializeSamplePercent)->Arg(1)->Arg(5)->Arg(10);

void BM_SampleCFEndToEnd(benchmark::State& state) {
  const Table& table = *SharedTable();
  const auto type = static_cast<CompressionType>(state.range(0));
  SampleCFOptions options;
  options.fraction = 0.01;
  Random rng(11);
  for (auto _ : state) {
    auto result = SampleCF(table, {"cx", {"a", "b"}, true},
                           CompressionScheme::Uniform(type), options, &rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(CompressionTypeName(type));
}
BENCHMARK(BM_SampleCFEndToEnd)
    ->Arg(static_cast<int>(CompressionType::kNullSuppression))
    ->Arg(static_cast<int>(CompressionType::kDictionaryPage))
    ->Arg(static_cast<int>(CompressionType::kDictionaryGlobal));

}  // namespace
}  // namespace cfest

BENCHMARK_MAIN();
