// E7 — Block-level vs uniform row sampling (the paper's second future-work
// axis: "commercial systems typically leverage block-level sampling ...
// extending the analysis to account for page sampling is part of future
// work").
//
// When values are correlated with their physical position (a clustered
// layout), a block sample sees far fewer distinct values per sampled row
// than a uniform row sample, so dictionary-compression estimates degrade;
// on a shuffled layout the two coincide. Null suppression, which only needs
// the length distribution, is robust either way.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "datagen/table_gen.h"
#include "estimator/evaluation.h"
#include "index/index.h"

namespace cfest {
namespace {

/// A table whose column values arrive either shuffled (independent of
/// position) or clustered (equal values adjacent, as in a freshly
/// bulk-loaded clustered index).
std::unique_ptr<Table> MakeLayout(uint64_t n, uint64_t d, bool clustered,
                                  uint64_t seed) {
  auto base = bench::CheckResult(
      GenerateTable({ColumnSpec::String("a", 20, d, FrequencySpec::Uniform(),
                                        LengthSpec::Uniform(1, 0))},
                    n, seed),
      "generate");
  if (!clustered) return base;
  // Clustered layout: materialize in sorted order.
  IndexBuildOptions build;
  build.keep_pages = false;
  Index index = bench::CheckResult(
      Index::Build(*base, {"cx", {"a"}, true}, build), "sort");
  TableBuilder builder(base->schema());
  builder.Reserve(n);
  for (uint64_t i = 0; i < index.num_rows(); ++i) {
    bench::CheckOk(builder.AppendEncoded(index.row(i)), "append");
  }
  return builder.Finish();
}

void Run() {
  bench::PrintHeader(
      "E7 / Block-level sampling vs uniform row sampling",
      "Paper future work: page/block sampling (what commercial systems "
      "ship).");

  const uint64_t n = 100000;
  const double f = 0.02;
  const uint32_t trials = 40;
  auto block_sampler = MakeBlockSampler(0);

  TablePrinter table({"compression", "d", "layout", "sampler", "CF (exact)",
                      "mean CF'", "E[ratio err]"});
  bench::Timer timer;
  for (CompressionType type : {CompressionType::kNullSuppression,
                               CompressionType::kDictionaryGlobal}) {
    for (uint64_t d : {100ull, 20000ull}) {
      for (bool clustered : {false, true}) {
        auto table_ptr = MakeLayout(n, d, clustered, 42 + d);
        for (const RowSampler* sampler :
             {static_cast<const RowSampler*>(nullptr),
              static_cast<const RowSampler*>(block_sampler.get())}) {
          EvaluationOptions options;
          options.fraction = f;
          options.trials = trials;
          options.sampler = sampler;
          EvaluationResult eval = bench::CheckResult(
              EvaluateSampleCF(*table_ptr, {"cx_a", {"a"}, true},
                               CompressionScheme::Uniform(type), options),
              "evaluate");
          table.AddRow({CompressionTypeName(type), std::to_string(d),
                        clustered ? "clustered" : "shuffled",
                        sampler == nullptr ? "uniform row" : "block",
                        FormatDouble(eval.truth.value),
                        FormatDouble(eval.estimate_summary.mean),
                        FormatDouble(eval.mean_ratio_error)});
        }
      }
    }
  }
  table.Print();
  std::printf(
      "\nShape: on shuffled layouts block and row sampling coincide. On "
      "clustered layouts the\ntwo diverge in opposite directions by "
      "technique: a block of adjacent rows reproduces the\nindex's *local* "
      "duplication, so block sampling sharply improves the dictionary "
      "estimate\n(the sample's d'/r finally matches the clustered d/n), "
      "while for null suppression the\nlength-position correlation makes "
      "block samples slightly noisier. This is why commercial\nsystems get "
      "away with block sampling — and why the paper flags its analysis as "
      "future work.\nelapsed %.1fs\n",
      timer.Seconds());
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
