// E4 — Theorem 3 (dictionary compression, large d): when d >= beta * n, the
// sample's distinct fraction d'/r is also Omega(1), so the expected ratio
// error of CF'_DC is bounded by a constant independent of n.
//
// Sweeps beta and f at two table sizes; reproduction holds if the error
// columns are bounded (< ~2) and roughly flat in n for each (beta, f).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "datagen/table_gen.h"
#include "estimator/evaluation.h"

namespace cfest {
namespace {

void Run() {
  bench::PrintHeader(
      "E4 / Theorem 3 — dictionary compression with large d = beta*n",
      "Paper: expected ratio error bounded by a constant when d = Omega(n).");

  const uint32_t trials = 40;
  TablePrinter table({"beta", "f", "n", "d", "CF (exact)", "mean CF'",
                      "E[ratio err]", "max err"});
  bench::Timer timer;
  for (double beta : {0.1, 0.25, 0.5, 1.0}) {
    for (double f : {0.01, 0.05, 0.10}) {
      for (uint64_t n : {50000ull, 200000ull}) {
        const uint64_t d =
            std::max<uint64_t>(1, static_cast<uint64_t>(beta * n));
        auto table_ptr = bench::CheckResult(
            GenerateTable({ColumnSpec::String("a", 20, d,
                                              FrequencySpec::Uniform(),
                                              LengthSpec::Full())},
                          n, 500 + static_cast<uint64_t>(beta * 100)),
            "generate");
        EvaluationOptions options;
        options.fraction = f;
        options.trials = trials;
        EvaluationResult eval = bench::CheckResult(
            EvaluateSampleCF(*table_ptr, {"cx_a", {"a"}, true},
                             CompressionScheme::Uniform(
                                 CompressionType::kDictionaryGlobal),
                             options),
            "evaluate");
        table.AddRow({FormatDouble(beta, 2), FormatDouble(f, 2),
                      std::to_string(n), std::to_string(d),
                      FormatDouble(eval.truth.value),
                      FormatDouble(eval.estimate_summary.mean),
                      FormatDouble(eval.mean_ratio_error),
                      FormatDouble(eval.max_ratio_error)});
      }
    }
  }
  table.Print();
  std::printf(
      "\ntrials = %u, global-dictionary model (p = 4, k = 20). elapsed "
      "%.1fs\n",
      trials, timer.Seconds());
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
