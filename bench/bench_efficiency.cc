// E10 — Efficiency: the estimator's reason to exist. "The naive method of
// actually building and compressing the index ... while highly accurate is
// prohibitively inefficient" (paper §I). Measures wall-clock for the exact
// path vs SampleCF at f = 1% across table sizes and schemes, with the
// accuracy obtained.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "common/stats.h"
#include "datagen/table_gen.h"
#include "estimator/compression_fraction.h"
#include "estimator/sample_cf.h"

namespace cfest {
namespace {

void Run() {
  bench::PrintHeader(
      "E10 / Efficiency — SampleCF vs full build-and-compress",
      "Paper §I: exact measurement is prohibitively inefficient; sampling is "
      "the point.");

  TablePrinter table({"n", "scheme", "exact CF", "exact time", "CF' (1%)",
                      "SampleCF time", "speedup", "ratio err"});
  bench::Timer total;
  for (uint64_t n : {10000ull, 100000ull, 1000000ull}) {
    auto table_ptr = bench::CheckResult(
        GenerateTable({ColumnSpec::String("a", 20, n / 10,
                                          FrequencySpec::Uniform(),
                                          LengthSpec::Uniform(1, 0)),
                       ColumnSpec::Integer("b", 1000)},
                      n, n),
        "generate");
    for (CompressionType scheme : {CompressionType::kNullSuppression,
                                   CompressionType::kDictionaryPage}) {
      IndexDescriptor desc{"cx", {"a", "b"}, true};
      bench::Timer exact_timer;
      CompressionFraction truth = bench::CheckResult(
          ComputeTrueCF(*table_ptr, desc, CompressionScheme::Uniform(scheme)),
          "truth");
      const double exact_seconds = exact_timer.Seconds();

      SampleCFOptions options;
      options.fraction = 0.01;
      Random rng(5);
      bench::Timer sample_timer;
      SampleCFResult estimate = bench::CheckResult(
          SampleCF(*table_ptr, desc, CompressionScheme::Uniform(scheme),
                   options, &rng),
          "samplecf");
      const double sample_seconds = sample_timer.Seconds();

      table.AddRow(
          {std::to_string(n), CompressionTypeName(scheme),
           FormatDouble(truth.value), FormatDouble(exact_seconds, 3) + "s",
           FormatDouble(estimate.cf.value),
           FormatDouble(sample_seconds, 3) + "s",
           FormatDouble(exact_seconds / sample_seconds, 1) + "x",
           FormatDouble(RatioError(truth.value, estimate.cf.value))});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: speedup grows roughly linearly in n (the estimator "
      "touches f*n rows)\nwhile the ratio error stays near 1. elapsed "
      "%.1fs\n",
      total.Seconds());
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
