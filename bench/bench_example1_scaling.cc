// E2 — Example 1 scaling: the paper's Example 1 takes n = 100M rows and a
// 1% sample (r = 1M) and concludes sigma(CF'_NS) <= 1/2000. The full
// population does not fit a laptop-scale run, so this experiment scales n
// and verifies the sigma ~ 1/(2 sqrt(r)) law it instantiates: each 10x in n
// (at fixed f) shrinks the bound by sqrt(10), and the measured stddev stays
// under the bound at every scale. Extrapolation to the paper's n is printed.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "datagen/table_gen.h"
#include "estimator/analytic_model.h"
#include "estimator/evaluation.h"

namespace cfest {
namespace {

void Run() {
  bench::PrintHeader(
      "E2 / Example 1 — sigma(CF'_NS) at a 1% sample shrinks as 1/(2*sqrt(r))",
      "Paper: n = 100M, r = 1M (1%) => sigma <= 1/2000 = 0.0005.");

  const double f = 0.01;
  const uint32_t trials = 100;
  TablePrinter table({"n", "r", "CF (exact)", "mean CF'", "stddev",
                      "bound", "stddev/bound"});
  bench::Timer timer;
  for (uint64_t n : {10000ull, 100000ull, 1000000ull}) {
    auto table_ptr = bench::CheckResult(
        GenerateTable({ColumnSpec::String("a", 20, 2000,
                                          FrequencySpec::Uniform(),
                                          LengthSpec::Uniform(1, 0))},
                      n, 7),
        "generate");
    EvaluationOptions options;
    options.fraction = f;
    options.trials = trials;
    EvaluationResult eval = bench::CheckResult(
        EvaluateSampleCF(
            *table_ptr, {"cx_a", {"a"}, true},
            CompressionScheme::Uniform(CompressionType::kNullSuppression),
            options),
        "evaluate");
    const double bound = eval.theorem1_bound;
    table.AddRow({std::to_string(n),
                  std::to_string(static_cast<uint64_t>(eval.mean_sample_rows)),
                  FormatDouble(eval.truth.value),
                  FormatDouble(eval.estimate_summary.mean),
                  FormatDouble(eval.estimate_summary.stddev, 6),
                  FormatDouble(bound, 6),
                  FormatDouble(eval.estimate_summary.stddev / bound, 3)});
  }
  table.Print();
  std::printf(
      "\nExtrapolation (sigma <= 1/(2*sqrt(0.01*n))): n = 100M => bound = "
      "%.6f, the paper's 1/2000.\nelapsed %.1fs\n",
      1.0 / (2.0 * std::sqrt(0.01 * 1e8)), timer.Seconds());
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
