// E6 — Paging effects in dictionary compression (the axis the paper's
// simplified model deliberately ignores, flagged as future work in its
// conclusions).
//
// Compares the page-level dictionary compressor (inline per-page
// dictionaries, bit-packed ceil(log2 d_page) pointers, real Pg(i)
// materialization) against the simplified global model, across value skew,
// d, and page size — and measures how well SampleCF tracks the *paged*
// ground truth that commercial systems actually exhibit.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/bit_util.h"
#include "common/format.h"
#include "datagen/table_gen.h"
#include "estimator/analytic_model.h"
#include "estimator/evaluation.h"

namespace cfest {
namespace {

void Run() {
  bench::PrintHeader(
      "E6 / Paging effects — page-level vs global dictionary model",
      "Paper future work: 'extend our analysis to model paging effects in "
      "dictionary compression'.");

  const uint64_t n = 100000;
  TablePrinter table({"d", "freq", "page", "CF paged (exact)",
                      "CF global (exact)", "sumPg/d", "SampleCF E[err] on "
                      "paged",
                      "analytic paged CF (log2(d)-bit ptrs)"});
  bench::Timer timer;
  for (uint64_t d : {10ull, 100ull, 1000ull, 10000ull}) {
    for (const char* freq_label : {"uniform", "zipf(1)"}) {
      const bool zipf = std::string(freq_label) == "zipf(1)";
      auto table_ptr = bench::CheckResult(
          GenerateTable(
              {ColumnSpec::String("a", 20, d,
                                  zipf ? FrequencySpec::Zipf(1.0)
                                       : FrequencySpec::Uniform(),
                                  LengthSpec::Full())},
              n, 2000 + d),
          "generate");
      for (size_t page_size : {2048ull, 8192ull}) {
        IndexBuildOptions build;
        build.page_size = page_size;
        build.keep_pages = false;

        // Exact paged and global CFs (data-bytes metric).
        Index index = bench::CheckResult(
            Index::Build(*table_ptr, {"cx_a", {"a"}, true}, build), "index");
        CompressedIndex paged = bench::CheckResult(
            index.Compress(
                CompressionScheme::Uniform(CompressionType::kDictionaryPage),
                build),
            "paged");
        CompressedIndex global = bench::CheckResult(
            index.Compress(
                CompressionScheme::Uniform(
                    CompressionType::kDictionaryGlobal),
                build),
            "global");
        const double uncompressed =
            static_cast<double>(index.stats().row_data_bytes);
        const double cf_paged =
            static_cast<double>(paged.stats().chunk_bytes) / uncompressed;
        const double cf_global =
            static_cast<double>(global.stats().chunk_bytes +
                                global.stats().aux_bytes) /
            uncompressed;
        const double inflation =
            static_cast<double>(paged.stats().dictionary_entries) /
            static_cast<double>(d);

        // How well does SampleCF track the paged ground truth?
        EvaluationOptions options;
        options.fraction = 0.05;
        options.trials = 20;
        options.build = build;
        EvaluationResult eval = bench::CheckResult(
            EvaluateSampleCF(
                *table_ptr, {"cx_a", {"a"}, true},
                CompressionScheme::Uniform(CompressionType::kDictionaryPage),
                options),
            "evaluate");

        // Closed-form paged model using the measured sum Pg(i).
        ColumnPopulationStats stats;
        stats.n = n;
        stats.d = d;
        stats.k = 20;
        const double analytic = AnalyticPagedDictCF(
            stats, static_cast<double>(BitsFor(d)),
            paged.stats().dictionary_entries);

        table.AddRow({std::to_string(d), freq_label,
                      std::to_string(page_size), FormatDouble(cf_paged),
                      FormatDouble(cf_global), FormatDouble(inflation, 2),
                      FormatDouble(eval.mean_ratio_error),
                      FormatDouble(analytic)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nsumPg/d > 1 quantifies the paging penalty the simplified model "
      "ignores; it grows\nwith d (dictionary repeated per page) and shrinks "
      "with page size. elapsed %.1fs\n",
      timer.Seconds());
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
