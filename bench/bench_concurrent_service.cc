// E-CONC — the estimation service under concurrent fire.
//
// N client threads hammer a 2-table catalog with a shared candidate
// workload while an append thread streams rows into "orders". Three gates:
//
//   (a) Request sharing: the computed (coalescer-admitted) work per
//       delivered estimate at 8 client threads is >= 2.5x lower than the
//       single-client baseline (appends streaming in both phases) —
//       concurrent batches asking for the same (candidate, epoch) merge
//       in the request coalescer, so eight clients' demand costs roughly
//       one client's compute. Wall-clock scaling is reported too, but
//       only informationally: on a loaded single-core host the ratio of
//       two noisy timings cannot carry a hard gate, while the admitted
//       request counts are structural.
//   (b) The coalescer deduplicates >= 50% of the shared-candidate
//       workload's requests (duplicates inside a batch are admitted before
//       any fan-out starts, so this floor is structural, not a race).
//   (c) Every estimate a client produced against a pinned epoch mid-stream
//       is bit-identical to a quiesced replay against the SAME epoch after
//       all writers stop — estimates are pure functions of the epoch.

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "datagen/table_gen.h"
#include "estimator/engine.h"
#include "estimator/epoch.h"
#include "estimator/service.h"
#include "storage/catalog.h"

namespace cfest {
namespace {

constexpr double kFraction = 0.06;
constexpr int kClients = 8;
constexpr int kRounds = 32;
constexpr uint64_t kAppendBatch = 400;
constexpr std::chrono::milliseconds kAppendPause{25};

std::unique_ptr<Table> GenerateOrders() {
  std::vector<ColumnSpec> specs = {
      ColumnSpec::Integer("o_key", 900, FrequencySpec::Zipf(0.9)),
      ColumnSpec::String("o_status", 24, 8, FrequencySpec::Zipf(1.0),
                         LengthSpec::Uniform(4, 12)),
      ColumnSpec::String("o_city", 32, 400, FrequencySpec::Uniform(),
                         LengthSpec::Uniform(6, 20)),
      ColumnSpec::Integer("o_amount", 50000, FrequencySpec::Uniform())};
  return bench::CheckResult(GenerateTable(specs, 100000, 7), "orders");
}

std::unique_ptr<Table> GenerateLineitem() {
  std::vector<ColumnSpec> specs = {
      ColumnSpec::Integer("l_partkey", 2000, FrequencySpec::Zipf(0.8)),
      ColumnSpec::String("l_shipmode", 24, 7, FrequencySpec::Uniform(),
                         LengthSpec::Uniform(3, 10)),
      ColumnSpec::Integer("l_quantity", 50, FrequencySpec::Uniform())};
  return bench::CheckResult(GenerateTable(specs, 120000, 11), "lineitem");
}

/// The shared-candidate workload: 12 structurally distinct candidates
/// across both tables, each listed 3 times under different cosmetic names
/// and benefits (overlapping advisor enumerations produce exactly this
/// shape). Structural triplicates merge in the coalescer; the cosmetic
/// differences exercise per-caller config re-stamping.
std::vector<CandidateConfiguration> SharedWorkload() {
  struct Spec {
    const char* table;
    const char* column;
    CompressionType type;
  };
  const Spec specs[] = {
      {"orders", "o_status", CompressionType::kDictionaryPage},
      {"orders", "o_status", CompressionType::kRle},
      {"orders", "o_city", CompressionType::kDictionaryPage},
      {"orders", "o_city", CompressionType::kPrefix},
      {"orders", "o_key", CompressionType::kFrameOfReference},
      {"orders", "o_amount", CompressionType::kNullSuppression},
      {"lineitem", "l_shipmode", CompressionType::kDictionaryPage},
      {"lineitem", "l_shipmode", CompressionType::kRle},
      {"lineitem", "l_partkey", CompressionType::kDictionaryGlobal},
      {"lineitem", "l_partkey", CompressionType::kNullSuppression},
      {"lineitem", "l_quantity", CompressionType::kRle},
      {"lineitem", "l_quantity", CompressionType::kFrameOfReference}};
  std::vector<CandidateConfiguration> candidates;
  for (int copy = 0; copy < 3; ++copy) {
    int k = 0;
    for (const Spec& s : specs) {
      CandidateConfiguration c;
      c.table_name = s.table;
      c.index = {"ix_" + std::to_string(copy) + "_" + std::to_string(k++),
                 {s.column},
                 false};
      c.scheme = CompressionScheme::Uniform(s.type);
      c.benefit = 1.0 + copy;  // differs per copy: keys must ignore it
      candidates.push_back(std::move(c));
    }
  }
  return candidates;
}

std::vector<Row> DeltaRows(const Table& source, uint64_t delta) {
  std::vector<Row> rows;
  rows.reserve(delta);
  for (RowId id = 0; id < delta; ++id) {
    rows.push_back(bench::CheckResult(source.DecodeRow(id % source.num_rows()),
                                      "decode"));
  }
  return rows;
}

/// One mid-stream estimate kept together with the epoch it was pinned to,
/// for the quiesced replay.
struct PinnedEstimate {
  std::shared_ptr<const SampleEpoch> epoch;
  size_t candidate = 0;
  SizedCandidate sized;
};

struct PhaseResult {
  double seconds = 0.0;
  uint64_t delivered = 0;
  CatalogEstimationService::Stats stats;
  std::vector<PinnedEstimate> pinned;
};

/// Runs `clients` threads for kRounds barrier-synchronized rounds of
/// EstimateAll over `candidates` while an appender streams rows into
/// "orders". Each client also pins an epoch per round and estimates one
/// orders candidate directly, keeping the pin for the replay gate.
PhaseResult RunPhase(const Catalog& catalog, Catalog& mutable_catalog,
                     const std::vector<CandidateConfiguration>& candidates,
                     int clients) {
  CatalogEstimationServiceOptions options;
  options.base.fraction = kFraction;
  options.maintain_reservoirs = true;
  CatalogEstimationService service(catalog, options);

  // Warm-up: first draws + first index builds happen before the clock
  // starts, so both phases measure steady-state estimation.
  bench::CheckResult(service.EstimateAll(candidates), "warm-up");
  EstimationEngine* orders_engine =
      bench::CheckResult(service.Engine("orders"), "orders engine");

  std::vector<size_t> orders_ix;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].table_name == "orders") orders_ix.push_back(i);
  }

  const Table* orders =
      bench::CheckResult(catalog.GetTable("orders"), "orders table");
  const std::vector<Row> delta = DeltaRows(*orders, kAppendBatch);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::thread appender([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto range = mutable_catalog.AppendRows("orders", delta);
      if (!range.ok() || !service.NotifyAppend("orders", *range).ok()) {
        ++failures;
        return;
      }
      std::this_thread::sleep_for(kAppendPause);
    }
  });

  std::barrier sync(clients);
  std::vector<std::vector<PinnedEstimate>> per_client(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  bench::Timer timer;
  for (int id = 0; id < clients; ++id) {
    workers.emplace_back([&, id] {
      for (int round = 0; round < kRounds; ++round) {
        // All clients fire together: concurrent identical batches are the
        // workload the coalescer exists for. A failed round records and
        // keeps arriving at the barrier — an early return would strand the
        // other clients.
        sync.arrive_and_wait();
        auto batch = service.EstimateAll(candidates);
        if (!batch.ok() || batch->size() != candidates.size()) {
          ++failures;
          continue;
        }
        auto epoch = orders_engine->PinEpoch();
        if (!epoch.ok()) {
          ++failures;
          continue;
        }
        const size_t c = orders_ix[(id + round) % orders_ix.size()];
        auto sized = orders_engine->EstimateAt(**epoch, candidates[c]);
        if (!sized.ok()) {
          ++failures;
          continue;
        }
        per_client[id].push_back(PinnedEstimate{*epoch, c, *sized});
      }
    });
  }
  for (std::thread& t : workers) t.join();
  PhaseResult result;
  result.seconds = timer.Seconds();
  stop.store(true, std::memory_order_relaxed);
  appender.join();
  if (failures.load() != 0) {
    std::fprintf(stderr, "FATAL: %llu thread failures during phase\n",
                 static_cast<unsigned long long>(failures.load()));
    std::exit(1);
  }

  result.delivered = static_cast<uint64_t>(clients) * kRounds *
                     candidates.size();
  result.stats = service.stats();
  for (auto& pins : per_client) {
    for (PinnedEstimate& p : pins) result.pinned.push_back(std::move(p));
  }

  // Gate (c): quiesced replay. The same epoch object must reproduce every
  // mid-stream estimate bit for bit, however far the table has grown since.
  uint64_t mismatches = 0;
  for (const PinnedEstimate& p : result.pinned) {
    const SizedCandidate replay = bench::CheckResult(
        orders_engine->EstimateAt(*p.epoch, candidates[p.candidate]),
        "replay");
    if (replay.estimated_cf != p.sized.estimated_cf ||
        replay.estimated_bytes != p.sized.estimated_bytes ||
        replay.uncompressed_bytes != p.sized.uncompressed_bytes ||
        replay.sample_rows != p.sized.sample_rows) {
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FATAL: %llu/%zu pinned estimates diverge from their "
                 "quiesced replay\n",
                 static_cast<unsigned long long>(mismatches),
                 result.pinned.size());
    std::exit(1);
  }
  return result;
}

void Run() {
  bench::PrintHeader(
      "E-CONC / Concurrent estimation service",
      "8 clients + streaming appends: coalesced batches scale aggregate "
      "throughput, estimates stay bit-identical per pinned epoch.");

  Catalog catalog;
  bench::CheckOk(catalog.AddTable("orders", GenerateOrders()), "orders");
  bench::CheckOk(catalog.AddTable("lineitem", GenerateLineitem()),
                 "lineitem");
  const std::vector<CandidateConfiguration> candidates = SharedWorkload();

  const PhaseResult single = RunPhase(catalog, catalog, candidates, 1);
  const PhaseResult multi = RunPhase(catalog, catalog, candidates, kClients);

  const double throughput_1 =
      single.seconds > 0 ? single.delivered / single.seconds : 0.0;
  const double throughput_n =
      multi.seconds > 0 ? multi.delivered / multi.seconds : 0.0;
  const double scaling = throughput_1 > 0 ? throughput_n / throughput_1 : 0.0;
  // Computed estimates per delivered estimate, per phase: the structural
  // measure of coalescer sharing (immune to host-load timing noise).
  const double work_1 =
      single.delivered > 0
          ? static_cast<double>(single.stats.coalesce_admitted) /
                static_cast<double>(single.delivered)
          : 0.0;
  const double work_n =
      multi.delivered > 0
          ? static_cast<double>(multi.stats.coalesce_admitted) /
                static_cast<double>(multi.delivered)
          : 0.0;
  const double sharing = work_n > 0 ? work_1 / work_n : 0.0;
  const uint64_t requests = multi.stats.coalesce_requests;
  const double dedup_rate =
      requests > 0
          ? static_cast<double>(multi.stats.coalesce_merged) / requests
          : 0.0;

  TablePrinter out({"phase", "wall-clock", "estimates", "est/s",
                    "coalesce merged/requests", "locked pins"});
  out.AddRow({"1 client + appends", FormatDouble(single.seconds, 3) + " s",
              std::to_string(single.delivered), FormatDouble(throughput_1, 1),
              std::to_string(single.stats.coalesce_merged) + "/" +
                  std::to_string(single.stats.coalesce_requests),
              std::to_string(single.stats.locked_pins)});
  out.AddRow({std::to_string(kClients) + " clients + appends",
              FormatDouble(multi.seconds, 3) + " s",
              std::to_string(multi.delivered), FormatDouble(throughput_n, 1),
              std::to_string(multi.stats.coalesce_merged) + "/" +
                  std::to_string(multi.stats.coalesce_requests),
              std::to_string(multi.stats.locked_pins)});
  out.Print();
  std::printf(
      "\nsharing %.2fx (gate >= 2.5x); scaling %.2fx (informational); "
      "dedup %.1f%% (gate >= 50%%); "
      "%zu pinned estimates replayed bit-identical; epochs published %llu\n",
      sharing, scaling, 100.0 * dedup_rate, multi.pinned.size(),
      static_cast<unsigned long long>(multi.stats.epochs_published));

  bench::JsonEmitter json("concurrent_service");
  json.AddInt("clients", kClients);
  json.AddInt("rounds", kRounds);
  json.AddInt("batch_candidates", static_cast<int64_t>(candidates.size()));
  json.AddDouble("fraction", kFraction);
  json.AddDouble("single_seconds", single.seconds);
  json.AddDouble("multi_seconds", multi.seconds);
  json.AddDouble("throughput_single", throughput_1);
  json.AddDouble("throughput_multi", throughput_n);
  json.AddDouble("scaling", scaling);
  json.AddDouble("sharing", sharing);
  json.AddDouble("dedup_rate", dedup_rate);
  json.AddInt("coalesce_requests", static_cast<int64_t>(requests));
  json.AddInt("coalesce_admitted",
              static_cast<int64_t>(multi.stats.coalesce_admitted));
  json.AddInt("coalesce_merged",
              static_cast<int64_t>(multi.stats.coalesce_merged));
  json.AddInt("replayed_estimates", static_cast<int64_t>(multi.pinned.size()));
  json.AddInt("replay_mismatches", 0);  // RunPhase aborts on any mismatch
  json.AddInt("locked_pins", static_cast<int64_t>(multi.stats.locked_pins));
  json.AddInt("lock_free_pins",
              static_cast<int64_t>(multi.stats.lock_free_pins));
  json.AddInt("epochs_published",
              static_cast<int64_t>(multi.stats.epochs_published));
  json.Print();

  if (sharing < 2.5) {
    std::fprintf(stderr,
                 "FATAL: admitted-work sharing %.2fx < 2.5x gate\n",
                 sharing);
    std::exit(1);
  }
  if (dedup_rate < 0.5) {
    std::fprintf(stderr, "FATAL: coalescer dedup rate %.1f%% < 50%% gate\n",
                 100.0 * dedup_rate);
    std::exit(1);
  }
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
