// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Shared helpers for the experiment binaries. Each binary regenerates one
// paper artifact (theorem, table, or motivated evaluation) and prints rows
// through TablePrinter; EXPERIMENTS.md records paper-vs-measured.

#ifndef CFEST_BENCH_BENCH_UTIL_H_
#define CFEST_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/format.h"
#include "common/json_writer.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"

namespace cfest {
namespace bench {

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("=============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("=============================================================\n");
}

/// Aborts the binary with a readable message if a Status is not OK. The
/// experiment binaries are straight-line programs; failing fast is correct.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL [%s]: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).ValueOrDie();
}

/// Machine-readable result line alongside the human tables — the shared
/// one-object writer from common/json_writer.h, extended so every bench
/// artifact carries the process's metric-registry snapshot: Print()
/// appends a "metrics" object (counters/gauges/histograms at print time)
/// to the emitted line without touching the bench's own fields. Benches
/// that emit several lines get a snapshot per line — each reflects the
/// registry at that emission, which is exactly the timeline a scraper
/// wants.
class JsonEmitter : public ::cfest::JsonWriter {
 public:
  using ::cfest::JsonWriter::JsonWriter;

  /// Nested emitters are plain objects (only the top-level Print carries
  /// the snapshot), so arrays of them slice down to the base writer.
  using ::cfest::JsonWriter::AddObjectArray;
  void AddObjectArray(const std::string& key,
                      const std::vector<JsonEmitter>& values) {
    const std::vector<::cfest::JsonWriter> base(values.begin(), values.end());
    ::cfest::JsonWriter::AddObjectArray(key, base);
  }

  void Print() const {
    JsonWriter with_metrics = *this;
    with_metrics.AddObject(
        "metrics",
        metrics::MetricRegistry::Global().Snapshot().ToJsonWriter());
    with_metrics.Print();
  }
};

}  // namespace bench
}  // namespace cfest

#endif  // CFEST_BENCH_BENCH_UTIL_H_
