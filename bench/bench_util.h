// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Shared helpers for the experiment binaries. Each binary regenerates one
// paper artifact (theorem, table, or motivated evaluation) and prints rows
// through TablePrinter; EXPERIMENTS.md records paper-vs-measured.

#ifndef CFEST_BENCH_BENCH_UTIL_H_
#define CFEST_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/format.h"
#include "common/result.h"
#include "common/status.h"

namespace cfest {
namespace bench {

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("=============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("=============================================================\n");
}

/// Aborts the binary with a readable message if a Status is not OK. The
/// experiment binaries are straight-line programs; failing fast is correct.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL [%s]: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).ValueOrDie();
}

/// Machine-readable result line alongside the human tables: collects
/// key/value pairs and prints one flat JSON object, so CI and notebooks can
/// scrape bench output without parsing TablePrinter columns.
class JsonEmitter {
 public:
  explicit JsonEmitter(std::string experiment) {
    AddString("experiment", std::move(experiment));
  }

  void AddString(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + Escape(value) + "\"");
  }
  void AddDouble(const std::string& key, double value) {
    if (!std::isfinite(value)) {
      // JSON has no nan/inf literals; null keeps the line parseable.
      fields_.emplace_back(key, "null");
      return;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    fields_.emplace_back(key, buffer);
  }
  void AddInt(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void AddBool(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + Escape(fields_[i].first) + "\":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

  /// Prints the object on its own line, prefixed so it is easy to grep.
  void Print() const { std::printf("JSON %s\n", ToString().c_str()); }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      const unsigned char u = static_cast<unsigned char>(c);
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (u < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x", u);
        out += buffer;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace bench
}  // namespace cfest

#endif  // CFEST_BENCH_BENCH_UTIL_H_
