// A2 — sampler ablation: the paper analyses uniform sampling *with
// replacement*; real systems use without-replacement, Bernoulli, reservoir,
// or block sampling. This experiment quantifies how much the choice moves
// the estimator's bias/spread/ratio error at the same expected sample size.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "datagen/table_gen.h"
#include "estimator/evaluation.h"

namespace cfest {
namespace {

void Run() {
  bench::PrintHeader(
      "A2 / Sampler ablation — WR (paper) vs WOR vs Bernoulli vs reservoir",
      "Same f, same estimator; only the sampling design changes.");

  const uint64_t n = 100000;
  const double f = 0.02;
  const uint32_t trials = 60;

  struct SamplerCase {
    const char* label;
    std::unique_ptr<RowSampler> sampler;  // null = WR default
  };
  std::vector<SamplerCase> samplers;
  samplers.push_back({"uniform WR (paper)", nullptr});
  samplers.push_back({"uniform WOR", MakeUniformWithoutReplacementSampler()});
  samplers.push_back({"bernoulli", MakeBernoulliSampler()});
  samplers.push_back({"reservoir", MakeReservoirSampler()});
  samplers.push_back({"stratified x16", MakeStratifiedSampler(16)});

  TablePrinter table({"compression", "d", "sampler", "bias", "stddev",
                      "E[ratio err]"});
  bench::Timer timer;
  for (CompressionType type : {CompressionType::kNullSuppression,
                               CompressionType::kDictionaryGlobal}) {
    for (uint64_t d : {200ull, 50000ull}) {
      auto data = bench::CheckResult(
          GenerateTable({ColumnSpec::String("a", 20, d,
                                            FrequencySpec::Uniform(),
                                            LengthSpec::Uniform(1, 0))},
                        n, 3 + d),
          "generate");
      for (const SamplerCase& sampler_case : samplers) {
        EvaluationOptions options;
        options.fraction = f;
        options.trials = trials;
        options.sampler = sampler_case.sampler.get();
        EvaluationResult eval = bench::CheckResult(
            EvaluateSampleCF(*data, {"cx_a", {"a"}, true},
                             CompressionScheme::Uniform(type), options),
            "evaluate");
        table.AddRow({CompressionTypeName(type), std::to_string(d),
                      sampler_case.label, FormatDouble(eval.bias, 5),
                      FormatDouble(eval.estimate_summary.stddev, 5),
                      FormatDouble(eval.mean_ratio_error)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nn = %llu, f = %.2f, %u trials. Expected: all four designs are "
      "interchangeable for NS\n(Theorem 1 needs only per-draw uniformity); "
      "for dictionary at large d, WOR/reservoir see\nslightly more distinct "
      "values than WR (no collisions), nudging CF' up. elapsed %.1fs\n",
      static_cast<unsigned long long>(n), f, trials, timer.Seconds());
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
