// E8 — SampleCF accuracy on the warehouse workload the paper's introduction
// motivates: TPC-H(-like) tables, one index per interesting column, all
// compression schemes, a 1% sample.
//
// Prints one row per (table, column, scheme): exact CF, mean estimate, and
// the expected ratio error over trials. Reproduction holds if errors are
// small for NS everywhere and for dictionary compression on both the
// low-cardinality categorical columns (Theorem 2 regime) and the near-unique
// columns (Theorem 3 regime).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "datagen/tpch/tables.h"
#include "estimator/evaluation.h"

namespace cfest {
namespace {

void Run() {
  bench::PrintHeader(
      "E8 / TPC-H — estimation accuracy across schema and schemes, f = 1%",
      "The intro's physical-design scenario: estimate compressed index sizes "
      "on warehouse data.");

  tpch::TpchOptions tpch_options;
  tpch_options.scale_factor = 0.01;  // lineitem: 60k rows
  bench::Timer gen_timer;
  auto catalog = bench::CheckResult(tpch::GenerateCatalog(tpch_options),
                                    "generate catalog");
  std::printf("generated TPC-H sf=%.2f in %.1fs\n\n",
              tpch_options.scale_factor, gen_timer.Seconds());

  struct Target {
    const char* table;
    const char* column;
  };
  const std::vector<Target> targets = {
      {"lineitem", "l_shipmode"},   {"lineitem", "l_shipinstruct"},
      {"lineitem", "l_comment"},    {"lineitem", "l_partkey"},
      {"orders", "o_orderpriority"}, {"orders", "o_clerk"},
      {"orders", "o_comment"},      {"part", "p_brand"},
      {"part", "p_type"},           {"customer", "c_mktsegment"},
      {"customer", "c_phone"},      {"supplier", "s_name"},
  };
  const std::vector<CompressionType> schemes = {
      CompressionType::kNullSuppression, CompressionType::kDictionaryPage,
      CompressionType::kDictionaryGlobal};

  TablePrinter table({"index on", "scheme", "CF (exact)", "mean CF'",
                      "E[ratio err]", "max err"});
  bench::Timer timer;
  for (const Target& target : targets) {
    const Table& t = *bench::CheckResult(catalog->GetTable(target.table),
                                         "lookup");
    for (CompressionType scheme : schemes) {
      EvaluationOptions options;
      options.fraction = 0.01;
      options.trials = 20;
      EvaluationResult eval = bench::CheckResult(
          EvaluateSampleCF(
              t, {"ix", {target.column}, /*clustered=*/false},
              CompressionScheme::Uniform(scheme), options),
          "evaluate");
      table.AddRow({std::string(target.table) + "." + target.column,
                    CompressionTypeName(scheme),
                    FormatDouble(eval.truth.value),
                    FormatDouble(eval.estimate_summary.mean),
                    FormatDouble(eval.mean_ratio_error),
                    FormatDouble(eval.max_ratio_error)});
    }
  }
  table.Print();
  std::printf("\nnon-clustered indexes (key + 8-byte rid), f = 1%%, 20 "
              "trials each. elapsed %.1fs\n",
              timer.Seconds());
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
