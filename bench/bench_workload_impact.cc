// E11 — workload impact of compression (the paper's second motivating
// question, §I): "While data compression does yield significant benefits in
// the form of reduced storage costs and reduced I/O there is a substantial
// CPU cost to be paid in decompressing the data. Thus the decision as to
// when to use compression needs to be taken judiciously."
//
// Sweeps query selectivity and the CPU/IO cost ratio and locates the
// crossover where a compressed index stops being the cheaper plan — the
// judgment call the estimator exists to inform. Sizes come from SampleCF
// estimates (1% sample), not full builds.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "advisor/cost_model.h"
#include "advisor/what_if.h"
#include "common/format.h"
#include "datagen/table_gen.h"

namespace cfest {
namespace {

void Run() {
  bench::PrintHeader(
      "E11 / Workload impact — when is compressing the index worth it?",
      "Paper §I: compression saves I/O but costs decompression CPU; the call "
      "must be judicious.");

  const uint64_t n = 200000;
  auto table = bench::CheckResult(
      GenerateTable({ColumnSpec::Integer("k", 0),
                     ColumnSpec::String("payload", 40, 2000,
                                        FrequencySpec::Zipf(1.0),
                                        LengthSpec::Uniform(4, 30))},
                    n, 77),
      "generate");

  // Size both physical variants from 1% samples.
  SampleCFOptions options;
  options.fraction = 0.01;
  Random rng(5);
  CandidateConfiguration uncompressed_config;
  uncompressed_config.table_name = "t";
  uncompressed_config.index = {"cx", {"k"}, /*clustered=*/true};
  uncompressed_config.scheme =
      CompressionScheme::Uniform(CompressionType::kNone);
  CandidateConfiguration compressed_config = uncompressed_config;
  compressed_config.scheme =
      CompressionScheme::Uniform(CompressionType::kPrefixDictionary);

  SizedCandidate uncompressed = bench::CheckResult(
      EstimateCandidateSize(*table, uncompressed_config, options, &rng),
      "size uncompressed");
  SizedCandidate compressed = bench::CheckResult(
      EstimateCandidateSize(*table, compressed_config, options, &rng),
      "size compressed");
  std::printf("estimated sizes: uncompressed %s, compressed %s (CF' = %s)\n\n",
              HumanBytes(uncompressed.estimated_bytes).c_str(),
              HumanBytes(compressed.estimated_bytes).c_str(),
              FormatDouble(compressed.estimated_cf).c_str());

  PhysicalOption u{"t", "k", uncompressed.estimated_bytes, n, false};
  PhysicalOption c{"t", "k", compressed.estimated_bytes, n, true};

  TablePrinter table_out({"selectivity", "cpu/io ratio", "cost uncompressed",
                          "cost compressed", "winner"});
  for (double selectivity : {1.0, 0.25, 0.05, 0.01, 0.001}) {
    for (double cpu_ratio : {0.0001, 0.001, 0.01}) {
      CostModelParams params;
      params.row_cpu_cost = cpu_ratio;  // relative to page_read_cost = 1
      params.decompress_factor = 2.5;
      Query query{"t", "k", selectivity, 1.0};
      const double cost_u = QueryCost(query, u, params);
      const double cost_c = QueryCost(query, c, params);
      table_out.AddRow(
          {FormatDouble(selectivity, 3), FormatDouble(cpu_ratio, 4),
           FormatDouble(cost_u, 1), FormatDouble(cost_c, 1),
           cost_c < cost_u ? "compressed" : "uncompressed"});
    }
  }
  table_out.Print();
  std::printf(
      "\nShape: compression wins I/O-bound plans (low cpu/io ratio, low "
      "selectivity scans read\nfewer pages) and loses CPU-bound ones; the "
      "crossover moves with the CF' the estimator\nsupplies — an inaccurate "
      "CF would flip decisions near the boundary.\n");
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
