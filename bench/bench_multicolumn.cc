// E12 — multi-column indexes: the paper states its single-column analysis
// "extends for the case of multi-column indexes in a straightforward
// manner" (§III). This experiment verifies that claim empirically: Theorem-1
// behaviour (unbiased, bounded spread) for NS and the Theorem-2/3 regimes
// for dictionary compression must survive composite keys, mixed column
// types, and per-column mixed schemes; and the index-sampling shortcut of
// §II-C must agree with base-table sampling.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "common/stats.h"
#include "datagen/table_gen.h"
#include "estimator/analytic_model.h"
#include "estimator/evaluation.h"

namespace cfest {
namespace {

void Run() {
  bench::PrintHeader(
      "E12 / Multi-column indexes — the paper's 'straightforward extension'",
      "Composite keys, mixed types, mixed per-column schemes; plus the "
      "sample-from-index path.");

  const uint64_t n = 100000;
  auto table = bench::CheckResult(
      GenerateTable(
          {ColumnSpec::String("status", 12, 6, FrequencySpec::Uniform(),
                              LengthSpec::Uniform(4, 10)),
           ColumnSpec::String("city", 24, 500, FrequencySpec::Zipf(1.0),
                              LengthSpec::Uniform(4, 20)),
           ColumnSpec::Integer("amount", 2000),
           ColumnSpec::Integer("id", 0)},
          n, 33),
      "generate");

  struct Case {
    const char* label;
    IndexDescriptor index;
    CompressionScheme scheme;
  };
  CompressionScheme mixed;  // per-column winners for the 4-column clustered
  mixed.per_column = {CompressionType::kRle,              // status (sorted)
                      CompressionType::kPrefixDictionary, // city
                      CompressionType::kFrameOfReference, // amount
                      CompressionType::kDelta};           // id
  const std::vector<Case> cases = {
      {"2-col NS", {"ix2", {"status", "city"}, false},
       CompressionScheme::Uniform(CompressionType::kNullSuppression)},
      {"2-col dict-global", {"ix2", {"status", "city"}, false},
       CompressionScheme::Uniform(CompressionType::kDictionaryGlobal)},
      {"3-col NS", {"ix3", {"status", "city", "amount"}, false},
       CompressionScheme::Uniform(CompressionType::kNullSuppression)},
      {"4-col clustered mixed", {"cx4", {"status", "city"}, true}, mixed},
  };

  TablePrinter out({"index / scheme", "CF (exact)", "mean CF'", "bias",
                    "stddev", "bound", "E[ratio err]"});
  bench::Timer timer;
  for (const Case& c : cases) {
    EvaluationOptions options;
    options.fraction = 0.02;
    options.trials = 50;
    EvaluationResult eval = bench::CheckResult(
        EvaluateSampleCF(*table, c.index, c.scheme, options), "evaluate");
    out.AddRow({c.label, FormatDouble(eval.truth.value),
                FormatDouble(eval.estimate_summary.mean),
                FormatDouble(eval.bias, 5),
                FormatDouble(eval.estimate_summary.stddev, 5),
                FormatDouble(eval.theorem1_bound, 5),
                FormatDouble(eval.mean_ratio_error)});
  }
  out.Print();

  // §II-C: sampling from an existing index vs from the base table.
  std::printf("\nSampling from the existing index (paper §II-C shortcut):\n");
  IndexBuildOptions build;
  build.keep_pages = false;
  Index index = bench::CheckResult(
      Index::Build(*table, {"ix2", {"status", "city"}, false}, build),
      "index");
  TablePrinter cmp({"path", "mean CF'", "E[ratio err]"});
  const CompressionScheme ns =
      CompressionScheme::Uniform(CompressionType::kNullSuppression);
  const double truth =
      bench::CheckResult(
          ComputeTrueCF(*table, {"ix2", {"status", "city"}, false}, ns),
          "truth")
          .value;
  for (bool from_index : {false, true}) {
    RunningStats mean, err;
    Random rng(55);
    for (int t = 0; t < 50; ++t) {
      Random trial = rng.Fork();
      SampleCFOptions options;
      options.fraction = 0.02;
      SampleCFResult result = bench::CheckResult(
          from_index
              ? SampleCFFromIndex(index, ns, options, &trial)
              : SampleCF(*table, {"ix2", {"status", "city"}, false}, ns,
                         options, &trial),
          "samplecf");
      mean.Add(result.cf.value);
      err.Add(RatioError(truth, result.cf.value));
    }
    cmp.AddRow({from_index ? "index rows (no sort/project)" : "base table",
                FormatDouble(mean.mean()), FormatDouble(err.mean())});
  }
  cmp.Print();
  std::printf(
      "\nShape: spreads stay under the Theorem-1 bound for every composite "
      "key; dictionary rows\nshow the expected regime-dependent bias. One "
      "subtlety the single-column model hides:\nbase-table sampling for "
      "non-clustered indexes synthesizes rids 0..r-1, whose NS lengths\nare "
      "shorter than the population's 0..n-1 rids — a small systematic "
      "downward bias on the\nNS rows above. The paper's own §II-C shortcut "
      "fixes it for free: sampled *index* rows\ncarry population rids, and "
      "its ratio error drops accordingly. elapsed %.1fs\n",
      timer.Seconds());
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
