// E-ADPT — confidence-driven sample growth (estimator/adaptive.h) versus
// the smallest fixed fraction that reaches the same accuracy.
//
// The workload is seven single-column tables behind one
// CatalogEstimationService, mixing easy and hard columns on purpose:
// near-constant string lengths make the NS estimator converge on a couple
// hundred rows, while bimodal lengths (Theorem 1's worst case) need
// thousands; a fixed fraction must be sized for the hardest candidate and
// overpays on every other one. The adaptive flow gives each candidate
// exactly the rows its confidence interval demands. Candidates are
// clustered single-column indexes, so the sampled index is the column
// itself and the NS estimator is exactly the unbiased mean Theorem 1
// analyzes (no synthetic __rid column skewing small samples).
//
// Gates (the run aborts if either fails):
//   (a) rows sampled — sum over the NS candidates of the rows behind
//       their final estimate — must be lower than the fixed-f* NS total,
//       where f* is the smallest ladder fraction whose worst-case
//       relative error (across the NS candidates and 20 probe seeds, so
//       one lucky draw cannot win) meets the same 2.5% target;
//   (b) equality gate — every adaptive estimate must be bit-identical to
//       a fixed-fraction engine run at that candidate's final fraction
//       under the same seed (growth resumes the draw stream, so the grown
//       sample *is* the fresh draw).
//
// The truth-accuracy ladder is defined over the NS candidates because NS
// is the sample-consistent estimator (Theorem 1): per-row-local, unbiased
// at any r. Context-dependent schemes (paged dictionary here) carry a
// small-sample *bias* that no fixed fraction removes either — the paper's
// hybrid DV correction is the remedy — so for them the adaptive loop
// controls precision (interval width), which is what it claims.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "datagen/table_gen.h"
#include "estimator/adaptive.h"
#include "estimator/compression_fraction.h"
#include "estimator/engine.h"
#include "estimator/service.h"
#include "storage/catalog.h"

namespace cfest {
namespace {

constexpr uint64_t kSeed = 42;
constexpr uint64_t kRowsPerTable = 60000;
constexpr double kStartFraction = 0.002;
constexpr double kTargetRelError = 0.025;
constexpr double kConfidence = 0.95;
// The first six candidates are NS (see BuildCandidates); the dictionary
// candidate is reported but not part of the accuracy-gated comparison.
constexpr size_t kNumNsCandidates = 6;

struct TableSpec {
  const char* name;
  ColumnSpec column;
};

std::vector<TableSpec> TableSpecs() {
  // Four easy columns (tight length spreads), one mid, one hard (bimodal —
  // Theorem 1's worst case), plus the dictionary demo table. A realistic
  // schema is mostly easy columns; the fixed fraction pays the hard
  // column's price on every one of them.
  return {
      {"ns_easy0", ColumnSpec::String("v", 16, 3000, FrequencySpec::Uniform(),
                                      LengthSpec::Uniform(7, 9))},
      {"ns_easy1", ColumnSpec::String("v", 16, 3000, FrequencySpec::Uniform(),
                                      LengthSpec::Uniform(6, 10))},
      {"ns_easy2", ColumnSpec::String("v", 16, 3000, FrequencySpec::Uniform(),
                                      LengthSpec::Constant(9))},
      {"ns_easy3", ColumnSpec::String("v", 16, 3000, FrequencySpec::Uniform(),
                                      LengthSpec::Uniform(10, 13))},
      {"ns_mid", ColumnSpec::String("v", 16, 3000, FrequencySpec::Uniform(),
                                    LengthSpec::Uniform(1, 15))},
      {"ns_hard", ColumnSpec::String("v", 16, 3000, FrequencySpec::Uniform(),
                                     LengthSpec::Bimodal(1, 15))},
      {"city", ColumnSpec::String("v", 24, 2000, FrequencySpec::Zipf(1.0),
                                  LengthSpec::Uniform(4, 20))},
  };
}

void BuildCatalog(Catalog* catalog) {
  uint64_t seed = 7;
  for (const TableSpec& spec : TableSpecs()) {
    bench::CheckOk(
        catalog->AddTable(spec.name,
                          bench::CheckResult(
                              GenerateTable({spec.column}, kRowsPerTable,
                                            seed++),
                              spec.name)),
        spec.name);
  }
}

std::vector<CandidateConfiguration> BuildCandidates() {
  std::vector<CandidateConfiguration> candidates;
  for (const char* tbl : {"ns_easy0", "ns_easy1", "ns_easy2", "ns_easy3",
                          "ns_mid", "ns_hard"}) {
    CandidateConfiguration c;
    c.table_name = tbl;
    c.index = {std::string("ix_") + tbl + "_ns", {"v"}, /*clustered=*/true};
    c.scheme = CompressionScheme::Uniform(CompressionType::kNullSuppression);
    candidates.push_back(std::move(c));
  }
  CandidateConfiguration dict;
  dict.table_name = "city";
  dict.index = {"ix_city_dict", {"v"}, /*clustered=*/true};
  dict.scheme = CompressionScheme::Uniform(CompressionType::kDictionaryPage);
  candidates.push_back(std::move(dict));
  return candidates;
}

double RelError(double estimate, double truth) {
  const double denom = std::max(truth, PrecisionTarget{}.cf_floor);
  return std::abs(estimate - truth) / denom;
}

void Run() {
  bench::PrintHeader(
      "E-ADPT / AdaptiveEstimator — grow until the CF' interval is tight",
      "7 single-column tables (4 easy + mid + hard NS, paged dictionary), "
      "2.5% relative target at 95% confidence: per-candidate rows vs the "
      "smallest fixed f reaching the same accuracy reliably; every "
      "estimate gate-checked against a fixed-f run at its final fraction.");

  Catalog catalog;
  BuildCatalog(&catalog);
  const std::vector<CandidateConfiguration> candidates = BuildCandidates();

  // Ground truth (full build, data-bytes metric — the controlled CF').
  std::vector<double> truth(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Table& table = *bench::CheckResult(
        catalog.GetTable(candidates[i].table_name), "GetTable");
    truth[i] = bench::CheckResult(
                   ComputeTrueCF(table, candidates[i].index,
                                 candidates[i].scheme, SizeMetric::kDataBytes),
                   "ComputeTrueCF")
                   .value;
  }

  // ---------------------------------------------------------------------
  // Adaptive run (service-level: each table's engine grows independently).
  // ---------------------------------------------------------------------
  CatalogEstimationServiceOptions service_options;
  service_options.base.fraction = kStartFraction;
  service_options.seed = kSeed;
  service_options.num_threads = 1;

  PrecisionTarget target;
  target.rel_error = kTargetRelError;
  target.confidence = kConfidence;

  // The NS batch is timed on its own so the wall-clock comparison against
  // fixed-f* covers exactly the accuracy-gated candidate set; the
  // dictionary demo runs as a second batch (its own tables, so the split
  // changes nothing about any estimate).
  CatalogEstimationService service(catalog, service_options);
  const std::span<const CandidateConfiguration> ns_candidates(
      candidates.data(), kNumNsCandidates);
  const std::span<const CandidateConfiguration> dict_candidates(
      candidates.data() + kNumNsCandidates,
      candidates.size() - kNumNsCandidates);
  bench::Timer adaptive_timer;
  AdaptiveBatchResult adaptive = bench::CheckResult(
      EstimateAllAdaptive(service, ns_candidates, target),
      "EstimateAllAdaptive (NS)");
  const double adaptive_seconds = adaptive_timer.Seconds();
  // Only the accuracy-gated NS batch must stay within budget; the
  // dictionary demo is allowed to hit its fraction cap (its tiny CF makes
  // a 2.5% relative target expensive — exactly the case the
  // budget-exhaustion reporting exists for).
  const bool ns_budget_exhausted = adaptive.budget_exhausted;
  const AdaptiveBatchResult dict_result = bench::CheckResult(
      EstimateAllAdaptive(service, dict_candidates, target),
      "EstimateAllAdaptive (dict)");
  for (const AdaptiveCandidateResult& r : dict_result.candidates) {
    adaptive.candidates.push_back(r);
  }
  for (const AdaptiveTableReport& r : dict_result.tables) {
    adaptive.tables.push_back(r);
  }
  adaptive.total_sample_rows += dict_result.total_sample_rows;
  adaptive.rounds = std::max(adaptive.rounds, dict_result.rounds);
  adaptive.budget_exhausted =
      adaptive.budget_exhausted || dict_result.budget_exhausted;

  uint64_t adaptive_total_rows = 0;
  uint64_t adaptive_ns_rows = 0;
  double adaptive_max_rel_error_ns = 0.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    adaptive_total_rows += adaptive.candidates[i].rows_sampled;
    if (i < kNumNsCandidates) {
      adaptive_ns_rows += adaptive.candidates[i].rows_sampled;
      adaptive_max_rel_error_ns = std::max(
          adaptive_max_rel_error_ns,
          RelError(adaptive.candidates[i].cf, truth[i]));
    }
  }

  // ---------------------------------------------------------------------
  // Fixed-fraction ladder: the smallest f whose worst-case NS relative
  // error (max over NS candidates and probe seeds) meets the same target.
  // The fixed totals count the NS candidates only — the comparison is
  // apples-to-apples with the accuracy-gated adaptive set; the dictionary
  // candidate has no truth-accuracy notion at any fraction (bias).
  // ---------------------------------------------------------------------
  const std::vector<double> ladder = {0.002, 0.004, 0.008, 0.016,
                                      0.032, 0.064, 0.128, 0.256};
  // Enough probe seeds that f* must meet the target *reliably* — the same
  // kind of guarantee the adaptive confidence target gives — rather than
  // on one lucky draw.
  std::vector<uint64_t> probe_seeds;
  for (uint64_t s = 0; s < 20; ++s) probe_seeds.push_back(kSeed + s);
  double smallest_sufficient_f = 0.0;
  uint64_t fixed_ns_rows = 0;
  double fixed_seconds = 0.0;
  for (double f : ladder) {
    double worst_ns = 0.0;
    double seconds_at_seed0 = 0.0;
    uint64_t rows_at_seed0 = 0;
    for (uint64_t seed : probe_seeds) {
      CatalogEstimationServiceOptions fixed_options = service_options;
      fixed_options.base.fraction = f;
      fixed_options.seed = seed;
      CatalogEstimationService fixed(catalog, fixed_options);
      bench::Timer timer;
      for (size_t i = 0; i < kNumNsCandidates; ++i) {
        EstimationEngine* engine = bench::CheckResult(
            fixed.Engine(candidates[i].table_name), "fixed Engine");
        const SampleCFResult r = bench::CheckResult(
            engine->EstimateCF(candidates[i].index, candidates[i].scheme),
            "fixed EstimateCF");
        worst_ns = std::max(worst_ns, RelError(r.cf.value, truth[i]));
        if (seed == kSeed) rows_at_seed0 += r.sample_rows;
      }
      if (seed == kSeed) seconds_at_seed0 = timer.Seconds();
    }
    if (worst_ns <= kTargetRelError) {
      smallest_sufficient_f = f;
      fixed_ns_rows = rows_at_seed0;
      fixed_seconds = seconds_at_seed0;
      break;
    }
  }
  if (smallest_sufficient_f == 0.0) {
    std::fprintf(stderr,
                 "FATAL: no ladder fraction reaches the %.0f%% target\n",
                 kTargetRelError * 100);
    std::exit(1);
  }

  // ---------------------------------------------------------------------
  // Equality gate: each adaptive estimate == a fixed-f fresh draw at that
  // candidate's final fraction, same seed.
  // ---------------------------------------------------------------------
  size_t mismatches = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const AdaptiveCandidateResult& r = adaptive.candidates[i];
    if (r.rows_sampled == 0) continue;
    const Table& table = *bench::CheckResult(
        catalog.GetTable(candidates[i].table_name), "GetTable");
    EstimationEngineOptions fixed_options;
    fixed_options.base = service_options.base;
    fixed_options.base.fraction = static_cast<double>(r.rows_sampled) /
                                  static_cast<double>(table.num_rows());
    fixed_options.seed = kSeed;
    fixed_options.num_threads = 1;
    EstimationEngine fixed(table, fixed_options);
    const SampleCFResult cf = bench::CheckResult(
        fixed.EstimateCF(candidates[i].index, candidates[i].scheme),
        "gate EstimateCF");
    const SizedCandidate sized = bench::CheckResult(
        fixed.Estimate(candidates[i]), "gate Estimate");
    if (cf.cf.value != r.cf || cf.sample_rows != r.rows_sampled ||
        sized.estimated_cf != r.sized.estimated_cf ||
        sized.estimated_bytes != r.sized.estimated_bytes) {
      ++mismatches;
    }
  }

  // ---------------------------------------------------------------------
  // Report.
  // ---------------------------------------------------------------------
  TablePrinter out({"candidate", "true CF", "adaptive CF'", "rows",
                    "interval", "rel. err"});
  for (size_t i = 0; i < candidates.size(); ++i) {
    const AdaptiveCandidateResult& r = adaptive.candidates[i];
    out.AddRow({candidates[i].index.name, FormatDouble(truth[i]),
                FormatDouble(r.cf), std::to_string(r.rows_sampled),
                "[" + FormatDouble(r.interval.lower) + ", " +
                    FormatDouble(r.interval.upper) + "]",
                FormatDouble(RelError(r.cf, truth[i]))});
  }
  out.Print();

  std::printf("\nper-table growth schedules:\n");
  for (const AdaptiveTableReport& report : adaptive.tables) {
    std::printf("  %-8s %u round(s): %s rows\n", report.table_name.c_str(),
                report.rounds,
                FormatGrowthSchedule(report.rows_per_round).c_str());
  }
  std::printf(
      "adaptive:  %llu NS rows (%llu incl. dictionary), %.4f s (NS batch), max NS "
      "rel. err %.4f\n"
      "fixed f*:  f = %.3f (smallest ladder step meeting %.1f%% NS "
      "worst-case over %zu seeds), %llu NS rows, %.4f s\n"
      "rows saved: %.2fx fewer NS rows; equality gate: %zu mismatch(es)\n",
      static_cast<unsigned long long>(adaptive_ns_rows),
      static_cast<unsigned long long>(adaptive_total_rows), adaptive_seconds,
      adaptive_max_rel_error_ns, smallest_sufficient_f, kTargetRelError * 100,
      probe_seeds.size(),
      static_cast<unsigned long long>(fixed_ns_rows), fixed_seconds,
      adaptive_ns_rows > 0
          ? static_cast<double>(fixed_ns_rows) /
                static_cast<double>(adaptive_ns_rows)
          : 0.0,
      mismatches);

  bench::JsonEmitter json("adaptive_estimator");
  json.AddInt("rows_per_table", static_cast<int64_t>(kRowsPerTable));
  json.AddInt("candidates", static_cast<int64_t>(candidates.size()));
  json.AddDouble("target_rel_error", kTargetRelError);
  json.AddDouble("confidence", kConfidence);
  std::vector<bench::JsonEmitter> per_table;
  for (const AdaptiveTableReport& report : adaptive.tables) {
    bench::JsonEmitter entry;
    entry.AddString("table", report.table_name);
    entry.AddInt("rounds", report.rounds);
    std::vector<int64_t> per_round(report.rows_per_round.begin(),
                                   report.rows_per_round.end());
    entry.AddIntArray("rows_per_round", per_round);
    entry.AddInt("final_sample_rows",
                 static_cast<int64_t>(report.final_sample_rows));
    per_table.push_back(std::move(entry));
  }
  json.AddObjectArray("per_table", per_table);
  std::vector<bench::JsonEmitter> per_candidate;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const AdaptiveCandidateResult& r = adaptive.candidates[i];
    bench::JsonEmitter entry;
    entry.AddString("candidate", candidates[i].index.name);
    entry.AddDouble("true_cf", truth[i]);
    entry.AddDouble("cf", r.cf);
    entry.AddInt("rows_sampled", static_cast<int64_t>(r.rows_sampled));
    entry.AddDouble("ci_lower", r.interval.lower);
    entry.AddDouble("ci_upper", r.interval.upper);
    entry.AddString("method", r.interval_method);
    entry.AddBool("converged", r.converged);
    per_candidate.push_back(std::move(entry));
  }
  json.AddObjectArray("per_candidate", per_candidate);
  json.AddInt("adaptive_ns_rows", static_cast<int64_t>(adaptive_ns_rows));
  json.AddInt("adaptive_total_rows",
              static_cast<int64_t>(adaptive_total_rows));
  json.AddDouble("adaptive_seconds", adaptive_seconds);
  json.AddDouble("adaptive_max_rel_error_ns", adaptive_max_rel_error_ns);
  json.AddDouble("fixed_f_star", smallest_sufficient_f);
  json.AddInt("fixed_ns_rows", static_cast<int64_t>(fixed_ns_rows));
  json.AddDouble("fixed_seconds", fixed_seconds);
  json.AddDouble("rows_saved_factor",
                 adaptive_ns_rows > 0
                     ? static_cast<double>(fixed_ns_rows) /
                           static_cast<double>(adaptive_ns_rows)
                     : 0.0);
  json.AddInt("equality_mismatches", static_cast<int64_t>(mismatches));
  json.AddBool("ns_budget_exhausted", ns_budget_exhausted);
  json.AddBool("any_budget_exhausted", adaptive.budget_exhausted);
  json.Print();

  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FATAL: adaptive estimates diverge from fixed-f runs at "
                 "the final fractions\n");
    std::exit(1);
  }
  if (adaptive_ns_rows >= fixed_ns_rows) {
    std::fprintf(stderr,
                 "FATAL: adaptive sampled %llu NS rows, not fewer than the "
                 "fixed-f* NS total %llu\n",
                 static_cast<unsigned long long>(adaptive_ns_rows),
                 static_cast<unsigned long long>(fixed_ns_rows));
    std::exit(1);
  }
  if (ns_budget_exhausted) {
    std::fprintf(stderr, "FATAL: NS adaptive run exhausted its budget\n");
    std::exit(1);
  }
  if (adaptive_max_rel_error_ns > kTargetRelError) {
    std::fprintf(stderr,
                 "FATAL: adaptive NS estimates miss the %.0f%% target "
                 "(max rel. err %.4f)\n",
                 kTargetRelError * 100, adaptive_max_rel_error_ns);
    std::exit(1);
  }
}

}  // namespace
}  // namespace cfest

int main() { cfest::Run(); }
