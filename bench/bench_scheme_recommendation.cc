// A3 — per-column scheme recommendation from samples (extension): does a 2%
// sample pick the same per-column compression a full scan would pick, and
// how close is the recommended scheme's size to the per-column optimum?

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "datagen/tpch/tables.h"
#include "estimator/compression_fraction.h"
#include "estimator/scheme_advisor.h"
#include "index/index.h"

namespace cfest {
namespace {

/// Full-data per-column optimum: compress the whole index under each
/// candidate and pick the smallest per column (the oracle the sample-based
/// recommender approximates).
CompressionScheme OracleScheme(const Table& table,
                               const IndexDescriptor& desc) {
  IndexBuildOptions build;
  build.keep_pages = false;
  Index index =
      bench::CheckResult(Index::Build(table, desc, build), "index");
  const Schema& schema = index.schema();
  std::vector<double> best(schema.num_columns(),
                           std::numeric_limits<double>::infinity());
  std::vector<CompressionType> winner(schema.num_columns(),
                                      CompressionType::kNone);
  for (CompressionType type : AllCompressionTypes()) {
    CompressionScheme scheme;
    scheme.per_column.assign(schema.num_columns(), CompressionType::kNone);
    bool any = false;
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (MakeColumnCompressor(type, schema.column(c).type).ok()) {
        scheme.per_column[c] = type;
        any = true;
      }
    }
    if (!any) continue;
    CompressedIndex compressed =
        bench::CheckResult(index.Compress(scheme, build), "compress");
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (scheme.per_column[c] != type) continue;
      const auto& col = compressed.stats().columns[c];
      const double bytes =
          static_cast<double>(col.chunk_bytes + col.aux_bytes);
      if (bytes < best[c]) {
        best[c] = bytes;
        winner[c] = type;
      }
    }
  }
  CompressionScheme scheme;
  scheme.per_column = winner;
  return scheme;
}

void Run() {
  bench::PrintHeader(
      "A3 / Scheme recommendation from a sample vs the full-data oracle",
      "Extension: per-column best-scheme choice, TPC-H sf = 0.01, f = 2%.");

  tpch::TpchOptions tpch_options;
  tpch_options.scale_factor = 0.01;
  auto catalog = bench::CheckResult(tpch::GenerateCatalog(tpch_options),
                                    "generate catalog");

  TablePrinter table({"index", "columns agreeing with oracle",
                      "recommended CF (true)", "oracle CF (true)",
                      "best uniform CF (true)"});
  bench::Timer timer;
  struct Target {
    const char* table_name;
    const char* key;
  };
  for (const Target& target : std::vector<Target>{
           {"lineitem", "l_orderkey"}, {"orders", "o_orderkey"},
           {"part", "p_partkey"}, {"customer", "c_custkey"}}) {
    const Table& t = *bench::CheckResult(
        catalog->GetTable(target.table_name), "lookup");
    IndexDescriptor desc{"cx", {target.key}, /*clustered=*/true};

    SampleCFOptions options;
    options.fraction = 0.02;
    Random rng(4242);
    SchemeRecommendation rec = bench::CheckResult(
        RecommendScheme(t, desc, {}, options, &rng), "recommend");
    CompressionScheme oracle = OracleScheme(t, desc);

    size_t agree = 0;
    for (size_t c = 0; c < oracle.per_column.size(); ++c) {
      if (rec.scheme.per_column[c] == oracle.per_column[c]) ++agree;
    }
    const double rec_cf =
        bench::CheckResult(ComputeTrueCF(t, desc, rec.scheme), "rec cf")
            .value;
    const double oracle_cf =
        bench::CheckResult(ComputeTrueCF(t, desc, oracle), "oracle cf")
            .value;
    double best_uniform = std::numeric_limits<double>::infinity();
    for (CompressionType type :
         {CompressionType::kNullSuppression, CompressionType::kDictionaryPage,
          CompressionType::kPrefixDictionary, CompressionType::kRle}) {
      best_uniform = std::min(
          best_uniform,
          bench::CheckResult(
              ComputeTrueCF(t, desc, CompressionScheme::Uniform(type)),
              "uniform cf")
              .value);
    }
    table.AddRow({std::string(target.table_name) + "." + target.key,
                  std::to_string(agree) + "/" +
                      std::to_string(oracle.per_column.size()),
                  FormatDouble(rec_cf), FormatDouble(oracle_cf),
                  FormatDouble(best_uniform)});
  }
  table.Print();
  std::printf(
      "\nShape: the 2%% sample recovers (nearly) the oracle's per-column "
      "choices, and the mixed\nscheme beats every uniform scheme — the "
      "practical payoff of cheap CF estimation.\nelapsed %.1fs\n",
      timer.Seconds());
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
