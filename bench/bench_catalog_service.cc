// E-SVC — cross-table batched sizing and streaming delta refresh through
// the CatalogEstimationService.
//
// (a) A 2-table / 40-candidate advisor workload: the naive per-table loop
//     runs one full SampleCF pipeline per candidate (fresh draw,
//     materialized sample, fresh sample-index build — what a pre-engine
//     advisor does table by table); the service resolves one engine per
//     table and sizes the whole mixed workload in a single fan-out with one
//     sample and one index build per distinct key set per table. Estimates
//     must be identical — the service removes redundancy, not fidelity.
//
// (b) Streaming refresh: after the base table grows 10%, an engine that
//     maintains its sample as a reservoir folds the delta in with O(delta)
//     RNG work (NotifyAppend) instead of a full O(n) re-draw, and lands on
//     the exact same reservoir a fresh engine would draw — measured here as
//     refresh cost vs full re-draw cost for the same estimate.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "common/random.h"
#include "datagen/table_gen.h"
#include "estimator/engine.h"
#include "estimator/sample_cf.h"
#include "estimator/service.h"
#include "storage/catalog.h"

namespace cfest {
namespace {

constexpr double kFraction = 0.04;
constexpr uint64_t kSeed = 42;

/// "orders": a wide denormalized fact table — the advisor's candidates are
/// narrow secondary indexes, so the naive loop's full-width per-candidate
/// sample materialization is pure waste the service's TableView avoids.
std::unique_ptr<Table> GenerateOrders() {
  std::vector<ColumnSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(ColumnSpec::Integer(
        "o_id" + std::to_string(i), 400 + i * 300,
        i % 2 ? FrequencySpec::Zipf(0.9) : FrequencySpec::Uniform()));
  }
  for (int i = 0; i < 24; ++i) {
    specs.push_back(ColumnSpec::String("o_payload" + std::to_string(i), 72, 0,
                                       FrequencySpec::Uniform(),
                                       LengthSpec::Uniform(24, 64)));
  }
  return bench::CheckResult(GenerateTable(specs, 100000, 7), "orders");
}

/// "lineitem": more rows, narrower.
std::unique_ptr<Table> GenerateLineitem() {
  std::vector<ColumnSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(ColumnSpec::Integer(
        "l_id" + std::to_string(i), 600 + i * 250,
        i % 2 ? FrequencySpec::Uniform() : FrequencySpec::Zipf(0.8)));
  }
  for (int i = 0; i < 14; ++i) {
    specs.push_back(ColumnSpec::String("l_payload" + std::to_string(i), 56, 0,
                                       FrequencySpec::Uniform(),
                                       LengthSpec::Uniform(16, 48)));
  }
  return bench::CheckResult(GenerateTable(specs, 150000, 11), "lineitem");
}

/// 40 candidates: 20 per table (4 key sets — two single-column and two
/// composite — x 5 schemes), interleaved so the service has to regroup
/// them. Composite keys make the per-key-set sample index build the
/// expensive step the service's cache amortizes across schemes.
std::vector<CandidateConfiguration> BuildWorkload() {
  const std::vector<CompressionType> schemes = {
      CompressionType::kNullSuppression, CompressionType::kRle,
      CompressionType::kDelta, CompressionType::kPrefix,
      CompressionType::kDictionaryPage};
  const std::vector<std::vector<int>> key_sets = {
      {0}, {1}, {0, 1}, {0, 1, 2, 3}};
  std::vector<CandidateConfiguration> candidates;
  for (const std::vector<int>& key_set : key_sets) {
    for (CompressionType type : schemes) {
      for (const char* table : {"orders", "lineitem"}) {
        const std::string prefix = table[0] == 'o' ? "o_id" : "l_id";
        CandidateConfiguration c;
        c.table_name = table;
        std::string name = "ix";
        for (int col : key_set) {
          c.index.key_columns.push_back(prefix + std::to_string(col));
          name += '_';
          name += std::to_string(col);
        }
        name += '_';
        name += CompressionTypeName(type);
        c.index.name = name;
        c.index.clustered = false;
        c.scheme = CompressionScheme::Uniform(type);
        c.benefit = 1.0;
        candidates.push_back(std::move(c));
      }
    }
  }
  return candidates;
}

void RunCrossTableBatch(const Catalog& catalog, bench::JsonEmitter* json) {
  const std::vector<CandidateConfiguration> candidates = BuildWorkload();

  SampleCFOptions options;
  options.fraction = kFraction;
  options.metric = SizeMetric::kPageBytes;

  constexpr int kReps = 5;

  // Naive per-table loop: iterate tables, size each table's candidates with
  // one full SampleCF pipeline per candidate.
  std::vector<double> baseline_cf(candidates.size());
  double baseline_seconds = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    bench::Timer timer;
    for (const std::string& name : catalog.TableNames()) {
      const Table& table =
          *bench::CheckResult(catalog.GetTable(name), "GetTable");
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].table_name != name) continue;
        Random rng(kSeed);
        SampleCFResult r = bench::CheckResult(
            SampleCF(table, candidates[i].index, candidates[i].scheme,
                     options, &rng),
            "SampleCF");
        baseline_cf[i] = r.cf.value;
      }
    }
    baseline_seconds = std::min(baseline_seconds, timer.Seconds());
  }

  // Service: one mixed-table fan-out. Fresh service per repetition so
  // nothing is cached across reps.
  double service_seconds = 1e30;
  std::vector<SizedCandidate> sized;
  CatalogEstimationService::Stats stats;
  for (int rep = 0; rep < kReps; ++rep) {
    CatalogEstimationServiceOptions service_options;
    service_options.base = options;
    service_options.seed = kSeed;
    CatalogEstimationService service(catalog, service_options);
    bench::Timer timer;
    sized =
        bench::CheckResult(service.EstimateAll(candidates), "EstimateAll");
    service_seconds = std::min(service_seconds, timer.Seconds());
    stats = service.stats();
  }

  size_t mismatches = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (baseline_cf[i] != sized[i].estimated_cf) ++mismatches;
  }
  const double speedup =
      service_seconds > 0 ? baseline_seconds / service_seconds : 0.0;

  TablePrinter out({"path", "wall-clock", "samples drawn", "index builds"});
  out.AddRow({"naive per-table loop", FormatDouble(baseline_seconds, 4) + " s",
              std::to_string(candidates.size()),
              std::to_string(candidates.size())});
  out.AddRow({"CatalogEstimationService",
              FormatDouble(service_seconds, 4) + " s",
              std::to_string(stats.samples_drawn),
              std::to_string(stats.index_builds)});
  out.Print();
  std::printf("\nspeedup %.2fx; %zu/%zu estimates differ (must be 0)\n",
              speedup, mismatches, candidates.size());

  json->AddInt("candidates", static_cast<int64_t>(candidates.size()));
  json->AddInt("tables", static_cast<int64_t>(stats.engines_created));
  json->AddDouble("fraction", kFraction);
  json->AddDouble("baseline_seconds", baseline_seconds);
  json->AddDouble("service_seconds", service_seconds);
  json->AddDouble("speedup", speedup);
  json->AddInt("samples_drawn",
               static_cast<int64_t>(stats.samples_drawn));
  json->AddInt("index_builds",
               static_cast<int64_t>(stats.index_builds));
  json->AddInt("mismatches", static_cast<int64_t>(mismatches));

  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FATAL: service estimates diverge from per-table loop\n");
    std::exit(1);
  }
}

void RunDeltaRefresh(bench::JsonEmitter* json) {
  // One growing table: base n, then +10%.
  const uint64_t base_rows = 200000;
  const uint64_t delta = base_rows / 10;
  std::vector<ColumnSpec> specs = {
      ColumnSpec::Integer("id", 900, FrequencySpec::Zipf(0.9)),
      ColumnSpec::String("payload", 48, 0, FrequencySpec::Uniform(),
                         LengthSpec::Uniform(12, 40))};
  std::unique_ptr<Table> table =
      bench::CheckResult(GenerateTable(specs, base_rows + delta, 13), "table");

  // The incremental engine starts from a prefix-sized table; materialize
  // that prefix as its own table so both engines see identical bytes.
  TableBuilder prefix_builder(table->schema());
  prefix_builder.Reserve(base_rows);
  for (RowId id = 0; id < base_rows; ++id) {
    bench::CheckOk(prefix_builder.AppendEncoded(table->row(id)),
                   "prefix append");
  }
  std::unique_ptr<Table> growing = prefix_builder.Finish();

  EstimationEngineOptions options;
  options.base.fraction = kFraction;
  options.base.metric = SizeMetric::kPageBytes;
  options.seed = kSeed;
  options.maintain_reservoir = true;
  options.reservoir_capacity = base_rows / 100;  // pin across growth

  const IndexDescriptor desc{"ix_id", {"id"}, false};
  const CompressionScheme scheme =
      CompressionScheme::Uniform(CompressionType::kDictionaryPage);

  // Incremental: draw on the base, grow, NotifyAppend, re-estimate.
  EstimationEngine incremental(*growing, options);
  bench::CheckResult(incremental.EstimateCF(desc, scheme), "initial");
  for (RowId id = base_rows; id < base_rows + delta; ++id) {
    bench::CheckOk(growing->AppendEncodedRow(table->row(id)), "append");
  }
  bench::Timer refresh_timer;
  bench::CheckOk(incremental.NotifyAppend({base_rows, base_rows + delta}),
                 "NotifyAppend");
  const SampleCFResult refreshed = bench::CheckResult(
      incremental.EstimateCF(desc, scheme), "re-estimate");
  const double refresh_seconds = refresh_timer.Seconds();

  // Full re-draw: a fresh engine over the grown table scans all n + delta
  // rows to draw the (identical) reservoir, then estimates.
  EstimationEngine fresh(*table, options);
  bench::Timer redraw_timer;
  const SampleCFResult redrawn =
      bench::CheckResult(fresh.EstimateCF(desc, scheme), "fresh estimate");
  const double redraw_seconds = redraw_timer.Seconds();

  const bool equal = refreshed.cf.value == redrawn.cf.value;
  const double ratio =
      refresh_seconds > 0 ? redraw_seconds / refresh_seconds : 0.0;

  TablePrinter out({"path", "wall-clock", "estimate CF'"});
  out.AddRow({"NotifyAppend + re-estimate",
              FormatDouble(refresh_seconds, 4) + " s",
              FormatDouble(refreshed.cf.value)});
  out.AddRow({"full re-draw + estimate", FormatDouble(redraw_seconds, 4) + " s",
              FormatDouble(redrawn.cf.value)});
  out.Print();
  std::printf("\nincremental refresh is %.2fx the re-draw path; estimates "
              "%s (version %llu, %llu invalidation(s))\n",
              ratio, equal ? "equal" : "DIVERGE",
              static_cast<unsigned long long>(
                  incremental.cache_stats().sample_version),
              static_cast<unsigned long long>(
                  incremental.cache_stats().invalidations));

  json->AddInt("grow_base_rows", static_cast<int64_t>(base_rows));
  json->AddInt("grow_delta_rows", static_cast<int64_t>(delta));
  json->AddDouble("refresh_seconds", refresh_seconds);
  json->AddDouble("redraw_seconds", redraw_seconds);
  json->AddDouble("refresh_speedup", ratio);
  json->AddBool("refresh_estimate_equal", equal);

  if (!equal) {
    std::fprintf(stderr,
                 "FATAL: incremental refresh diverges from full re-draw\n");
    std::exit(1);
  }
}

void Run() {
  bench::PrintHeader(
      "E-SVC / Catalog service — cross-table batching + delta refresh",
      "2 tables, 40 candidates, f = 0.04: one fan-out, one sample and one "
      "index build per key set per table; growth refreshes in O(delta).");

  Catalog catalog;
  bench::CheckOk(catalog.AddTable("orders", GenerateOrders()), "orders");
  bench::CheckOk(catalog.AddTable("lineitem", GenerateLineitem()),
                 "lineitem");

  bench::JsonEmitter json("catalog_service");
  RunCrossTableBatch(catalog, &json);
  std::printf("\n");
  RunDeltaRefresh(&json);
  json.Print();
}

}  // namespace
}  // namespace cfest

int main() { cfest::Run(); }
