// M1 — google-benchmark micro suite: per-compressor chunk throughput and
// end-to-end compressed index build rates.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "compression/compressed_index.h"
#include "compression/compressor.h"
#include "compression/scheme.h"
#include "datagen/table_gen.h"

namespace cfest {
namespace {

std::vector<std::string> MakeCells(size_t count, uint32_t k, uint64_t d) {
  Random rng(1234);
  std::vector<std::string> cells;
  cells.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string value = "v" + std::to_string(rng.NextBounded(d));
    value.append(k - value.size(), ' ');
    cells.push_back(std::move(value));
  }
  return cells;
}

void BM_ChunkCompress(benchmark::State& state) {
  const auto type = static_cast<CompressionType>(state.range(0));
  const uint32_t k = 20;
  const auto cells = MakeCells(1000, k, 64);
  auto compressor =
      std::move(MakeColumnCompressor(type, CharType(k))).ValueOrDie();
  for (auto _ : state) {
    auto chunk = compressor->NewChunk();
    for (const auto& cell : cells) {
      benchmark::DoNotOptimize(chunk->CostWith(Slice(cell)));
      chunk->Add(Slice(cell));
    }
    std::string wire = chunk->Finish();
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cells.size()) * k);
  state.SetLabel(CompressionTypeName(type));
}
BENCHMARK(BM_ChunkCompress)
    ->Arg(static_cast<int>(CompressionType::kNone))
    ->Arg(static_cast<int>(CompressionType::kNullSuppression))
    ->Arg(static_cast<int>(CompressionType::kDictionaryPage))
    ->Arg(static_cast<int>(CompressionType::kDictionaryGlobal))
    ->Arg(static_cast<int>(CompressionType::kRle))
    ->Arg(static_cast<int>(CompressionType::kPrefix));

void BM_ChunkDecode(benchmark::State& state) {
  const auto type = static_cast<CompressionType>(state.range(0));
  const uint32_t k = 20;
  const auto cells = MakeCells(1000, k, 64);
  auto compressor =
      std::move(MakeColumnCompressor(type, CharType(k))).ValueOrDie();
  auto chunk = compressor->NewChunk();
  for (const auto& cell : cells) chunk->Add(Slice(cell));
  const std::string wire = chunk->Finish();
  for (auto _ : state) {
    std::vector<std::string> decoded;
    benchmark::DoNotOptimize(compressor->DecodeChunk(Slice(wire), &decoded));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cells.size()) * k);
  state.SetLabel(CompressionTypeName(type));
}
BENCHMARK(BM_ChunkDecode)
    ->Arg(static_cast<int>(CompressionType::kNullSuppression))
    ->Arg(static_cast<int>(CompressionType::kDictionaryPage))
    ->Arg(static_cast<int>(CompressionType::kDictionaryGlobal))
    ->Arg(static_cast<int>(CompressionType::kRle))
    ->Arg(static_cast<int>(CompressionType::kPrefix));

void BM_CompressedIndexBuild(benchmark::State& state) {
  const auto type = static_cast<CompressionType>(state.range(0));
  auto table = std::move(GenerateTable(
                             {ColumnSpec::String("a", 20, 500,
                                                 FrequencySpec::Uniform(),
                                                 LengthSpec::Uniform(1, 16)),
                              ColumnSpec::Integer("b", 100)},
                             20000, 9))
                   .ValueOrDie();
  std::vector<Slice> rows;
  rows.reserve(table->num_rows());
  for (RowId id = 0; id < table->num_rows(); ++id) {
    rows.push_back(table->row(id));
  }
  IndexBuildOptions options;
  options.keep_pages = false;
  for (auto _ : state) {
    auto compressed = CompressRows(
        table->schema(), CompressionScheme::Uniform(type), rows, options);
    benchmark::DoNotOptimize(compressed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(table->data_bytes()));
  state.SetLabel(CompressionTypeName(type));
}
BENCHMARK(BM_CompressedIndexBuild)
    ->Arg(static_cast<int>(CompressionType::kNullSuppression))
    ->Arg(static_cast<int>(CompressionType::kDictionaryPage))
    ->Arg(static_cast<int>(CompressionType::kDictionaryGlobal));

}  // namespace
}  // namespace cfest

BENCHMARK_MAIN();
