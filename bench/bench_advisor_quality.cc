// A5 — does estimation error change physical designs? The downstream test
// of the whole enterprise: run the storage-bounded advisor once with
// SampleCF-estimated candidate sizes and once with exact sizes, and compare
// the chosen configurations and their realized benefit. If the estimator is
// good enough, the two designs coincide (or tie in benefit).

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "advisor/advisor.h"
#include "advisor/cost_model.h"
#include "advisor/what_if.h"
#include "common/format.h"
#include "datagen/tpch/tables.h"
#include "index/index.h"

namespace cfest {
namespace {

struct Candidate {
  const Table* table;
  std::string table_name;
  IndexDescriptor index;
  CompressionScheme scheme;
};

uint64_t ExactBytes(const Candidate& c) {
  IndexBuildOptions build;
  build.keep_pages = false;
  Index index =
      bench::CheckResult(Index::Build(*c.table, c.index, build), "index");
  const bool uncompressed = c.scheme.per_column.empty() &&
                            c.scheme.default_type == CompressionType::kNone;
  if (uncompressed) return index.stats().page_bytes();
  CompressedIndex compressed =
      bench::CheckResult(index.Compress(c.scheme, build), "compress");
  return compressed.stats().page_bytes() +
         InternalPageCount(compressed.stats().data_pages, index.fanout()) *
             build.page_size;
}

void Run() {
  bench::PrintHeader(
      "A5 / Advisor decision quality — estimated vs exact candidate sizes",
      "Does SampleCF's error ever flip the storage-bounded design choice?");

  tpch::TpchOptions tpch_options;
  tpch_options.scale_factor = 0.01;
  auto catalog = bench::CheckResult(tpch::GenerateCatalog(tpch_options),
                                    "generate");
  const Table& lineitem =
      *bench::CheckResult(catalog->GetTable("lineitem"), "lineitem");
  const Table& orders =
      *bench::CheckResult(catalog->GetTable("orders"), "orders");

  // Candidate pool: five indexes x {uncompressed, compressed}.
  std::vector<Candidate> pool;
  auto add = [&](const Table* t, const char* name, const char* col) {
    for (bool compressed : {false, true}) {
      Candidate c;
      c.table = t;
      c.table_name = name;
      c.index = {std::string("ix_") + col, {col}, false};
      c.scheme = CompressionScheme::Uniform(
          compressed ? CompressionType::kPrefixDictionary
                     : CompressionType::kNone);
      pool.push_back(std::move(c));
    }
  };
  add(&lineitem, "lineitem", "l_shipdate");
  add(&lineitem, "lineitem", "l_shipmode");
  add(&lineitem, "lineitem", "l_partkey");
  add(&orders, "orders", "o_orderdate");
  add(&orders, "orders", "o_clerk");

  // Workload-derived benefits (fixed across both runs; only sizes differ).
  const std::vector<Query> workload = {
      {"lineitem", "l_shipdate", 0.02, 10.0},
      {"lineitem", "l_shipmode", 0.14, 4.0},
      {"lineitem", "l_partkey", 0.001, 6.0},
      {"orders", "o_orderdate", 0.03, 8.0},
      {"orders", "o_clerk", 0.01, 2.0},
  };
  const std::vector<PhysicalOption> heaps = {
      {"lineitem", "", lineitem.data_bytes(), lineitem.num_rows(), false},
      {"orders", "", orders.data_bytes(), orders.num_rows(), false},
  };
  CostModelParams params;

  auto size_candidates = [&](bool use_estimates, uint64_t seed) {
    std::vector<SizedCandidate> sized;
    Random rng(seed);
    for (const Candidate& c : pool) {
      SizedCandidate s;
      s.config.table_name = c.table_name;
      s.config.index = c.index;
      s.config.scheme = c.scheme;
      if (use_estimates) {
        SampleCFOptions options;
        options.fraction = 0.02;
        CandidateConfiguration config;
        config.table_name = c.table_name;
        config.index = c.index;
        config.scheme = c.scheme;
        SizedCandidate est = bench::CheckResult(
            EstimateCandidateSize(*c.table, config, options, &rng),
            "estimate");
        s.estimated_bytes = est.estimated_bytes;
        s.estimated_cf = est.estimated_cf;
      } else {
        s.estimated_bytes = ExactBytes(c);
      }
      const bool compressed =
          c.scheme.default_type != CompressionType::kNone;
      PhysicalOption option{c.table_name, c.index.key_columns[0],
                            s.estimated_bytes, c.table->num_rows(),
                            compressed};
      s.config.benefit = bench::CheckResult(
          CandidateBenefit(workload, heaps, option, params), "benefit");
      sized.push_back(std::move(s));
    }
    return sized;
  };

  TablePrinter table({"storage bound", "seed", "design (estimated sizes)",
                      "design (exact sizes)", "same?", "benefit ratio"});
  std::vector<SizedCandidate> exact = size_candidates(false, 0);
  uint64_t exact_total = 0;
  for (const auto& c : exact) {
    if (c.config.scheme.default_type == CompressionType::kNone) {
      exact_total += c.estimated_bytes;
    }
  }
  auto describe = [](const AdvisorRecommendation& rec) {
    std::set<std::string> names;
    for (const auto& c : rec.selected) {
      names.insert(c.config.index.name +
                   (c.config.scheme.default_type == CompressionType::kNone
                        ? ""
                        : "*"));
    }
    std::string out;
    for (const auto& n : names) out += (out.empty() ? "" : " ") + n;
    return out.empty() ? std::string("(none)") : out;
  };
  int flips = 0, cells = 0;
  for (double bound_frac : {0.25, 0.5, 0.75}) {
    const uint64_t bound =
        static_cast<uint64_t>(bound_frac * static_cast<double>(exact_total));
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
      std::vector<SizedCandidate> estimated = size_candidates(true, seed);
      AdvisorRecommendation rec_est = bench::CheckResult(
          SelectConfigurations(estimated, bound, AdvisorStrategy::kOptimal),
          "select est");
      AdvisorRecommendation rec_exact = bench::CheckResult(
          SelectConfigurations(exact, bound, AdvisorStrategy::kOptimal),
          "select exact");
      const std::string d_est = describe(rec_est);
      const std::string d_exact = describe(rec_exact);
      const bool same = d_est == d_exact;
      ++cells;
      if (!same) ++flips;
      const double ratio =
          rec_exact.total_benefit > 0
              ? rec_est.total_benefit / rec_exact.total_benefit
              : 1.0;
      table.AddRow({HumanBytes(bound), std::to_string(seed), d_est, d_exact,
                    same ? "yes" : "NO", FormatDouble(ratio, 3)});
    }
  }
  table.Print();
  std::printf(
      "\n'*' marks compressed variants. Design flips: %d of %d cells. The "
      "flips are mostly\nvariant swaps of the same indexes, and at moderate "
      "bounds the realized benefit ratio\nstays ~0.99. The tightest bound is "
      "the exception: overestimating the dictionary CF of\nnear-unique "
      "columns (the hard regime) makes a fitting candidate look too big, "
      "costing\nreal benefit — accurate CF estimation matters most exactly "
      "when storage is scarce,\nwhich is the paper's motivating scenario.\n",
      flips, cells);
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
