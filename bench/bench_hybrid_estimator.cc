// A4 — the hybrid estimator (extension): SampleCF whose implicit naive
// scale-up DV estimate is replaced by GEE (the estimator from the paper's
// ref [1]) while keeping the constructive pipeline for everything else.
// Sweeps the d/n ratio through the hard middle ground E9 exposed.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "common/stats.h"
#include "datagen/table_gen.h"
#include "estimator/compression_fraction.h"
#include "estimator/hybrid.h"

namespace cfest {
namespace {

void Run() {
  bench::PrintHeader(
      "A4 / Hybrid estimator — SampleCF with a GEE-corrected dictionary term",
      "Fixes the mid-cardinality regime where the naive scale-up overshoots "
      "(cf. E9).");

  const uint64_t n = 100000;
  const double f = 0.01;
  const uint32_t trials = 20;
  TablePrinter table({"d", "freq", "CF (exact)", "plain E[err]",
                      "hybrid E[err]", "plain mean", "hybrid mean"});
  bench::Timer timer;
  for (uint64_t d : {50ull, 1000ull, 5000ull, 20000ull, 80000ull}) {
    for (const char* freq_label : {"uniform", "zipf(1)"}) {
      const bool zipf = std::string(freq_label) == "zipf(1)";
      auto data = bench::CheckResult(
          GenerateTable(
              {ColumnSpec::String("a", 20, d,
                                  zipf ? FrequencySpec::Zipf(1.0)
                                       : FrequencySpec::Uniform(),
                                  LengthSpec::Full())},
              n, 11 + d),
          "generate");
      const IndexDescriptor desc{"cx_a", {"a"}, true};
      const CompressionScheme scheme =
          CompressionScheme::Uniform(CompressionType::kDictionaryGlobal);
      const double truth =
          bench::CheckResult(ComputeTrueCF(*data, desc, scheme), "truth")
              .value;

      RunningStats plain_err, hybrid_err, plain_mean, hybrid_mean;
      Random rng(71);
      for (uint32_t t = 0; t < trials; ++t) {
        Random trial = rng.Fork();
        HybridCFOptions options;
        options.base.fraction = f;
        HybridCFResult result = bench::CheckResult(
            HybridDictionaryCF(*data, desc, scheme, options, &trial),
            "hybrid");
        plain_err.Add(RatioError(truth, result.plain.cf.value));
        hybrid_err.Add(RatioError(truth, result.estimate));
        plain_mean.Add(result.plain.cf.value);
        hybrid_mean.Add(result.estimate);
      }
      table.AddRow({std::to_string(d), freq_label, FormatDouble(truth),
                    FormatDouble(plain_err.mean()),
                    FormatDouble(hybrid_err.mean()),
                    FormatDouble(plain_mean.mean()),
                    FormatDouble(hybrid_mean.mean())});
    }
  }
  table.Print();
  std::printf(
      "\nn = %llu, f = %.2f, %u trials, global model (p = 4, k = 20).\n"
      "Shape: from small d through d ~ n/5 the GEE correction collapses the "
      "error (4.4x -> 1.1x\nat d = n/20). At d ~ n the roles flip: GEE "
      "underestimates heavy-singleton populations\nwhile plain SampleCF's "
      "overshoot is capped by d' <= r. No estimator dominates everywhere —\n"
      "precisely the hardness the paper's ref [1] proves.\n",
      static_cast<unsigned long long>(n), f, trials);
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
