// E5 — Table II: the paper's summary grid, regenerated empirically.
//
//   Technique          | Bias | small d (o(n))          | large d (O(n))
//   null suppression   | no   | variance <= bound       | variance <= bound
//   dictionary (CF'_DC)| yes  | ratio error close to 1  | bounded constant
//
// For each grid cell this binary measures bias, stddev vs the Theorem 1
// bound, and the expected ratio error, then prints the measured verdicts
// next to the paper's claims.

#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/format.h"
#include "datagen/table_gen.h"
#include "estimator/evaluation.h"

namespace cfest {
namespace {

struct CellResult {
  double bias = 0.0;
  double stddev = 0.0;
  double bound = 0.0;
  double ratio_error = 1.0;
};

CellResult Measure(CompressionType type, uint64_t d, uint64_t n, double f,
                   uint32_t trials) {
  auto table_ptr = bench::CheckResult(
      GenerateTable({ColumnSpec::String("a", 20, d, FrequencySpec::Uniform(),
                                        LengthSpec::Uniform(1, 0))},
                    n, d * 31 + 7),
      "generate");
  EvaluationOptions options;
  options.fraction = f;
  options.trials = trials;
  EvaluationResult eval = bench::CheckResult(
      EvaluateSampleCF(*table_ptr, {"cx_a", {"a"}, true},
                       CompressionScheme::Uniform(type), options),
      "evaluate");
  return {eval.bias, eval.estimate_summary.stddev, eval.theorem1_bound,
          eval.mean_ratio_error};
}

void Run() {
  bench::PrintHeader(
      "E5 / Table II — summary of estimator guarantees, measured",
      "Rows mirror the paper's Table II; 'measured' columns are Monte-Carlo.");

  const uint64_t n = 100000;
  const double f = 0.05;
  const uint32_t trials = 100;
  const uint64_t small_d = 50;        // o(n)
  const uint64_t large_d = n / 2;     // O(n)

  CellResult ns_small =
      Measure(CompressionType::kNullSuppression, small_d, n, f, trials);
  CellResult ns_large =
      Measure(CompressionType::kNullSuppression, large_d, n, f, trials);
  CellResult dc_small =
      Measure(CompressionType::kDictionaryGlobal, small_d, n, f, trials);
  CellResult dc_large =
      Measure(CompressionType::kDictionaryGlobal, large_d, n, f, trials);

  // Bias verdict: |bias| beyond 4 standard errors of the trial mean is
  // statistically significant.
  auto bias_verdict = [&](const CellResult& cell) {
    const double stderr_mean =
        cell.stddev / std::sqrt(static_cast<double>(trials));
    return std::abs(cell.bias) > 4.0 * stderr_mean + 1e-4 ? "yes (biased)"
                                                          : "no";
  };

  TablePrinter table({"technique", "paper: bias", "measured: bias",
                      "paper: small d", "measured: small d",
                      "paper: large d", "measured: large d"});
  table.AddRow({"null suppression", "no", bias_verdict(ns_small),
                "variance bounded",
                "stddev " + FormatDouble(ns_small.stddev, 5) + " <= " +
                    FormatDouble(ns_small.bound, 5),
                "variance bounded",
                "stddev " + FormatDouble(ns_large.stddev, 5) + " <= " +
                    FormatDouble(ns_large.bound, 5)});
  table.AddRow({"dictionary (global)", "yes", bias_verdict(dc_large),
                "ratio error ~ 1",
                "E[err] = " + FormatDouble(dc_small.ratio_error),
                "bounded constant",
                "E[err] = " + FormatDouble(dc_large.ratio_error)});
  table.Print();

  std::printf("\nn = %llu, f = %.2f, trials = %u per cell.\n",
              static_cast<unsigned long long>(n), f, trials);
  std::printf(
      "Verdicts expected: NS unbiased with stddev under the bound in both "
      "regimes;\ndictionary biased, with small-d error near 1 and large-d "
      "error a small constant.\n");
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
