// E3 — Theorem 2 (dictionary compression, small d): when d = o(n), the p/k
// pointer term dominates CF_DC = p/k + d/n, so SampleCF's expected ratio
// error tends to 1 as n grows at a fixed sampling fraction, despite distinct
// value estimation being hard in general.
//
// Sweeps d (absolute and sublinear functions of n) and n; reproduction holds
// if the error column decreases down each d-group and approaches 1.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "datagen/table_gen.h"
#include "estimator/evaluation.h"

namespace cfest {
namespace {

void Run() {
  bench::PrintHeader(
      "E3 / Theorem 2 — dictionary compression with small d = o(n)",
      "Paper: expected ratio error of CF'_DC approaches 1 for d = o(n).");

  const double f = 0.05;
  const uint32_t trials = 50;
  TablePrinter table({"d", "freq", "n", "CF (exact)", "mean CF'",
                      "E[ratio err]", "max err"});
  bench::Timer timer;
  struct DCase {
    const char* label;
    uint64_t (*d_of_n)(uint64_t n);
  };
  const std::vector<DCase> d_cases = {
      {"10", [](uint64_t) -> uint64_t { return 10; }},
      {"100", [](uint64_t) -> uint64_t { return 100; }},
      {"sqrt(n)",
       [](uint64_t n) -> uint64_t {
         return static_cast<uint64_t>(std::sqrt(static_cast<double>(n)));
       }},
      {"n^0.75",
       [](uint64_t n) -> uint64_t {
         return static_cast<uint64_t>(
             std::pow(static_cast<double>(n), 0.75));
       }},
  };
  for (const DCase& d_case : d_cases) {
    for (const char* freq_label : {"uniform", "zipf(1)"}) {
      const bool zipf = std::string(freq_label) == "zipf(1)";
      for (uint64_t n : {20000ull, 100000ull, 400000ull}) {
        const uint64_t d = d_case.d_of_n(n);
        auto table_ptr = bench::CheckResult(
            GenerateTable(
                {ColumnSpec::String("a", 20, d,
                                    zipf ? FrequencySpec::Zipf(1.0)
                                         : FrequencySpec::Uniform(),
                                    LengthSpec::Full())},
                n, 100 + n % 97),
            "generate");
        EvaluationOptions options;
        options.fraction = f;
        options.trials = trials;
        EvaluationResult eval = bench::CheckResult(
            EvaluateSampleCF(*table_ptr, {"cx_a", {"a"}, true},
                             CompressionScheme::Uniform(
                                 CompressionType::kDictionaryGlobal),
                             options),
            "evaluate");
        table.AddRow({d_case.label, freq_label, std::to_string(n),
                      FormatDouble(eval.truth.value),
                      FormatDouble(eval.estimate_summary.mean),
                      FormatDouble(eval.mean_ratio_error),
                      FormatDouble(eval.max_ratio_error)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nf = %.2f, trials = %u, global-dictionary model (p = 4, k = 20). "
      "elapsed %.1fs\n",
      f, trials, timer.Seconds());
}

}  // namespace
}  // namespace cfest

int main() {
  cfest::Run();
  return 0;
}
