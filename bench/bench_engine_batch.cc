// E-ENG — one sample, many candidates: per-candidate SampleCF vs the
// EstimationEngine on an advisor-sized workload.
//
// A physical-design advisor sizes dozens of (index, scheme) candidates per
// request. The per-candidate baseline re-draws the sample, re-materializes
// it, and re-sorts the sample index for every candidate; the engine draws
// one zero-copy sample, builds each distinct key set's sample index once,
// and fans candidates across its thread pool (§II-C: "a single random
// sample can be reused across estimations"). Estimates must be identical —
// the engine removes redundancy, not fidelity.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "common/random.h"
#include "datagen/table_gen.h"
#include "estimator/engine.h"
#include "estimator/sample_cf.h"

namespace cfest {
namespace {

constexpr double kFraction = 0.01;
constexpr uint64_t kSeed = 42;

/// A wide denormalized fact table (13 foreign-key id columns + 24 payload
/// columns, ~1.4 KB rows) — the advisor's candidates are narrow secondary
/// indexes on the id columns, so the per-candidate baseline's full-width
/// sample materialization is pure waste the engine's TableView avoids.
std::unique_ptr<Table> GenerateFactTable() {
  std::vector<ColumnSpec> specs;
  for (int i = 0; i < 13; ++i) {
    specs.push_back(ColumnSpec::Integer(
        "id" + std::to_string(i), 500 + i * 400,
        i % 2 ? FrequencySpec::Zipf(0.8) : FrequencySpec::Uniform()));
  }
  for (int i = 0; i < 24; ++i) {
    specs.push_back(ColumnSpec::String("payload" + std::to_string(i), 64, 0,
                                       FrequencySpec::Uniform(),
                                       LengthSpec::Uniform(20, 60)));
  }
  return bench::CheckResult(GenerateTable(specs, 150000, 7), "generate");
}

std::vector<CandidateConfiguration> BuildWorkload() {
  // 13 key columns x 4 schemes = 52 pairs; the first 50 form the workload.
  const std::vector<CompressionType> schemes = {
      CompressionType::kNullSuppression, CompressionType::kRle,
      CompressionType::kDelta, CompressionType::kPrefix};

  std::vector<CandidateConfiguration> candidates;
  for (int col = 0; col < 13; ++col) {
    const std::string key = "id" + std::to_string(col);
    for (CompressionType type : schemes) {
      if (candidates.size() == 50) break;
      CandidateConfiguration c;
      c.table_name = "fact";
      c.index = {"ix_" + key + "_" + CompressionTypeName(type), {key},
                 /*clustered=*/false};
      c.scheme = CompressionScheme::Uniform(type);
      c.benefit = 1.0;
      candidates.push_back(std::move(c));
    }
  }
  return candidates;
}

void Run() {
  bench::PrintHeader(
      "E-ENG / Batched estimation — per-candidate SampleCF vs "
      "EstimationEngine",
      "50 candidates, 4 schemes, f = 0.01: same estimates, one sample, "
      "one index build per key set.");

  std::unique_ptr<Table> table = GenerateFactTable();
  const std::vector<CandidateConfiguration> candidates = BuildWorkload();

  SampleCFOptions options;
  options.fraction = kFraction;
  options.metric = SizeMetric::kPageBytes;

  // Best of kReps timed repetitions per path, to keep the comparison stable
  // on a noisy machine. Estimates are checked on every repetition.
  constexpr int kReps = 3;

  // Baseline: one full SampleCF pipeline per candidate (fresh sample draw,
  // materialized sample table, fresh sample index build).
  std::vector<double> baseline_cf(candidates.size());
  double baseline_seconds = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    bench::Timer timer;
    for (size_t i = 0; i < candidates.size(); ++i) {
      Random rng(kSeed);
      SampleCFResult r = bench::CheckResult(
          SampleCF(*table, candidates[i].index, candidates[i].scheme, options,
                   &rng),
          "SampleCF");
      baseline_cf[i] = r.cf.value;
    }
    baseline_seconds = std::min(baseline_seconds, timer.Seconds());
  }

  // Engine: one shared sample, cached per-key-set index builds, pooled
  // fan-out. A fresh engine per repetition so nothing is cached across reps.
  double engine_seconds = 1e30;
  std::vector<SizedCandidate> sized;
  EstimationEngine::CacheStats stats;
  for (int rep = 0; rep < kReps; ++rep) {
    EstimationEngineOptions engine_options;
    engine_options.base = options;
    engine_options.seed = kSeed;
    EstimationEngine engine(*table, engine_options);
    bench::Timer timer;
    sized = bench::CheckResult(engine.EstimateAll(candidates), "EstimateAll");
    engine_seconds = std::min(engine_seconds, timer.Seconds());
    stats = engine.cache_stats();
  }

  size_t mismatches = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (baseline_cf[i] != sized[i].estimated_cf) ++mismatches;
  }
  const double speedup =
      engine_seconds > 0 ? baseline_seconds / engine_seconds : 0.0;

  TablePrinter out({"path", "wall-clock", "samples drawn", "index builds"});
  out.AddRow({"per-candidate SampleCF",
              FormatDouble(baseline_seconds, 4) + " s",
              std::to_string(candidates.size()),
              std::to_string(candidates.size())});
  out.AddRow({"EstimationEngine", FormatDouble(engine_seconds, 4) + " s",
              std::to_string(stats.samples_drawn),
              std::to_string(stats.index_builds)});
  out.Print();
  std::printf("\nspeedup %.2fx; %zu/%zu estimates differ (must be 0)\n",
              speedup, mismatches, candidates.size());

  bench::JsonEmitter json("engine_batch");
  json.AddInt("candidates", static_cast<int64_t>(candidates.size()));
  json.AddDouble("fraction", kFraction);
  json.AddDouble("baseline_seconds", baseline_seconds);
  json.AddDouble("engine_seconds", engine_seconds);
  json.AddDouble("speedup", speedup);
  json.AddInt("samples_drawn", static_cast<int64_t>(stats.samples_drawn));
  json.AddInt("index_builds", static_cast<int64_t>(stats.index_builds));
  json.AddInt("index_cache_hits",
              static_cast<int64_t>(stats.index_cache_hits));
  json.AddInt("mismatches", static_cast<int64_t>(mismatches));
  json.Print();

  if (mismatches != 0) {
    std::fprintf(stderr, "FATAL: engine estimates diverge from SampleCF\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace cfest

int main() { cfest::Run(); }
