#!/usr/bin/env python3
"""cfest project-invariant linter.

Enforces repo-specific rules that generic tools (clang-tidy, compiler
warnings) cannot express:

  raw-mutex      No raw std:: synchronization primitives (std::mutex,
                 std::condition_variable, std::lock_guard, ...) outside
                 src/common/mutex.h. Everything else must use the
                 thread-safety-annotated Mutex/MutexLock/CondVar wrappers,
                 or clang's -Wthread-safety analysis has nothing to check.
  epoch-compat   Estimator/advisor internals must size against a pinned
                 epoch via the *At(epoch, ...) surface. The pin-and-forward
                 compat wrappers (Estimate, EstimateCF, CompressOnSample,
                 SampleIndex, SampleTable) are for external callers only:
                 an internal multi-call sequence through them may straddle
                 a concurrent refresh and mix samples.
  kernel-parity  Every kernels:: entry point declared in
                 src/compression/kernels.h has a kernels::scalar::
                 reference implementation (the semantics-defining loop the
                 tests pin vector variants against).
  row-count-int  Row counts are uint64_t by contract (tables stream
                 appends past 2^31 rows). Declaring a row-count-named
                 variable as int/int32_t/long, or casting one to int,
                 truncates sizing math.
  metric-name-concat
                 Metric names are fixed family names; dimensions (table,
                 scheme, ...) are labels. Concatenating onto a "cfest."
                 string literal (e.g. `"cfest.engine." + table`) mints
                 per-dimension metric NAMES, which fragments families,
                 breaks the aggregate-parity contract, and bypasses the
                 labeled-child API (GetCounter(name, labels) /
                 RegisterCounters(labels, ...)).

A finding can be suppressed for one line with a trailing or preceding
comment: // cfest-lint: allow(rule-id)

Usage:
  cfest_lint.py [-p BUILD_DIR] [files...]   lint the tree (or given files)
  cfest_lint.py --check-fixtures            self-test on tests/lint_fixtures

With -p, the file list is seeded from BUILD_DIR/compile_commands.json
(plus all headers under src/, which a compilation database omits); without
it the linter walks src/, bench/, tools/, and examples/. Pure Python 3,
no third-party dependencies.
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ALLOW_RE = re.compile(r"cfest-lint:\s*allow\(([a-z0-9-]+)\)")

# ---------------------------------------------------------------------------
# Source preprocessing: strip comments and string/char literals so rules
# never fire on prose or quoted code, while preserving line numbers.
# ---------------------------------------------------------------------------


def collect_allows(text):
    """Line number -> set of rule ids allowed there (the comment's own line
    and, for a comment-only line, the following line)."""
    allows = {}
    lines = text.split("\n")
    for i, line in enumerate(lines, start=1):
        for match in ALLOW_RE.finditer(line):
            rule = match.group(1)
            allows.setdefault(i, set()).add(rule)
            stripped = line.strip()
            if stripped.startswith("//") or stripped.startswith("*"):
                allows.setdefault(i + 1, set()).add(rule)
    return allows


def strip_comments(text):
    """Replaces comment contents with spaces, keeping string literals AND
    newlines intact — for rules that must look inside string literals
    (metric-name-concat)."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i])
                    i += 1
                out.append(text[i])
                i += 1
            if i < n:
                out.append(quote)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_comments_and_strings(text):
    """Replaces comment and string-literal contents with spaces, keeping
    newlines (and thus line numbers) intact."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                if i < n:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            i += 1
            out.append(" ")
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Rules. Each returns a list of (line, rule_id, message).
# ---------------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)

# Receiver spelled like an engine (engine, engine_, &engine, *engine_) calling
# a pin-and-forward compat wrapper. The (?=\s*\() lookahead keeps the
# epoch-pinned surface (EstimateAt, EstimateCFAt, SampleIndexAt, ...) and the
# pin-once batch API (EstimateAll) from matching.
EPOCH_COMPAT_RE = re.compile(
    r"\b[A-Za-z_]*[Ee]ngine\w*\s*(?:\.|->)\s*"
    r"(SampleTable|SampleIndex|EstimateCF|CompressOnSample|Estimate)"
    r"(?=\s*\()"
)

ROW_COUNT_DECL_RE = re.compile(
    r"(?<![\w])(?<!unsigned )(?<!long )(?:int|int32_t|long)\s+"
    r"(\w*(?:num_rows|row_count|total_rows|n_rows|rows)\w*)\s*(?:=|;|,|\))"
)
ROW_COUNT_CAST_RE = re.compile(
    r"static_cast<\s*(?:int|int32_t|long)\s*>\s*\(\s*[^()]*"
    r"\b(?:num_rows|row_count|total_rows|n_rows|rows)\b"
)

FUNC_DECL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(", re.MULTILINE)

# A "cfest." metric-name literal being concatenated with runtime data, in
# either direction: `"cfest.engine." + table` or `prefix + ".cfest.x"`-style
# builds. Metric names are fixed; dimensions travel as labels.
METRIC_NAME_CONCAT_RE = re.compile(
    r"\"cfest\.[A-Za-z0-9_.]*\"\s*\+|\+\s*\"cfest\.[A-Za-z0-9_.]*\""
)


def is_mutex_home(path):
    return path.replace(os.sep, "/").endswith("src/common/mutex.h")


def is_estimator_internal(path):
    p = path.replace(os.sep, "/")
    if p.endswith("src/estimator/engine.h") or p.endswith(
        "src/estimator/engine.cc"
    ):
        return False  # the wrappers' own definitions live here
    return "/src/estimator/" in p or "/src/advisor/" in p


def check_raw_mutex(path, stripped, everywhere=False):
    if not everywhere and is_mutex_home(path):
        return []
    findings = []
    for i, line in enumerate(stripped.split("\n"), start=1):
        for match in RAW_MUTEX_RE.finditer(line):
            findings.append(
                (
                    i,
                    "raw-mutex",
                    "raw std::%s; use the annotated wrappers in "
                    "common/mutex.h" % match.group(1),
                )
            )
    return findings


def check_epoch_compat(path, stripped, everywhere=False):
    if not everywhere and not is_estimator_internal(path):
        return []
    findings = []
    for i, line in enumerate(stripped.split("\n"), start=1):
        for match in EPOCH_COMPAT_RE.finditer(line):
            findings.append(
                (
                    i,
                    "epoch-compat",
                    "compat wrapper %s() in estimator/advisor internals; "
                    "pin an epoch and use %sAt(epoch, ...)"
                    % (match.group(1), match.group(1)),
                )
            )
    return findings


def check_row_count_int(path, stripped, everywhere=False):
    del path, everywhere  # applies everywhere
    findings = []
    for i, line in enumerate(stripped.split("\n"), start=1):
        for match in ROW_COUNT_DECL_RE.finditer(line):
            findings.append(
                (
                    i,
                    "row-count-int",
                    "row count '%s' declared as a (possibly 32-bit) signed "
                    "type; row counts are uint64_t" % match.group(1),
                )
            )
        if ROW_COUNT_CAST_RE.search(line):
            findings.append(
                (
                    i,
                    "row-count-int",
                    "row count narrowed through static_cast<int>; row "
                    "counts are uint64_t",
                )
            )
    return findings


def check_metric_name_concat(path, comment_stripped, everywhere=False):
    del path, everywhere  # applies everywhere
    findings = []
    for i, line in enumerate(comment_stripped.split("\n"), start=1):
        if METRIC_NAME_CONCAT_RE.search(line):
            findings.append(
                (
                    i,
                    "metric-name-concat",
                    "metric name built by string concatenation; family "
                    "names are fixed — pass the dimension as a label "
                    "(GetCounter(name, {{\"table\", t}}) / "
                    "RegisterCounters(labels, ...))",
                )
            )
    return findings


def declared_functions(region):
    """Function names declared (`name(...);`) in a stripped header region."""
    names = set()
    # A declaration's parameter list ends in `);` possibly across lines.
    for match in re.finditer(r"([A-Za-z_]\w*)\s*\(", region):
        name = match.group(1)
        # Walk to the matching close paren; a declaration ends with ';'.
        depth = 0
        j = match.end() - 1
        while j < len(region):
            if region[j] == "(":
                depth += 1
            elif region[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        tail = region[j + 1 : j + 3].strip()
        if tail.startswith(";"):
            names.add(name)
    return names


def check_kernel_parity(path, stripped):
    """Parses the kernels header: every function declared in the top-level
    kernels namespace must also be declared in kernels::scalar."""
    marker = "namespace scalar {"
    pos = stripped.find(marker)
    if pos < 0:
        return [
            (
                1,
                "kernel-parity",
                "no `namespace scalar` region found in kernels header",
            )
        ]
    kernels_start = stripped.find("namespace kernels {")
    public_region = stripped[max(kernels_start, 0) : pos]
    scalar_region = stripped[pos : stripped.find("}", pos + len(marker) + 1)]
    scalar_end = stripped.find("}  // namespace scalar", pos)
    if scalar_end > 0:
        scalar_region = stripped[pos:scalar_end]
    public_fns = declared_functions(public_region)
    scalar_fns = declared_functions(scalar_region)
    findings = []
    for name in sorted(public_fns - scalar_fns):
        line = 1
        match = re.search(r"\b%s\s*\(" % re.escape(name), stripped)
        if match:
            line = stripped.count("\n", 0, match.start()) + 1
        findings.append(
            (
                line,
                "kernel-parity",
                "kernels::%s has no kernels::scalar::%s reference "
                "implementation" % (name, name),
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

SOURCE_DIRS = ("src", "bench", "tools", "examples")
SOURCE_EXTS = (".cc", ".h", ".cpp")
KERNELS_HEADER = os.path.join("src", "compression", "kernels.h")


def files_from_compile_db(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        return None
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    files = set()
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        rel = os.path.relpath(path, REPO_ROOT)
        if rel.split(os.sep)[0] in SOURCE_DIRS and rel.endswith(SOURCE_EXTS):
            files.add(path)
    return sorted(files)


def walk_source_tree():
    files = []
    for top in SOURCE_DIRS:
        for dirpath, _, names in os.walk(os.path.join(REPO_ROOT, top)):
            for name in names:
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def repo_headers():
    files = []
    for dirpath, _, names in os.walk(os.path.join(REPO_ROOT, "src")):
        for name in names:
            if name.endswith(".h"):
                files.append(os.path.join(dirpath, name))
    return files


def lint_file(path, everywhere=False):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    allows = collect_allows(text)
    stripped = strip_comments_and_strings(text)
    comment_stripped = strip_comments(text)
    findings = []
    findings += check_raw_mutex(path, stripped, everywhere)
    findings += check_epoch_compat(path, stripped, everywhere)
    findings += check_row_count_int(path, stripped, everywhere)
    findings += check_metric_name_concat(path, comment_stripped, everywhere)
    norm = path.replace(os.sep, "/")
    if norm.endswith(KERNELS_HEADER.replace(os.sep, "/")) or (
        everywhere and "kernel_parity" in os.path.basename(path)
    ):
        findings += check_kernel_parity(path, stripped)
    return [
        (line, rule, msg)
        for line, rule, msg in findings
        if rule not in allows.get(line, ())
    ]


def run_lint(paths):
    total = 0
    for path in paths:
        for line, rule, msg in lint_file(path):
            rel = os.path.relpath(path, REPO_ROOT)
            print("%s:%d: [%s] %s" % (rel, line, rule, msg))
            total += 1
    if total:
        print("cfest_lint: %d finding(s)" % total, file=sys.stderr)
        return 1
    return 0


def run_fixture_check():
    """Self-test: every fixture file named <rule-with-underscores>_*.cc must
    trip exactly that rule; every ok_*.cc must be clean."""
    fixture_dir = os.path.join(REPO_ROOT, "tests", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print("cfest_lint: missing %s" % fixture_dir, file=sys.stderr)
        return 1
    failures = 0
    checked = 0
    for name in sorted(os.listdir(fixture_dir)):
        if not name.endswith(SOURCE_EXTS):
            continue
        path = os.path.join(fixture_dir, name)
        findings = lint_file(path, everywhere=True)
        rules_hit = {rule for _, rule, _ in findings}
        checked += 1
        if name.startswith("ok_"):
            if findings:
                print(
                    "FIXTURE FAIL %s: expected clean, got %s"
                    % (name, sorted(rules_hit)),
                    file=sys.stderr,
                )
                failures += 1
            continue
        expected = None
        for rule in ("raw-mutex", "epoch-compat", "kernel-parity",
                     "row-count-int", "metric-name-concat"):
            if name.startswith(rule.replace("-", "_")):
                expected = rule
                break
        if expected is None:
            print(
                "FIXTURE FAIL %s: name matches no rule id" % name,
                file=sys.stderr,
            )
            failures += 1
        elif expected not in rules_hit:
            print(
                "FIXTURE FAIL %s: expected [%s], got %s"
                % (name, expected, sorted(rules_hit) or "no findings"),
                file=sys.stderr,
            )
            failures += 1
    if checked == 0:
        print("cfest_lint: no fixtures found", file=sys.stderr)
        return 1
    if failures:
        return 1
    print("cfest_lint: %d fixture(s) OK" % checked)
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-p",
        dest="build_dir",
        help="build directory holding compile_commands.json",
    )
    parser.add_argument(
        "--check-fixtures",
        action="store_true",
        help="self-test the rules against tests/lint_fixtures",
    )
    parser.add_argument("files", nargs="*", help="explicit files to lint")
    args = parser.parse_args()

    if args.check_fixtures:
        return run_fixture_check()

    if args.files:
        paths = [os.path.abspath(f) for f in args.files]
    elif args.build_dir:
        paths = files_from_compile_db(args.build_dir)
        if paths is None:
            print(
                "cfest_lint: no compile_commands.json in %s; walking the "
                "source tree" % args.build_dir,
                file=sys.stderr,
            )
            paths = walk_source_tree()
        else:
            paths = sorted(set(paths) | set(repo_headers()))
    else:
        paths = walk_source_tree()
    return run_lint(paths)


if __name__ == "__main__":
    sys.exit(main())
