#!/usr/bin/env python3
"""Validate exported observability JSON against a checked-in schema.

Dependency-free (stdlib json only): implements exactly the JSON Schema
subset the schemas under tools/schemas/ use — type, enum, minimum,
required, properties, patternProperties, additionalProperties (false or
schema), items (single schema), minItems, maxItems, oneOf (exactly one
branch must validate). Anything else in a schema is a hard error, so a
schema edit can't silently skip validation.

Usage:
  validate_metrics_json.py <schema.json> <doc.json> [<doc.json> ...]
  validate_metrics_json.py --extract metrics <schema.json> <bench.json> ...

--extract KEY validates doc[KEY] instead of the document root — used for
the metrics snapshot embedded in bench JSON lines. Exits nonzero with
path-annotated errors on the first invalid document.
"""

import json
import re
import sys

_KNOWN_KEYS = {
    "$schema", "title", "description", "type", "enum", "minimum",
    "required", "properties", "patternProperties", "additionalProperties",
    "items", "minItems", "maxItems", "oneOf",
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
    "null": type(None),
}


def _check_type(value, expected, path, errors):
    py = _TYPES[expected]
    # bool is an int subclass in Python; never accept it for numerics.
    if expected in ("integer", "number") and isinstance(value, bool):
        errors.append(f"{path}: expected {expected}, got boolean")
        return False
    if not isinstance(value, py):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return False
    return True


def validate(value, schema, path, errors):
    unknown = set(schema) - _KNOWN_KEYS
    if unknown:
        raise SystemExit(
            f"schema error at {path}: unsupported keywords {sorted(unknown)}")

    if "oneOf" in schema:
        matches = []
        branch_errors = []
        for i, branch in enumerate(schema["oneOf"]):
            errs = []
            validate(value, branch, path, errs)
            if not errs:
                matches.append(i)
            else:
                branch_errors.append(f"branch {i}: {errs[0]}")
        if len(matches) != 1:
            detail = "; ".join(branch_errors[:3])
            errors.append(
                f"{path}: matched {len(matches)} of {len(schema['oneOf'])} "
                f"oneOf branches (need exactly 1): {detail}")
            return

    if "type" in schema and not _check_type(value, schema["type"], path, errors):
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']}")
        return
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        props = schema.get("properties", {})
        patterns = {re.compile(p): s
                    for p, s in schema.get("patternProperties", {}).items()}
        extra = schema.get("additionalProperties", True)
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, item in value.items():
            sub = f"{path}.{key}"
            matched = False
            if key in props:
                matched = True
                validate(item, props[key], sub, errors)
            for pattern, pattern_schema in patterns.items():
                if pattern.search(key):
                    matched = True
                    validate(item, pattern_schema, sub, errors)
            if not matched:
                if extra is False:
                    errors.append(f"{path}: unexpected key {key!r}")
                elif isinstance(extra, dict):
                    validate(item, extra, sub, errors)

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: {len(value)} items < minItems "
                          f"{schema['minItems']}")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            errors.append(f"{path}: {len(value)} items > maxItems "
                          f"{schema['maxItems']}")
        if "items" in schema:
            for i, item in enumerate(value):
                validate(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    args = argv[1:]
    extract = None
    if args and args[0] == "--extract":
        if len(args) < 2:
            raise SystemExit("--extract requires a key")
        extract = args[1]
        args = args[2:]
    if len(args) < 2:
        raise SystemExit(__doc__)

    with open(args[0], encoding="utf-8") as f:
        schema = json.load(f)

    failed = False
    for doc_path in args[1:]:
        with open(doc_path, encoding="utf-8") as f:
            doc = json.load(f)
        if extract is not None:
            if not isinstance(doc, dict) or extract not in doc:
                print(f"{doc_path}: no {extract!r} key to extract",
                      file=sys.stderr)
                failed = True
                continue
            doc = doc[extract]
        errors = []
        validate(doc, schema, "$", errors)
        if errors:
            failed = True
            for err in errors:
                print(f"{doc_path}: {err}", file=sys.stderr)
        else:
            print(f"{doc_path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
