#!/usr/bin/env python3
"""Compare fresh bench JSON against the checked-in baselines under
bench/baselines/.

Every bench prints one `JSON {...}` object per run (extracted by CI into
bench-results/<bench>.json). This tool diffs those objects field by field
against the baseline of the same filename:

  - the embedded "metrics" registry snapshot is skipped (absolute counter
    values are workload-version- and machine-specific; the snapshot's
    SHAPE is validated separately by validate_metrics_json.py);
  - machine-identity fields (thread counts, SIMD level, ...) are skipped;
  - performance fields (names containing seconds/us/ns/ms/speedup/
    throughput/overhead/ratio) are compared with a wide relative
    tolerance (--perf-tolerance, default 0.60: CI runners and dev boxes
    differ, a regression an order past that is still caught);
  - everything else — workload shape, equality-gate booleans, mismatch
    counts, rows-saved totals — is deterministic under the benches' fixed
    seeds and must match exactly.

By default findings are WARNINGS and the exit code is 0 (CI soft-warns on
perf drift it cannot attribute to the code under test); with --strict any
finding exits 1 (for local A/B runs on one quiet machine).

Usage:
  bench_compare.py [--strict] [--perf-tolerance R] BASELINE_DIR FRESH_DIR
"""

import argparse
import json
import os
import sys

PERF_KEY_TOKENS = (
    "seconds", "_us", "_ns", "_ms", "speedup", "throughput", "overhead",
    "ratio", "per_sec", "qps", "latency",
)
SKIP_KEYS = {"metrics"}
SKIP_KEY_TOKENS = ("threads", "simd", "cpu", "host")


def is_perf_key(key):
    k = key.lower()
    return any(tok in k for tok in PERF_KEY_TOKENS)


def is_skipped_key(key):
    if key in SKIP_KEYS:
        return True
    k = key.lower()
    return any(tok in k for tok in SKIP_KEY_TOKENS)


def compare(baseline, fresh, path, perf_tolerance, findings):
    if isinstance(baseline, dict) and isinstance(fresh, dict):
        for key in sorted(set(baseline) | set(fresh)):
            sub = f"{path}.{key}" if path else key
            if is_skipped_key(key):
                continue
            if key not in fresh:
                findings.append(f"{sub}: missing from fresh run")
            elif key not in baseline:
                findings.append(f"{sub}: new field (not in baseline)")
            else:
                key_tolerance = perf_tolerance if is_perf_key(key) else None
                compare_value(baseline[key], fresh[key], sub, key_tolerance,
                              perf_tolerance, findings)
        return
    compare_value(baseline, fresh, path, None, perf_tolerance, findings)


def compare_value(baseline, fresh, path, tolerance, perf_tolerance,
                  findings):
    if isinstance(baseline, dict) or isinstance(fresh, dict):
        if type(baseline) is not type(fresh):
            findings.append(f"{path}: type changed "
                            f"({type(baseline).__name__} -> "
                            f"{type(fresh).__name__})")
            return
        compare(baseline, fresh, path, perf_tolerance, findings)
        return
    if isinstance(baseline, list) or isinstance(fresh, list):
        if type(baseline) is not type(fresh):
            findings.append(f"{path}: type changed")
            return
        if len(baseline) != len(fresh):
            findings.append(f"{path}: length {len(baseline)} -> "
                            f"{len(fresh)}")
            return
        for i, (b, f) in enumerate(zip(baseline, fresh)):
            compare_value(b, f, f"{path}[{i}]", tolerance, perf_tolerance,
                          findings)
        return
    numeric = (int, float)
    if isinstance(baseline, numeric) and not isinstance(baseline, bool) \
            and isinstance(fresh, numeric) and not isinstance(fresh, bool):
        if tolerance is not None:
            # Perf field: relative drift beyond the tolerance is a finding.
            scale = max(abs(baseline), abs(fresh), 1e-12)
            drift = abs(baseline - fresh) / scale
            if drift > tolerance:
                findings.append(
                    f"{path}: perf drift {drift:.0%} beyond "
                    f"{tolerance:.0%} (baseline {baseline}, fresh {fresh})")
        else:
            # Deterministic field: must match (tiny float slack for
            # formatting round-trips).
            if isinstance(baseline, float) or isinstance(fresh, float):
                scale = max(abs(baseline), abs(fresh), 1e-12)
                if abs(baseline - fresh) / scale > 1e-6:
                    findings.append(f"{path}: {baseline} -> {fresh}")
            elif baseline != fresh:
                findings.append(f"{path}: {baseline} -> {fresh}")
        return
    if baseline != fresh:
        findings.append(f"{path}: {baseline!r} -> {fresh!r}")


def load_jsonl(path):
    objects = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                objects.append(json.loads(line))
    return objects


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any finding (default: warn only)")
    parser.add_argument("--perf-tolerance", type=float, default=0.60,
                        help="relative tolerance for perf fields")
    parser.add_argument("baseline_dir")
    parser.add_argument("fresh_dir")
    args = parser.parse_args(argv[1:])

    baseline_files = sorted(
        name for name in os.listdir(args.baseline_dir)
        if name.endswith(".json"))
    if not baseline_files:
        print(f"bench_compare: no baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 1

    total = 0
    compared = 0
    for name in baseline_files:
        fresh_path = os.path.join(args.fresh_dir, name)
        if not os.path.isfile(fresh_path):
            print(f"WARN {name}: no fresh run to compare", file=sys.stderr)
            total += 1
            continue
        baseline_objs = load_jsonl(os.path.join(args.baseline_dir, name))
        fresh_objs = load_jsonl(fresh_path)
        if len(baseline_objs) != len(fresh_objs):
            print(f"WARN {name}: {len(baseline_objs)} baseline object(s) vs "
                  f"{len(fresh_objs)} fresh", file=sys.stderr)
            total += 1
            continue
        findings = []
        for i, (b, f) in enumerate(zip(baseline_objs, fresh_objs)):
            prefix = f"[{i}]" if len(baseline_objs) > 1 else ""
            compare(b, f, prefix, args.perf_tolerance, findings)
        compared += 1
        if findings:
            total += len(findings)
            for finding in findings:
                print(f"WARN {name}: {finding}", file=sys.stderr)
        else:
            print(f"{name}: OK")

    if total:
        print(f"bench_compare: {total} finding(s) across "
              f"{len(baseline_files)} baseline(s)", file=sys.stderr)
        return 1 if args.strict else 0
    print(f"bench_compare: {compared} bench(es) match baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
