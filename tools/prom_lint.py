#!/usr/bin/env python3
"""Lint a Prometheus text-exposition file (the `/metrics` payload or a
`--metrics-out <file>.prom` dump) against the exposition-format rules the
cfest exporter promises:

  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
  - label names match [a-zA-Z_][a-zA-Z0-9_]* (no colons)
  - label values use only the legal escapes (\\\\, \\", \\n) and close
    their quotes on the same line
  - every `# TYPE` is immediately preceded by the family's `# HELP`
  - every sample belongs to the most recently declared TYPE family
    (histogram samples may extend the family name with _bucket/_sum/_count)
  - sample values parse as numbers
  - a family is declared at most once (no duplicate TYPE lines)

Pure stdlib. Usage: prom_lint.py <file> [<file> ...]; reads stdin when
given `-`. Exits nonzero on the first file with findings.
"""

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_labels(text, errors, where):
    """Validates the `name="value",...` body of a label set; returns the
    label names seen."""
    names = []
    i = 0
    n = len(text)
    while i < n:
        eq = text.find("=", i)
        if eq < 0:
            errors.append(f"{where}: malformed label set near {text[i:]!r}")
            return names
        name = text[i:eq].strip()
        if not LABEL_NAME_RE.match(name):
            errors.append(f"{where}: bad label name {name!r}")
        names.append(name)
        if eq + 1 >= n or text[eq + 1] != '"':
            errors.append(f"{where}: label {name!r} value is not quoted")
            return names
        j = eq + 2
        closed = False
        while j < n:
            c = text[j]
            if c == "\\":
                if j + 1 >= n or text[j + 1] not in ('"', "\\", "n"):
                    errors.append(
                        f"{where}: illegal escape in label {name!r} "
                        f"(only \\\\, \\\", \\n allowed)")
                j += 2
                continue
            if c == '"':
                closed = True
                break
            j += 1
        if not closed:
            errors.append(f"{where}: unterminated value for label {name!r}")
            return names
        i = j + 1
        if i < n:
            if text[i] != ",":
                errors.append(
                    f"{where}: expected ',' between labels, got {text[i]!r}")
                return names
            i += 1
    return names


def lint_text(text, filename):
    errors = []
    declared = {}          # family name -> type
    pending_help = None    # family named by the last # HELP line
    current_family = None  # family of the most recent # TYPE line
    current_type = None

    for lineno, line in enumerate(text.split("\n"), start=1):
        where = f"{filename}:{lineno}"
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Free-form comment: legal, resets nothing.
                continue
            kind, name = parts[1], parts[2]
            if not METRIC_NAME_RE.match(name):
                errors.append(f"{where}: bad metric name {name!r} in {kind}")
            if kind == "HELP":
                pending_help = name
                continue
            # TYPE
            mtype = parts[3].strip() if len(parts) > 3 else ""
            if mtype not in TYPES:
                errors.append(f"{where}: bad TYPE {mtype!r} for {name}")
            if pending_help != name:
                errors.append(
                    f"{where}: # TYPE {name} not immediately preceded by "
                    f"its # HELP")
            if name in declared:
                errors.append(f"{where}: duplicate TYPE for family {name}")
            declared[name] = mtype
            current_family = name
            current_type = mtype
            pending_help = None
            continue

        # Sample line: name[{labels}] value [timestamp]
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)"
                         r"(\s+-?\d+)?\s*$", line)
        if not match:
            errors.append(f"{where}: unparseable sample line {line!r}")
            continue
        name, _, labels, value = match.group(1, 2, 3, 4)
        label_names = parse_labels(labels, errors, where) if labels else []
        try:
            float(value)
        except ValueError:
            if value not in ("+Inf", "-Inf", "NaN"):
                errors.append(f"{where}: non-numeric value {value!r}")
        if current_family is None:
            errors.append(f"{where}: sample {name} before any # TYPE")
            continue
        allowed = {current_family}
        if current_type == "histogram":
            allowed.update(current_family + s for s in HISTOGRAM_SUFFIXES)
        if name not in allowed:
            errors.append(
                f"{where}: sample {name} does not belong to the current "
                f"family {current_family}")
        if name.endswith("_bucket") and "le" not in label_names:
            errors.append(f"{where}: _bucket sample without an le label")
    return errors


def main(argv):
    files = argv[1:]
    if not files:
        raise SystemExit(__doc__)
    failed = False
    for path in files:
        if path == "-":
            text = sys.stdin.read()
            name = "<stdin>"
        else:
            with open(path, encoding="utf-8") as f:
                text = f.read()
            name = path
        errors = lint_text(text, name)
        if errors:
            failed = True
            for err in errors:
                print(err, file=sys.stderr)
        else:
            print(f"{name}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
