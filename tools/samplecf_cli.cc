// samplecf — command-line front end for the library.
//
// Subcommands:
//   estimate  <csv> <schema-spec> <key-cols> <scheme> [fraction] [seed]
//       SampleCF estimate of the compression fraction for an index on the
//       given comma-separated key columns.
//   exact     <csv> <schema-spec> <key-cols> <scheme>
//       Full build-and-compress ground truth (slow on big files).
//   recommend <csv> <schema-spec> <key-cols> [fraction] [seed]
//       Per-column best-scheme recommendation from one sample.
//   batch     <csv> <schema-spec> --candidates <file> [--threads N]
//             [--target-rel-error E] [--confidence C] [--json]
//             [fraction] [seed]
//       Sizes every (key-columns, scheme) pair in <file> through the
//       EstimationEngine in one invocation: one shared sample, one index
//       build per distinct key set, and a comparison table at the end.
//       Each line of <file> is "key-cols scheme [clustered]"; blank lines
//       and lines starting with '#' are skipped. With --target-rel-error
//       the sample grows adaptively (estimator/adaptive.h) until every
//       candidate's CF' interval is within E relative at confidence C
//       (default 0.95); [fraction] is then the starting fraction. --json
//       additionally emits one "JSON {...}" line per candidate with
//       rows_sampled and confidence-interval fields.
//   advise    --catalog <dir> --candidates <file> [--bound <bytes>]
//             [--strategy greedy|optimal|lazy] [--threads N]
//             [--target-rel-error E] [--confidence C] [--json]
//             [fraction] [seed]
//       Catalog-level what-if pass: loads every <name>.csv + <name>.schema
//       pair in <dir> into a catalog and sizes a mixed-table candidate
//       file in one CatalogEstimationService fan-out (one engine and one
//       sample per table, shared thread pool). Each candidate line is
//       "table key-cols scheme [clustered] [benefit]". With --bound, also
//       prints the advisor's recommendation under the storage bound:
//       greedy (default) is the benefit-density heuristic, optimal the
//       exact search (<= 24 candidates), and lazy the interval-driven
//       branch-and-bound (advisor/search.h) that sizes candidates only as
//       precisely as its decisions need — it requires --bound, has no
//       candidate cap, and honors --target-rel-error / --confidence as
//       the refinement precision. For greedy/optimal,
//       --target-rel-error / --confidence / --json work as in batch (each
//       table's sample grows independently toward the shared target).
//   analyze   <csv> <schema-spec>
//       Per-column profile: distinct counts, length stats, heavy hitters,
//       and closed-form NS / dictionary CF predictions.
//   gen-tpch  <scale-factor> <output-dir>
//       Writes the seven synthetic TPC-H tables as CSV plus .schema files.
//
// Every subcommand additionally accepts [--metrics-out <file>] (dump a
// metric-registry snapshot after the run: Prometheus text exposition for
// .prom/.txt paths, JSON otherwise), [--trace-out <file>] (record trace
// spans during the run and dump Chrome-trace JSON for chrome://tracing or
// ui.perfetto.dev), and [--telemetry-port <port>] (serve /metrics
// Prometheus text, /metrics.json, and /healthz over HTTP for the run's
// duration; port 0 picks an ephemeral port, printed to stderr). With
// [--telemetry-hold-ms <ms>] the endpoint stays up that long after the
// command finishes, so an external scraper (a CI step, a curl) can read
// the final counters from a live process.
//
// Scheme names: none, null_suppression, dictionary_page, dictionary_global,
// rle, prefix, delta, prefix_dictionary.
//
// Example:
//   samplecf_cli gen-tpch 0.01 /tmp/tpch
//   samplecf_cli estimate /tmp/tpch/lineitem.csv
//       "$(cat /tmp/tpch/lineitem.schema)" l_shipmode dictionary_page 0.01
//   (one shell line; wrap with a backslash continuation in practice)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/search.h"
#include "common/format.h"
#include "common/json_writer.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "datagen/tpch/tables.h"
#include "estimator/adaptive.h"
#include "estimator/column_profile.h"
#include "estimator/compression_fraction.h"
#include "estimator/engine.h"
#include "estimator/sample_cf.h"
#include "estimator/scheme_advisor.h"
#include "estimator/service.h"
#include "server/telemetry_http.h"
#include "storage/csv.h"

namespace cfest {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << content;
  return Status::OK();
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    parts.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return parts;
}

Result<std::unique_ptr<Table>> LoadTable(const std::string& csv_path,
                                         const std::string& schema_spec) {
  CFEST_ASSIGN_OR_RETURN(Schema schema, ParseSchemaSpec(schema_spec));
  CFEST_ASSIGN_OR_RETURN(std::string content, ReadFile(csv_path));
  return LoadCsv(content, schema, /*has_header=*/true);
}

/// Strips "--flag <value>" from `args`; returns the value or `fallback`.
Result<std::string> StripFlag(std::vector<std::string>* args,
                              const std::string& flag,
                              const std::string& fallback) {
  for (size_t i = 0; i < args->size(); ++i) {
    if ((*args)[i] != flag) continue;
    if (i + 1 >= args->size()) {
      return Status::InvalidArgument(flag + " needs a value");
    }
    const std::string value = (*args)[i + 1];
    args->erase(args->begin() + static_cast<ptrdiff_t>(i),
                args->begin() + static_cast<ptrdiff_t>(i) + 2);
    return value;
  }
  return fallback;
}

/// Strips a value-less "--flag" from `args`; returns whether it was present.
bool StripBoolFlag(std::vector<std::string>* args, const std::string& flag) {
  for (size_t i = 0; i < args->size(); ++i) {
    if ((*args)[i] != flag) continue;
    args->erase(args->begin() + static_cast<ptrdiff_t>(i));
    return true;
  }
  return false;
}

/// Strict numeric argument parsing (common/format.h), naming the flag in
/// the failure: "--bound 10GB" must fail with a usage message, not
/// silently become 10 bytes the way bare strtoull would parse it.
Result<uint64_t> ParseUint64Arg(const std::string& text, const char* what) {
  Result<uint64_t> value = ParseUint64(text);
  if (!value.ok()) {
    return Status::InvalidArgument(std::string(what) + ": " +
                                   value.status().message());
  }
  return value;
}

Result<double> ParseDoubleArg(const std::string& text, const char* what) {
  Result<double> value = ParseDouble(text);
  if (!value.ok()) {
    return Status::InvalidArgument(std::string(what) + ": " +
                                   value.status().message());
  }
  return value;
}

/// `--threads`: 0 resolves to hardware concurrency (ThreadPool's rule,
/// applied when the pool is built). A count beyond any plausible
/// oversubscription budget — more than 8x the machine's cores — is almost
/// certainly a typo'd or hostile value; it is clamped to hardware
/// concurrency with a warning instead of silently spawning thousands of
/// threads.
Result<uint32_t> ParseThreadsArg(const std::string& text) {
  CFEST_ASSIGN_OR_RETURN(const uint64_t value,
                         ParseUint64Arg(text, "--threads"));
  const uint32_t hw = ThreadPool::ResolveThreadCount(0);
  const uint64_t cap = 8ull * hw;
  if (value > cap) {
    std::fprintf(stderr,
                 "warning: --threads %llu exceeds 8x hardware concurrency "
                 "(%u cores); clamping to %u\n",
                 static_cast<unsigned long long>(value), hw, hw);
    return hw;
  }
  return static_cast<uint32_t>(value);
}

/// Precision / reporting flags shared by batch and advise.
struct PrecisionCliOptions {
  bool adaptive = false;  // --target-rel-error given
  bool json = false;
  PrecisionTarget target;
};

Result<PrecisionCliOptions> StripPrecisionFlags(
    std::vector<std::string>* args) {
  PrecisionCliOptions out;
  CFEST_ASSIGN_OR_RETURN(std::string rel,
                         StripFlag(args, "--target-rel-error", ""));
  CFEST_ASSIGN_OR_RETURN(std::string confidence,
                         StripFlag(args, "--confidence", ""));
  out.json = StripBoolFlag(args, "--json");
  if (!rel.empty()) {
    out.adaptive = true;
    CFEST_ASSIGN_OR_RETURN(out.target.rel_error,
                           ParseDoubleArg(rel, "--target-rel-error"));
  }
  if (!confidence.empty()) {
    CFEST_ASSIGN_OR_RETURN(out.target.confidence,
                           ParseDoubleArg(confidence, "--confidence"));
  }
  return out;
}

std::string JoinKeys(const IndexDescriptor& index) {
  std::string keys;
  for (const std::string& k : index.key_columns) {
    if (!keys.empty()) keys += ",";
    keys += k;
  }
  return keys;
}

/// One "JSON {...}" line per candidate, so precision is scrapeable without
/// the bench harness. `adaptive` is null for fixed-fraction runs (the
/// interval then comes from EstimateCandidateInterval around `ci_cf`).
void PrintCandidateJson(const SizedCandidate& sized, double ci_cf,
                        const ConfidenceInterval& interval,
                        const std::string& method, SizeMetric ci_metric,
                        double confidence,
                        const AdaptiveCandidateResult* adaptive) {
  JsonWriter json;
  json.AddString("index", sized.config.index.name);
  if (!sized.config.table_name.empty()) {
    json.AddString("table", sized.config.table_name);
  }
  json.AddString("keys", JoinKeys(sized.config.index));
  json.AddString("scheme", sized.config.scheme.ToString());
  json.AddBool("clustered", sized.config.index.clustered);
  json.AddDouble("cf", sized.estimated_cf);
  json.AddInt("est_bytes", static_cast<int64_t>(sized.estimated_bytes));
  json.AddInt("uncompressed_bytes",
              static_cast<int64_t>(sized.uncompressed_bytes));
  json.AddInt("rows_sampled", static_cast<int64_t>(sized.sample_rows));
  json.AddDouble("ci_cf", ci_cf);
  json.AddDouble("ci_lower", interval.lower);
  json.AddDouble("ci_upper", interval.upper);
  json.AddString("ci_metric", SizeMetricName(ci_metric));
  json.AddString("ci_method", method);
  json.AddDouble("confidence", confidence);
  if (adaptive != nullptr) {
    json.AddBool("converged", adaptive->converged);
    json.AddInt("rounds", adaptive->rounds);
    json.AddDouble("target_half_width", adaptive->target_half_width);
    json.AddInt("cumulative_rows_sized",
                static_cast<int64_t>(adaptive->cumulative_rows_sized));
  }
  json.Print();
}

/// Fixed-fraction JSON path: batch-computes the base-metric CF' estimates
/// and their intervals (replicate index builds shared per key set, exactly
/// like one adaptive round) and prints one line per candidate.
Status PrintFixedCandidatesJson(EstimationEngine& engine,
                                const std::vector<SizedCandidate>& sized,
                                double confidence) {
  CFEST_ASSIGN_OR_RETURN(const double z, NumSigmasForConfidence(confidence));
  std::vector<CandidateConfiguration> configs;
  configs.reserve(sized.size());
  for (const SizedCandidate& s : sized) configs.push_back(s.config);
  ThreadPool* pool =
      engine.options().num_threads != 1 ? engine.shared_pool() : nullptr;
  CFEST_ASSIGN_OR_RETURN(
      std::vector<CandidateIntervalResult> intervals,
      EstimateCandidateIntervals(engine, configs, z,
                                 PrecisionTarget{}.interval_groups, pool));
  for (size_t i = 0; i < sized.size(); ++i) {
    PrintCandidateJson(sized[i], intervals[i].cf, intervals[i].interval,
                       intervals[i].method, engine.options().base.metric,
                       confidence, nullptr);
  }
  return Status::OK();
}

int CmdEstimate(const std::vector<std::string>& args) {
  if (args.size() < 4) {
    return Fail(
        "usage: estimate <csv> <schema-spec> <key-cols> <scheme> "
        "[fraction] [seed]");
  }
  auto table = LoadTable(args[0], args[1]);
  if (!table.ok()) return Fail(table.status().ToString());
  auto scheme_type = CompressionTypeFromName(args[3]);
  if (!scheme_type.ok()) return Fail(scheme_type.status().ToString());
  SampleCFOptions options;
  options.fraction = 0.01;
  uint64_t seed = 42;
  if (args.size() > 4) {
    auto fraction = ParseDoubleArg(args[4], "fraction");
    if (!fraction.ok()) return Fail(fraction.status().ToString());
    options.fraction = *fraction;
  }
  if (args.size() > 5) {
    auto parsed = ParseUint64Arg(args[5], "seed");
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    seed = *parsed;
  }
  Random rng(seed);
  IndexDescriptor index{"ix", SplitCommas(args[2]), /*clustered=*/false};
  auto result = SampleCF(**table, index, CompressionScheme::Uniform(*scheme_type),
                         options, &rng);
  if (!result.ok()) return Fail(result.status().ToString());
  std::printf("rows            %llu\n",
              static_cast<unsigned long long>((*table)->num_rows()));
  std::printf("sample rows     %llu (f = %.4f)\n",
              static_cast<unsigned long long>(result->sample_rows),
              options.fraction);
  std::printf("estimated CF'   %.4f\n", result->cf.value);
  std::printf("sample size     %s compressed / %s uncompressed\n",
              HumanBytes(result->cf.compressed_bytes).c_str(),
              HumanBytes(result->cf.uncompressed_bytes).c_str());
  return 0;
}

int CmdExact(const std::vector<std::string>& args) {
  if (args.size() < 4) {
    return Fail("usage: exact <csv> <schema-spec> <key-cols> <scheme>");
  }
  auto table = LoadTable(args[0], args[1]);
  if (!table.ok()) return Fail(table.status().ToString());
  auto scheme_type = CompressionTypeFromName(args[3]);
  if (!scheme_type.ok()) return Fail(scheme_type.status().ToString());
  IndexDescriptor index{"ix", SplitCommas(args[2]), false};
  auto cf = ComputeTrueCF(**table, index,
                          CompressionScheme::Uniform(*scheme_type));
  if (!cf.ok()) return Fail(cf.status().ToString());
  std::printf("exact CF        %.4f (%s / %s)\n", cf->value,
              HumanBytes(cf->compressed_bytes).c_str(),
              HumanBytes(cf->uncompressed_bytes).c_str());
  return 0;
}

int CmdRecommend(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    return Fail(
        "usage: recommend <csv> <schema-spec> <key-cols> [fraction] [seed]");
  }
  auto table = LoadTable(args[0], args[1]);
  if (!table.ok()) return Fail(table.status().ToString());
  SampleCFOptions options;
  options.fraction = 0.01;
  uint64_t seed = 42;
  if (args.size() > 3) {
    auto fraction = ParseDoubleArg(args[3], "fraction");
    if (!fraction.ok()) return Fail(fraction.status().ToString());
    options.fraction = *fraction;
  }
  if (args.size() > 4) {
    auto parsed = ParseUint64Arg(args[4], "seed");
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    seed = *parsed;
  }
  Random rng(seed);
  IndexDescriptor index{"ix", SplitCommas(args[2]), /*clustered=*/true};
  auto rec = RecommendScheme(**table, index, {}, options, &rng);
  if (!rec.ok()) return Fail(rec.status().ToString());
  TablePrinter out({"column", "recommended", "est. column CF"});
  for (const ColumnRecommendation& col : rec->columns) {
    out.AddRow({col.column_name, CompressionTypeName(col.best),
                FormatDouble(col.estimated_cf)});
  }
  out.Print();
  std::printf("\nestimated whole-index CF under this scheme: %.4f (from %llu "
              "sampled rows)\n",
              rec->estimated_cf,
              static_cast<unsigned long long>(rec->sample_rows));
  return 0;
}

/// Parses one "key-cols scheme [clustered]" candidate line.
Result<CandidateConfiguration> ParseCandidateLine(const std::string& line,
                                                  size_t line_number) {
  std::istringstream in(line);
  std::string key_cols, scheme_name, clustered, extra;
  in >> key_cols >> scheme_name >> clustered >> extra;
  if (key_cols.empty() || scheme_name.empty()) {
    return Status::InvalidArgument(
        "candidates line " + std::to_string(line_number) +
        ": expected \"key-cols scheme [clustered]\", got \"" + line + "\"");
  }
  if (!extra.empty()) {
    return Status::InvalidArgument(
        "candidates line " + std::to_string(line_number) +
        ": unexpected trailing token \"" + extra + "\"");
  }
  CFEST_ASSIGN_OR_RETURN(CompressionType type,
                         CompressionTypeFromName(scheme_name));
  CandidateConfiguration c;
  c.index.name = "ix_" + key_cols + "_" + scheme_name;
  c.index.key_columns = SplitCommas(key_cols);
  c.index.clustered = clustered == "clustered";
  if (!clustered.empty() && !c.index.clustered) {
    return Status::InvalidArgument(
        "candidates line " + std::to_string(line_number) +
        ": trailing token must be \"clustered\", got \"" + clustered + "\"");
  }
  c.scheme = CompressionScheme::Uniform(type);
  return c;
}

int CmdBatch(std::vector<std::string> args) {
  // batch <csv> <schema-spec> --candidates <file> [--threads N]
  //       [--target-rel-error E] [--confidence C] [--json]
  //       [fraction] [seed]
  auto threads = StripFlag(&args, "--threads", "0");
  if (!threads.ok()) return Fail(threads.status().ToString());
  auto precision = StripPrecisionFlags(&args);
  if (!precision.ok()) return Fail(precision.status().ToString());
  if (args.size() < 4 || args[2] != "--candidates") {
    return Fail(
        "usage: batch <csv> <schema-spec> --candidates <file> "
        "[--threads N] [--target-rel-error E] [--confidence C] [--json] "
        "[fraction] [seed]");
  }
  auto table = LoadTable(args[0], args[1]);
  if (!table.ok()) return Fail(table.status().ToString());
  auto spec = ReadFile(args[3]);
  if (!spec.ok()) return Fail(spec.status().ToString());

  std::vector<CandidateConfiguration> candidates;
  std::istringstream lines(*spec);
  std::string line;
  size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    auto candidate = ParseCandidateLine(line, line_number);
    if (!candidate.ok()) return Fail(candidate.status().ToString());
    candidates.push_back(std::move(*candidate));
  }
  if (candidates.empty()) return Fail("no candidates in " + args[3]);

  EstimationEngineOptions options;
  options.base.fraction = 0.01;
  options.seed = 42;
  if (args.size() > 4) {
    auto fraction = ParseDoubleArg(args[4], "fraction");
    if (!fraction.ok()) return Fail(fraction.status().ToString());
    options.base.fraction = *fraction;
  }
  if (args.size() > 5) {
    auto seed = ParseUint64Arg(args[5], "seed");
    if (!seed.ok()) return Fail(seed.status().ToString());
    options.seed = *seed;
  }
  auto num_threads = ParseThreadsArg(*threads);
  if (!num_threads.ok()) return Fail(num_threads.status().ToString());
  options.num_threads = *num_threads;
  EstimationEngine engine(**table, options);

  if (precision->adaptive) {
    auto adaptive = EstimateAllAdaptive(engine, candidates, precision->target);
    if (!adaptive.ok()) return Fail(adaptive.status().ToString());
    TablePrinter out({"key columns", "scheme", "est. CF'", "est. size",
                      "rows", "CF' interval", "ok"});
    for (const AdaptiveCandidateResult& r : adaptive->candidates) {
      std::string keys = JoinKeys(r.sized.config.index);
      if (r.sized.config.index.clustered) keys += " (clustered)";
      out.AddRow({keys, r.sized.config.scheme.ToString(),
                  FormatDouble(r.sized.estimated_cf),
                  HumanBytes(r.sized.estimated_bytes),
                  std::to_string(r.rows_sampled),
                  "[" + FormatDouble(r.interval.lower) + ", " +
                      FormatDouble(r.interval.upper) + "]",
                  r.converged ? "yes" : "NO"});
    }
    out.Print();
    const AdaptiveTableReport& report = adaptive->tables[0];
    const std::string schedule = FormatGrowthSchedule(report.rows_per_round);
    const EstimationEngine::CacheStats stats = engine.cache_stats();
    std::printf(
        "\n%zu candidates; rel. error target %.3g at %.3g confidence; %u "
        "growth round(s): %s rows%s; %llu index extension(s), %llu cache "
        "hit(s)\n",
        adaptive->candidates.size(), precision->target.rel_error,
        precision->target.confidence, report.rounds, schedule.c_str(),
        report.budget_exhausted ? " (budget exhausted)" : "",
        static_cast<unsigned long long>(stats.index_extensions),
        static_cast<unsigned long long>(stats.index_cache_hits));
    if (precision->json) {
      for (const AdaptiveCandidateResult& r : adaptive->candidates) {
        PrintCandidateJson(r.sized, r.cf, r.interval, r.interval_method,
                           engine.options().base.metric,
                           precision->target.confidence, &r);
      }
    }
    return 0;
  }

  auto sized = engine.EstimateAll(candidates);
  if (!sized.ok()) return Fail(sized.status().ToString());

  TablePrinter out({"key columns", "scheme", "est. CF'", "est. size",
                    "uncompressed", "saved"});
  for (const SizedCandidate& s : *sized) {
    std::string keys;
    for (const std::string& k : s.config.index.key_columns) {
      if (!keys.empty()) keys += ",";
      keys += k;
    }
    if (s.config.index.clustered) keys += " (clustered)";
    // A scheme can inflate an index (CF' > 1); show that as a negative
    // saving instead of wrapping the unsigned subtraction.
    const std::string saved =
        s.estimated_bytes <= s.uncompressed_bytes
            ? HumanBytes(s.uncompressed_bytes - s.estimated_bytes)
            : "-" + HumanBytes(s.estimated_bytes - s.uncompressed_bytes);
    out.AddRow({keys, s.config.scheme.ToString(),
                FormatDouble(s.estimated_cf), HumanBytes(s.estimated_bytes),
                HumanBytes(s.uncompressed_bytes), saved});
  }
  out.Print();
  const EstimationEngine::CacheStats stats = engine.cache_stats();
  std::printf(
      "\n%zu candidates sized from %llu sample draw(s), %llu index "
      "build(s), %llu cache hit(s) (f = %.4f, seed %llu, %u thread(s))\n",
      sized->size(), static_cast<unsigned long long>(stats.samples_drawn),
      static_cast<unsigned long long>(stats.index_builds),
      static_cast<unsigned long long>(stats.index_cache_hits),
      options.base.fraction,
      static_cast<unsigned long long>(options.seed),
      ThreadPool::ResolveThreadCount(options.num_threads));
  if (precision->json) {
    Status st =
        PrintFixedCandidatesJson(engine, *sized, precision->target.confidence);
    if (!st.ok()) return Fail(st.ToString());
  }
  return 0;
}

/// Parses one "table key-cols scheme [clustered] [benefit]" line of an
/// advise candidate file.
Result<CandidateConfiguration> ParseCatalogCandidateLine(
    const std::string& line, size_t line_number) {
  std::istringstream in(line);
  std::string table, rest;
  in >> table;
  std::getline(in, rest);
  if (table.empty() || rest.empty()) {
    return Status::InvalidArgument(
        "candidates line " + std::to_string(line_number) +
        ": expected \"table key-cols scheme [clustered] [benefit]\", got \"" +
        line + "\"");
  }
  // The last token may be a numeric benefit weight.
  std::istringstream rest_in(rest);
  std::vector<std::string> tokens;
  std::string token;
  while (rest_in >> token) tokens.push_back(token);
  double benefit = 1.0;
  if (!tokens.empty()) {
    char* end = nullptr;
    const double parsed = std::strtod(tokens.back().c_str(), &end);
    if (end != nullptr && *end == '\0' && end != tokens.back().c_str()) {
      benefit = parsed;
      tokens.pop_back();
    }
  }
  std::string joined;
  for (const std::string& t : tokens) {
    if (!joined.empty()) joined += ' ';
    joined += t;
  }
  CFEST_ASSIGN_OR_RETURN(CandidateConfiguration c,
                         ParseCandidateLine(joined, line_number));
  c.table_name = table;
  c.index.name = table + "." + c.index.name;
  c.benefit = benefit;
  return c;
}

int CmdAdvise(std::vector<std::string> args) {
  // advise --catalog <dir> --candidates <file> [--bound <bytes>]
  //        [--strategy greedy|optimal|lazy] [--threads N]
  //        [--target-rel-error E] [--confidence C] [--json]
  //        [fraction] [seed]
  constexpr const char* kUsage =
      "usage: advise --catalog <dir> --candidates <file> "
      "[--bound <bytes>] [--strategy greedy|optimal|lazy] [--threads N] "
      "[--target-rel-error E] [--confidence C] [--json] [fraction] [seed]";
  auto threads = StripFlag(&args, "--threads", "0");
  if (!threads.ok()) return Fail(threads.status().ToString());
  auto catalog_dir = StripFlag(&args, "--catalog", "");
  if (!catalog_dir.ok()) return Fail(catalog_dir.status().ToString());
  auto candidates_path = StripFlag(&args, "--candidates", "");
  if (!candidates_path.ok()) return Fail(candidates_path.status().ToString());
  auto bound_text = StripFlag(&args, "--bound", "");
  if (!bound_text.ok()) return Fail(bound_text.status().ToString());
  auto strategy_text = StripFlag(&args, "--strategy", "greedy");
  if (!strategy_text.ok()) return Fail(strategy_text.status().ToString());
  auto precision = StripPrecisionFlags(&args);
  if (!precision.ok()) return Fail(precision.status().ToString());
  if (catalog_dir->empty() || candidates_path->empty()) {
    return Fail(kUsage);
  }
  AdvisorStrategy strategy = AdvisorStrategy::kGreedy;
  bool lazy = false;
  if (*strategy_text == "greedy") {
    strategy = AdvisorStrategy::kGreedy;
  } else if (*strategy_text == "optimal") {
    strategy = AdvisorStrategy::kOptimal;
  } else if (*strategy_text == "lazy") {
    lazy = true;
  } else {
    return Fail("--strategy must be greedy, optimal, or lazy (got \"" +
                *strategy_text + "\")\n" + kUsage);
  }
  uint64_t bound = 0;
  if (!bound_text->empty()) {
    auto parsed = ParseUint64Arg(*bound_text, "--bound");
    if (!parsed.ok()) {
      return Fail(parsed.status().ToString() + "\n" + kUsage);
    }
    bound = *parsed;
  } else if (lazy) {
    return Fail("--strategy lazy needs --bound (the search is driven by "
                "the storage bound)\n" +
                std::string(kUsage));
  }

  // Every <name>.schema + <name>.csv pair in the directory becomes a
  // catalog table (the layout gen-tpch writes).
  Catalog catalog;
  std::error_code ec;
  std::vector<std::string> stems;
  for (const auto& entry :
       std::filesystem::directory_iterator(*catalog_dir, ec)) {
    if (entry.path().extension() == ".schema") {
      stems.push_back(entry.path().stem().string());
    }
  }
  if (ec) return Fail("cannot list " + *catalog_dir + ": " + ec.message());
  if (stems.empty()) return Fail("no .schema files in " + *catalog_dir);
  std::sort(stems.begin(), stems.end());
  for (const std::string& stem : stems) {
    auto spec = ReadFile(*catalog_dir + "/" + stem + ".schema");
    if (!spec.ok()) return Fail(spec.status().ToString());
    auto table = LoadTable(*catalog_dir + "/" + stem + ".csv", *spec);
    if (!table.ok()) return Fail(table.status().ToString());
    std::printf("loaded %-12s %8llu rows\n", stem.c_str(),
                static_cast<unsigned long long>((*table)->num_rows()));
    Status st = catalog.AddTable(stem, std::move(*table));
    if (!st.ok()) return Fail(st.ToString());
  }

  auto spec = ReadFile(*candidates_path);
  if (!spec.ok()) return Fail(spec.status().ToString());
  std::vector<CandidateConfiguration> candidates;
  std::istringstream lines(*spec);
  std::string line;
  size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    auto candidate = ParseCatalogCandidateLine(line, line_number);
    if (!candidate.ok()) return Fail(candidate.status().ToString());
    candidates.push_back(std::move(*candidate));
  }
  if (candidates.empty()) return Fail("no candidates in " + *candidates_path);

  CatalogEstimationServiceOptions options;
  options.base.fraction = 0.01;
  options.seed = 42;
  if (args.size() > 0) {
    auto fraction = ParseDoubleArg(args[0], "fraction");
    if (!fraction.ok()) return Fail(fraction.status().ToString());
    options.base.fraction = *fraction;
  }
  if (args.size() > 1) {
    auto seed = ParseUint64Arg(args[1], "seed");
    if (!seed.ok()) return Fail(seed.status().ToString());
    options.seed = *seed;
  }
  auto num_threads = ParseThreadsArg(*threads);
  if (!num_threads.ok()) return Fail(num_threads.status().ToString());
  options.num_threads = *num_threads;
  CatalogEstimationService service(catalog, options);

  if (lazy) {
    // Interval-driven branch-and-bound: candidates are sized only as
    // precisely as the search's take/skip decisions require, so there is
    // no per-candidate sizing table — most candidates never get a
    // converged estimate. No candidate cap (unlike --strategy optimal).
    LazyAdvisorStats stats;
    auto rec = AdviseConfigurationsLazy(service, candidates, bound,
                                        precision->target, &stats);
    if (!rec.ok()) return Fail(rec.status().ToString());
    std::printf("lazy recommendation under %s:\n", HumanBytes(bound).c_str());
    TablePrinter picks({"table", "index", "scheme", "est. size", "benefit"});
    for (const SizedCandidate& s : rec->selected) {
      picks.AddRow({s.config.table_name, s.config.index.name,
                    s.config.scheme.ToString(), HumanBytes(s.estimated_bytes),
                    FormatDouble(s.config.benefit)});
    }
    picks.Print();
    std::printf(
        "total %s of %s used, benefit %.2f\n"
        "%zu candidate(s): %zu refined (%llu growth round(s)), rest "
        "decided at coarse intervals; %llu rows sized (%llu coarse), "
        "%llu node(s), %llu pruned\n",
        HumanBytes(rec->total_bytes).c_str(), HumanBytes(bound).c_str(),
        rec->total_benefit, stats.candidates, stats.refined,
        static_cast<unsigned long long>(stats.refine_rounds),
        static_cast<unsigned long long>(stats.total_rows_sized),
        static_cast<unsigned long long>(stats.coarse_rows),
        static_cast<unsigned long long>(stats.nodes_visited),
        static_cast<unsigned long long>(stats.nodes_pruned));
    if (precision->json) {
      JsonWriter json;
      json.AddInt("candidates", static_cast<int64_t>(stats.candidates));
      json.AddInt("selected", static_cast<int64_t>(rec->selected.size()));
      json.AddDouble("total_benefit", rec->total_benefit);
      json.AddInt("total_bytes", static_cast<int64_t>(rec->total_bytes));
      json.AddInt("refined", static_cast<int64_t>(stats.refined));
      json.AddInt("refine_rounds",
                  static_cast<int64_t>(stats.refine_rounds));
      json.AddInt("total_rows_sized",
                  static_cast<int64_t>(stats.total_rows_sized));
      json.AddInt("coarse_rows", static_cast<int64_t>(stats.coarse_rows));
      json.AddInt("nodes_visited",
                  static_cast<int64_t>(stats.nodes_visited));
      json.AddInt("nodes_pruned", static_cast<int64_t>(stats.nodes_pruned));
      json.Print();
    }
    return 0;
  }

  std::vector<SizedCandidate> sized_candidates;
  if (precision->adaptive) {
    auto adaptive =
        EstimateAllAdaptive(service, candidates, precision->target);
    if (!adaptive.ok()) return Fail(adaptive.status().ToString());
    TablePrinter out({"table", "key columns", "scheme", "est. CF'",
                      "est. size", "rows", "CF' interval", "ok"});
    for (const AdaptiveCandidateResult& r : adaptive->candidates) {
      std::string keys = JoinKeys(r.sized.config.index);
      if (r.sized.config.index.clustered) keys += " (clustered)";
      out.AddRow({r.sized.config.table_name, keys,
                  r.sized.config.scheme.ToString(),
                  FormatDouble(r.sized.estimated_cf),
                  HumanBytes(r.sized.estimated_bytes),
                  std::to_string(r.rows_sampled),
                  "[" + FormatDouble(r.interval.lower) + ", " +
                      FormatDouble(r.interval.upper) + "]",
                  r.converged ? "yes" : "NO"});
      sized_candidates.push_back(r.sized);
    }
    out.Print();
    std::printf("\nrel. error target %.3g at %.3g confidence; per-table "
                "growth:\n",
                precision->target.rel_error, precision->target.confidence);
    for (const AdaptiveTableReport& report : adaptive->tables) {
      std::printf("  %-12s %u round(s): %s rows%s\n",
                  report.table_name.c_str(), report.rounds,
                  FormatGrowthSchedule(report.rows_per_round).c_str(),
                  report.budget_exhausted ? " (budget exhausted)" : "");
    }
    if (precision->json) {
      for (const AdaptiveCandidateResult& r : adaptive->candidates) {
        PrintCandidateJson(r.sized, r.cf, r.interval, r.interval_method,
                           options.base.metric,
                           precision->target.confidence, &r);
      }
    }
  } else {
    auto sized = service.EstimateAll(candidates);
    if (!sized.ok()) return Fail(sized.status().ToString());
    sized_candidates = std::move(*sized);

    TablePrinter out({"table", "key columns", "scheme", "est. CF'",
                      "est. size", "uncompressed"});
    for (const SizedCandidate& s : sized_candidates) {
      std::string keys = JoinKeys(s.config.index);
      if (s.config.index.clustered) keys += " (clustered)";
      out.AddRow({s.config.table_name, keys, s.config.scheme.ToString(),
                  FormatDouble(s.estimated_cf), HumanBytes(s.estimated_bytes),
                  HumanBytes(s.uncompressed_bytes)});
    }
    out.Print();

    const CatalogEstimationService::Stats stats = service.stats();
    std::printf(
        "\n%zu candidates across %llu table(s) sized from %llu sample "
        "draw(s), %llu index build(s), %llu cache hit(s) (f = %.4f, seed "
        "%llu, %u thread(s))\n",
        sized_candidates.size(),
        static_cast<unsigned long long>(stats.engines_created),
        static_cast<unsigned long long>(stats.samples_drawn),
        static_cast<unsigned long long>(stats.index_builds),
        static_cast<unsigned long long>(stats.index_cache_hits),
        options.base.fraction, static_cast<unsigned long long>(options.seed),
        ThreadPool::ResolveThreadCount(options.num_threads));
    if (precision->json) {
      // Per-table batches (sharing replicate builds per key set), printed
      // back in input order.
      auto z = NumSigmasForConfidence(precision->target.confidence);
      if (!z.ok()) return Fail(z.status().ToString());
      std::map<std::string, std::vector<size_t>> by_table;
      for (size_t i = 0; i < sized_candidates.size(); ++i) {
        by_table[sized_candidates[i].config.table_name].push_back(i);
      }
      std::vector<CandidateIntervalResult> all(sized_candidates.size());
      for (const auto& [name, idxs] : by_table) {
        auto engine = service.Engine(name);
        if (!engine.ok()) return Fail(engine.status().ToString());
        std::vector<CandidateConfiguration> configs;
        configs.reserve(idxs.size());
        for (size_t i : idxs) configs.push_back(sized_candidates[i].config);
        auto intervals = EstimateCandidateIntervals(
            **engine, configs, *z, PrecisionTarget{}.interval_groups,
            options.num_threads != 1 ? service.shared_pool() : nullptr);
        if (!intervals.ok()) return Fail(intervals.status().ToString());
        for (size_t k = 0; k < idxs.size(); ++k) {
          all[idxs[k]] = std::move((*intervals)[k]);
        }
      }
      for (size_t i = 0; i < sized_candidates.size(); ++i) {
        PrintCandidateJson(sized_candidates[i], all[i].cf, all[i].interval,
                           all[i].method, options.base.metric,
                           precision->target.confidence, nullptr);
      }
    }
  }

  if (!bound_text->empty()) {
    auto rec = SelectConfigurations(sized_candidates, bound, strategy);
    if (!rec.ok()) return Fail(rec.status().ToString());
    std::printf("\nrecommendation under %s:\n", HumanBytes(bound).c_str());
    TablePrinter picks({"table", "index", "scheme", "est. size", "benefit"});
    for (const SizedCandidate& s : rec->selected) {
      picks.AddRow({s.config.table_name, s.config.index.name,
                    s.config.scheme.ToString(),
                    HumanBytes(s.estimated_bytes),
                    FormatDouble(s.config.benefit)});
    }
    picks.Print();
    std::printf("total %s of %s used, benefit %.2f\n",
                HumanBytes(rec->total_bytes).c_str(),
                HumanBytes(bound).c_str(), rec->total_benefit);
  }
  return 0;
}

int CmdAnalyze(const std::vector<std::string>& args) {
  if (args.size() < 2) return Fail("usage: analyze <csv> <schema-spec>");
  auto table = LoadTable(args[0], args[1]);
  if (!table.ok()) return Fail(table.status().ToString());
  auto profiles = ProfileTable(**table);
  if (!profiles.ok()) return Fail(profiles.status().ToString());
  TablePrinter out({"column", "type", "distinct", "mean len", "len range",
                    "top value (count)", "NS CF pred", "dict CF pred"});
  for (const ColumnProfile& p : *profiles) {
    std::string top = "-";
    if (!p.top_values.empty()) {
      top = p.top_values[0].value + " (" +
            std::to_string(p.top_values[0].count) + ")";
      if (top.size() > 28) top = top.substr(0, 25) + "...";
    }
    out.AddRow({p.name, p.type.ToString(), std::to_string(p.stats.d),
                FormatDouble(p.lengths.mean_length, 1),
                std::to_string(p.lengths.min_length) + ".." +
                    std::to_string(p.lengths.max_length),
                top, FormatDouble(p.predicted_ns_cf),
                FormatDouble(p.predicted_dict_cf)});
  }
  out.Print();
  std::printf("\n%llu rows analyzed; predictions use the paper's closed "
              "forms (dictionary: p = 4 bytes).\n",
              static_cast<unsigned long long>((*table)->num_rows()));
  return 0;
}

int CmdGenTpch(const std::vector<std::string>& args) {
  if (args.size() < 2) return Fail("usage: gen-tpch <scale-factor> <outdir>");
  tpch::TpchOptions options;
  auto scale = ParseDoubleArg(args[0], "scale-factor");
  if (!scale.ok()) return Fail(scale.status().ToString());
  options.scale_factor = *scale;
  if (options.scale_factor <= 0) return Fail("scale factor must be positive");
  const std::string dir = args[1];
  auto catalog = tpch::GenerateCatalog(options);
  if (!catalog.ok()) return Fail(catalog.status().ToString());
  for (const std::string& name : (*catalog)->TableNames()) {
    const Table& table = *std::move((*catalog)->GetTable(name)).ValueOrDie();
    Status st = WriteFile(dir + "/" + name + ".csv", WriteCsv(table));
    if (!st.ok()) return Fail(st.ToString());
    st = WriteFile(dir + "/" + name + ".schema",
                   SchemaToSpec(table.schema()));
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s/%s.csv (%llu rows)\n", dir.c_str(), name.c_str(),
                static_cast<unsigned long long>(table.num_rows()));
  }
  return 0;
}

int RunCommand(const std::string& command, std::vector<std::string> args) {
  if (command == "estimate") return CmdEstimate(args);
  if (command == "exact") return CmdExact(args);
  if (command == "recommend") return CmdRecommend(args);
  if (command == "batch") return CmdBatch(std::move(args));
  if (command == "advise") return CmdAdvise(std::move(args));
  if (command == "analyze") return CmdAnalyze(args);
  if (command == "gen-tpch") return CmdGenTpch(args);
  return Fail("unknown command: " + command);
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s "
                 "<estimate|exact|recommend|batch|advise|analyze|gen-tpch> "
                 "... [--metrics-out <file>] [--trace-out <file>] "
                 "[--telemetry-port <port>] [--telemetry-hold-ms <ms>]\n",
                 argv[0]);
    return 1;
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  // Observability exports work on every subcommand: --metrics-out dumps a
  // registry snapshot after the run (Prometheus text exposition for .prom
  // and .txt paths, JSON otherwise), --trace-out enables span recording
  // for the run and dumps Chrome-trace JSON (load in chrome://tracing or
  // ui.perfetto.dev).
  auto metrics_out = StripFlag(&args, "--metrics-out", "");
  if (!metrics_out.ok()) return Fail(metrics_out.status().ToString());
  auto trace_out = StripFlag(&args, "--trace-out", "");
  if (!trace_out.ok()) return Fail(trace_out.status().ToString());
  auto telemetry_port_text = StripFlag(&args, "--telemetry-port", "");
  if (!telemetry_port_text.ok()) {
    return Fail(telemetry_port_text.status().ToString());
  }
  auto telemetry_hold_text = StripFlag(&args, "--telemetry-hold-ms", "0");
  if (!telemetry_hold_text.ok()) {
    return Fail(telemetry_hold_text.status().ToString());
  }
  uint64_t telemetry_hold_ms = 0;
  {
    auto parsed = ParseUint64Arg(*telemetry_hold_text, "--telemetry-hold-ms");
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    telemetry_hold_ms = *parsed;
  }
  TelemetryHttpServer telemetry;
  if (!telemetry_port_text->empty()) {
    auto parsed = ParseUint64Arg(*telemetry_port_text, "--telemetry-port");
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    if (*parsed > 65535) {
      return Fail("--telemetry-port must be 0..65535");
    }
    Status st = telemetry.Start(static_cast<uint16_t>(*parsed));
    if (!st.ok()) return Fail(st.ToString());
    // Machine-readable: a wrapper script parses the port (ephemeral when
    // --telemetry-port 0) from this line before scraping.
    std::fprintf(stderr, "telemetry serving on port %u\n",
                 static_cast<unsigned>(telemetry.port()));
  } else if (telemetry_hold_ms != 0) {
    return Fail("--telemetry-hold-ms needs --telemetry-port");
  }
  if (!trace_out->empty()) {
    trace::Reset();
    trace::SetEnabled(true);
  }
  const int rc = RunCommand(command, std::move(args));
  if (rc != 0) return rc;
  if (telemetry.running() && telemetry_hold_ms != 0) {
    // Keep the endpoint live past the command so an external scraper can
    // read the run's final counters from the process itself.
    std::fprintf(stderr, "telemetry holding for %llu ms\n",
                 static_cast<unsigned long long>(telemetry_hold_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(telemetry_hold_ms));
  }
  if (!metrics_out->empty()) {
    const metrics::MetricsSnapshot snapshot =
        metrics::MetricRegistry::Global().Snapshot();
    const bool prom = metrics_out->ends_with(".prom") ||
                      metrics_out->ends_with(".txt");
    Status st = WriteFile(
        *metrics_out, prom ? snapshot.ToPrometheusText() : snapshot.ToJson());
    if (!st.ok()) return Fail(st.ToString());
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 metrics_out->c_str());
  }
  if (!trace_out->empty()) {
    trace::SetEnabled(false);
    Status st = WriteFile(*trace_out, trace::ExportChromeTraceJson());
    if (!st.ok()) return Fail(st.ToString());
    std::fprintf(stderr, "chrome trace written to %s\n", trace_out->c_str());
  }
  return 0;
}

}  // namespace
}  // namespace cfest

int main(int argc, char** argv) { return cfest::Main(argc, argv); }
