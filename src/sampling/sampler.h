// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Row sampling — step 1 of the paper's SampleCF algorithm. The paper's
// analysis assumes uniform random sampling *with replacement*; commercial
// systems use block-level sampling ("all the rows from a randomly sampled
// page are included"), which we also implement so the paper's future-work
// comparison can be run.

#ifndef CFEST_SAMPLING_SAMPLER_H_
#define CFEST_SAMPLING_SAMPLER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace cfest {

/// \brief Strategy for drawing a row sample from a table.
class RowSampler {
 public:
  virtual ~RowSampler() = default;

  virtual std::string name() const = 0;

  /// Draws row ids for a sample of roughly `fraction * num_rows` rows.
  /// fraction must lie in (0, 1]; samplers without replacement cap the
  /// sample at the table size. Ids are in draw order and may repeat for
  /// with-replacement samplers.
  virtual Result<std::vector<RowId>> SampleIds(const Table& table,
                                               double fraction,
                                               Random* rng) const = 0;

  /// Materializes the sampled rows as a new table with the same schema
  /// (copies row bytes; the paper-fidelity path).
  Result<std::unique_ptr<Table>> Sample(const Table& table, double fraction,
                                        Random* rng) const;

  /// Draws a sample as a zero-copy TableView over `table`: same ids as
  /// Sample() for the same rng state, no row bytes copied. `table` must
  /// outlive the view.
  Result<std::unique_ptr<TableView>> SampleView(const Table& table,
                                                double fraction,
                                                Random* rng) const;
};

/// Copies the given rows of `table` into a new table (in the given order).
Result<std::unique_ptr<Table>> MaterializeSample(const Table& table,
                                                 const std::vector<RowId>& ids);

/// Validates a sampling fraction.
Status CheckFraction(double fraction);

/// \brief Uniform sampling with replacement: r = round(f*n) independent
/// draws. This is the sampler the paper's theorems are stated for.
std::unique_ptr<RowSampler> MakeUniformWithReplacementSampler();

/// \brief Uniform sampling without replacement (Robert Floyd's algorithm),
/// r = round(f*n) distinct rows in randomized order.
std::unique_ptr<RowSampler> MakeUniformWithoutReplacementSampler();

/// \brief Bernoulli sampling: each row included independently with
/// probability f (sample size is binomial, not fixed).
std::unique_ptr<RowSampler> MakeBernoulliSampler();

/// \brief Reservoir sampling, Vitter's Algorithm R (ref [5] of the paper):
/// one streaming pass, r = round(f*n) distinct rows.
std::unique_ptr<RowSampler> MakeReservoirSampler();

/// \brief Block-level sampling: rows are grouped into consecutive blocks of
/// `rows_per_block`; whole blocks are sampled without replacement until the
/// target row count is reached. rows_per_block == 0 derives the block size
/// from how many rows fit an 8 KB page.
std::unique_ptr<RowSampler> MakeBlockSampler(uint32_t rows_per_block = 0);

/// \brief Stratified sampling: the table is split into `strata` contiguous
/// partitions and each contributes round(f * stratum_size) rows drawn
/// uniformly without replacement. Guarantees coverage of every region of
/// the table (classic variance reduction when values correlate with
/// position, e.g. time-ordered loads).
std::unique_ptr<RowSampler> MakeStratifiedSampler(uint32_t strata = 16);

}  // namespace cfest

#endif  // CFEST_SAMPLING_SAMPLER_H_
