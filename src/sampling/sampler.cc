#include "sampling/sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "sampling/reservoir.h"
#include "storage/page.h"

namespace cfest {

Status CheckFraction(double fraction) {
  if (!(fraction > 0.0) || fraction > 1.0) {
    return Status::InvalidArgument("sampling fraction must be in (0, 1], got " +
                                   std::to_string(fraction));
  }
  return Status::OK();
}

Result<std::unique_ptr<Table>> MaterializeSample(
    const Table& table, const std::vector<RowId>& ids) {
  TableBuilder builder(table.schema());
  builder.Reserve(ids.size());
  for (RowId id : ids) {
    if (id >= table.num_rows()) {
      return Status::OutOfRange("sampled row id " + std::to_string(id) +
                                " >= table size " +
                                std::to_string(table.num_rows()));
    }
    CFEST_RETURN_NOT_OK(builder.AppendEncoded(table.row(id)));
  }
  return builder.Finish();
}

Result<std::unique_ptr<Table>> RowSampler::Sample(const Table& table,
                                                  double fraction,
                                                  Random* rng) const {
  CFEST_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                         SampleIds(table, fraction, rng));
  return MaterializeSample(table, ids);
}

Result<std::unique_ptr<TableView>> RowSampler::SampleView(const Table& table,
                                                          double fraction,
                                                          Random* rng) const {
  CFEST_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                         SampleIds(table, fraction, rng));
  return TableView::Make(table, std::move(ids));
}

namespace {

uint64_t TargetRows(const Table& table, double fraction) {
  const double r = std::round(fraction * static_cast<double>(table.num_rows()));
  return std::max<uint64_t>(1, static_cast<uint64_t>(r));
}

class UniformWithReplacementSampler final : public RowSampler {
 public:
  std::string name() const override { return "uniform_wr"; }

  Result<std::vector<RowId>> SampleIds(const Table& table, double fraction,
                                       Random* rng) const override {
    CFEST_RETURN_NOT_OK(CheckFraction(fraction));
    if (table.num_rows() == 0) {
      return Status::InvalidArgument("cannot sample an empty table");
    }
    const uint64_t r = TargetRows(table, fraction);
    std::vector<RowId> ids;
    ids.reserve(r);
    for (uint64_t i = 0; i < r; ++i) {
      ids.push_back(rng->NextBounded(table.num_rows()));
    }
    return ids;
  }
};

class UniformWithoutReplacementSampler final : public RowSampler {
 public:
  std::string name() const override { return "uniform_wor"; }

  Result<std::vector<RowId>> SampleIds(const Table& table, double fraction,
                                       Random* rng) const override {
    CFEST_RETURN_NOT_OK(CheckFraction(fraction));
    if (table.num_rows() == 0) {
      return Status::InvalidArgument("cannot sample an empty table");
    }
    const uint64_t n = table.num_rows();
    const uint64_t r = std::min(TargetRows(table, fraction), n);
    // Robert Floyd's sampling algorithm: r distinct ids in O(r) expected.
    std::unordered_set<RowId> chosen;
    chosen.reserve(static_cast<size_t>(r) * 2);
    std::vector<RowId> ids;
    ids.reserve(r);
    for (uint64_t j = n - r; j < n; ++j) {
      const RowId t = rng->NextBounded(j + 1);
      if (chosen.insert(t).second) {
        ids.push_back(t);
      } else {
        chosen.insert(j);
        ids.push_back(j);
      }
    }
    rng->Shuffle(&ids);
    return ids;
  }
};

class BernoulliSampler final : public RowSampler {
 public:
  std::string name() const override { return "bernoulli"; }

  Result<std::vector<RowId>> SampleIds(const Table& table, double fraction,
                                       Random* rng) const override {
    CFEST_RETURN_NOT_OK(CheckFraction(fraction));
    if (table.num_rows() == 0) {
      return Status::InvalidArgument("cannot sample an empty table");
    }
    std::vector<RowId> ids;
    ids.reserve(static_cast<size_t>(
        fraction * static_cast<double>(table.num_rows()) * 1.2 + 16));
    for (RowId id = 0; id < table.num_rows(); ++id) {
      if (rng->NextBernoulli(fraction)) ids.push_back(id);
    }
    return ids;
  }
};

class ReservoirRowSampler final : public RowSampler {
 public:
  std::string name() const override { return "reservoir"; }

  Result<std::vector<RowId>> SampleIds(const Table& table, double fraction,
                                       Random* rng) const override {
    CFEST_RETURN_NOT_OK(CheckFraction(fraction));
    if (table.num_rows() == 0) {
      return Status::InvalidArgument("cannot sample an empty table");
    }
    const uint64_t n = table.num_rows();
    const uint64_t r = std::min(TargetRows(table, fraction), n);
    // Vitter's Algorithm R via the shared slot core (sampling/reservoir.h).
    ReservoirSampler core(r);
    std::vector<RowId> reservoir(static_cast<size_t>(r), 0);
    for (RowId id = 0; id < n; ++id) {
      const uint64_t slot = core.Offer(rng);
      if (slot != ReservoirSampler::kSkip) {
        reservoir[static_cast<size_t>(slot)] = id;
      }
    }
    return reservoir;
  }
};

class BlockSampler final : public RowSampler {
 public:
  explicit BlockSampler(uint32_t rows_per_block)
      : rows_per_block_(rows_per_block) {}

  std::string name() const override { return "block"; }

  Result<std::vector<RowId>> SampleIds(const Table& table, double fraction,
                                       Random* rng) const override {
    CFEST_RETURN_NOT_OK(CheckFraction(fraction));
    if (table.num_rows() == 0) {
      return Status::InvalidArgument("cannot sample an empty table");
    }
    uint64_t block = rows_per_block_;
    if (block == 0) {
      // Rows that fit one default data page.
      block = std::max<uint64_t>(
          1, (kDefaultPageSize - kPageHeaderSize) /
                 (table.row_width() + kSlotSize));
    }
    const uint64_t n = table.num_rows();
    const uint64_t num_blocks = (n + block - 1) / block;
    const uint64_t target = TargetRows(table, fraction);

    // Sample whole blocks without replacement until >= target rows.
    std::vector<uint64_t> block_ids(num_blocks);
    for (uint64_t i = 0; i < num_blocks; ++i) block_ids[i] = i;
    rng->Shuffle(&block_ids);
    std::vector<RowId> ids;
    ids.reserve(target + block);
    for (uint64_t b : block_ids) {
      if (ids.size() >= target) break;
      const RowId begin = b * block;
      const RowId end = std::min(n, begin + block);
      for (RowId id = begin; id < end; ++id) ids.push_back(id);
    }
    return ids;
  }

 private:
  uint32_t rows_per_block_;
};

class StratifiedSampler final : public RowSampler {
 public:
  explicit StratifiedSampler(uint32_t strata)
      : strata_(strata == 0 ? 1 : strata) {}

  std::string name() const override { return "stratified"; }

  Result<std::vector<RowId>> SampleIds(const Table& table, double fraction,
                                       Random* rng) const override {
    CFEST_RETURN_NOT_OK(CheckFraction(fraction));
    if (table.num_rows() == 0) {
      return Status::InvalidArgument("cannot sample an empty table");
    }
    const uint64_t n = table.num_rows();
    const uint64_t num_strata = std::min<uint64_t>(strata_, n);
    std::vector<RowId> ids;
    UniformWithoutReplacementSampler wor;
    for (uint64_t s = 0; s < num_strata; ++s) {
      const RowId begin = s * n / num_strata;
      const RowId end = (s + 1) * n / num_strata;
      const uint64_t size = end - begin;
      if (size == 0) continue;
      // Draw WOR within the stratum by sampling offsets in [0, size).
      const uint64_t want = std::max<uint64_t>(
          1, static_cast<uint64_t>(
                 std::round(fraction * static_cast<double>(size))));
      std::unordered_set<RowId> chosen;
      std::vector<RowId> offsets;
      const uint64_t r = std::min(want, size);
      for (uint64_t j = size - r; j < size; ++j) {
        const RowId t = rng->NextBounded(j + 1);
        if (chosen.insert(t).second) {
          offsets.push_back(t);
        } else {
          chosen.insert(j);
          offsets.push_back(j);
        }
      }
      for (RowId off : offsets) ids.push_back(begin + off);
    }
    rng->Shuffle(&ids);
    return ids;
  }

 private:
  uint32_t strata_;
};

}  // namespace

std::unique_ptr<RowSampler> MakeUniformWithReplacementSampler() {
  return std::make_unique<UniformWithReplacementSampler>();
}
std::unique_ptr<RowSampler> MakeUniformWithoutReplacementSampler() {
  return std::make_unique<UniformWithoutReplacementSampler>();
}
std::unique_ptr<RowSampler> MakeBernoulliSampler() {
  return std::make_unique<BernoulliSampler>();
}
std::unique_ptr<RowSampler> MakeReservoirSampler() {
  return std::make_unique<ReservoirRowSampler>();
}
std::unique_ptr<RowSampler> MakeBlockSampler(uint32_t rows_per_block) {
  return std::make_unique<BlockSampler>(rows_per_block);
}
std::unique_ptr<RowSampler> MakeStratifiedSampler(uint32_t strata) {
  return std::make_unique<StratifiedSampler>(strata);
}

}  // namespace cfest
