// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// The Algorithm-R core (Vitter, the paper's ref [5]) shared by every
// reservoir consumer in the tree: the RowSampler strategy over whole tables
// (sampling/sampler.cc), the streaming estimator (estimator/streaming.cc),
// and the EstimationEngine's delta-refresh path (estimator/engine.cc).
//
// The class is deliberately storage-agnostic: it only decides, per offered
// stream item, *which reservoir slot* (if any) the item occupies. Callers
// own the slot storage — row ids, encoded row bytes, whatever — so one core
// serves all three consumers bit-identically. The RNG consumption contract
// is fixed and must never change (tests pin it): no draw while the
// reservoir is filling, then exactly one NextBounded(items_seen + 1) per
// offered item.

#ifndef CFEST_SAMPLING_RESERVOIR_H_
#define CFEST_SAMPLING_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace cfest {

/// \brief Slot-assignment state machine for reservoir sampling.
///
/// A reservoir of capacity r over a stream of n items keeps each item with
/// probability r/n at every prefix. The core is resumable: offering items
/// n..n'-1 to a core that already saw 0..n-1 yields exactly the reservoir a
/// fresh core would produce over 0..n'-1 with the same RNG stream — this is
/// what makes the EstimationEngine's incremental refresh equal a full
/// re-draw.
class ReservoirSampler {
 public:
  /// Returned by Offer() when the item does not enter the reservoir.
  static constexpr uint64_t kSkip = ~0ull;

  /// capacity must be > 0 (callers validate; 0 is clamped to 1).
  explicit ReservoirSampler(uint64_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Offers the next stream item. Returns the slot index in [0, capacity)
  /// the item should occupy, or kSkip. `rng` is drawn from only once the
  /// reservoir is full.
  uint64_t Offer(Random* rng) {
    uint64_t slot;
    if (size_ < capacity_) {
      slot = size_++;
    } else {
      const uint64_t j = rng->NextBounded(items_seen_ + 1);
      slot = j < capacity_ ? j : kSkip;
    }
    ++items_seen_;
    return slot;
  }

  uint64_t capacity() const { return capacity_; }
  /// Items offered so far (the stream position n).
  uint64_t items_seen() const { return items_seen_; }
  /// Occupied slots: min(items_seen, capacity).
  uint64_t size() const { return size_; }

 private:
  uint64_t capacity_;
  uint64_t items_seen_ = 0;
  uint64_t size_ = 0;
};

/// Offers the contiguous id range [begin, end) to `core` and applies every
/// accepted slot to `slots` (the caller's id-valued slot storage, extended
/// while the reservoir is filling). Returns whether any slot changed. The
/// streaming loop the EstimationEngine's initial draw, delta refresh, and
/// capacity-growth replay all run — hoisted here so the three call sites
/// cannot drift from the RNG consumption contract above.
inline bool OfferIdRange(ReservoirSampler* core, Random* rng, uint64_t begin,
                         uint64_t end, std::vector<uint64_t>* slots) {
  bool changed = false;
  for (uint64_t id = begin; id < end; ++id) {
    const uint64_t slot = core->Offer(rng);
    if (slot == ReservoirSampler::kSkip) continue;
    if (slot == slots->size()) {
      slots->push_back(id);
    } else {
      (*slots)[static_cast<size_t>(slot)] = id;
    }
    changed = true;
  }
  return changed;
}

}  // namespace cfest

#endif  // CFEST_SAMPLING_RESERVOIR_H_
