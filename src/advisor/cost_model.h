// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Workload cost model — the paper's second motivating question (§I):
// "Given a workload, how is its performance impacted by compressing a set
// of indexes?"
//
// Compression cuts I/O (fewer pages per scan, by the factor CF) but adds a
// per-row decompression CPU cost — "a substantial CPU cost to be paid in
// decompressing the data. Thus the decision as to when to use compression
// needs to be taken judiciously." The model prices a query as
//
//   cost = pages_read * page_read_cost
//        + rows_processed * row_cpu_cost * (compressed ? decompress_factor : 1)
//
// with pages_read derived from the index's (estimated) size and the query's
// selectivity. It is deliberately simple — the advisor needs *relative*
// benefits, not absolute milliseconds.

#ifndef CFEST_ADVISOR_COST_MODEL_H_
#define CFEST_ADVISOR_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace cfest {

/// \brief One workload statement: a (range) scan over a table with a
/// selectivity, optionally served by an index on `key_column`.
struct Query {
  std::string table_name;
  /// Column the predicate filters on; an index on it turns the full scan
  /// into a partial scan of `selectivity` of the leaf level.
  std::string key_column;
  /// Fraction of rows the predicate selects, in (0, 1].
  double selectivity = 1.0;
  /// Relative frequency/weight of this query in the workload.
  double weight = 1.0;
};

/// \brief Cost-model coefficients.
struct CostModelParams {
  double page_read_cost = 1.0;       ///< per page (I/O dominates)
  double row_cpu_cost = 0.001;       ///< per row touched
  double decompress_factor = 2.5;    ///< CPU multiplier on compressed rows
  size_t page_size = 8192;
};

/// \brief A physical structure the cost model can route a query to.
struct PhysicalOption {
  std::string table_name;
  std::string key_column;   ///< column the structure is ordered on
  uint64_t total_bytes = 0; ///< (estimated) on-disk footprint
  uint64_t row_count = 0;
  bool compressed = false;
};

/// Cost of answering `query` with `option` (the option must match the
/// query's table; a mismatched key column means a full scan of the option).
double QueryCost(const Query& query, const PhysicalOption& option,
                 const CostModelParams& params);

/// Weighted workload cost when every query picks its cheapest option among
/// `options` (there must be at least one option per queried table — e.g.
/// the base table heap). Returns an error if a query has no option.
Result<double> WorkloadCost(const std::vector<Query>& workload,
                            const std::vector<PhysicalOption>& options,
                            const CostModelParams& params);

/// Benefit of adding `candidate` to `baseline_options` for `workload`:
/// baseline cost minus cost with the candidate available (>= 0).
Result<double> CandidateBenefit(const std::vector<Query>& workload,
                                const std::vector<PhysicalOption>&
                                    baseline_options,
                                const PhysicalOption& candidate,
                                const CostModelParams& params);

}  // namespace cfest

#endif  // CFEST_ADVISOR_COST_MODEL_H_
