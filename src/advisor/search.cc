#include "advisor/search.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"

namespace cfest {
namespace {

/// The registry-backed counters behind LazyAdvisorStats. Each lazy run
/// owns one instance, so a run's compat struct is filled from these
/// counters' Values — while MetricRegistry aggregates every live instance
/// plus retired totals under `cfest.lazy.*`, making the two views agree
/// bit for bit on any quiesced run. Refinement work is attributed per
/// table: `cfest.lazy.refined` / `cfest.lazy.refine_rounds` live in
/// {table=<name>} labeled blocks (one per distinct table a run refines,
/// resolved once per table by ForTable) whose registry children a
/// dashboard can split, while ToStats sums them back into the run totals.
/// The registration members are declared after the counters they cover so
/// final values fold into the registry before the counters destruct.
struct LazyRunCounters {
  LazyRunCounters()
      : registration(metrics::MetricRegistry::Global().RegisterCounters(
            {{"cfest.lazy.candidates", &candidates},
             {"cfest.lazy.nodes_visited", &nodes_visited},
             {"cfest.lazy.nodes_pruned", &nodes_pruned},
             {"cfest.lazy.total_rows_sized", &total_rows_sized},
             {"cfest.lazy.coarse_rows", &coarse_rows}})) {}

  /// The per-table refine block: the table's labeled child of the two
  /// refine families (the unlabeled child when `table_name` is empty).
  struct PerTable {
    explicit PerTable(const std::string& table_name)
        : registration(metrics::MetricRegistry::Global().RegisterCounters(
              table_name.empty()
                  ? metrics::LabelSet{}
                  : metrics::LabelSet{{"table", table_name}},
              {{"cfest.lazy.refined", &refined},
               {"cfest.lazy.refine_rounds", &refine_rounds}})) {}
    metrics::Counter refined;
    metrics::Counter refine_rounds;
    metrics::MetricRegistry::Registration registration;
  };

  PerTable& ForTable(const std::string& table_name) {
    MutexLock lock(mu);
    std::unique_ptr<PerTable>& block = per_table[table_name];
    if (block == nullptr) block = std::make_unique<PerTable>(table_name);
    return *block;
  }

  LazyAdvisorStats ToStats() const {
    LazyAdvisorStats s;
    s.candidates = static_cast<size_t>(candidates.Value());
    s.nodes_visited = nodes_visited.Value();
    s.nodes_pruned = nodes_pruned.Value();
    s.total_rows_sized = total_rows_sized.Value();
    s.coarse_rows = coarse_rows.Value();
    MutexLock lock(mu);
    for (const auto& [name, block] : per_table) {
      (void)name;
      s.refined += static_cast<size_t>(block->refined.Value());
      s.refine_rounds += block->refine_rounds.Value();
    }
    return s;
  }

  metrics::Counter candidates;
  metrics::Counter nodes_visited;
  metrics::Counter nodes_pruned;
  metrics::Counter total_rows_sized;
  metrics::Counter coarse_rows;
  mutable Mutex mu;
  std::map<std::string, std::unique_ptr<PerTable>> per_table GUARDED_BY(mu);
  metrics::MetricRegistry::Registration registration;
};

/// One candidate in the search: its latest point estimate plus certain
/// byte bounds. `bytes_low == bytes_high == estimated_bytes` once the
/// candidate is point-valued (exact, converged, or budget-exhausted).
struct SearchItem {
  SizedCandidate sized;
  std::string key;
  size_t input_index = 0;
  /// Base-metric CF' behind the interval (diagnostics).
  double cf = 1.0;
  uint64_t bytes_low = 0;
  uint64_t bytes_high = 0;
  /// Sample rows behind the current estimate (0 for exact uncompressed).
  uint64_t rows_sampled = 0;
  /// Sample rows the page-metric footprint needs to be meaningful (the
  /// page-coverage floor); convergence below it does not make the item
  /// point-valued.
  uint64_t sizing_floor = 0;
  /// Point-valued: further refinement cannot move the decision.
  bool refined = false;
  /// Received at least one targeted refinement (stats).
  bool was_refined = false;
};

/// Pages the *compressed* sample must span before a page-granular
/// footprint estimate is trusted as a point value: with fewer, the sample
/// compresses into a handful of pages and rounding dominates (a 100-row
/// sample reports page CF 1.0 for everything), and for context-dependent
/// schemes the small-sample bias is still steep.
constexpr double kMinSizingPages = 16.0;

/// Rows at which `engine`'s sample of this index compresses into about
/// kMinSizingPages pages: rows * (uncompressed_bytes / n) * cf >=
/// pages * page_size. `cf_estimate` is the current (coarse) CF' — a biased
/// early estimate only moves the floor, and the candidate's own
/// convergence requirement still applies on top.
uint64_t SizingFloorRows(const EstimationEngine& engine,
                         uint64_t uncompressed_bytes, double cf_estimate) {
  if (uncompressed_bytes == 0) return 0;
  const double bytes_per_row =
      static_cast<double>(uncompressed_bytes) /
      static_cast<double>(std::max<uint64_t>(1, engine.table().num_rows()));
  const double page_size =
      static_cast<double>(engine.options().base.build.page_size);
  const double cf = std::min(1.0, std::max(0.05, cf_estimate));
  return static_cast<uint64_t>(
      std::ceil(kMinSizingPages * page_size / (bytes_per_row * cf)));
}

/// Allowance for what the CF interval cannot see when its data-metric
/// bounds are mapped onto the page-metric footprint the selection uses:
/// page-granular rounding of the converged index (a coarse sample spans
/// few pages, so its own page CF is biased high and useless as a center —
/// the interval bounds, not the coarse point estimate, carry the
/// information).
constexpr double kPageQuantizationSlack = 0.05;

/// How far below its coarse interval's lower bound a context-dependent
/// scheme's converged footprint is allowed to land (the small-sample bias
/// allowance; see ApplyEstimate).
constexpr double kBiasedSchemeLowFraction = 0.4;

/// Maps an adaptive estimate onto an item's certain byte bounds.
///
/// Trust is scheme-keyed: for per-row-local schemes (uniform NS) the
/// estimator is unbiased at any sample size, so the data-CF interval
/// brackets the converged footprint up to page-quantization slack. For
/// context-dependent schemes (dictionaries, RLE, prefix, ...) SampleCF
/// carries a small-sample bias the replicate interval cannot see
/// (estimator/README.md), so only the trivial bounds are safe — which
/// makes such candidates straddle any decision they materially affect and
/// routes them into targeted refinement, exactly where the precise
/// estimate is actually needed.
void ApplyEstimate(const AdaptiveCandidateResult& r, bool point_valued,
                   SearchItem* item) {
  item->sized = r.sized;
  item->cf = r.cf;
  item->rows_sampled = r.rows_sampled;
  item->refined = point_valued;
  if (point_valued) {
    item->bytes_low = item->bytes_high = r.sized.estimated_bytes;
    return;
  }
  const double unc = static_cast<double>(r.sized.uncompressed_bytes);
  if (IsUniformNullSuppressionScheme(r.sized.config.scheme)) {
    item->bytes_low = static_cast<uint64_t>(std::llround(
        std::max(0.0, r.interval.lower - kPageQuantizationSlack) * unc));
    item->bytes_high = static_cast<uint64_t>(std::llround(
        (r.interval.upper + kPageQuantizationSlack) * unc));
    return;
  }
  // Context-dependent schemes' small-sample bias is upward (a sorted
  // sample packs fewer rows behind each page's dictionary/run/prefix
  // context than the full index does), so the interval's lower bound is
  // not a safe optimistic footprint on its own: the converged estimate
  // may undershoot it. Allow a generous bias factor below it — still a
  // real weight for the fractional pruning bound, unlike a trivial zero —
  // and let gate (a) of bench_advisor_lazy check the allowance against
  // the eager reference on every run.
  item->bytes_low = static_cast<uint64_t>(
      std::llround(kBiasedSchemeLowFraction * r.interval.lower * unc));
  item->bytes_high = static_cast<uint64_t>(std::llround(
      std::max(std::max(1.0, r.sized.estimated_cf),
               r.interval.upper + kPageQuantizationSlack) *
      unc));
}

/// Resolves a straddling interval for the search: refines `item` until
/// `done` accepts its trial bounds or the candidate turns point-valued.
class ItemRefinery {
 public:
  /// `refiner_for` maps a candidate's table name to its table's refiner.
  ItemRefinery(std::function<CandidateRefiner*(const std::string&)>
                   refiner_for,
               LazyRunCounters* stats)
      : refiner_for_(std::move(refiner_for)), stats_(stats) {}

  Status Refine(SearchItem* item,
                const std::function<bool(const SearchItem&)>& done) {
    trace::Span span("lazy.refine");
    CandidateRefiner* refiner =
        refiner_for_(item->sized.config.table_name);
    if (refiner == nullptr) {
      return Status::InvalidArgument(
          "no refiner for table \"" + item->sized.config.table_name + "\"");
    }
    const uint32_t rounds_before = refiner->rounds();
    const uint64_t floor = item->sizing_floor;
    bool accepted = false;
    auto adaptor = [&](const AdaptiveCandidateResult& r) {
      SearchItem probe = *item;
      ApplyEstimate(r, r.converged && r.rows_sampled >= floor, &probe);
      if (done(probe)) {
        accepted = true;
        return true;
      }
      return false;
    };
    CFEST_ASSIGN_OR_RETURN(
        AdaptiveCandidateResult r,
        refiner->RefineUntil(item->sized.config, adaptor, floor));
    // Point-valued when converged at the sizing floor or the budget ran
    // out (RefineUntil returned a result neither converged-at-floor nor
    // accepted by `done`).
    ApplyEstimate(r, (r.converged && r.rows_sampled >= floor) || !accepted,
                  item);
    LazyRunCounters::PerTable& table_counters =
        stats_->ForTable(item->sized.config.table_name);
    if (!item->was_refined) {
      item->was_refined = true;
      table_counters.refined.Increment();
    }
    table_counters.refine_rounds.Add(refiner->rounds() - rounds_before);
    return Status::OK();
  }

 private:
  std::function<CandidateRefiner*(const std::string&)> refiner_for_;
  LazyRunCounters* stats_;
};

/// Depth-first branch-and-bound over items in the strategy-shared order,
/// take-first branching, greedy incumbent, fractional-knapsack pruning
/// bound on optimistic sizes. Benefits are exact inputs, so only
/// feasibility decisions can straddle an interval; those trigger targeted
/// refinement through `refinery` (null = all items point-valued).
class LazySearch {
 public:
  LazySearch(std::vector<SearchItem> items, uint64_t bound,
             ItemRefinery* refinery, LazyRunCounters* stats,
             bool incremental_bound = true)
      : items_(std::move(items)),
        bound_(bound),
        refinery_(refinery),
        stats_(stats),
        incremental_bound_(incremental_bound) {
    // Intern candidate keys to dense ids so hot-path membership (the taken
    // set, the bound's key exclusions) is a flat bitmap instead of a
    // std::set of strings.
    kid_.resize(items_.size());
    std::unordered_map<std::string, uint32_t> ids;
    ids.reserve(items_.size());
    for (size_t j = 0; j < items_.size(); ++j) {
      const auto [it, inserted] =
          ids.emplace(items_[j].key, static_cast<uint32_t>(key_items_.size()));
      if (inserted) key_items_.emplace_back();
      kid_[j] = it->second;
      key_items_[it->second].push_back(static_cast<uint32_t>(j));
    }
    key_taken_.assign(key_items_.size(), 0);
    index_dead_.assign(items_.size(), 0);
  }

  Result<AdvisorRecommendation> Run() {
    RebuildDensityOrder();
    SeedGreedyIncumbent();
    CFEST_RETURN_NOT_OK(Dfs(0));
    AdvisorRecommendation rec;
    rec.storage_bound = bound_;
    for (size_t i : best_) {
      // A never-refined candidate's coarse point estimate is known-biased
      // (page CF ~1.0 on a tiny sample) and can exceed the interval bound
      // its take decision was justified by; report it clamped into the
      // certain bounds, so the recommendation's totals respect the
      // storage bound the search enforced (every take guaranteed the
      // pessimistic sum fits).
      SizedCandidate sized = items_[i].sized;
      const uint64_t bytes =
          std::min(std::max(sized.estimated_bytes, items_[i].bytes_low),
                   items_[i].bytes_high);
      if (bytes != sized.estimated_bytes) {
        sized.estimated_bytes = bytes;
        if (sized.uncompressed_bytes > 0) {
          sized.estimated_cf = static_cast<double>(bytes) /
                               static_cast<double>(sized.uncompressed_bytes);
        }
      }
      rec.selected.push_back(std::move(sized));
      rec.total_benefit += items_[i].sized.config.benefit;
      rec.total_bytes += bytes;
    }
    return rec;
  }

  const std::vector<SearchItem>& items() const { return items_; }

 private:
  // Running sums over the taken prefix, updated on take/untake and
  // recomputed after a refinement moves a taken item's bounds.
  uint64_t SumLow() const { return current_low_; }
  uint64_t SumHigh() const { return current_high_; }

  void RecomputeCurrentSums() {
    current_low_ = 0;
    current_high_ = 0;
    for (size_t i : current_) {
      current_low_ += items_[i].bytes_low;
      current_high_ += items_[i].bytes_high;
    }
  }

  /// Contributes to the pruning bound: positive benefit, not behind the
  /// DFS frontier, key not taken on the current path.
  bool ItemEligible(size_t j) const {
    return items_[j].sized.config.benefit > 0.0 && index_dead_[j] == 0 &&
           key_taken_[kid_[j]] == 0;
  }

  /// Adds (sign +1) or removes (sign -1) item j's (weight, benefit) at its
  /// density-order position in the Fenwick prefix sums.
  void FenwickToggle(size_t j, int sign) {
    const uint64_t w = items_[j].bytes_low;
    const double b = items_[j].sized.config.benefit;
    for (size_t p = pos_of_item_[j]; p <= density_order_.size();
         p += p & (~p + 1)) {
      fen_w_[p] = sign > 0 ? fen_w_[p] + w : fen_w_[p] - w;
      fen_b_[p] += sign > 0 ? b : -b;
    }
  }

  /// Marks every item sharing key id `k` as taken (or untaken), keeping the
  /// Fenwick sums in sync with eligibility.
  void SetKeyTaken(uint32_t k, bool taken) {
    if (incremental_bound_) {
      for (const uint32_t j : key_items_[k]) {
        if (items_[j].sized.config.benefit > 0.0 && index_dead_[j] == 0) {
          FenwickToggle(j, taken ? -1 : +1);
        }
      }
    }
    key_taken_[k] = taken ? 1 : 0;
  }

  /// Marks item `i` as passed by the DFS frontier for the rest of the
  /// current Dfs frame (and its subtree), logging the flip for rollback.
  void PassIndex(size_t i) {
    if (!incremental_bound_) return;
    if (ItemEligible(i)) FenwickToggle(i, -1);
    index_dead_[i] = 1;
    dead_log_.push_back(static_cast<uint32_t>(i));
  }

  /// Optimistic sizes in exact density order make the greedy fractional
  /// fill the LP optimum over the remaining candidates — an upper bound on
  /// any completion of the current prefix (the dedup rule only tightens
  /// reality further).
  void RebuildDensityOrder() {
    density_order_.clear();
    density_order_.reserve(items_.size());
    for (size_t i = 0; i < items_.size(); ++i) density_order_.push_back(i);
    std::stable_sort(
        density_order_.begin(), density_order_.end(),
        [&](size_t a, size_t b) {
          // benefit_a / w_a > benefit_b / w_b by cross-multiplication,
          // exact for w = 0 (infinite density first).
          const double da = items_[a].sized.config.benefit *
                            static_cast<double>(items_[b].bytes_low);
          const double db = items_[b].sized.config.benefit *
                            static_cast<double>(items_[a].bytes_low);
          if (da != db) return da > db;
          if (items_[a].key != items_[b].key)
            return items_[a].key < items_[b].key;
          return a < b;
        });
    if (!incremental_bound_) return;
    // Rebuild the Fenwick prefix sums over the (possibly re-sorted) density
    // positions from the current eligibility flags. Rebuilds happen once at
    // Run() and after each (rare) refinement; every node in between updates
    // the tree incrementally.
    const size_t n = density_order_.size();
    pos_of_item_.assign(items_.size(), 0);
    for (size_t p = 0; p < n; ++p) pos_of_item_[density_order_[p]] = p + 1;
    fen_w_.assign(n + 1, 0);
    fen_b_.assign(n + 1, 0.0);
    fen_top_ = 1;
    while (fen_top_ * 2 <= n) fen_top_ *= 2;
    for (size_t j = 0; j < items_.size(); ++j) {
      if (ItemEligible(j)) FenwickToggle(j, +1);
    }
  }

  /// Certainly feasible greedy (pessimistic sizes) over the shared order:
  /// benefits are exact, so any feasible set lower-bounds the optimum and
  /// primes the pruning bound from the first node.
  void SeedGreedyIncumbent() {
    uint64_t bytes_high = 0;
    std::vector<uint8_t> taken(key_items_.size(), 0);
    best_.clear();
    best_benefit_ = 0.0;
    for (size_t i = 0; i < items_.size(); ++i) {
      const SearchItem& it = items_[i];
      if (it.sized.config.benefit <= 0.0) continue;
      if (bytes_high + it.bytes_high > bound_) continue;
      if (taken[kid_[i]] != 0) continue;
      taken[kid_[i]] = 1;
      best_.push_back(i);
      best_benefit_ += it.sized.config.benefit;
      bytes_high += it.bytes_high;
    }
  }

  double FractionalBound(size_t i) const {
    const uint64_t low = SumLow();
    if (low > bound_) return 0.0;
    uint64_t cap = bound_ - low;
    if (incremental_bound_) {
      // Fenwick descent: the largest density-order prefix whose eligible
      // weight fits `cap`, accumulating its benefit along the way. The DFS
      // frontier (`j < i` below) is encoded in the eligibility flags, so
      // `i` itself is implicit. O(log n) against the legacy path's O(n)
      // rescan of the density order per node.
      size_t p = 0;
      uint64_t acc_w = 0;
      double acc_b = 0.0;
      const size_t n = density_order_.size();
      for (size_t step = fen_top_; step > 0; step >>= 1) {
        const size_t next = p + step;
        if (next <= n && acc_w + fen_w_[next] <= cap) {
          p = next;
          acc_w += fen_w_[next];
          acc_b += fen_b_[next];
        }
      }
      if (p < n) {
        // Maximality of the prefix means position p+1 carries weight
        // strictly greater than the remaining capacity — in particular
        // non-zero, so the item there is eligible and the greedy fill
        // breaks exactly here with a fractional share.
        const SearchItem& it = items_[density_order_[p]];
        acc_b += it.sized.config.benefit *
                 (static_cast<double>(cap - acc_w) /
                  static_cast<double>(it.bytes_low));
      }
      return acc_b;
    }
    double bound_benefit = 0.0;
    for (size_t j : density_order_) {
      if (j < i) continue;
      const SearchItem& it = items_[j];
      const double benefit = it.sized.config.benefit;
      if (benefit <= 0.0) continue;
      if (key_taken_[kid_[j]] != 0) continue;
      const uint64_t w = it.bytes_low;
      if (w == 0 || w <= cap) {
        bound_benefit += benefit;
        cap -= std::min(cap, w);
      } else {
        bound_benefit +=
            benefit * (static_cast<double>(cap) / static_cast<double>(w));
        break;
      }
    }
    return bound_benefit;
  }

  /// Commits a take/skip feasibility decision for item `i` against the
  /// taken prefix, refining straddling intervals — the current item
  /// first, then taken-but-unresolved items in take order — until the
  /// decision resolves or everything relevant is point-valued.
  Result<bool> DecideFit(size_t i) {
    while (true) {
      const uint64_t low = SumLow();
      const uint64_t high = SumHigh();
      SearchItem& item = items_[i];
      if (high + item.bytes_high <= bound_) return true;   // certainly fits
      if (low + item.bytes_low > bound_) return false;     // certainly not
      SearchItem* to_refine = nullptr;
      if (!item.refined) {
        to_refine = &item;
      } else {
        for (size_t t : current_) {
          if (!items_[t].refined) {
            to_refine = &items_[t];
            break;
          }
        }
      }
      if (to_refine == nullptr || refinery_ == nullptr) {
        // Everything point-valued: low == high, decided above — this is
        // only reachable if an interval cannot be refined further.
        return high + item.bytes_high <= bound_;
      }
      SearchItem* target = to_refine;
      auto done = [this, i, target](const SearchItem& probe) {
        uint64_t probe_low = 0;
        uint64_t probe_high = 0;
        for (size_t t : current_) {
          const SearchItem& it =
              (&items_[t] == target) ? probe : items_[t];
          probe_low += it.bytes_low;
          probe_high += it.bytes_high;
        }
        const SearchItem& cand = (&items_[i] == target) ? probe : items_[i];
        probe_low += cand.bytes_low;
        probe_high += cand.bytes_high;
        return probe_high <= bound_ || probe_low > bound_;
      };
      CFEST_RETURN_NOT_OK(refinery_->Refine(target, done));
      RebuildDensityOrder();   // optimistic sizes moved
      RecomputeCurrentSums();  // the refined item may be on the taken path
    }
  }

  /// Rolls the DFS frontier back to a dead-log watermark (frame exit).
  void UnwindDeadLog(size_t mark) {
    while (dead_log_.size() > mark) {
      const uint32_t j = dead_log_.back();
      dead_log_.pop_back();
      index_dead_[j] = 0;
      if (ItemEligible(j)) FenwickToggle(j, +1);
    }
  }

  /// Fully-iterative DFS over the skip chain: an explicit frame stack —
  /// one frame per *taken* candidate on the current path — replaces
  /// recursion, so path depth is bounded by heap, not the thread stack
  /// (kLazy deliberately does not cap the candidate count, and a
  /// scarce-bound 100k-candidate instance legitimately takes thousands).
  /// Items a frame's loop passes go behind the DFS frontier for the whole
  /// subtree; the dead log rolls them back when the frame unwinds, so
  /// frontier maintenance costs O(1) amortized Fenwick updates per node.
  Status Dfs(size_t start) {
    struct Frame {
      size_t i;          // loop position: next to visit, or (while a child
                         // frame is open) the position taken to enter it
      size_t undo_mark;  // dead-log watermark restored on frame exit
    };
    std::vector<Frame> stack;
    stack.push_back({start, dead_log_.size()});
    const size_t root_mark = dead_log_.size();
    while (!stack.empty()) {
      Frame& frame = stack.back();
      bool descended = false;
      for (size_t i = frame.i;; ++i) {
        stats_->nodes_visited.Increment();
        if (current_benefit_ > best_benefit_) {
          best_benefit_ = current_benefit_;
          best_ = current_;
        }
        if (i >= items_.size()) break;
        if (current_benefit_ + FractionalBound(i) <= best_benefit_) {
          stats_->nodes_pruned.Increment();
          break;
        }
        SearchItem& item = items_[i];
        if (item.sized.config.benefit > 0.0 && key_taken_[kid_[i]] == 0) {
          const Result<bool> fits = DecideFit(i);
          if (!fits.ok()) {
            UnwindDeadLog(root_mark);
            return fits.status();
          }
          if (*fits) {
            SetKeyTaken(kid_[i], true);
            current_.push_back(i);
            current_benefit_ += item.sized.config.benefit;
            current_low_ += item.bytes_low;
            current_high_ += item.bytes_high;
            frame.i = i;  // resume here to untake once the subtree is done
            stack.push_back({i + 1, dead_log_.size()});
            descended = true;
            break;
          }
        }
        PassIndex(i);
      }
      if (descended) continue;
      // Frame exhausted (end of chain or pruned): restore the frontier,
      // then untake the item whose take opened this frame and resume its
      // parent right after that position.
      UnwindDeadLog(frame.undo_mark);
      stack.pop_back();
      if (!stack.empty()) {
        const size_t i = stack.back().i;
        SearchItem& item = items_[i];
        current_benefit_ -= item.sized.config.benefit;
        current_low_ -= item.bytes_low;
        current_high_ -= item.bytes_high;
        current_.pop_back();
        SetKeyTaken(kid_[i], false);
        PassIndex(i);
        stack.back().i = i + 1;
      }
    }
    return Status::OK();
  }

  std::vector<SearchItem> items_;
  uint64_t bound_ = 0;
  ItemRefinery* refinery_;
  LazyRunCounters* stats_;
  bool incremental_bound_ = true;

  // Key interning: item -> dense key id, key id -> member items, and the
  // taken bitmap replacing the old std::set<std::string>.
  std::vector<uint32_t> kid_;
  std::vector<std::vector<uint32_t>> key_items_;
  std::vector<uint8_t> key_taken_;

  // Incremental-bound state: DFS-frontier flags with their undo log, and
  // Fenwick prefix sums of eligible (weight, benefit) over density-order
  // positions (1-based; index 0 unused).
  std::vector<uint8_t> index_dead_;
  std::vector<uint32_t> dead_log_;
  std::vector<size_t> pos_of_item_;
  std::vector<uint64_t> fen_w_;
  std::vector<double> fen_b_;
  size_t fen_top_ = 1;

  std::vector<size_t> density_order_;
  std::vector<size_t> current_;
  uint64_t current_low_ = 0;
  uint64_t current_high_ = 0;
  double current_benefit_ = 0.0;
  std::vector<size_t> best_;
  double best_benefit_ = 0.0;
};

/// Builds the deduped, ordered item list from per-candidate coarse
/// estimates (`coarse` and `floors` positionally aligned with
/// `candidates`). Exact uncompressed candidates are point-valued at once;
/// a compressed candidate converged at the coarse sample is only
/// point-valued if that sample already meets its sizing floor.
std::vector<SearchItem> BuildItems(
    std::span<const CandidateConfiguration> candidates,
    const std::vector<AdaptiveCandidateResult>& coarse,
    const std::vector<uint64_t>& floors) {
  std::vector<SizedCandidate> sized;
  sized.reserve(coarse.size());
  for (const AdaptiveCandidateResult& r : coarse) sized.push_back(r.sized);
  const std::vector<size_t> order = OrderCandidatesForSelection(sized);
  std::vector<SearchItem> items;
  items.reserve(order.size());
  for (size_t i : order) {
    SearchItem item;
    item.input_index = i;
    item.key = CandidateSelectionKey(candidates[i]);
    item.sizing_floor = floors[i];
    const bool exact = IsUncompressedScheme(candidates[i].scheme);
    ApplyEstimate(coarse[i],
                  exact || (coarse[i].converged &&
                            coarse[i].rows_sampled >= floors[i]),
                  &item);
    items.push_back(std::move(item));
  }
  return items;
}

/// The shared lazy pass: one (engine, candidate-index group) per table.
/// `pool` fans the coarse estimates out — across tables when there are
/// several groups, across candidates inside a single group otherwise
/// (never nested, mirroring EstimateAllAdaptive).
Result<AdvisorRecommendation> LazyAdviseImpl(
    std::vector<std::pair<EstimationEngine*, std::vector<size_t>>> groups,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, const PrecisionTarget& target, ThreadPool* pool,
    LazyAdvisorStats* stats_out) {
  trace::Span advise_span("advisor.lazy_advise");
  LazyRunCounters stats;

  // One refiner per table engine (validates the target once per table).
  std::map<std::string, CandidateRefiner> refiners;
  for (const auto& [engine, members] : groups) {
    const std::string& name = candidates[members[0]].table_name;
    CFEST_ASSIGN_OR_RETURN(CandidateRefiner refiner,
                           CandidateRefiner::Make(*engine, target));
    refiners.emplace(name, std::move(refiner));
  }
  auto refiner_for = [&](const std::string& table) -> CandidateRefiner* {
    auto it = refiners.find(table);
    if (it != refiners.end()) return &it->second;
    // Single-engine pass: every candidate shares the one refiner
    // regardless of its (reporting-only) table name.
    return refiners.size() == 1 ? &refiners.begin()->second : nullptr;
  };

  // Coarse pass: grow each table's sample to the first-round floor
  // (serial — growth mutates the engine), then estimate every candidate
  // once at that coarse sample.
  for (const auto& [engine, members] : groups) {
    CandidateRefiner* refiner = refiner_for(candidates[members[0]].table_name);
    CFEST_RETURN_NOT_OK(
        engine
            ->GrowSample(std::min(refiner->row_cap(),
                                  std::max<uint64_t>(1, target.min_rows)))
            .status());
    stats.coarse_rows.Add(engine->sample_rows());
  }
  std::vector<AdaptiveCandidateResult> coarse(candidates.size());
  std::vector<uint64_t> floors(candidates.size(), 0);
  const bool fan_tables = groups.size() > 1;
  CFEST_RETURN_NOT_OK(StatusParallelFor(
      fan_tables ? pool : nullptr, groups.size(), [&](uint64_t g) -> Status {
        const auto& [engine, members] = groups[static_cast<size_t>(g)];
        CandidateRefiner* refiner =
            refiner_for(candidates[members[0]].table_name);
        return StatusParallelFor(
            fan_tables ? nullptr : pool, members.size(),
            [&](uint64_t k) -> Status {
              const size_t i = members[static_cast<size_t>(k)];
              CFEST_ASSIGN_OR_RETURN(
                  coarse[i], refiner->EstimateAtCurrentSample(candidates[i]));
              floors[i] = SizingFloorRows(
                  *engine, coarse[i].sized.uncompressed_bytes, coarse[i].cf);
              return Status::OK();
            });
      }));

  // Search with targeted refinement.
  ItemRefinery refinery(refiner_for, &stats);
  LazySearch search(BuildItems(candidates, coarse, floors), storage_bound,
                    &refinery, &stats);
  stats.candidates.Add(search.items().size());
  Result<AdvisorRecommendation> rec = search.Run();
  for (const SearchItem& item : search.items()) {
    stats.total_rows_sized.Add(item.rows_sampled);
  }
  if (rec.ok() && rec->total_bytes > storage_bound) {
    // Mid-search refinement can move an already-taken candidate's bounds
    // above what its take decision was committed against (the coarse
    // interval missed). Rare — but the advisor contract is a hard storage
    // bound, so re-select exactly over the final (clamped) point
    // estimates; no further sampling happens, and the result is optimal
    // for those estimates by construction.
    std::vector<SizedCandidate> final_sized;
    final_sized.reserve(search.items().size());
    for (const SearchItem& item : search.items()) {
      SizedCandidate sized = item.sized;
      sized.estimated_bytes =
          std::min(std::max(sized.estimated_bytes, item.bytes_low),
                   item.bytes_high);
      final_sized.push_back(std::move(sized));
    }
    rec = SearchSizedCandidates(final_sized,
                                OrderCandidatesForSelection(final_sized),
                                storage_bound);
  }
  if (stats_out != nullptr) *stats_out = stats.ToStats();
  return rec;
}

}  // namespace

Result<AdvisorRecommendation> AdviseConfigurationsLazy(
    EstimationEngine& engine,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, const PrecisionTarget& target,
    LazyAdvisorStats* stats) {
  if (candidates.empty()) {
    if (stats != nullptr) *stats = LazyAdvisorStats{};
    AdvisorRecommendation rec;
    rec.storage_bound = storage_bound;
    return rec;
  }
  std::vector<size_t> members;
  members.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) members.push_back(i);
  std::vector<std::pair<EstimationEngine*, std::vector<size_t>>> groups;
  groups.emplace_back(&engine, std::move(members));
  ThreadPool* pool =
      engine.options().num_threads != 1 && candidates.size() > 1
          ? engine.shared_pool()
          : nullptr;
  return LazyAdviseImpl(std::move(groups), candidates, storage_bound, target,
                        pool, stats);
}

Result<AdvisorRecommendation> AdviseConfigurationsLazy(
    CatalogEstimationService& service,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, const PrecisionTarget& target,
    LazyAdvisorStats* stats) {
  if (candidates.empty()) {
    if (stats != nullptr) *stats = LazyAdvisorStats{};
    AdvisorRecommendation rec;
    rec.storage_bound = storage_bound;
    return rec;
  }
  // Group by table, preserving first-appearance order; resolve every
  // engine up front so a missing table fails before any estimation work.
  std::vector<std::string> table_order;
  std::vector<std::vector<size_t>> members;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const std::string& name = candidates[i].table_name;
    size_t g = 0;
    for (; g < table_order.size(); ++g) {
      if (table_order[g] == name) break;
    }
    if (g == table_order.size()) {
      table_order.push_back(name);
      members.emplace_back();
    }
    members[g].push_back(i);
  }
  std::vector<std::pair<EstimationEngine*, std::vector<size_t>>> groups;
  groups.reserve(table_order.size());
  for (size_t g = 0; g < table_order.size(); ++g) {
    Result<EstimationEngine*> engine = service.Engine(table_order[g]);
    if (!engine.ok()) {
      return Status::NotFound(
          "candidate " + std::to_string(members[g][0]) + " (" +
          candidates[members[g][0]].index.name + "): " +
          engine.status().message());
    }
    groups.emplace_back(*engine, std::move(members[g]));
  }
  ThreadPool* pool =
      service.options().num_threads == 1 ? nullptr : service.shared_pool();
  return LazyAdviseImpl(std::move(groups), candidates, storage_bound, target,
                        pool, stats);
}

AdvisorRecommendation SearchSizedCandidates(
    const std::vector<SizedCandidate>& candidates,
    const std::vector<size_t>& order, uint64_t storage_bound,
    LazyAdvisorStats* stats, bool incremental_bound) {
  LazyRunCounters local;
  std::vector<SearchItem> items;
  items.reserve(order.size());
  for (size_t i : order) {
    SearchItem item;
    item.input_index = i;
    item.key = CandidateSelectionKey(candidates[i].config);
    item.sized = candidates[i];
    item.bytes_low = item.bytes_high = candidates[i].estimated_bytes;
    item.rows_sampled = candidates[i].sample_rows;
    item.refined = true;
    items.push_back(std::move(item));
  }
  LazySearch search(std::move(items), storage_bound, nullptr, &local,
                    incremental_bound);
  local.candidates.Add(search.items().size());
  // All items are point-valued: the search cannot fail.
  AdvisorRecommendation rec = search.Run().ValueOrDie();
  if (stats != nullptr) *stats = local.ToStats();
  return rec;
}

}  // namespace cfest
