// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Storage-bounded selection of index configurations: the advisor maximizes
// total workload benefit subject to the storage bound, choosing at most one
// configuration per index (an index is either not built, built uncompressed,
// or built with one compression scheme).

#ifndef CFEST_ADVISOR_ADVISOR_H_
#define CFEST_ADVISOR_ADVISOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "advisor/what_if.h"
#include "common/result.h"
#include "estimator/adaptive.h"
#include "estimator/engine.h"
#include "estimator/service.h"

namespace cfest {

/// \brief Selection strategy.
///
/// Rule of thumb: kGreedy for huge candidate sets where a heuristic is
/// acceptable; kOptimal as the exact reference on small (<= 24) sets;
/// kLazy for exact selections at any scale — and, through
/// AdviseConfigurationsLazy (advisor/search.h), for skipping most of the
/// sizing work too.
enum class AdvisorStrategy {
  /// Benefit-per-byte greedy (the classic knapsack heuristic used by
  /// physical design tools).
  kGreedy,
  /// Exact branch-and-bound over the candidate set with the simple
  /// suffix-benefit pruning bound (exponential; intended for <= ~24
  /// candidates — the reference implementation the lazy search is
  /// cross-checked against).
  kOptimal,
  /// Exact branch-and-bound with the fractional-knapsack pruning bound
  /// (advisor/search.h). Same selections as kOptimal, no candidate cap;
  /// on pre-sized candidates this is the point-interval degenerate case
  /// of the engine-aware lazy advisor (AdviseConfigurationsLazy).
  kLazy,
};

/// \brief The advisor's chosen configuration set.
struct AdvisorRecommendation {
  std::vector<SizedCandidate> selected;
  double total_benefit = 0.0;
  uint64_t total_bytes = 0;
  uint64_t storage_bound = 0;
};

/// Collision-free key of the at-most-one-configuration-per-index rule:
/// encodes the (table_name, index name) pair unambiguously (length-prefixed,
/// so table "a.b" + index "c" never collides with table "a" + index "b.c").
/// Shared by every selection strategy and the lazy search.
std::string CandidateSelectionKey(const CandidateConfiguration& config);

/// The strategy-shared candidate ordering: indices into `candidates`,
/// stable-sorted by benefit density (benefit per estimated byte)
/// descending, ties broken by selection key then input position — so
/// selections are deterministic across platforms and STLs — with exact
/// duplicates (same key, scheme, benefit, and sizes) dropped. Greedy scans
/// this order; both exact searches branch in it.
std::vector<size_t> OrderCandidatesForSelection(
    const std::vector<SizedCandidate>& candidates);

/// Picks a subset of sized candidates under `storage_bound` bytes, at most
/// one per (table, index) pair.
Result<AdvisorRecommendation> SelectConfigurations(
    const std::vector<SizedCandidate>& candidates, uint64_t storage_bound,
    AdvisorStrategy strategy = AdvisorStrategy::kGreedy);

/// End-to-end advisor pass: what-if sizes every candidate through `engine`
/// (one shared sample, cached sample indexes, parallel fan-out) and selects
/// a configuration set under the bound. This is the batched replacement for
/// the EstimateCandidateSize-per-candidate loop.
Result<AdvisorRecommendation> AdviseConfigurations(
    EstimationEngine& engine,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound,
    AdvisorStrategy strategy = AdvisorStrategy::kGreedy);

/// Catalog-level advisor pass: candidates may span any number of tables;
/// the service sizes them in one cross-table fan-out (one engine per
/// table, created lazily) before the same selection runs. The merged
/// recommendation picks at most one configuration per (table, index) pair.
Result<AdvisorRecommendation> AdviseConfigurations(
    CatalogEstimationService& service,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound,
    AdvisorStrategy strategy = AdvisorStrategy::kGreedy);

/// Precision-targeted advisor pass: candidates are sized through the
/// adaptive flow (estimator/adaptive.h) — the engine's sample grows until
/// every candidate's CF' interval meets `target` — before the same
/// selection runs on the final estimates. `adaptive_out`, if non-null,
/// receives the per-candidate intervals, rows sampled, and growth report.
Result<AdvisorRecommendation> AdviseConfigurations(
    EstimationEngine& engine,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, const PrecisionTarget& target,
    AdvisorStrategy strategy = AdvisorStrategy::kGreedy,
    AdaptiveBatchResult* adaptive_out = nullptr);

/// Catalog-level precision-targeted pass: each table's engine grows
/// independently toward the shared target (see EstimateAllAdaptive).
Result<AdvisorRecommendation> AdviseConfigurations(
    CatalogEstimationService& service,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, const PrecisionTarget& target,
    AdvisorStrategy strategy = AdvisorStrategy::kGreedy,
    AdaptiveBatchResult* adaptive_out = nullptr);

}  // namespace cfest

#endif  // CFEST_ADVISOR_ADVISOR_H_
