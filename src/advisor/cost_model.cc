#include "advisor/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cfest {

double QueryCost(const Query& query, const PhysicalOption& option,
                 const CostModelParams& params) {
  const double total_pages = std::max(
      1.0, std::ceil(static_cast<double>(option.total_bytes) /
                     static_cast<double>(params.page_size)));
  // An option ordered on the predicate column serves `selectivity` of its
  // leaf level; otherwise the whole structure is scanned.
  const bool can_seek = option.key_column == query.key_column;
  const double pages_read =
      can_seek ? std::max(1.0, std::ceil(total_pages * query.selectivity))
               : total_pages;
  const double rows_processed =
      std::max(1.0, static_cast<double>(option.row_count) *
                        (can_seek ? query.selectivity : 1.0));
  const double cpu_multiplier =
      option.compressed ? params.decompress_factor : 1.0;
  return pages_read * params.page_read_cost +
         rows_processed * params.row_cpu_cost * cpu_multiplier;
}

Result<double> WorkloadCost(const std::vector<Query>& workload,
                            const std::vector<PhysicalOption>& options,
                            const CostModelParams& params) {
  double total = 0.0;
  for (const Query& query : workload) {
    if (!(query.selectivity > 0.0) || query.selectivity > 1.0) {
      return Status::InvalidArgument("query selectivity must be in (0, 1]");
    }
    double best = std::numeric_limits<double>::infinity();
    for (const PhysicalOption& option : options) {
      if (option.table_name != query.table_name) continue;
      best = std::min(best, QueryCost(query, option, params));
    }
    if (!std::isfinite(best)) {
      return Status::InvalidArgument("no physical option for table " +
                                     query.table_name);
    }
    total += query.weight * best;
  }
  return total;
}

Result<double> CandidateBenefit(
    const std::vector<Query>& workload,
    const std::vector<PhysicalOption>& baseline_options,
    const PhysicalOption& candidate, const CostModelParams& params) {
  CFEST_ASSIGN_OR_RETURN(double before,
                         WorkloadCost(workload, baseline_options, params));
  std::vector<PhysicalOption> with = baseline_options;
  with.push_back(candidate);
  CFEST_ASSIGN_OR_RETURN(double after, WorkloadCost(workload, with, params));
  return std::max(0.0, before - after);
}

}  // namespace cfest
