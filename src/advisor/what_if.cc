#include "advisor/what_if.h"

#include <cmath>

namespace cfest {
namespace {

/// Width of one index row without building it.
Result<uint32_t> IndexRowWidth(const Table& table,
                               const IndexDescriptor& index) {
  uint32_t width = 0;
  std::vector<bool> used(table.schema().num_columns(), false);
  for (const std::string& name : index.key_columns) {
    CFEST_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
    if (used[idx]) {
      return Status::InvalidArgument("duplicate key column " + name);
    }
    used[idx] = true;
    width += table.schema().width(idx);
  }
  if (index.clustered) {
    for (size_t i = 0; i < table.schema().num_columns(); ++i) {
      if (!used[i]) width += table.schema().width(i);
    }
  } else {
    width += 8;  // __rid
  }
  return width;
}

}  // namespace

Result<uint64_t> EstimateUncompressedIndexBytes(const Table& table,
                                                const IndexDescriptor& index,
                                                size_t page_size) {
  CFEST_ASSIGN_OR_RETURN(uint32_t width, IndexRowWidth(table, index));
  const uint64_t per_page =
      (page_size - kPageHeaderSize) / (width + kSlotSize);
  if (per_page == 0) {
    return Status::InvalidArgument("index row wider than a page");
  }
  const uint64_t n = table.num_rows();
  const uint64_t leaves = n == 0 ? 1 : (n + per_page - 1) / per_page;
  // Internal fan-out: separator key + child pointer per entry.
  uint32_t key_width = 0;
  for (const std::string& name : index.key_columns) {
    CFEST_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
    key_width += table.schema().width(idx);
  }
  const uint64_t fanout = std::max<uint64_t>(
      2, (page_size - kPageHeaderSize) / (key_width + 8 + kSlotSize));
  return (leaves + InternalPageCount(leaves, fanout)) * page_size;
}

Result<SizedCandidate> EstimateCandidateSize(
    const Table& table, const CandidateConfiguration& candidate,
    const SampleCFOptions& options, Random* rng) {
  SizedCandidate sized;
  sized.config = candidate;
  CFEST_ASSIGN_OR_RETURN(
      sized.uncompressed_bytes,
      EstimateUncompressedIndexBytes(table, candidate.index,
                                     options.build.page_size));

  const bool is_uncompressed =
      candidate.scheme.per_column.empty() &&
      candidate.scheme.default_type == CompressionType::kNone;
  if (is_uncompressed) {
    sized.estimated_cf = 1.0;
    sized.estimated_bytes = sized.uncompressed_bytes;
    return sized;
  }

  SampleCFOptions page_options = options;
  page_options.metric = SizeMetric::kPageBytes;
  CFEST_ASSIGN_OR_RETURN(
      SampleCFResult result,
      SampleCF(table, candidate.index, candidate.scheme, page_options, rng));
  sized.estimated_cf = result.cf.value;
  sized.estimated_bytes = static_cast<uint64_t>(std::llround(
      result.cf.value * static_cast<double>(sized.uncompressed_bytes)));
  return sized;
}

}  // namespace cfest
