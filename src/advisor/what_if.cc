#include "advisor/what_if.h"

namespace cfest {

Result<SizedCandidate> EstimateCandidateSize(
    const Table& table, const CandidateConfiguration& candidate,
    const SampleCFOptions& options, Random* rng) {
  EstimationEngineOptions engine_options;
  engine_options.base = options;
  engine_options.rng = rng;
  EstimationEngine engine(table, engine_options);
  if (IsUncompressedScheme(candidate.scheme)) {
    return engine.EstimateExact(candidate);
  }
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const SampleEpoch> epoch,
                         engine.PinEpoch());
  return engine.EstimateAt(*epoch, candidate);
}

}  // namespace cfest
