#include "advisor/advisor.h"

#include <algorithm>
#include <bit>
#include <set>

#include "advisor/search.h"

namespace cfest {

std::string CandidateSelectionKey(const CandidateConfiguration& config) {
  // Length-prefixed table name followed by the index name: unambiguous for
  // any pair of names (a plain "." join conflated table "a.b" + index "c"
  // with table "a" + index "b.c" and wrongly dropped one of them).
  std::string key = std::to_string(config.table_name.size());
  key += ':';
  key += config.table_name;
  key += '\0';
  key += config.index.name;
  return key;
}

namespace {

double BenefitDensity(const SizedCandidate& c) {
  return c.config.benefit /
         static_cast<double>(std::max<uint64_t>(1, c.estimated_bytes));
}

}  // namespace

std::vector<size_t> OrderCandidatesForSelection(
    const std::vector<SizedCandidate>& candidates) {
  std::vector<size_t> order;
  order.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) order.push_back(i);
  std::vector<std::string> keys;
  keys.reserve(candidates.size());
  for (const SizedCandidate& c : candidates) {
    keys.push_back(CandidateSelectionKey(c.config));
  }
  // stable_sort plus the (key, input position) tie-break: equal-density
  // candidates order identically on every platform/STL.
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double da = BenefitDensity(candidates[a]);
    const double db = BenefitDensity(candidates[b]);
    if (da != db) return da > db;
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
  // Exact duplicates are redundant in every strategy (at most one per key
  // is selectable, and identical entries tie everywhere): keep the first.
  std::set<std::string> seen;
  std::vector<size_t> unique;
  unique.reserve(order.size());
  for (size_t i : order) {
    const SizedCandidate& c = candidates[i];
    std::string fingerprint = keys[i];
    fingerprint += '\0';
    fingerprint += c.config.scheme.ToString();
    fingerprint += '\0';
    // Bit-exact benefit: to_string would round to 6 decimals and could
    // merge near-equal but distinct candidates.
    fingerprint += std::to_string(std::bit_cast<uint64_t>(c.config.benefit));
    fingerprint += ':';
    fingerprint += std::to_string(c.estimated_bytes);
    fingerprint += ':';
    fingerprint += std::to_string(c.uncompressed_bytes);
    if (!seen.insert(std::move(fingerprint)).second) continue;
    unique.push_back(i);
  }
  return unique;
}

namespace {

AdvisorRecommendation Greedy(const std::vector<SizedCandidate>& candidates,
                             const std::vector<size_t>& order,
                             uint64_t storage_bound) {
  AdvisorRecommendation rec;
  rec.storage_bound = storage_bound;
  std::set<std::string> taken;
  for (size_t i : order) {
    const SizedCandidate& c = candidates[i];
    if (c.config.benefit <= 0.0) continue;
    if (rec.total_bytes + c.estimated_bytes > storage_bound) continue;
    if (!taken.insert(CandidateSelectionKey(c.config)).second) continue;
    rec.selected.push_back(c);
    rec.total_benefit += c.config.benefit;
    rec.total_bytes += c.estimated_bytes;
  }
  return rec;
}

/// Exhaustive branch-and-bound over the shared candidate order, pruning
/// with an optimistic remaining-benefit bound. The reference implementation
/// the lazy search (advisor/search.h) is cross-checked against.
struct OptimalSearch {
  const std::vector<SizedCandidate>* candidates;
  const std::vector<size_t>* order;
  uint64_t bound;
  std::vector<double> suffix_benefit;  // max benefit achievable from slot i on

  std::vector<size_t> best;
  double best_benefit = -1.0;

  std::vector<size_t> current;
  double current_benefit = 0.0;
  uint64_t current_bytes = 0;
  std::set<std::string> taken;

  void Run(size_t i) {
    if (current_benefit > best_benefit) {
      best_benefit = current_benefit;
      best = current;
    }
    if (i >= order->size()) return;
    if (current_benefit + suffix_benefit[i] <= best_benefit) return;  // prune
    const SizedCandidate& c = (*candidates)[(*order)[i]];
    // Branch 1: take it (if feasible).
    const std::string key = CandidateSelectionKey(c.config);
    if (c.config.benefit > 0.0 &&
        current_bytes + c.estimated_bytes <= bound &&
        taken.find(key) == taken.end()) {
      taken.insert(key);
      current.push_back((*order)[i]);
      current_benefit += c.config.benefit;
      current_bytes += c.estimated_bytes;
      Run(i + 1);
      current_bytes -= c.estimated_bytes;
      current_benefit -= c.config.benefit;
      current.pop_back();
      taken.erase(key);
    }
    // Branch 2: skip it.
    Run(i + 1);
  }
};

AdvisorRecommendation Optimal(const std::vector<SizedCandidate>& candidates,
                              const std::vector<size_t>& order,
                              uint64_t storage_bound) {
  OptimalSearch search;
  search.candidates = &candidates;
  search.order = &order;
  search.bound = storage_bound;
  search.suffix_benefit.assign(order.size() + 1, 0.0);
  for (size_t i = order.size(); i-- > 0;) {
    search.suffix_benefit[i] =
        search.suffix_benefit[i + 1] +
        std::max(0.0, candidates[order[i]].config.benefit);
  }
  search.Run(0);
  AdvisorRecommendation rec;
  rec.storage_bound = storage_bound;
  for (size_t i : search.best) {
    rec.selected.push_back(candidates[i]);
    rec.total_benefit += candidates[i].config.benefit;
    rec.total_bytes += candidates[i].estimated_bytes;
  }
  return rec;
}

}  // namespace

Result<AdvisorRecommendation> SelectConfigurations(
    const std::vector<SizedCandidate>& candidates, uint64_t storage_bound,
    AdvisorStrategy strategy) {
  const std::vector<size_t> order = OrderCandidatesForSelection(candidates);
  if (strategy == AdvisorStrategy::kOptimal && order.size() > 24) {
    return Status::InvalidArgument(
        "optimal strategy is exponential; use greedy or lazy for " +
        std::to_string(order.size()) + " candidates");
  }
  switch (strategy) {
    case AdvisorStrategy::kGreedy:
      return Greedy(candidates, order, storage_bound);
    case AdvisorStrategy::kOptimal:
      return Optimal(candidates, order, storage_bound);
    case AdvisorStrategy::kLazy:
      return SearchSizedCandidates(candidates, order, storage_bound);
  }
  return Status::NotSupported("unhandled strategy");
}

Result<AdvisorRecommendation> AdviseConfigurations(
    EstimationEngine& engine,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, AdvisorStrategy strategy) {
  CFEST_ASSIGN_OR_RETURN(std::vector<SizedCandidate> sized,
                         engine.EstimateAll(candidates));
  return SelectConfigurations(sized, storage_bound, strategy);
}

Result<AdvisorRecommendation> AdviseConfigurations(
    CatalogEstimationService& service,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, AdvisorStrategy strategy) {
  CFEST_ASSIGN_OR_RETURN(std::vector<SizedCandidate> sized,
                         service.EstimateAll(candidates));
  return SelectConfigurations(sized, storage_bound, strategy);
}

namespace {

std::vector<SizedCandidate> SizedFromAdaptive(
    const AdaptiveBatchResult& adaptive) {
  std::vector<SizedCandidate> sized;
  sized.reserve(adaptive.candidates.size());
  for (const AdaptiveCandidateResult& r : adaptive.candidates) {
    sized.push_back(r.sized);
  }
  return sized;
}

}  // namespace

Result<AdvisorRecommendation> AdviseConfigurations(
    EstimationEngine& engine,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, const PrecisionTarget& target,
    AdvisorStrategy strategy, AdaptiveBatchResult* adaptive_out) {
  CFEST_ASSIGN_OR_RETURN(AdaptiveBatchResult adaptive,
                         EstimateAllAdaptive(engine, candidates, target));
  Result<AdvisorRecommendation> rec =
      SelectConfigurations(SizedFromAdaptive(adaptive), storage_bound,
                           strategy);
  if (adaptive_out != nullptr) *adaptive_out = std::move(adaptive);
  return rec;
}

Result<AdvisorRecommendation> AdviseConfigurations(
    CatalogEstimationService& service,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, const PrecisionTarget& target,
    AdvisorStrategy strategy, AdaptiveBatchResult* adaptive_out) {
  CFEST_ASSIGN_OR_RETURN(AdaptiveBatchResult adaptive,
                         EstimateAllAdaptive(service, candidates, target));
  Result<AdvisorRecommendation> rec =
      SelectConfigurations(SizedFromAdaptive(adaptive), storage_bound,
                           strategy);
  if (adaptive_out != nullptr) *adaptive_out = std::move(adaptive);
  return rec;
}

}  // namespace cfest
