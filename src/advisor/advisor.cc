#include "advisor/advisor.h"

#include <algorithm>
#include <set>

namespace cfest {
namespace {

std::string CandidateKey(const SizedCandidate& c) {
  return c.config.table_name + "." + c.config.index.name;
}

AdvisorRecommendation Greedy(const std::vector<SizedCandidate>& candidates,
                             uint64_t storage_bound) {
  std::vector<const SizedCandidate*> order;
  order.reserve(candidates.size());
  for (const auto& c : candidates) order.push_back(&c);
  std::sort(order.begin(), order.end(),
            [](const SizedCandidate* a, const SizedCandidate* b) {
              const double da =
                  a->config.benefit /
                  static_cast<double>(std::max<uint64_t>(1, a->estimated_bytes));
              const double db =
                  b->config.benefit /
                  static_cast<double>(std::max<uint64_t>(1, b->estimated_bytes));
              return da > db;
            });
  AdvisorRecommendation rec;
  rec.storage_bound = storage_bound;
  std::set<std::string> taken;
  for (const SizedCandidate* c : order) {
    if (c->config.benefit <= 0.0) continue;
    if (rec.total_bytes + c->estimated_bytes > storage_bound) continue;
    if (!taken.insert(CandidateKey(*c)).second) continue;
    rec.selected.push_back(*c);
    rec.total_benefit += c->config.benefit;
    rec.total_bytes += c->estimated_bytes;
  }
  return rec;
}

/// Exhaustive branch-and-bound: tries candidates in order, pruning with an
/// optimistic remaining-benefit bound.
struct OptimalSearch {
  const std::vector<SizedCandidate>* candidates;
  uint64_t bound;
  std::vector<double> suffix_benefit;  // max benefit achievable from index i on

  std::vector<size_t> best;
  double best_benefit = -1.0;

  std::vector<size_t> current;
  double current_benefit = 0.0;
  uint64_t current_bytes = 0;
  std::set<std::string> taken;

  void Run(size_t i) {
    if (current_benefit > best_benefit) {
      best_benefit = current_benefit;
      best = current;
    }
    if (i >= candidates->size()) return;
    if (current_benefit + suffix_benefit[i] <= best_benefit) return;  // prune
    const SizedCandidate& c = (*candidates)[i];
    // Branch 1: take it (if feasible).
    const std::string key = CandidateKey(c);
    if (c.config.benefit > 0.0 &&
        current_bytes + c.estimated_bytes <= bound &&
        taken.find(key) == taken.end()) {
      taken.insert(key);
      current.push_back(i);
      current_benefit += c.config.benefit;
      current_bytes += c.estimated_bytes;
      Run(i + 1);
      current_bytes -= c.estimated_bytes;
      current_benefit -= c.config.benefit;
      current.pop_back();
      taken.erase(key);
    }
    // Branch 2: skip it.
    Run(i + 1);
  }
};

AdvisorRecommendation Optimal(const std::vector<SizedCandidate>& candidates,
                              uint64_t storage_bound) {
  OptimalSearch search;
  search.candidates = &candidates;
  search.bound = storage_bound;
  search.suffix_benefit.assign(candidates.size() + 1, 0.0);
  for (size_t i = candidates.size(); i-- > 0;) {
    search.suffix_benefit[i] = search.suffix_benefit[i + 1] +
                               std::max(0.0, candidates[i].config.benefit);
  }
  search.Run(0);
  AdvisorRecommendation rec;
  rec.storage_bound = storage_bound;
  for (size_t i : search.best) {
    rec.selected.push_back(candidates[i]);
    rec.total_benefit += candidates[i].config.benefit;
    rec.total_bytes += candidates[i].estimated_bytes;
  }
  return rec;
}

}  // namespace

Result<AdvisorRecommendation> SelectConfigurations(
    const std::vector<SizedCandidate>& candidates, uint64_t storage_bound,
    AdvisorStrategy strategy) {
  if (strategy == AdvisorStrategy::kOptimal && candidates.size() > 24) {
    return Status::InvalidArgument(
        "optimal strategy is exponential; use greedy for " +
        std::to_string(candidates.size()) + " candidates");
  }
  switch (strategy) {
    case AdvisorStrategy::kGreedy:
      return Greedy(candidates, storage_bound);
    case AdvisorStrategy::kOptimal:
      return Optimal(candidates, storage_bound);
  }
  return Status::NotSupported("unhandled strategy");
}

Result<AdvisorRecommendation> AdviseConfigurations(
    EstimationEngine& engine,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, AdvisorStrategy strategy) {
  CFEST_ASSIGN_OR_RETURN(std::vector<SizedCandidate> sized,
                         engine.EstimateAll(candidates));
  return SelectConfigurations(sized, storage_bound, strategy);
}

Result<AdvisorRecommendation> AdviseConfigurations(
    CatalogEstimationService& service,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, AdvisorStrategy strategy) {
  CFEST_ASSIGN_OR_RETURN(std::vector<SizedCandidate> sized,
                         service.EstimateAll(candidates));
  return SelectConfigurations(sized, storage_bound, strategy);
}

namespace {

std::vector<SizedCandidate> SizedFromAdaptive(
    const AdaptiveBatchResult& adaptive) {
  std::vector<SizedCandidate> sized;
  sized.reserve(adaptive.candidates.size());
  for (const AdaptiveCandidateResult& r : adaptive.candidates) {
    sized.push_back(r.sized);
  }
  return sized;
}

}  // namespace

Result<AdvisorRecommendation> AdviseConfigurations(
    EstimationEngine& engine,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, const PrecisionTarget& target,
    AdvisorStrategy strategy, AdaptiveBatchResult* adaptive_out) {
  CFEST_ASSIGN_OR_RETURN(AdaptiveBatchResult adaptive,
                         EstimateAllAdaptive(engine, candidates, target));
  Result<AdvisorRecommendation> rec =
      SelectConfigurations(SizedFromAdaptive(adaptive), storage_bound,
                           strategy);
  if (adaptive_out != nullptr) *adaptive_out = std::move(adaptive);
  return rec;
}

Result<AdvisorRecommendation> AdviseConfigurations(
    CatalogEstimationService& service,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, const PrecisionTarget& target,
    AdvisorStrategy strategy, AdaptiveBatchResult* adaptive_out) {
  CFEST_ASSIGN_OR_RETURN(AdaptiveBatchResult adaptive,
                         EstimateAllAdaptive(service, candidates, target));
  Result<AdvisorRecommendation> rec =
      SelectConfigurations(SizedFromAdaptive(adaptive), storage_bound,
                           strategy);
  if (adaptive_out != nullptr) *adaptive_out = std::move(adaptive);
  return rec;
}

}  // namespace cfest
