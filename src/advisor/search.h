// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Lazy interval-driven branch-and-bound advisor.
//
// The eager advisor pass (AdviseConfigurations with a PrecisionTarget)
// sizes *every* candidate to convergence before selection runs — but the
// selection itself only needs sizes precise enough to order and fit the
// configurations it actually deliberates over. AutoAdmin-style what-if
// tools observed that most candidates are prunable before precise costing;
// PR 3's per-candidate confidence intervals are exactly the
// optimistic/pessimistic size bounds a branch-and-bound search needs to
// act on that observation:
//
//   1. Coarse pass — every candidate is estimated once on a small sample
//      (the engine's base fraction, floored at target.min_rows) and gets
//      an interval: its CF' lower/upper bound maps to an optimistic /
//      pessimistic byte footprint. Uncompressed candidates are exact.
//   2. Search — depth-first branch-and-bound over the strategy-shared
//      candidate order (OrderCandidatesForSelection), seeded with the
//      greedy incumbent, pruning any subtree whose fractional-knapsack
//      bound (optimistic sizes, optimistic remaining capacity) cannot
//      strictly beat the incumbent. Benefits are caller inputs, so the
//      objective is exact throughout — only feasibility is uncertain.
//   3. Targeted refinement — a candidate is refined (CandidateRefiner:
//      GrowSample-backed, resuming the engine's draw stream) only when its
//      interval straddles a feasibility decision the search must commit
//      to: it would fit at its optimistic size but not at its pessimistic
//      one. Refinement stops as soon as the decision resolves or the
//      candidate converges to the precision target, whichever is first.
//
// Most candidates therefore never get a converged estimate at all: they
// are taken because even their pessimistic size fits, skipped because even
// their optimistic size does not, or never deliberated because their
// subtree is pruned. bench/bench_advisor_lazy.cc gates that the selections
// are identical to the eager-optimal reference on <= 24-candidate seeded
// workloads and that strictly fewer total rows are sized than the eager
// precision-targeted path on a 100+-candidate mixed-table workload.

#ifndef CFEST_ADVISOR_SEARCH_H_
#define CFEST_ADVISOR_SEARCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "advisor/advisor.h"
#include "common/result.h"
#include "estimator/adaptive.h"
#include "estimator/engine.h"
#include "estimator/service.h"

namespace cfest {

/// \brief Observability counters of one lazy advisor run. A compat
/// snapshot of the per-run registry-backed `cfest.lazy.*` counters — the
/// fields are filled from the same Counter objects MetricRegistry
/// aggregates, so on a quiesced run both views agree bit for bit.
struct LazyAdvisorStats {
  /// Candidates after the shared dedup.
  size_t candidates = 0;
  /// Candidates that received targeted refinement (interval straddled a
  /// feasibility decision).
  size_t refined = 0;
  /// Sample-growth rounds summed over all refinements.
  uint64_t refine_rounds = 0;
  uint64_t nodes_visited = 0;
  uint64_t nodes_pruned = 0;
  /// Sum over candidates of the sample rows behind their final estimate
  /// (coarse rows for never-refined candidates, refined rows otherwise,
  /// 0 for exact uncompressed candidates) — the quantity
  /// bench_advisor_lazy compares against the eager path's rows_sampled
  /// total.
  uint64_t total_rows_sized = 0;
  /// Rows of the coarse first-pass samples summed over tables.
  uint64_t coarse_rows = 0;
};

/// Lazy advisor pass over one engine: coarse intervals for every candidate,
/// branch-and-bound selection under `storage_bound`, targeted refinement
/// only where an interval straddles a decision. Selections match the
/// eager-optimal reference whenever the coarse intervals cover the
/// converged estimates (their stated confidence). Like the adaptive flow,
/// not safe to run concurrently with other estimates on `engine`; the
/// engine's sample afterwards is whatever the deepest refinement grew it
/// to. `candidates` may exceed the eager-optimal 24-candidate cap.
Result<AdvisorRecommendation> AdviseConfigurationsLazy(
    EstimationEngine& engine,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, const PrecisionTarget& target = {},
    LazyAdvisorStats* stats = nullptr);

/// Catalog-level lazy pass: candidates may span tables; each table's
/// engine serves its candidates' coarse intervals (fanned across the
/// service's shared pool) and grows independently under targeted
/// refinement.
Result<AdvisorRecommendation> AdviseConfigurationsLazy(
    CatalogEstimationService& service,
    std::span<const CandidateConfiguration> candidates,
    uint64_t storage_bound, const PrecisionTarget& target = {},
    LazyAdvisorStats* stats = nullptr);

/// The point-interval degenerate case: exact branch-and-bound over
/// pre-sized candidates in the shared `order` (OrderCandidatesForSelection)
/// with the fractional-knapsack pruning bound and no candidate cap — what
/// SelectConfigurations dispatches AdvisorStrategy::kLazy to. Same
/// selections as kOptimal up to ties in total benefit.
///
/// `incremental_bound` selects the pruning-bound implementation: true (the
/// default) maintains the fractional-knapsack bound incrementally in a
/// Fenwick tree over the density order (O(log n) per node); false rescans
/// the density order at every node (O(n) per node) — the pre-Fenwick path,
/// kept so tests and bench_micro_kernels can pin selection equality and
/// measure the speedup. Both produce the same selections; summing benefits
/// in tree order can differ from the sequential rescan by floating-point
/// rounding, which only matters for prune-at-equality ties between
/// non-integer benefits.
AdvisorRecommendation SearchSizedCandidates(
    const std::vector<SizedCandidate>& candidates,
    const std::vector<size_t>& order, uint64_t storage_bound,
    LazyAdvisorStats* stats = nullptr, bool incremental_bound = true);

}  // namespace cfest

#endif  // CFEST_ADVISOR_SEARCH_H_
