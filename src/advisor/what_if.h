// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// What-if sizing of candidate (index, compression) configurations. This is
// the use case the paper's introduction motivates: physical-design tools
// "take as input a query workload and a storage bound to produce a set of
// indexes that can fit the storage bound", which requires estimating the
// size of an index *if it were to be compressed* without building it.

#ifndef CFEST_ADVISOR_WHAT_IF_H_
#define CFEST_ADVISOR_WHAT_IF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "compression/scheme.h"
#include "estimator/sample_cf.h"
#include "index/index.h"
#include "storage/table.h"

namespace cfest {

/// \brief A candidate physical-design structure for the advisor.
struct CandidateConfiguration {
  /// Table the index would be built on (catalog name, for reporting).
  std::string table_name;
  IndexDescriptor index;
  CompressionScheme scheme;
  /// Workload benefit if this candidate is materialized (supplied by the
  /// caller's cost model; the advisor maximizes the sum).
  double benefit = 0.0;
};

/// \brief A candidate with its estimated storage footprint.
struct SizedCandidate {
  CandidateConfiguration config;
  /// CF' from SampleCF (1.0 for uncompressed candidates).
  double estimated_cf = 1.0;
  /// Estimated on-disk pages * page size for the *full* index.
  uint64_t estimated_bytes = 0;
  /// Size the uncompressed index would have (page-granular).
  uint64_t uncompressed_bytes = 0;
};

/// Uncompressed full-index size (page-granular) from schema arithmetic
/// alone — no build needed, mirroring how design tools size uncompressed
/// indexes "in a straightforward manner from the schema" (paper §I).
Result<uint64_t> EstimateUncompressedIndexBytes(const Table& table,
                                                const IndexDescriptor& index,
                                                size_t page_size =
                                                    kDefaultPageSize);

/// Sizes one candidate: runs SampleCF for compressed candidates and scales
/// the uncompressed estimate by CF'.
Result<SizedCandidate> EstimateCandidateSize(const Table& table,
                                             const CandidateConfiguration&
                                                 candidate,
                                             const SampleCFOptions& options,
                                             Random* rng);

}  // namespace cfest

#endif  // CFEST_ADVISOR_WHAT_IF_H_
