// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// What-if sizing of candidate (index, compression) configurations. This is
// the use case the paper's introduction motivates: physical-design tools
// "take as input a query workload and a storage bound to produce a set of
// indexes that can fit the storage bound", which requires estimating the
// size of an index *if it were to be compressed* without building it.
//
// The candidate/sized-candidate types, the uncompressed size arithmetic, and
// the batch path live in estimator/engine.h (EstimationEngine); this header
// keeps the single-shot wrapper whose rng-driven draw matches the paper's
// Fig. 2 pipeline invocation-for-invocation.

#ifndef CFEST_ADVISOR_WHAT_IF_H_
#define CFEST_ADVISOR_WHAT_IF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "compression/scheme.h"
#include "estimator/engine.h"
#include "estimator/sample_cf.h"
#include "index/index.h"
#include "storage/table.h"

namespace cfest {

/// Sizes one candidate: runs SampleCF for compressed candidates and scales
/// the uncompressed estimate by CF'. Thin single-shot wrapper over
/// EstimationEngine — it draws a fresh sample from `rng` per call; batch
/// callers should hold an engine and use EstimateAll instead.
Result<SizedCandidate> EstimateCandidateSize(const Table& table,
                                             const CandidateConfiguration&
                                                 candidate,
                                             const SampleCFOptions& options,
                                             Random* rng);

}  // namespace cfest

#endif  // CFEST_ADVISOR_WHAT_IF_H_
