// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// The compression fraction CF = size(compressed index) / size(uncompressed
// index), paper §II-B, and the conventions for measuring "size".

#ifndef CFEST_ESTIMATOR_COMPRESSION_FRACTION_H_
#define CFEST_ESTIMATOR_COMPRESSION_FRACTION_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "compression/compressed_index.h"
#include "compression/scheme.h"
#include "index/index.h"
#include "storage/table.h"

namespace cfest {

/// \brief Which byte counts enter the CF ratio.
enum class SizeMetric {
  /// Pure data bytes: compressed = column-chunk bytes + auxiliary
  /// (dictionary) bytes; uncompressed = n * row_width. Closest to the
  /// paper's closed-form analysis (no page framing on either side).
  kDataBytes,
  /// Bytes actually used inside pages (headers, records, slots) on both
  /// sides, plus auxiliary bytes.
  kUsedBytes,
  /// Whole pages (leaf + internal + dictionary) times page size — what a
  /// capacity planner sees on disk.
  kPageBytes,
};

const char* SizeMetricName(SizeMetric metric);

/// \brief A measured compression fraction.
struct CompressionFraction {
  double value = 1.0;
  uint64_t compressed_bytes = 0;
  uint64_t uncompressed_bytes = 0;
  SizeMetric metric = SizeMetric::kDataBytes;
};

/// Computes the CF of an already-built index/compressed pair.
CompressionFraction MeasureCF(const IndexStats& uncompressed,
                              const CompressedIndexStats& compressed,
                              SizeMetric metric);

/// \brief Ground truth: builds the full index on `table`, compresses it, and
/// returns the exact CF ("the naive method ... while highly accurate is
/// prohibitively inefficient" — this is the expensive path SampleCF avoids).
Result<CompressionFraction> ComputeTrueCF(
    const Table& table, const IndexDescriptor& descriptor,
    const CompressionScheme& scheme, SizeMetric metric = SizeMetric::kDataBytes,
    const IndexBuildOptions& options = {kDefaultPageSize,
                                        /*keep_pages=*/false});

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_COMPRESSION_FRACTION_H_
