#include "estimator/adaptive.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/metrics.h"
#include "common/stats.h"
#include "common/trace.h"
#include "index/index.h"
#include "storage/table_view.h"

namespace cfest {
namespace {

/// Registry-backed adaptive-loop counters (process-wide; the loop has no
/// long-lived stats struct of its own, so the registry is the only home).
struct AdaptiveMetrics {
  metrics::Counter* rounds;
  metrics::Counter* growth_steps;
  metrics::Counter* rows_sized;
};

/// The `cfest.adaptive.*` children for one table label (empty = the
/// unlabeled children). Resolved through the registry once per distinct
/// table and memoized here, so round/sizing call sites pay one map lookup
/// per call — never per-row label resolution. Family aggregates keep the
/// process-wide totals regardless of how traffic splits across tables.
const AdaptiveMetrics& MetricsFor(const std::string& table_name) {
  static Mutex* mu = new Mutex();
  static std::unordered_map<std::string, AdaptiveMetrics>* cache =
      new std::unordered_map<std::string, AdaptiveMetrics>();
  MutexLock lock(*mu);
  auto it = cache->find(table_name);
  if (it == cache->end()) {
    metrics::LabelSet labels;
    if (!table_name.empty()) labels.emplace_back("table", table_name);
    AdaptiveMetrics m{
        metrics::MetricRegistry::Global().GetCounter("cfest.adaptive.rounds",
                                                     labels),
        metrics::MetricRegistry::Global().GetCounter(
            "cfest.adaptive.growth_steps", labels),
        metrics::MetricRegistry::Global().GetCounter(
            "cfest.adaptive.rows_sized", labels)};
    it = cache->emplace(table_name, m).first;
  }
  return it->second;
}

/// The engine's table label — how every adaptive call site picks its
/// children (engines created by the catalog service carry the name).
const AdaptiveMetrics& MetricsFor(const EstimationEngine& engine) {
  return MetricsFor(engine.options().table_name);
}

constexpr const char* kMethodExact = "exact";
constexpr const char* kMethodTheorem1 = "theorem1";
constexpr const char* kMethodGroups = "group_replicates";

Status ValidateTarget(const PrecisionTarget& target) {
  if (!(target.rel_error > 0.0)) {
    return Status::InvalidArgument("rel_error must be positive");
  }
  if (!(target.confidence > 0.0) || !(target.confidence < 1.0)) {
    return Status::InvalidArgument("confidence must lie in (0, 1)");
  }
  if (!(target.max_fraction > 0.0) || target.max_fraction > 1.0) {
    return Status::InvalidArgument("max_fraction must lie in (0, 1]");
  }
  if (!(target.growth_factor > 1.0)) {
    return Status::InvalidArgument("growth_factor must be > 1");
  }
  if (!(target.cf_floor > 0.0)) {
    return Status::InvalidArgument("cf_floor must be positive");
  }
  if (target.interval_groups < 2) {
    return Status::InvalidArgument("interval_groups must be >= 2");
  }
  if (target.max_rounds == 0) {
    return Status::InvalidArgument("max_rounds must be >= 1");
  }
  return Status::OK();
}

}  // namespace

bool IsUniformNullSuppressionScheme(const CompressionScheme& scheme) {
  if (scheme.per_column.empty()) {
    return scheme.default_type == CompressionType::kNullSuppression;
  }
  return std::all_of(scheme.per_column.begin(), scheme.per_column.end(),
                     [](CompressionType t) {
                       return t == CompressionType::kNullSuppression;
                     });
}

std::string FormatGrowthSchedule(const std::vector<uint64_t>& rows_per_round) {
  std::string out;
  for (uint64_t rows : rows_per_round) {
    if (!out.empty()) out += " -> ";
    out += std::to_string(rows);
  }
  return out;
}

Result<double> NumSigmasForConfidence(double confidence) {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    return Status::InvalidArgument("confidence must lie in (0, 1), got " +
                                   std::to_string(confidence));
  }
  // Two-sided normal coverage of +-z sigma is erf(z / sqrt(2)); invert by
  // bisection (erf is monotone; 20 sigma covers any representable level).
  double lo = 0.0, hi = 20.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (std::erf(mid / std::sqrt(2.0)) < confidence) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

uint64_t EstimateNeededSampleRows(double half_width_now, uint64_t rows_now,
                                  double target_half_width) {
  if (rows_now == 0) return 0;
  if (!(target_half_width > 0.0)) return rows_now;
  if (half_width_now <= target_half_width) return rows_now;
  const double ratio = half_width_now / target_half_width;
  const double needed = static_cast<double>(rows_now) * ratio * ratio;
  if (needed >= 1e18) return ~0ull;  // caller clamps to its budget anyway
  return static_cast<uint64_t>(std::ceil(needed));
}

namespace {

/// Unseen-mass floor on a data-dependent half-width (rule of three,
/// generalized): r draws with no rare deviant rows bound such rows'
/// frequency only to -ln(1 - confidence)/r, and one deviant row shifts a
/// bounded per-row contribution by up to 1 — so no data-dependent interval
/// may claim a smaller half-width. Without this, a constant-looking column
/// yields identical group estimates, zero spread, and a zero-width "95%"
/// interval the data cannot support.
double UnseenMassFloor(double num_sigmas, uint64_t rows) {
  const double miss_prob =
      std::erfc(num_sigmas / std::sqrt(2.0));  // two-sided tail mass
  return -std::log(std::max(miss_prob, 1e-300)) /
         static_cast<double>(rows);
}

}  // namespace

namespace internal {

/// The g sorted group indexes over contiguous draw-order slices of
/// `sample` — the replicate builds behind the data-dependent interval.
Result<std::vector<Index>> BuildGroupIndexes(const Table& sample,
                                             const IndexDescriptor& descriptor,
                                             uint32_t groups,
                                             const IndexBuildOptions& build) {
  const uint64_t rows = sample.num_rows();
  std::vector<Index> indexes;
  indexes.reserve(groups);
  for (uint32_t j = 0; j < groups; ++j) {
    const uint64_t begin = rows * j / groups;
    const uint64_t end = rows * (j + 1) / groups;
    std::vector<RowId> positions;
    positions.reserve(static_cast<size_t>(end - begin));
    for (uint64_t p = begin; p < end; ++p) positions.push_back(p);
    CFEST_ASSIGN_OR_RETURN(std::unique_ptr<TableView> view,
                           TableView::Make(sample, std::move(positions)));
    CFEST_ASSIGN_OR_RETURN(Index index,
                           Index::Build(*view, descriptor, build));
    indexes.push_back(std::move(index));
  }
  return indexes;
}

/// Round-scoped cache of group index builds: the replicate indexes depend
/// only on (key set, clustered, group count) and the current sample, so
/// every scheme ranked on the same key set shares one set of builds —
/// index builds dominate interval cost, exactly like the engine's
/// sample-index cache on the estimate path. Thread-safe; concurrent first
/// requests for a key are deduplicated with a shared future.
class GroupIndexCache {
 public:
  Result<std::shared_ptr<const std::vector<Index>>> Get(
      const Table& sample, const IndexDescriptor& descriptor,
      uint32_t groups, const IndexBuildOptions& build) {
    // Same key convention as the engine's sample-index cache, extended by
    // the group count.
    std::string key = SampleIndexCacheKey(descriptor);
    key += ':';
    key += std::to_string(groups);

    std::shared_future<Entry> future;
    bool builder = false;
    std::promise<Entry> promise;
    {
      MutexLock lock(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        future = it->second;
      } else {
        future = promise.get_future().share();
        entries_.emplace(key, future);
        builder = true;
      }
    }
    if (builder) {
      Entry entry;
      Result<std::vector<Index>> built =
          BuildGroupIndexes(sample, descriptor, groups, build);
      if (built.ok()) {
        entry.indexes = std::make_shared<const std::vector<Index>>(
            std::move(built).ValueOrDie());
      } else {
        entry.status = built.status();
      }
      promise.set_value(std::move(entry));
    }
    const Entry& entry = future.get();
    CFEST_RETURN_NOT_OK(entry.status);
    return entry.indexes;
  }

 private:
  struct Entry {
    Status status = Status::OK();
    std::shared_ptr<const std::vector<Index>> indexes;
  };
  Mutex mu_;
  std::unordered_map<std::string, std::shared_future<Entry>> entries_
      GUARDED_BY(mu_);
};

}  // namespace internal

namespace {

using internal::BuildGroupIndexes;
using internal::GroupIndexCache;

Result<ConfidenceInterval> EstimateCandidateIntervalImpl(
    EstimationEngine& engine, const SampleEpoch& epoch,
    const CandidateConfiguration& candidate, double cf, double num_sigmas,
    uint32_t interval_groups, std::string* method, GroupIndexCache* cache) {
  if (IsUncompressedScheme(candidate.scheme)) {
    if (method != nullptr) *method = kMethodExact;
    return ConfidenceInterval{cf, cf, num_sigmas};
  }
  const Table* sample = &epoch.sample();
  const uint64_t rows = epoch.sample_rows();
  const bool is_ns = IsUniformNullSuppressionScheme(candidate.scheme);

  uint32_t groups = interval_groups;
  if (rows < 2ull * groups) groups = static_cast<uint32_t>(rows / 2);
  if (groups < 2) {
    // Too few rows for replicates; use the worst-case bound (NS's hard
    // guarantee, and conservative-by-construction for everything else on
    // a handful of rows).
    if (method != nullptr) *method = kMethodTheorem1;
    return Theorem1ConfidenceInterval(cf, rows, num_sigmas);
  }

  // Data-dependent width in the style of EmpiricalNsConfidenceInterval:
  // contiguous draw-order groups are i.i.d. replicates of the estimator at
  // rows/g, whose width shrinks as 1/sqrt(r) (Theorems 1-3), so the group
  // spread over sqrt(g) estimates the full-sample sigma. This is what
  // distinguishes an easy (low-variance) column from a hard one — the
  // whole point of adapting the sample size per candidate.
  const SampleCFOptions& base = engine.options().base;
  std::shared_ptr<const std::vector<Index>> shared_indexes;
  std::vector<Index> own_indexes;
  const std::vector<Index>* group_indexes = nullptr;
  if (cache != nullptr) {
    CFEST_ASSIGN_OR_RETURN(
        shared_indexes,
        cache->Get(*sample, candidate.index, groups, base.build));
    group_indexes = shared_indexes.get();
  } else {
    CFEST_ASSIGN_OR_RETURN(
        own_indexes,
        BuildGroupIndexes(*sample, candidate.index, groups, base.build));
    group_indexes = &own_indexes;
  }
  RunningStats group_cf;
  for (const Index& index : *group_indexes) {
    CFEST_ASSIGN_OR_RETURN(CompressedIndex compressed,
                           index.Compress(candidate.scheme, base.build));
    group_cf.Add(
        MeasureCF(index.stats(), compressed.stats(), base.metric).value);
  }
  const double sigma =
      group_cf.stddev() / std::sqrt(static_cast<double>(groups));
  // Student-t widening for the small replicate count (first-order
  // Cornish-Fisher: t_df(p) ~= z + (z^3 + z) / (4 df)) — g estimates of
  // the spread are not a known sigma.
  const double t_sigmas =
      num_sigmas + (num_sigmas * num_sigmas * num_sigmas + num_sigmas) /
                       (4.0 * static_cast<double>(groups - 1));
  double half = t_sigmas * sigma;
  half = std::max(half, UnseenMassFloor(num_sigmas, rows));
  std::string picked = kMethodGroups;
  if (is_ns) {
    // Theorem 1 caps the NS estimator's sigma at 1/(2 sqrt(r)) regardless
    // of the data — rare values included — so for NS the distribution-free
    // bound overrides both the replicate width and the floor whenever it
    // is narrower.
    const double worst_case =
        num_sigmas * Theorem1StdDevBound(rows);
    if (worst_case < half) {
      half = worst_case;
      picked = kMethodTheorem1;
    }
  }
  if (method != nullptr) *method = picked;
  ConfidenceInterval ci;
  ci.num_sigmas = num_sigmas;
  ci.lower = cf - half < 0.0 ? 0.0 : cf - half;
  ci.upper = cf + half;
  return ci;
}

/// The sample-row cap the target imposes over an n-row table.
uint64_t RowCapForTarget(const PrecisionTarget& target, uint64_t n) {
  uint64_t cap = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::llround(target.max_fraction * static_cast<double>(n))));
  if (target.row_budget > 0) cap = std::min(cap, target.row_budget);
  return cap;
}

/// One candidate's full estimate on the engine's current sample: footprint
/// sizing (page metric), base-metric CF', interval, and target half-width —
/// the body of one adaptive round for one candidate, shared by the round
/// loop and CandidateRefiner. Leaves `rounds`/`converged` to the caller.
Status EstimateCandidateNow(EstimationEngine& engine, const SampleEpoch& epoch,
                            const CandidateConfiguration& c, double z,
                            const PrecisionTarget& target,
                            GroupIndexCache* cache,
                            AdaptiveCandidateResult* r) {
  trace::Span span("adaptive.estimate_candidate");
  // One cached-index build + compression yields both the base-metric CF'
  // (controlled quantity) and the page-metric footprint (what
  // EstimationEngine::Estimate reports). Everything reads the pinned epoch
  // — including the full-index scaling's row count — so the result is
  // immune to appends streaming in concurrently.
  CFEST_ASSIGN_OR_RETURN(SampleCFResult est,
                         engine.EstimateCFAt(epoch, c.index, c.scheme));
  CFEST_ASSIGN_OR_RETURN(
      const uint64_t uncompressed,
      EstimateUncompressedIndexBytes(engine.table(), c.index,
                                     engine.options().base.build.page_size,
                                     epoch.table_rows()));
  const double page_cf =
      MeasureCF(est.sample_uncompressed, est.sample_compressed,
                SizeMetric::kPageBytes)
          .value;
  r->sized.config = c;
  r->sized.estimated_cf = page_cf;
  r->sized.uncompressed_bytes = uncompressed;
  r->sized.estimated_bytes = static_cast<uint64_t>(
      std::llround(page_cf * static_cast<double>(uncompressed)));
  r->sized.sample_rows = est.sample_rows;
  r->cf = est.cf.value;
  r->rows_sampled = est.sample_rows;
  // Accumulate, never overwrite: the round loop re-estimates into the same
  // persistent result each round, so this sums the candidate's per-round
  // sizing work (attribution that survives convergence dropout).
  r->cumulative_rows_sized += est.sample_rows;
  MetricsFor(engine).rows_sized->Add(est.sample_rows);
  r->target_half_width = target.rel_error * std::max(r->cf, target.cf_floor);
  CFEST_ASSIGN_OR_RETURN(
      r->interval,
      EstimateCandidateIntervalImpl(engine, epoch, c, r->cf, z,
                                    target.interval_groups,
                                    &r->interval_method, cache));
  return Status::OK();
}

/// Rows the candidate's interval says it needs for its target half-width,
/// by the interval's own shrinkage law: Theorem-1 closed form for the
/// distribution-free bound, linear extrapolation when the unseen-mass
/// floor (1/r) binds, 1/sqrt(r) otherwise.
uint64_t NeededRowsFor(const AdaptiveCandidateResult& r, uint64_t rows,
                       double z) {
  // The upper half-width: unlike (upper - lower) / 2 it is immune to the
  // zero-clamping of the lower bound, which would otherwise understate the
  // width for small-CF candidates and both converge them early and
  // under-extrapolate the rows they need.
  const double half = r.interval.upper - r.cf;
  if (r.interval_method == kMethodTheorem1) {
    return SampleSizeForHalfWidth(r.target_half_width, z);
  }
  if (half <= UnseenMassFloor(z, rows) * 1.000001) {
    // Floor-bound interval: the unseen-mass floor shrinks as 1/r, not
    // 1/sqrt(r), so extrapolate linearly — the quadratic law would
    // overshoot the needed rows by half/target.
    return static_cast<uint64_t>(std::ceil(
        static_cast<double>(rows) * half / r.target_half_width));
  }
  return EstimateNeededSampleRows(half, rows, r.target_half_width);
}

}  // namespace

Result<std::vector<CandidateIntervalResult>> EstimateCandidateIntervals(
    EstimationEngine& engine,
    std::span<const CandidateConfiguration> candidates, double num_sigmas,
    uint32_t interval_groups, ThreadPool* pool) {
  // One pinned epoch for the whole batch: every candidate's CF' and
  // interval come from the same sample snapshot, and the fan-out below
  // never touches the engine mutex.
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const SampleEpoch> epoch,
                         engine.PinEpoch());
  GroupIndexCache cache;
  std::vector<CandidateIntervalResult> results(candidates.size());
  CFEST_RETURN_NOT_OK(StatusParallelFor(
      candidates.size() > 1 ? pool : nullptr, candidates.size(),
      [&](uint64_t i) -> Status {
        CandidateIntervalResult& r = results[i];
        if (IsUncompressedScheme(candidates[i].scheme)) {
          r.cf = 1.0;
          r.interval = ConfidenceInterval{1.0, 1.0, num_sigmas};
          r.method = kMethodExact;
          return Status::OK();
        }
        CFEST_ASSIGN_OR_RETURN(
            SampleCFResult est,
            engine.EstimateCFAt(*epoch, candidates[i].index,
                                candidates[i].scheme));
        r.cf = est.cf.value;
        CFEST_ASSIGN_OR_RETURN(
            r.interval,
            EstimateCandidateIntervalImpl(engine, *epoch, candidates[i], r.cf,
                                          num_sigmas, interval_groups,
                                          &r.method, &cache));
        return Status::OK();
      }));
  return results;
}

AdaptiveEstimator::AdaptiveEstimator(EstimationEngine& engine,
                                     PrecisionTarget target, ThreadPool* pool)
    : engine_(engine), target_(std::move(target)), pool_(pool) {}

Result<AdaptiveBatchResult> AdaptiveEstimator::EstimateAll(
    std::span<const CandidateConfiguration> candidates) {
  CFEST_RETURN_NOT_OK(ValidateTarget(target_));
  CFEST_ASSIGN_OR_RETURN(const double z,
                         NumSigmasForConfidence(target_.confidence));

  AdaptiveBatchResult batch;
  batch.candidates.resize(candidates.size());
  AdaptiveTableReport report;
  if (!candidates.empty()) report.table_name = candidates[0].table_name;

  // Uncompressed candidates are exact — no sampling (no epoch, no draw),
  // converged at once.
  std::vector<size_t> active;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (IsUncompressedScheme(candidates[i].scheme)) {
      AdaptiveCandidateResult& r = batch.candidates[i];
      CFEST_ASSIGN_OR_RETURN(r.sized, engine_.EstimateExact(candidates[i]));
      r.cf = 1.0;
      r.interval = ConfidenceInterval{1.0, 1.0, z};
      r.interval_method = kMethodExact;
      r.converged = true;
    } else {
      active.push_back(i);
    }
  }

  const uint64_t cap =
      RowCapForTarget(target_, engine_.table().num_rows());

  if (!active.empty()) {
    // First round runs on the engine's base-fraction draw, floored at
    // min_rows so the replicate intervals have something to work with.
    // Each round pins the epoch its growth produced and estimates every
    // candidate against that one snapshot — the round is immune to
    // concurrent appends, and the fan-out never touches the engine mutex.
    CFEST_ASSIGN_OR_RETURN(
        std::shared_ptr<const SampleEpoch> epoch,
        engine_.GrowSampleToEpoch(
            std::min(cap, std::max<uint64_t>(1, target_.min_rows))));

    while (true) {
      trace::Span round_span("adaptive.round");
      ++report.rounds;
      MetricsFor(engine_).rounds->Increment();
      const uint64_t rows = epoch->sample_rows();
      report.rows_per_round.push_back(rows);
      const uint32_t round = report.rounds;
      // Replicate index builds are shared across every scheme ranked on
      // the same key set this round (the sample is fixed within a round).
      GroupIndexCache group_cache;

      CFEST_RETURN_NOT_OK(StatusParallelFor(
          active.size() > 1 ? pool_ : nullptr, active.size(),
          [&](uint64_t k) -> Status {
            const size_t i = active[static_cast<size_t>(k)];
            AdaptiveCandidateResult& r = batch.candidates[i];
            CFEST_RETURN_NOT_OK(EstimateCandidateNow(
                engine_, *epoch, candidates[i], z, target_, &group_cache, &r));
            r.rounds = round;
            return Status::OK();
          }));

      // Converged candidates drop out; the rest vote on the next size.
      std::vector<size_t> still_active;
      uint64_t max_needed = 0;
      for (size_t i : active) {
        AdaptiveCandidateResult& r = batch.candidates[i];
        if (r.interval.upper - r.cf <= r.target_half_width) {
          r.converged = true;
          continue;
        }
        max_needed = std::max(max_needed, NeededRowsFor(r, rows, z));
        still_active.push_back(i);
      }
      active = std::move(still_active);
      if (active.empty()) break;
      if (rows >= cap || report.rounds >= target_.max_rounds) {
        report.budget_exhausted = true;
        break;
      }
      // Geometric floor guarantees O(log) rounds; the extrapolated need
      // may jump further in one step.
      const uint64_t geometric = static_cast<uint64_t>(std::ceil(
          static_cast<double>(rows) * target_.growth_factor));
      const uint64_t next = std::min(cap, std::max(max_needed, geometric));
      CFEST_ASSIGN_OR_RETURN(epoch, engine_.GrowSampleToEpoch(next));
      MetricsFor(engine_).growth_steps->Increment();
      if (epoch->sample_rows() <= rows) {  // table exhausted below the cap
        report.budget_exhausted = true;
        break;
      }
    }
  }

  report.final_sample_rows = engine_.sample_rows();
  batch.total_sample_rows = report.final_sample_rows;
  batch.rounds = report.rounds;
  batch.budget_exhausted = report.budget_exhausted;
  batch.tables.push_back(std::move(report));
  return batch;
}

CandidateRefiner::CandidateRefiner(EstimationEngine& engine,
                                   PrecisionTarget target, double num_sigmas)
    : engine_(&engine),
      target_(std::move(target)),
      num_sigmas_(num_sigmas),
      cap_(RowCapForTarget(target_, engine.table().num_rows())) {}

CandidateRefiner::CandidateRefiner(CandidateRefiner&& other) noexcept
    : engine_(other.engine_),
      target_(std::move(other.target_)),
      num_sigmas_(other.num_sigmas_),
      cap_(other.cap_),
      rounds_(other.rounds_),
      cache_version_(other.cache_version_),
      cache_(std::move(other.cache_)) {}

CandidateRefiner& CandidateRefiner::operator=(
    CandidateRefiner&& other) noexcept {
  engine_ = other.engine_;
  target_ = std::move(other.target_);
  num_sigmas_ = other.num_sigmas_;
  cap_ = other.cap_;
  rounds_ = other.rounds_;
  cache_version_ = other.cache_version_;
  cache_ = std::move(other.cache_);
  return *this;
}

CandidateRefiner::~CandidateRefiner() = default;

Result<CandidateRefiner> CandidateRefiner::Make(EstimationEngine& engine,
                                                PrecisionTarget target) {
  CFEST_RETURN_NOT_OK(ValidateTarget(target));
  CFEST_ASSIGN_OR_RETURN(const double z,
                         NumSigmasForConfidence(target.confidence));
  return CandidateRefiner(engine, std::move(target), z);
}

Result<CandidateRefiner::PinnedCache> CandidateRefiner::CurrentCache() {
  // Pinning draws the sample on first use; the epoch's version identifies
  // the sample the cache entries are built on, and handing both back as a
  // pair keeps them coherent even if the engine grows concurrently.
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const SampleEpoch> epoch,
                         engine_->PinEpoch());
  MutexLock lock(cache_mu_);
  if (cache_ == nullptr || epoch->version() != cache_version_) {
    cache_ = std::make_shared<internal::GroupIndexCache>();
    cache_version_ = epoch->version();
  }
  return PinnedCache{std::move(epoch), cache_};
}

Result<AdaptiveCandidateResult> CandidateRefiner::EstimateAtCurrentSample(
    const CandidateConfiguration& candidate) {
  AdaptiveCandidateResult r;
  if (IsUncompressedScheme(candidate.scheme)) {
    CFEST_ASSIGN_OR_RETURN(r.sized, engine_->EstimateExact(candidate));
    r.cf = 1.0;
    r.interval = ConfidenceInterval{1.0, 1.0, num_sigmas_};
    r.interval_method = kMethodExact;
    r.converged = true;
    return r;
  }
  CFEST_ASSIGN_OR_RETURN(PinnedCache pinned, CurrentCache());
  CFEST_RETURN_NOT_OK(EstimateCandidateNow(*engine_, *pinned.epoch, candidate,
                                           num_sigmas_, target_,
                                           pinned.cache.get(), &r));
  r.rounds = rounds_;
  r.converged = r.interval.upper - r.cf <= r.target_half_width;
  return r;
}

Result<AdaptiveCandidateResult> CandidateRefiner::RefineUntil(
    const CandidateConfiguration& candidate,
    const std::function<bool(const AdaptiveCandidateResult&)>& done,
    uint64_t min_rows) {
  if (IsUncompressedScheme(candidate.scheme)) {
    return EstimateAtCurrentSample(candidate);  // exact, no sampling
  }
  // EstimateAtCurrentSample returns a fresh result each call, so its
  // cumulative counter covers only that one estimate; carry the running
  // total across iterations here and stamp it before every return.
  uint64_t cumulative_rows = 0;
  while (true) {
    CFEST_ASSIGN_OR_RETURN(AdaptiveCandidateResult r,
                           EstimateAtCurrentSample(candidate));
    cumulative_rows += r.cumulative_rows_sized;
    r.cumulative_rows_sized = cumulative_rows;
    const uint64_t rows = r.rows_sampled;
    if (r.converged && rows >= min_rows) return r;
    if (done != nullptr && done(r)) return r;
    if (rows >= cap_ || rounds_ >= target_.max_rounds) return r;  // budget
    // Geometric floor guarantees O(log) rounds; the extrapolated need may
    // jump further in one step — the round loop's schedule with this
    // candidate as the only voter. A converged-but-below-floor candidate
    // grows straight to the floor.
    const uint64_t geometric = static_cast<uint64_t>(std::ceil(
        static_cast<double>(rows) * target_.growth_factor));
    const uint64_t needed =
        r.converged ? min_rows
                    : std::max(NeededRowsFor(r, rows, num_sigmas_), min_rows);
    const uint64_t next = std::min(cap_, std::max(needed, geometric));
    CFEST_ASSIGN_OR_RETURN(const uint64_t grown, engine_->GrowSample(next));
    MetricsFor(*engine_).growth_steps->Increment();
    ++rounds_;
    if (grown <= rows) return r;  // table exhausted below the nominal cap
  }
}

Result<AdaptiveBatchResult> EstimateAllAdaptive(
    EstimationEngine& engine,
    std::span<const CandidateConfiguration> candidates,
    const PrecisionTarget& target) {
  ThreadPool* pool = engine.options().num_threads != 1 && candidates.size() > 1
                         ? engine.shared_pool()
                         : nullptr;
  AdaptiveEstimator estimator(engine, target, pool);
  return estimator.EstimateAll(candidates);
}

Result<AdaptiveBatchResult> EstimateAllAdaptive(
    CatalogEstimationService& service,
    std::span<const CandidateConfiguration> candidates,
    const PrecisionTarget& target) {
  // Group by table, preserving first-appearance order.
  std::vector<std::string> table_order;
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const std::string& name = candidates[i].table_name;
    size_t g = 0;
    for (; g < table_order.size(); ++g) {
      if (table_order[g] == name) break;
    }
    if (g == table_order.size()) {
      table_order.push_back(name);
      groups.emplace_back();
    }
    groups[g].push_back(i);
  }

  // Resolve every engine up front (serial) so a missing table fails the
  // whole batch before any estimation work starts.
  std::vector<EstimationEngine*> engines(table_order.size(), nullptr);
  for (size_t g = 0; g < table_order.size(); ++g) {
    Result<EstimationEngine*> engine = service.Engine(table_order[g]);
    if (!engine.ok()) {
      return Status::NotFound(
          "candidate " + std::to_string(groups[g][0]) + " (" +
          candidates[groups[g][0]].index.name + "): " +
          engine.status().message());
    }
    engines[g] = *engine;
  }

  // The per-table loops are fully independent (separate engines, separate
  // samples), so with several tables the loops themselves fan across the
  // shared pool, each running its candidates serially; a single-table
  // batch instead keeps the fan-out inside that table's round loop. The
  // pool is never nested either way.
  ThreadPool* pool =
      service.options().num_threads == 1 ? nullptr : service.shared_pool();
  const bool fan_tables = table_order.size() > 1;
  std::vector<AdaptiveBatchResult> subs(table_order.size());
  CFEST_RETURN_NOT_OK(StatusParallelFor(
      fan_tables ? pool : nullptr, table_order.size(),
      [&](uint64_t g) -> Status {
        std::vector<CandidateConfiguration> group;
        group.reserve(groups[g].size());
        for (size_t i : groups[g]) group.push_back(candidates[i]);
        AdaptiveEstimator estimator(*engines[g], target,
                                    fan_tables ? nullptr : pool);
        CFEST_ASSIGN_OR_RETURN(subs[g], estimator.EstimateAll(group));
        return Status::OK();
      }));

  AdaptiveBatchResult merged;
  merged.candidates.resize(candidates.size());
  for (size_t g = 0; g < table_order.size(); ++g) {
    for (size_t k = 0; k < groups[g].size(); ++k) {
      merged.candidates[groups[g][k]] = std::move(subs[g].candidates[k]);
    }
    AdaptiveTableReport report = std::move(subs[g].tables[0]);
    report.table_name = table_order[g];
    merged.total_sample_rows += report.final_sample_rows;
    merged.rounds = std::max(merged.rounds, report.rounds);
    merged.budget_exhausted =
        merged.budget_exhausted || report.budget_exhausted;
    merged.tables.push_back(std::move(report));
  }
  return merged;
}

}  // namespace cfest
