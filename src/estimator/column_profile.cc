#include "estimator/column_profile.h"

#include <algorithm>
#include <unordered_map>

#include "storage/row_codec.h"

namespace cfest {

Result<ColumnProfile> ProfileColumn(const Table& table, size_t col,
                                    size_t top_k, size_t histogram_buckets) {
  if (col >= table.schema().num_columns()) {
    return Status::OutOfRange("column " + std::to_string(col) +
                              " out of range");
  }
  if (histogram_buckets == 0) {
    return Status::InvalidArgument("need at least one histogram bucket");
  }
  ColumnProfile profile;
  profile.name = table.schema().column(col).name;
  profile.type = table.schema().column(col).type;
  const DataType& type = profile.type;
  const uint32_t k = type.FixedWidth();

  profile.stats.n = table.num_rows();
  profile.stats.k = k;
  profile.stats.length_header = LengthHeaderBytes(type);

  profile.lengths.bucket_width = std::max<uint32_t>(
      1, (k + static_cast<uint32_t>(histogram_buckets)) /
             static_cast<uint32_t>(histogram_buckets));
  profile.lengths.buckets.assign(histogram_buckets, 0);
  profile.lengths.min_length = k;
  profile.lengths.max_length = 0;

  std::unordered_map<std::string, uint64_t> counts;
  for (RowId id = 0; id < table.num_rows(); ++id) {
    Slice cell = table.cell(id, col);
    const uint32_t len = NullSuppressedLength(cell, type);
    profile.stats.sum_lengths += len;
    profile.lengths.min_length = std::min(profile.lengths.min_length, len);
    profile.lengths.max_length = std::max(profile.lengths.max_length, len);
    const size_t bucket = std::min(
        profile.lengths.buckets.size() - 1,
        static_cast<size_t>(len / profile.lengths.bucket_width));
    profile.lengths.buckets[bucket]++;
    counts[cell.ToString()]++;
  }
  profile.stats.d = counts.size();
  if (table.num_rows() > 0) {
    profile.lengths.mean_length =
        static_cast<double>(profile.stats.sum_lengths) /
        static_cast<double>(table.num_rows());
  } else {
    profile.lengths.min_length = 0;
  }

  // Heavy hitters (top_k by count, ties broken by value for determinism).
  std::vector<std::pair<std::string, uint64_t>> sorted(counts.begin(),
                                                       counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  // Display form: decoded integers, pad-stripped strings.
  Result<Schema> display_schema = Schema::Make({{"v", type}});
  RowCodec display_codec(std::move(display_schema).ValueOrDie());
  for (size_t i = 0; i < sorted.size() && i < top_k; ++i) {
    const std::string& raw = sorted[i].first;
    Result<Value> value = display_codec.DecodeCell(Slice(raw), 0);
    profile.top_values.push_back(HeavyHitter{
        value.ok() ? value->ToString() : std::string("?"), sorted[i].second});
  }

  profile.predicted_ns_cf = AnalyticNsCF(profile.stats);
  profile.predicted_dict_cf = AnalyticGlobalDictCF(profile.stats, 4);
  return profile;
}

Result<std::vector<ColumnProfile>> ProfileTable(const Table& table,
                                                size_t top_k) {
  std::vector<ColumnProfile> profiles;
  profiles.reserve(table.schema().num_columns());
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    CFEST_ASSIGN_OR_RETURN(ColumnProfile profile,
                           ProfileColumn(table, c, top_k));
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

}  // namespace cfest
