// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Hybrid CF estimator for dictionary compression.
//
// The paper shows CF'_DC inherits the hardness of distinct-value estimation:
// SampleCF's implicit DV estimate is the naive scale-up d' * n/r, which
// overestimates d/n badly in the mid-cardinality regime (E9). The hybrid
// estimator keeps SampleCF's constructive pipeline for everything *except*
// the dictionary term: it measures the sample's pointer bytes exactly, then
// replaces the sample's dictionary-entry count with a classical DV estimate
// (GEE by default — the estimator from the paper's ref [1]) scaled to the
// population. For non-dictionary schemes it degrades to plain SampleCF.

#ifndef CFEST_ESTIMATOR_HYBRID_H_
#define CFEST_ESTIMATOR_HYBRID_H_

#include "common/random.h"
#include "common/result.h"
#include "estimator/distinct_value.h"
#include "estimator/engine.h"
#include "estimator/sample_cf.h"

namespace cfest {

/// \brief SampleCF with a DV-corrected dictionary term.
struct HybridCFOptions {
  SampleCFOptions base;
  /// DV estimator used to project the population distinct count.
  DvEstimator dv_estimator = DvEstimator::kGee;
};

/// \brief Outcome: the corrected estimate plus the plain SampleCF estimate
/// it was derived from (for diagnostics).
struct HybridCFResult {
  double estimate = 1.0;
  SampleCFResult plain;
  /// Per-key-column DV estimates that replaced the sample's d'.
  std::vector<double> column_dv_estimates;
};

/// Runs the hybrid estimator for a *global dictionary* scheme. The scheme
/// must be uniform kDictionaryGlobal (the closed-form correction is defined
/// by the paper's simplified model); other schemes return NotSupported.
Result<HybridCFResult> HybridDictionaryCF(const Table& table,
                                          const IndexDescriptor& descriptor,
                                          const CompressionScheme& scheme,
                                          const HybridCFOptions& options,
                                          Random* rng);

/// Engine-backed variant: reuses the engine's shared sample and cached
/// sample index, so the hybrid correction rides on the same draw/build as
/// every other estimate for the table.
Result<HybridCFResult> HybridDictionaryCF(EstimationEngine& engine,
                                          const IndexDescriptor& descriptor,
                                          const CompressionScheme& scheme,
                                          DvEstimator dv_estimator =
                                              DvEstimator::kGee);

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_HYBRID_H_
