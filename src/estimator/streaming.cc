#include "estimator/streaming.h"

#include "index/index.h"

namespace cfest {

Result<StreamingSampleCF> StreamingSampleCF::Make(
    const Schema& schema, const IndexDescriptor& descriptor,
    const CompressionScheme& scheme, const Options& options) {
  if (options.sample_capacity == 0) {
    return Status::InvalidArgument("sample capacity must be positive");
  }
  // Validate scheme/descriptor eagerly so Add() can stay cheap.
  CFEST_RETURN_NOT_OK(ColumnCompressorSet::Make(schema, scheme).status());
  if (descriptor.key_columns.empty()) {
    return Status::InvalidArgument("index has no key columns");
  }
  for (const std::string& name : descriptor.key_columns) {
    CFEST_RETURN_NOT_OK(schema.ColumnIndex(name).status());
  }
  return StreamingSampleCF(schema, descriptor, scheme, options);
}

Status StreamingSampleCF::Add(Slice encoded_row) {
  if (encoded_row.size() != schema_.row_width()) {
    return Status::InvalidArgument(
        "encoded row has " + std::to_string(encoded_row.size()) +
        " bytes, expected " + std::to_string(schema_.row_width()));
  }
  // Vitter's Algorithm R via the shared slot core.
  const uint64_t slot = core_.Offer(&rng_);
  if (slot != ReservoirSampler::kSkip) {
    if (slot == reservoir_.size()) {
      reservoir_.emplace_back(encoded_row.data(), encoded_row.size());
    } else {
      reservoir_[static_cast<size_t>(slot)].assign(encoded_row.data(),
                                                   encoded_row.size());
    }
  }
  return Status::OK();
}

Result<SampleCFResult> StreamingSampleCF::Estimate() const {
  if (reservoir_.empty()) {
    return Status::InvalidArgument("no rows offered yet");
  }
  TableBuilder builder(schema_);
  builder.Reserve(reservoir_.size());
  for (const std::string& row : reservoir_) {
    CFEST_RETURN_NOT_OK(builder.AppendEncoded(Slice(row)));
  }
  std::unique_ptr<Table> sample = builder.Finish();
  CFEST_ASSIGN_OR_RETURN(Index index,
                         Index::Build(*sample, descriptor_, options_.build));
  CFEST_ASSIGN_OR_RETURN(CompressedIndex compressed,
                         index.Compress(scheme_, options_.build));
  SampleCFResult result;
  result.cf = MeasureCF(index.stats(), compressed.stats(), options_.metric);
  result.sample_rows = sample->num_rows();
  result.sample_dictionary_entries = compressed.stats().dictionary_entries;
  result.sample_uncompressed = index.stats();
  result.sample_compressed = compressed.stats();
  return result;
}

}  // namespace cfest
