// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// SampleEpoch — the immutable, refcounted read-path state of one engine
// sample generation.
//
// The engine used to keep one mutable sample (view + cached sorted sample
// indexes) behind its mutex, which forced every refresh (NotifyAppend /
// GrowSample) to quiesce all in-flight estimates. An epoch snapshot breaks
// that coupling, RCU-style:
//
//   - Everything an estimate reads — the sample view, the table-size
//     snapshot the full-index scaling uses, the sample version, and the
//     per-key-set sorted-index cache — lives in one immutable SampleEpoch.
//   - Readers pin the current epoch with a single atomic shared_ptr load
//     (EstimationEngine::PinEpoch) and never touch the engine mutex on the
//     steady-state path.
//   - Writers build the successor epoch off to the side, under the engine's
//     writer mutex, and publish it with one atomic store. The old epoch
//     stays fully valid until its last pinned reader drops it; its
//     destruction is counted in EpochCounters::epochs_retired.
//
// The epoch's index cache is itself lock-free on the hit path: the map of
// built indexes is an immutable snapshot behind an atomic shared_ptr,
// copied-on-insert under a small per-epoch build mutex. Concurrent first
// requests for the same key set share one build through a shared_future —
// the engine-level half of request coalescing (estimator/coalesce.h is the
// service-level half).
//
// Estimates are a pure function of the pinned epoch, so any result computed
// while appends stream in is bit-identical to a quiesced run at the same
// epoch (tests/service_test.cc and bench/bench_concurrent_service.cc gate
// exactly this).

#ifndef CFEST_ESTIMATOR_EPOCH_H_
#define CFEST_ESTIMATOR_EPOCH_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "compression/compressed_index.h"
#include "index/index.h"
#include "storage/table_view.h"

namespace cfest {

/// \brief Monotone work/traffic counters shared by an engine and every
/// epoch it ever published (epochs can outlive the engine while pinned, so
/// the counter block is refcounted).
///
/// All fields are sharded metrics::Counter objects: the estimate path
/// increments them without any lock, which is what lets tests assert
/// lock-freedom by counting — a steady-state estimate bumps
/// lock_free_pins, never locked_pins. The constructor registers every
/// field with the process-wide MetricRegistry under `cfest.engine.*` —
/// labeled {table=<name>} when the engine was given a table name, as the
/// unlabeled child otherwise — so CacheStats (which reads these same
/// counters) and the registry's family aggregate agree bit for bit, while
/// per-table dashboards read the labeled children. Estimate counts also
/// register one {table, scheme} child per compression family
/// (`cfest.engine.estimates`), indexed by enum value so the hot path is a
/// plain array increment (label resolution happened at construction). The
/// registration handles are declared last so they retire the block's
/// totals into the registry before the counters die.
struct EpochCounters {
  EpochCounters() : EpochCounters(std::string()) {}

  explicit EpochCounters(const std::string& table_name)
      : registration(metrics::MetricRegistry::Global().RegisterCounters(
            TableLabels(table_name),
            {{"cfest.engine.samples_drawn", &samples_drawn},
             {"cfest.engine.index_builds", &index_builds},
             {"cfest.engine.index_cache_hits", &index_cache_hits},
             {"cfest.engine.index_extensions", &index_extensions},
             {"cfest.engine.invalidations", &invalidations},
             {"cfest.engine.lock_free_pins", &lock_free_pins},
             {"cfest.engine.locked_pins", &locked_pins},
             {"cfest.engine.epochs_published", &epochs_published},
             {"cfest.engine.epochs_retired", &epochs_retired}})) {
    for (size_t i = 0; i < kCompressionTypeCount; ++i) {
      metrics::LabelSet labels = TableLabels(table_name);
      labels.emplace_back(
          "scheme", CompressionTypeName(static_cast<CompressionType>(i)));
      scheme_registrations[i] =
          metrics::MetricRegistry::Global().RegisterCounters(
              labels, {{"cfest.engine.estimates", &estimates_by_scheme[i]}});
    }
  }

  static metrics::LabelSet TableLabels(const std::string& table_name) {
    if (table_name.empty()) return {};
    return {{"table", table_name}};
  }

  metrics::Counter samples_drawn;
  metrics::Counter index_builds;
  metrics::Counter index_cache_hits;
  metrics::Counter index_extensions;
  metrics::Counter invalidations;
  /// Epoch pins served by the lock-free atomic load (steady state).
  metrics::Counter lock_free_pins;
  /// Epoch pins that fell through to the writer mutex (first draw only).
  metrics::Counter locked_pins;
  metrics::Counter epochs_published;
  /// Epochs destroyed after their last reader unpinned them.
  metrics::Counter epochs_retired;
  /// Sampled estimates served, by the candidate scheme's default
  /// compression family (indexed by CompressionType value).
  std::array<metrics::Counter, kCompressionTypeCount> estimates_by_scheme;
  /// Declared after the counters: destruct first, folding their final
  /// values into the registry's retired totals while they still exist.
  metrics::MetricRegistry::Registration registration;
  std::array<metrics::MetricRegistry::Registration, kCompressionTypeCount>
      scheme_registrations;
};

/// \brief One immutable sample generation: the view, the sizing snapshot,
/// and the per-key-set sorted-index cache.
///
/// Thread-safe for any number of concurrent readers; nothing observable
/// mutates after publication (the index cache only memoizes pure builds).
/// Epochs are created and published by EstimationEngine only.
class SampleEpoch {
 public:
  ~SampleEpoch();

  SampleEpoch(const SampleEpoch&) = delete;
  SampleEpoch& operator=(const SampleEpoch&) = delete;

  /// The sample this epoch serves (shared with the engine's writer side).
  const TableView& sample() const { return *sample_; }
  std::shared_ptr<const TableView> sample_view() const { return sample_; }

  uint64_t sample_rows() const { return sample_->num_rows(); }

  /// Version of the sample contents: 1 after the initial draw, +1 per
  /// refresh or growth that actually changed the sample.
  uint64_t version() const { return version_; }

  /// Base-table rows this epoch's sample state has consumed — the `n` every
  /// full-index scaling at this epoch uses, so an estimate is deterministic
  /// even while the base table keeps growing underneath.
  uint64_t table_rows() const { return table_rows_; }

  /// The sorted sample index for `descriptor`, built at most once per
  /// distinct (key_columns, clustered) pair for this epoch's sample. The
  /// hit path is lock-free (atomic snapshot load); a miss takes the
  /// epoch-local build mutex only to register the build, and concurrent
  /// missers for the same key share the one build via a shared_future.
  Result<std::shared_ptr<const Index>> SampleIndex(
      const IndexDescriptor& descriptor, const IndexBuildOptions& build) const;

 private:
  friend class EstimationEngine;

  struct IndexEntry {
    Status status = Status::OK();
    std::shared_ptr<const Index> index;
  };
  using IndexMap = std::unordered_map<std::string, std::shared_future<IndexEntry>>;

  SampleEpoch(std::shared_ptr<const TableView> sample, uint64_t version,
              uint64_t table_rows, std::shared_ptr<EpochCounters> counters);

  /// Pre-publication seeding (GrowSample's sorted-run extensions land here
  /// before the epoch is visible to any reader; no synchronization needed).
  void SeedIndex(const std::string& key, std::shared_ptr<const Index> index);

  /// Snapshot of the (key, index) pairs whose builds have completed
  /// successfully — what a successor epoch may extend. Never blocks on
  /// in-flight builds.
  std::vector<std::pair<std::string, std::shared_ptr<const Index>>>
  ReadyIndexes() const;

  /// Entries currently cached (ready or in flight), for invalidation
  /// accounting when a refresh drops the cache.
  uint64_t CachedIndexCount() const;

  std::shared_ptr<const TableView> sample_;
  uint64_t version_ = 0;
  uint64_t table_rows_ = 0;
  std::shared_ptr<EpochCounters> counters_;

  /// Immutable snapshot map, copied-on-insert under build_mu_. Atomic
  /// (not GUARDED_BY): the hit path reads it lock-free by design; build_mu_
  /// serializes only the copy-on-write registration of new builds.
  mutable std::atomic<std::shared_ptr<const IndexMap>> indexes_;
  mutable Mutex build_mu_;
};

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_EPOCH_H_
