// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// AdaptiveEstimator — confidence-driven sample growth until CF' is tight.
//
// The paper sizes every candidate at one fixed sampling fraction f, but its
// accuracy analysis says, per estimate, how many sample rows are actually
// needed: Theorem 1 bounds the NS estimator's standard deviation by
// 1/(2 sqrt(r)) regardless of the data, and the empirical variance of the
// sample tells the same story, data-dependently, for every other scheme.
// Easy columns need far fewer rows than any reasonable fixed f draws; hard
// ones need more than it gives. The adaptive flow closes that loop:
//
//   1. Start from the engine's (small) base-fraction sample.
//   2. Estimate every candidate and attach a confidence interval:
//        - uncompressed candidates are exact (schema arithmetic);
//        - uniform null-suppression uses the distribution-free Theorem 1
//          bound;
//        - everything else uses a data-dependent width in the style of
//          EmpiricalNsConfidenceInterval: the sample is split into g
//          contiguous draw-order groups (each an i.i.d. replicate at r/g
//          rows), the scheme is run on each, and the spread of the group
//          estimates scaled by 1/sqrt(g) estimates the full-sample sigma.
//   3. Candidates whose interval half-width meets the relative-error
//      target converge and drop out of later rounds.
//   4. For the rest, EstimateNeededSampleRows extrapolates the required
//      sample size via the 1/sqrt(r) law (Theorems 1-3); the engine's
//      sample grows geometrically toward it — resuming the same RNG
//      stream, so the grown sample is bit-identical to a fresh draw at the
//      final fraction and cached sample indexes extend by sorted-run merge
//      instead of rebuilding — until every candidate converges or the
//      row budget / fraction cap is exhausted.
//
// Every intermediate sample is a prefix of the final one, so a candidate
// that converged in round k reports exactly the estimate a fixed-fraction
// run at (its rows / n) under the same seed would have produced
// (bench/bench_adaptive.cc gates this equality on every run).

#ifndef CFEST_ESTIMATOR_ADAPTIVE_H_
#define CFEST_ESTIMATOR_ADAPTIVE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "estimator/analytic_model.h"
#include "estimator/engine.h"
#include "estimator/service.h"

namespace cfest {

namespace internal {
class GroupIndexCache;
}  // namespace internal

/// \brief Caller-supplied precision contract for adaptive estimation.
struct PrecisionTarget {
  /// Target relative half-width: converge when the interval half-width is
  /// <= rel_error * max(CF', cf_floor).
  double rel_error = 0.05;
  /// Two-sided confidence the interval is built for; mapped to a normal
  /// sigma multiplier via NumSigmasForConfidence.
  double confidence = 0.95;
  /// Hard cap on the sample as a fraction of the table (growth never
  /// exceeds round(max_fraction * n) rows).
  double max_fraction = 0.5;
  /// Absolute cap on sample rows; 0 = derive from max_fraction only.
  uint64_t row_budget = 0;
  /// Geometric growth per round (the floor; the extrapolated need may
  /// jump further). Must be > 1.
  double growth_factor = 2.0;
  /// Denominator floor of the relative target, so near-zero CF' estimates
  /// do not demand unbounded samples.
  double cf_floor = 0.05;
  /// Rows the first round is grown to if the engine's base-fraction draw
  /// is smaller (intervals on a handful of rows are meaningless).
  uint64_t min_rows = 64;
  /// Replicate groups for the data-dependent interval (>= 2).
  uint32_t interval_groups = 8;
  /// Hard stop on growth rounds.
  uint32_t max_rounds = 32;
};

/// True when every column of `scheme` is null-suppressed — the per-row-
/// local case Theorem 1's distribution-free bound is stated for, and the
/// only case whose confidence interval also bounds the error against the
/// true CF (the estimator is unbiased; context-dependent schemes carry a
/// small-sample bias the replicate interval cannot see). The lazy advisor
/// keys its trust in coarse interval bounds on this.
bool IsUniformNullSuppressionScheme(const CompressionScheme& scheme);

/// Sigma multiplier z such that a normal +-z sigma interval has two-sided
/// coverage `confidence` (e.g. 0.95 -> ~1.96). Requires 0 < confidence < 1.
Result<double> NumSigmasForConfidence(double confidence);

/// Extrapolates the sample size needed for `target_half_width` from an
/// interval of `half_width_now` observed at `rows_now` rows, under the
/// 1/sqrt(r) width law of Theorems 1-3: rows_now * (now / target)^2,
/// rounded up. Returns rows_now when the target is already met.
uint64_t EstimateNeededSampleRows(double half_width_now, uint64_t rows_now,
                                  double target_half_width);

/// \brief One candidate's adaptive outcome.
struct AdaptiveCandidateResult {
  /// Footprint sizing, identical to what EstimationEngine::Estimate would
  /// return at this candidate's final fraction.
  SizedCandidate sized;
  /// CF' under the engine's base metric — the quantity the interval and
  /// the convergence rule are about.
  double cf = 1.0;
  ConfidenceInterval interval;
  /// The half-width the candidate had to reach: rel_error * max(cf, floor).
  double target_half_width = 0.0;
  /// Sample rows behind the final estimate (its fixed-f-equivalent draw).
  uint64_t rows_sampled = 0;
  /// Sum of the sample rows this candidate was estimated on across EVERY
  /// round it participated in — per-candidate sizing-work attribution
  /// that survives convergence dropout (rows_sampled only reports the
  /// final round's sample; a candidate that converged in round 1 and a
  /// candidate refined for 5 rounds can report the same rows_sampled
  /// while costing very different work). 0 for uncompressed candidates.
  uint64_t cumulative_rows_sized = 0;
  /// Growth rounds this candidate participated in.
  uint32_t rounds = 0;
  bool converged = false;
  /// "exact", "theorem1", or "group_replicates".
  std::string interval_method;
};

/// \brief Per-table growth report.
struct AdaptiveTableReport {
  std::string table_name;
  uint64_t final_sample_rows = 0;
  uint32_t rounds = 0;
  /// True if some candidate on this table hit the row budget, fraction
  /// cap, or round cap before converging.
  bool budget_exhausted = false;
  /// Sample size at each round (the growth schedule actually taken).
  std::vector<uint64_t> rows_per_round;
};

/// Human rendering of a growth schedule: "120 -> 720 -> 3934" (empty
/// string for an empty schedule). Shared by the CLI and bench reports.
std::string FormatGrowthSchedule(const std::vector<uint64_t>& rows_per_round);

/// \brief Outcome of one adaptive batch.
struct AdaptiveBatchResult {
  /// Positionally aligned with the input candidates.
  std::vector<AdaptiveCandidateResult> candidates;
  std::vector<AdaptiveTableReport> tables;
  /// Sum of final sample rows across tables.
  uint64_t total_sample_rows = 0;
  /// Max rounds over tables.
  uint32_t rounds = 0;
  /// Any table exhausted its budget with unconverged candidates.
  bool budget_exhausted = false;
};

/// \brief One entry of EstimateCandidateIntervals.
struct CandidateIntervalResult {
  /// CF' at the engine's base metric (the interval's center).
  double cf = 1.0;
  ConfidenceInterval interval;
  /// "exact", "theorem1", or "group_replicates".
  std::string method;
};

/// Batch variant: computes each candidate's base-metric CF' through the
/// engine's cached sample indexes and attaches its interval, sharing the
/// replicate index builds across every scheme on the same key set — the
/// same sharing one adaptive round does. Results align with `candidates`.
/// `pool` fans the per-candidate work out (nullptr = serial); pass the
/// engine's or service's shared pool — the CLI's fixed-fraction --json
/// paths do — instead of spinning a second pool. (The lazy advisor's
/// coarse pass fans out the same way, but through
/// CandidateRefiner::EstimateAtCurrentSample so refinement can reuse the
/// replicate-build cache.)
Result<std::vector<CandidateIntervalResult>> EstimateCandidateIntervals(
    EstimationEngine& engine,
    std::span<const CandidateConfiguration> candidates, double num_sigmas,
    uint32_t interval_groups = PrecisionTarget{}.interval_groups,
    ThreadPool* pool = nullptr);

/// \brief Per-candidate incremental refinement — the lazy advisor's
/// (advisor/search.h) entry point into the adaptive flow.
///
/// Where AdaptiveEstimator drives *all* candidates through a shared round
/// loop, a refiner estimates and grows for one candidate at a time: the
/// branch-and-bound search refines only candidates whose intervals
/// straddle a take/skip or feasibility decision, so most candidates never
/// pay for a converged estimate. Growth goes through the same GrowSample
/// stream as the round loop, so the prefix property is preserved: every
/// estimate still equals a fixed-fraction run at its rows / n under the
/// engine seed.
///
/// EstimateAtCurrentSample calls may run concurrently with each other
/// (the coarse pass fans them across the shared pool); RefineUntil grows
/// the engine's sample and must not run concurrently with any estimate on
/// the same engine.
class CandidateRefiner {
 public:
  /// Validates `target` and derives the row cap from it and the engine's
  /// table size. The engine must outlive the refiner.
  static Result<CandidateRefiner> Make(EstimationEngine& engine,
                                       PrecisionTarget target);
  /// Moves are exempt from the thread-safety analysis: moving a refiner
  /// while another thread uses it is a caller bug by contract (same as any
  /// std type), and the analysis cannot name the moved-from object's lock.
  CandidateRefiner(CandidateRefiner&&) noexcept NO_THREAD_SAFETY_ANALYSIS;
  CandidateRefiner& operator=(CandidateRefiner&&) noexcept
      NO_THREAD_SAFETY_ANALYSIS;
  ~CandidateRefiner();

  /// Estimates `candidate` on the engine's current sample (no growth) and
  /// attaches its interval, target half-width, and convergence flag.
  /// Replicate index builds are cached across calls until the sample
  /// changes; uncompressed candidates are exact and always converged.
  Result<AdaptiveCandidateResult> EstimateAtCurrentSample(
      const CandidateConfiguration& candidate);

  /// Grows the engine's sample — geometric floor plus the 1/sqrt(r)
  /// extrapolation, the same schedule the round loop takes when this
  /// candidate votes alone — until the candidate converges to the
  /// precision target, `done` returns true, or the row budget / fraction
  /// cap / round cap is exhausted. `done` may be null (refine to
  /// convergence) and is consulted every round, so it can stop the loop
  /// before convergence. `min_rows` keeps convergence from being accepted
  /// below a caller-imposed sample-size floor (the lazy advisor uses a
  /// page-coverage floor: a CF' interval can be tight on a sample too
  /// small for the page-granular footprint to be meaningful). A result
  /// that is neither converged-at-floor nor accepted by `done` means the
  /// budget ran out.
  Result<AdaptiveCandidateResult> RefineUntil(
      const CandidateConfiguration& candidate,
      const std::function<bool(const AdaptiveCandidateResult&)>& done,
      uint64_t min_rows = 0);

  /// Row cap derived from target.max_fraction / row_budget over this
  /// engine's table.
  uint64_t row_cap() const { return cap_; }
  /// Growth rounds performed through this refiner so far.
  uint32_t rounds() const { return rounds_; }
  const PrecisionTarget& target() const { return target_; }
  /// The engine the refiner grows (layered consumers derive sizing floors
  /// from its table size and page size).
  EstimationEngine& engine() const { return *engine_; }

 private:
  CandidateRefiner(EstimationEngine& engine, PrecisionTarget target,
                   double num_sigmas);
  /// A pinned epoch paired with the replicate-index cache built for its
  /// sample. Pairing them is what makes EstimateAtCurrentSample coherent:
  /// the estimate, the interval's replicate builds, and the full-index
  /// scaling all read the same snapshot.
  struct PinnedCache {
    std::shared_ptr<const SampleEpoch> epoch;
    std::shared_ptr<internal::GroupIndexCache> cache;
  };
  /// Pins the engine's current epoch and returns it with the replicate
  /// cache for its sample (dropped and rebuilt whenever the sample version
  /// moves).
  Result<PinnedCache> CurrentCache();

  EstimationEngine* engine_;
  PrecisionTarget target_;
  double num_sigmas_ = 0.0;
  uint64_t cap_ = 0;
  uint32_t rounds_ = 0;
  /// Guards the (cache_version_, cache_) pair against concurrent
  /// EstimateAtCurrentSample calls; the GroupIndexCache itself is
  /// thread-safe.
  mutable Mutex cache_mu_;
  uint64_t cache_version_ GUARDED_BY(cache_mu_) = 0;
  std::shared_ptr<internal::GroupIndexCache> cache_ GUARDED_BY(cache_mu_);
};

/// \brief Drives one engine's sample growth until every candidate meets the
/// precision target (or the budget runs out).
///
/// Uses the engine's estimate paths, which are thread-safe, but — like
/// NotifyAppend — the growth step requires that no other thread runs
/// estimates on this engine concurrently.
class AdaptiveEstimator {
 public:
  /// `pool` fans per-round candidate work out (nullptr = serial). The
  /// engine and pool must outlive the estimator.
  AdaptiveEstimator(EstimationEngine& engine, PrecisionTarget target,
                    ThreadPool* pool = nullptr);

  const PrecisionTarget& target() const { return target_; }

  /// Runs the grow-until-tight loop over the candidates; results are
  /// positionally aligned. The engine's sample afterwards is the grown
  /// (final-fraction) sample.
  Result<AdaptiveBatchResult> EstimateAll(
      std::span<const CandidateConfiguration> candidates);

 private:
  EstimationEngine& engine_;
  PrecisionTarget target_;
  ThreadPool* pool_;
};

/// Engine-level entry point: validates the target and runs an
/// AdaptiveEstimator with a pool sized from the engine's options.
Result<AdaptiveBatchResult> EstimateAllAdaptive(
    EstimationEngine& engine,
    std::span<const CandidateConfiguration> candidates,
    const PrecisionTarget& target);

/// Service-level entry point: groups candidates by table_name, grows each
/// table's engine independently toward the shared target (per-round work
/// fans across the service's shared pool), and merges the per-table
/// results positionally.
Result<AdaptiveBatchResult> EstimateAllAdaptive(
    CatalogEstimationService& service,
    std::span<const CandidateConfiguration> candidates,
    const PrecisionTarget& target);

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_ADAPTIVE_H_
