#include "estimator/hybrid.h"

#include <unordered_map>

#include "index/index.h"

namespace cfest {
namespace {

/// Frequency profile of one index column, computed over the sample index's
/// rows (the index schema may contain synthetic columns like __rid that do
/// not exist in the base table).
SampleFrequencyProfile ProfileIndexColumn(const Index& index, size_t col) {
  RowCodec codec(index.schema());
  std::unordered_map<std::string, uint64_t> counts;
  for (uint64_t i = 0; i < index.num_rows(); ++i) {
    counts[codec.Cell(index.row(i), col).ToString()]++;
  }
  SampleFrequencyProfile profile;
  profile.sample_rows = index.num_rows();
  profile.distinct_in_sample = counts.size();
  for (const auto& [value, count] : counts) profile.freq_counts[count]++;
  return profile;
}

}  // namespace

Result<HybridCFResult> HybridDictionaryCF(const Table& table,
                                          const IndexDescriptor& descriptor,
                                          const CompressionScheme& scheme,
                                          const HybridCFOptions& options,
                                          Random* rng) {
  EstimationEngineOptions engine_options;
  engine_options.base = options.base;
  engine_options.rng = rng;
  EstimationEngine engine(table, engine_options);
  return HybridDictionaryCF(engine, descriptor, scheme, options.dv_estimator);
}

Result<HybridCFResult> HybridDictionaryCF(EstimationEngine& engine,
                                          const IndexDescriptor& descriptor,
                                          const CompressionScheme& scheme,
                                          DvEstimator dv_estimator) {
  if (!scheme.per_column.empty() ||
      scheme.default_type != CompressionType::kDictionaryGlobal) {
    return Status::NotSupported(
        "the hybrid correction is defined for the uniform global-dictionary "
        "scheme (the paper's simplified model)");
  }

  // One pinned epoch feeds both the plain SampleCF pipeline and the
  // correction step below, so the two reads see the same sample even if
  // the engine refreshes concurrently.
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const SampleEpoch> epoch,
                         engine.PinEpoch());
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const Index> index,
                         engine.SampleIndexAt(*epoch, descriptor));
  CFEST_ASSIGN_OR_RETURN(CompressedIndex compressed,
                         engine.CompressOnSampleAt(*epoch, descriptor, scheme));

  HybridCFResult result;
  result.plain.cf = MeasureCF(index->stats(), compressed.stats(),
                              engine.options().base.metric);
  result.plain.sample_rows = index->num_rows();
  result.plain.sample_dictionary_entries =
      compressed.stats().dictionary_entries;
  result.plain.sample_uncompressed = index->stats();
  result.plain.sample_compressed = compressed.stats();

  // Correction: CF = sum_c (p + (Dhat_c / n) * k_c) / K under the global
  // model, with Dhat_c a classical DV estimate projected to the population.
  const uint64_t n = engine.table().num_rows();
  const Schema& schema = index->schema();
  const uint32_t p = scheme.options.global_pointer_bytes == 0
                         ? 4
                         : scheme.options.global_pointer_bytes;
  double numerator = 0.0;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    SampleFrequencyProfile profile = ProfileIndexColumn(*index, c);
    const double dhat = EstimateDistinct(dv_estimator, profile, n);
    result.column_dv_estimates.push_back(dhat);
    numerator += static_cast<double>(p) +
                 dhat / static_cast<double>(n) * schema.width(c);
  }
  result.estimate = numerator / static_cast<double>(schema.row_width());
  return result;
}

}  // namespace cfest
