// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Column profiling: the per-column statistics (Table-I symbols plus length
// histograms and heavy hitters) that let the closed-form models predict
// compressibility without running any compressor — the "analyze" companion
// to the constructive estimators, and the CLI's `analyze` subcommand.

#ifndef CFEST_ESTIMATOR_COLUMN_PROFILE_H_
#define CFEST_ESTIMATOR_COLUMN_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "estimator/analytic_model.h"
#include "storage/table.h"

namespace cfest {

/// \brief Equi-width histogram over null-suppressed lengths [0, k].
struct LengthHistogram {
  /// bucket i covers lengths [i*bucket_width, (i+1)*bucket_width).
  std::vector<uint64_t> buckets;
  uint32_t bucket_width = 1;
  uint32_t min_length = 0;
  uint32_t max_length = 0;
  double mean_length = 0.0;
};

/// \brief A frequent value and its count.
struct HeavyHitter {
  std::string value;  // pad-stripped display form
  uint64_t count = 0;
};

/// \brief Everything the closed forms need to know about one column.
struct ColumnProfile {
  std::string name;
  DataType type;
  ColumnPopulationStats stats;
  LengthHistogram lengths;
  /// Most frequent values, descending by count (ties by value).
  std::vector<HeavyHitter> top_values;
  /// Closed-form predictions (paper §III): NS and the simplified global
  /// dictionary model with 4-byte pointers.
  double predicted_ns_cf = 1.0;
  double predicted_dict_cf = 1.0;
};

/// Profiles one column exactly (full scan).
Result<ColumnProfile> ProfileColumn(const Table& table, size_t col,
                                    size_t top_k = 5,
                                    size_t histogram_buckets = 8);

/// Profiles every column of a table.
Result<std::vector<ColumnProfile>> ProfileTable(const Table& table,
                                                size_t top_k = 5);

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_COLUMN_PROFILE_H_
