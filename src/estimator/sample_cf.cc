#include "estimator/sample_cf.h"

#include <algorithm>
#include <cmath>

namespace cfest {

Result<SampleCFResult> SampleCF(const Table& table,
                                const IndexDescriptor& descriptor,
                                const CompressionScheme& scheme,
                                const SampleCFOptions& options, Random* rng) {
  std::unique_ptr<RowSampler> default_sampler;
  const RowSampler* sampler = options.sampler;
  if (sampler == nullptr) {
    default_sampler = MakeUniformWithReplacementSampler();
    sampler = default_sampler.get();
  }

  // Step 1: T' = sample of f*n rows from T.
  CFEST_ASSIGN_OR_RETURN(std::unique_ptr<Table> sample,
                         sampler->Sample(table, options.fraction, rng));

  // Step 2: build index I'(S) on T'.
  CFEST_ASSIGN_OR_RETURN(Index index,
                         Index::Build(*sample, descriptor, options.build));

  // Step 3: compress I' using C.
  CFEST_ASSIGN_OR_RETURN(CompressedIndex compressed,
                         index.Compress(scheme, options.build));

  // Step 4: return the CF observed on the sample.
  SampleCFResult result;
  result.cf = MeasureCF(index.stats(), compressed.stats(), options.metric);
  result.sample_rows = sample->num_rows();
  result.sample_dictionary_entries = compressed.stats().dictionary_entries;
  result.sample_uncompressed = index.stats();
  result.sample_compressed = compressed.stats();
  return result;
}

Result<SampleCFResult> SampleCFFromIndex(const Index& index,
                                         const CompressionScheme& scheme,
                                         const SampleCFOptions& options,
                                         Random* rng) {
  CFEST_RETURN_NOT_OK(CheckFraction(options.fraction));
  if (index.num_rows() == 0) {
    return Status::InvalidArgument("cannot sample an empty index");
  }
  // Uniform with replacement over index positions; sorting the positions
  // restores key order for free (the index rows already are key-ordered).
  const uint64_t r = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::llround(
             options.fraction * static_cast<double>(index.num_rows()))));
  std::vector<uint64_t> positions;
  positions.reserve(r);
  for (uint64_t i = 0; i < r; ++i) {
    positions.push_back(rng->NextBounded(index.num_rows()));
  }
  std::sort(positions.begin(), positions.end());

  CFEST_ASSIGN_OR_RETURN(
      auto builder,
      CompressedIndexBuilder::Make(index.schema(), scheme, options.build));
  for (uint64_t pos : positions) {
    CFEST_RETURN_NOT_OK(builder->Add(index.row(pos)));
  }
  CFEST_ASSIGN_OR_RETURN(CompressedIndex compressed, builder->Finish());

  // Uncompressed accounting for the sample, by packing arithmetic (exact:
  // leaves fill greedily with fixed-width rows).
  const uint32_t w = index.schema().row_width();
  IndexStats uncompressed;
  uncompressed.page_size = options.build.page_size;
  uncompressed.row_count = r;
  uncompressed.row_data_bytes = r * w;
  const uint64_t per_page = std::max<uint64_t>(
      1, (options.build.page_size - kPageHeaderSize) / (w + kSlotSize));
  uncompressed.leaf_pages = (r + per_page - 1) / per_page;
  uncompressed.leaf_used_bytes =
      uncompressed.leaf_pages * kPageHeaderSize + r * (w + kSlotSize);
  uncompressed.internal_pages =
      InternalPageCount(uncompressed.leaf_pages, index.fanout());

  SampleCFResult result;
  result.cf = MeasureCF(uncompressed, compressed.stats(), options.metric);
  result.sample_rows = r;
  result.sample_dictionary_entries = compressed.stats().dictionary_entries;
  result.sample_uncompressed = uncompressed;
  result.sample_compressed = compressed.stats();
  return result;
}

}  // namespace cfest
