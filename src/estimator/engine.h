// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// EstimationEngine — one sample, many candidates.
//
// The paper's §II-C observes that a single random sample can be reused
// across estimations: a physical-design advisor sizing dozens of candidate
// (index, compression-scheme) pairs does not need a fresh sample per
// candidate. The engine exploits that three ways:
//
//   1. The sample is drawn once per engine (zero-copy TableView, no row
//      bytes copied) and shared by every estimate.
//   2. The sorted sample index is cached per distinct key set, so every
//      compression scheme ranked on the same index reuses one build.
//   3. Independent candidates fan out across a ThreadPool; results are
//      deterministic because the sample draw is the only stochastic step
//      and it happens exactly once.
//
// Estimates are bit-identical to single-shot SampleCF under the same seed:
// the engine runs the same draw, build, and compress pipeline, just without
// the redundancy.
//
// For long-lived service use, the engine can instead maintain its sample as
// a fixed-capacity reservoir (options.maintain_reservoir): the initial draw
// is Vitter's Algorithm R over row ids, and NotifyAppend folds newly
// appended base-table rows into the same RNG stream. Because Algorithm R is
// a streaming algorithm, the incrementally maintained reservoir is
// identical to the one a fresh engine would draw over the grown table in
// one pass — re-estimation after growth needs O(delta) RNG work, not O(n).
// Cached sample indexes are invalidated only when the reservoir contents
// actually changed (an append whose rows are all rejected costs nothing).

#ifndef CFEST_ESTIMATOR_ENGINE_H_
#define CFEST_ESTIMATOR_ENGINE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "compression/scheme.h"
#include "estimator/sample_cf.h"
#include "index/index.h"
#include "sampling/reservoir.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace cfest {

/// \brief A candidate physical-design structure for the advisor.
struct CandidateConfiguration {
  /// Table the index would be built on (catalog name, for reporting).
  std::string table_name;
  IndexDescriptor index;
  CompressionScheme scheme;
  /// Workload benefit if this candidate is materialized (supplied by the
  /// caller's cost model; the advisor maximizes the sum).
  double benefit = 0.0;
};

/// \brief A candidate with its estimated storage footprint.
struct SizedCandidate {
  CandidateConfiguration config;
  /// CF' from SampleCF (1.0 for uncompressed candidates).
  double estimated_cf = 1.0;
  /// Estimated on-disk pages * page size for the *full* index.
  uint64_t estimated_bytes = 0;
  /// Size the uncompressed index would have (page-granular).
  uint64_t uncompressed_bytes = 0;
  /// Sample rows the estimate was computed from (0 for uncompressed
  /// candidates, which are sized from schema arithmetic alone).
  uint64_t sample_rows = 0;
};

/// True when `scheme` is an "uncompressed" candidate: no per-column
/// overrides and default kNone. Such candidates are sized from schema
/// arithmetic alone (no sampling). Shared with the adaptive layer so both
/// classify candidates identically.
bool IsUncompressedScheme(const CompressionScheme& scheme);

/// The engine's sample-index cache key for `descriptor`: one build per
/// distinct (key_columns, clustered) pair — the cosmetic name is excluded.
/// Shared with the adaptive layer's replicate-index cache so the two key
/// identically.
std::string SampleIndexCacheKey(const IndexDescriptor& descriptor);

/// Uncompressed full-index size (page-granular) from schema arithmetic
/// alone — no build needed, mirroring how design tools size uncompressed
/// indexes "in a straightforward manner from the schema" (paper §I).
Result<uint64_t> EstimateUncompressedIndexBytes(const Table& table,
                                                const IndexDescriptor& index,
                                                size_t page_size =
                                                    kDefaultPageSize);

/// \brief Configuration of an EstimationEngine.
struct EstimationEngineOptions {
  /// Sampling fraction, sampler, metric, and index-build options shared by
  /// every estimate the engine serves.
  SampleCFOptions base;
  /// Seeds the one-time sample draw (ignored when `rng` is set).
  uint64_t seed = 42;
  /// Optional external generator for the draw; useful when the engine must
  /// consume randomness from a caller-owned stream exactly like single-shot
  /// SampleCF would. Must outlive the draw (first estimate). Incompatible
  /// with maintain_reservoir (the engine must own the stream so appends can
  /// resume it).
  Random* rng = nullptr;
  /// Workers for EstimateAll. 0 = hardware concurrency; 1 = serial.
  uint32_t num_threads = 0;
  /// Maintain the sample as a fixed-capacity reservoir over row ids
  /// (Vitter's Algorithm R seeded from `seed`) instead of a frozen draw
  /// from base.sampler. Required for NotifyAppend; base.sampler is ignored
  /// in this mode.
  bool maintain_reservoir = false;
  /// Reservoir capacity r when maintain_reservoir is set. 0 derives
  /// max(1, round(base.fraction * num_rows)) at the first draw — note the
  /// derived value then depends on the table size at that moment, so
  /// callers comparing engines across differently grown tables should pin
  /// an explicit capacity.
  uint64_t reservoir_capacity = 0;
};

/// \brief Batched, cached CF estimation over one table.
///
/// Thread-safe: concurrent calls share the sample and index caches. The
/// engine holds a reference to the base table; the table must outlive it.
class EstimationEngine {
 public:
  explicit EstimationEngine(const Table& table,
                            EstimationEngineOptions options = {});

  const Table& table() const { return table_; }
  const EstimationEngineOptions& options() const { return options_; }

  /// The shared sample (drawn on first use). Stable for the engine's life
  /// unless grown (GrowSample) or refreshed (NotifyAppend).
  Result<const Table*> SampleTable();

  /// Rows in the shared sample; 0 before the first draw.
  uint64_t sample_rows() const;

  /// Grows the shared sample in place to at least `target_rows` rows
  /// (clamped to the table size — the fraction-1.0 draw), drawing it first
  /// at the configured base fraction if needed. Returns the resulting
  /// sample row count; a target at or below the current size is a no-op.
  ///
  /// Default (frozen-draw) engines must use the default uniform-with-
  /// replacement sampler and an engine-owned RNG (no options.rng): growth
  /// resumes the seed's draw stream, so the grown sample is bit-identical
  /// to a fresh draw of target_rows ids under the same seed — every
  /// estimate after growth equals a fixed-fraction run at
  /// target_rows / num_rows. Growth is purely additive (the old sample is
  /// a prefix), so cached sample indexes are *extended* by merging the new
  /// rows into each sorted build (CacheStats.index_extensions) instead of
  /// being rebuilt from scratch.
  ///
  /// maintain_reservoir engines grow by replaying Algorithm R at the larger
  /// capacity over the already-consumed row-id stream (O(items seen) RNG
  /// work, no row bytes touched). The result again equals a fresh draw at
  /// the new capacity, and NotifyAppend keeps composing afterwards; cached
  /// indexes are invalidated (reservoir growth shuffles contents).
  ///
  /// Like NotifyAppend, not safe to run concurrently with estimates.
  Result<uint64_t> GrowSample(uint64_t target_rows);

  /// The sorted sample index for `descriptor`, built at most once per
  /// distinct (key_columns, clustered) pair.
  Result<std::shared_ptr<const Index>> SampleIndex(
      const IndexDescriptor& descriptor);

  /// SampleCF on the shared sample: equals SampleCF(table, descriptor,
  /// scheme, options.base, Random(seed)) bit for bit.
  Result<SampleCFResult> EstimateCF(const IndexDescriptor& descriptor,
                                    const CompressionScheme& scheme);

  /// Compresses the cached sample index with `scheme` (per-column stats for
  /// scheme ranking; the index build is shared across schemes).
  Result<CompressedIndex> CompressOnSample(const IndexDescriptor& descriptor,
                                           const CompressionScheme& scheme);

  /// What-if sizes one candidate (CF' scaled to the full-index footprint).
  Result<SizedCandidate> Estimate(const CandidateConfiguration& candidate);

  /// What-if sizes a batch of candidates, fanning out across the pool.
  /// Results are positionally aligned with `candidates` and identical to
  /// calling Estimate() per candidate serially.
  Result<std::vector<SizedCandidate>> EstimateAll(
      std::span<const CandidateConfiguration> candidates);

  /// Folds newly appended base-table rows [range.begin, range.end) into the
  /// maintained reservoir, continuing the Algorithm-R stream from the
  /// initial draw (the resulting reservoir equals a fresh one-pass draw
  /// over the grown table under the same seed and capacity). Cached sample
  /// indexes are invalidated only if the reservoir contents changed; the
  /// invalidation is recorded in CacheStats (sample_version bumps,
  /// invalidations counts the dropped index entries).
  ///
  /// Requires maintain_reservoir; `range` must start exactly where the rows
  /// already offered to the reservoir end (no gaps, no overlaps) and must
  /// not extend past the current table size. If the sample has not been
  /// drawn yet the call is a no-op — the eventual draw sees the full table.
  ///
  /// Not safe to run concurrently with estimates: callers must quiesce
  /// in-flight Estimate/EstimateAll calls first (estimates may read the
  /// sample view outside the engine lock).
  Status NotifyAppend(RowRange range);

  /// \brief Work-avoidance counters (monotone over the engine's life).
  struct CacheStats {
    uint64_t samples_drawn = 0;
    uint64_t index_builds = 0;
    uint64_t index_cache_hits = 0;
    /// Cached sample indexes extended in place by GrowSample (sorted-run
    /// merges that avoided a from-scratch rebuild).
    uint64_t index_extensions = 0;
    /// Cached sample-index entries dropped by reservoir refreshes.
    uint64_t invalidations = 0;
    /// Version of the sample contents: 1 after the initial draw, +1 per
    /// NotifyAppend that actually changed the reservoir. Cached indexes are
    /// always consistent with the current version.
    uint64_t sample_version = 0;
  };
  CacheStats cache_stats() const;

  /// The engine's worker pool (created on first use, sized by
  /// options.num_threads). Exposed so layered consumers — the adaptive
  /// flow in estimator/adaptive.h — fan their per-round work across the
  /// same workers instead of spinning a second pool per call.
  ThreadPool* shared_pool() { return Pool(); }

 private:
  struct IndexEntry {
    Status status = Status::OK();
    std::shared_ptr<const Index> index;
  };

  /// Draws the shared sample if not drawn yet (thread-safe, idempotent).
  Status EnsureSample();
  /// Offers base-table rows [begin, end) to the reservoir core, applying
  /// accepted slots to reservoir_ids_. Returns whether anything changed.
  /// Caller holds mu_ and has initialized the reservoir state.
  bool OfferRowsToReservoir(RowId begin, RowId end);
  Result<SampleCFResult> EstimateCFWithMetric(const IndexDescriptor& d,
                                              const CompressionScheme& scheme,
                                              SizeMetric metric);
  ThreadPool* Pool();

  const Table& table_;
  EstimationEngineOptions options_;

  mutable std::mutex mu_;
  std::unique_ptr<TableView> sample_;
  std::unordered_map<std::string, std::shared_future<IndexEntry>> indexes_;
  std::unique_ptr<ThreadPool> pool_;
  CacheStats stats_;

  /// Reservoir state (maintain_reservoir mode only): the Algorithm-R slot
  /// core, the RNG stream it consumes (resumed by NotifyAppend), and the
  /// slot storage — the row ids the current sample view is built from.
  std::optional<ReservoirSampler> reservoir_core_;
  Random reservoir_rng_{0};
  std::vector<RowId> reservoir_ids_;

  /// The frozen-draw RNG stream (default mode, engine-owned seed only).
  /// Kept alive past the initial draw so GrowSample can resume it.
  Random draw_rng_{0};
};

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_ENGINE_H_
