// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// EstimationEngine — one sample, many candidates, many concurrent callers.
//
// The paper's §II-C observes that a single random sample can be reused
// across estimations: a physical-design advisor sizing dozens of candidate
// (index, compression-scheme) pairs does not need a fresh sample per
// candidate. The engine exploits that three ways:
//
//   1. The sample is drawn once per engine (zero-copy TableView, no row
//      bytes copied) and shared by every estimate.
//   2. The sorted sample index is cached per distinct key set, so every
//      compression scheme ranked on the same index reuses one build.
//   3. Independent candidates fan out across a ThreadPool; results are
//      deterministic because the sample draw is the only stochastic step
//      and it happens exactly once.
//
// Estimates are bit-identical to single-shot SampleCF under the same seed:
// the engine runs the same draw, build, and compress pipeline, just without
// the redundancy.
//
// Concurrency is epoch-based (estimator/epoch.h). All read-path state — the
// sample view, the table-size snapshot used for full-index scaling, the
// sample version, the sorted-index cache — lives in an immutable refcounted
// SampleEpoch published through one atomic shared_ptr. Estimates pin the
// current epoch with a single atomic load and never take the engine mutex;
// NotifyAppend and GrowSample build a successor epoch off to the side under
// the writer mutex and publish it with one atomic swap. Refresh therefore
// no longer requires quiescing in-flight estimates: a pinned epoch stays
// fully valid (and its results bit-identical to a quiesced run at that
// epoch) until the last reader drops it.
//
// For long-lived service use, the engine can maintain its sample as a
// fixed-capacity reservoir (options.maintain_reservoir): the initial draw
// is Vitter's Algorithm R over row ids, and NotifyAppend folds newly
// appended base-table rows into the same RNG stream. Because Algorithm R is
// a streaming algorithm, the incrementally maintained reservoir is
// identical to the one a fresh engine would draw over the grown table in
// one pass — re-estimation after growth needs O(delta) RNG work, not O(n).
// Cached sample indexes are invalidated only when the reservoir contents
// actually changed (an append whose rows are all rejected costs nothing).

#ifndef CFEST_ESTIMATOR_ENGINE_H_
#define CFEST_ESTIMATOR_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "compression/scheme.h"
#include "estimator/epoch.h"
#include "estimator/sample_cf.h"
#include "index/index.h"
#include "sampling/reservoir.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace cfest {

/// \brief A candidate physical-design structure for the advisor.
struct CandidateConfiguration {
  /// Table the index would be built on (catalog name, for reporting).
  std::string table_name;
  IndexDescriptor index;
  CompressionScheme scheme;
  /// Workload benefit if this candidate is materialized (supplied by the
  /// caller's cost model; the advisor maximizes the sum).
  double benefit = 0.0;
};

/// \brief A candidate with its estimated storage footprint.
struct SizedCandidate {
  CandidateConfiguration config;
  /// CF' from SampleCF (1.0 for uncompressed candidates).
  double estimated_cf = 1.0;
  /// Estimated on-disk pages * page size for the *full* index.
  uint64_t estimated_bytes = 0;
  /// Size the uncompressed index would have (page-granular).
  uint64_t uncompressed_bytes = 0;
  /// Sample rows the estimate was computed from (0 for uncompressed
  /// candidates, which are sized from schema arithmetic alone).
  uint64_t sample_rows = 0;
};

/// True when `scheme` is an "uncompressed" candidate: no per-column
/// overrides and default kNone. Such candidates are sized from schema
/// arithmetic alone (no sampling). Shared with the adaptive layer so both
/// classify candidates identically.
bool IsUncompressedScheme(const CompressionScheme& scheme);

/// Uncompressed full-index size (page-granular) from schema arithmetic
/// alone — no build needed, mirroring how design tools size uncompressed
/// indexes "in a straightforward manner from the schema" (paper §I).
/// `num_rows_override` supplies the row count n to size for; nullopt reads
/// the table's live count (epoch-pinned callers pass the epoch's snapshot
/// so concurrent appends cannot skew the scaling mid-estimate).
Result<uint64_t> EstimateUncompressedIndexBytes(
    const Table& table, const IndexDescriptor& index,
    size_t page_size = kDefaultPageSize,
    std::optional<uint64_t> num_rows_override = std::nullopt);

/// \brief Configuration of an EstimationEngine.
struct EstimationEngineOptions {
  /// Sampling fraction, sampler, metric, and index-build options shared by
  /// every estimate the engine serves.
  SampleCFOptions base;
  /// Seeds the one-time sample draw (ignored when `rng` is set).
  uint64_t seed = 42;
  /// Optional external generator for the draw; useful when the engine must
  /// consume randomness from a caller-owned stream exactly like single-shot
  /// SampleCF would. Must outlive the draw (first estimate). Incompatible
  /// with maintain_reservoir (the engine must own the stream so appends can
  /// resume it).
  Random* rng = nullptr;
  /// Workers for EstimateAll. 0 = hardware concurrency; 1 = serial.
  uint32_t num_threads = 0;
  /// Maintain the sample as a fixed-capacity reservoir over row ids
  /// (Vitter's Algorithm R seeded from `seed`) instead of a frozen draw
  /// from base.sampler. Required for NotifyAppend; base.sampler is ignored
  /// in this mode.
  bool maintain_reservoir = false;
  /// Reservoir capacity r when maintain_reservoir is set. 0 derives
  /// max(1, round(base.fraction * num_rows)) at the first draw — note the
  /// derived value then depends on the table size at that moment, so
  /// callers comparing engines across differently grown tables should pin
  /// an explicit capacity.
  uint64_t reservoir_capacity = 0;
  /// Metric label: when non-empty, the engine's `cfest.engine.*` counters
  /// register as the {table=<table_name>} child of each family (the
  /// service sets this to the catalog name), so snapshots split per table
  /// while the family aggregate stays the engine-wide total. Empty keeps
  /// the unlabeled child (standalone engines).
  std::string table_name;
};

/// \brief Batched, cached CF estimation over one table.
///
/// Thread-safe: estimates pin the current SampleEpoch (one atomic load, no
/// engine mutex) and may run concurrently with each other AND with
/// NotifyAppend/GrowSample — writers publish successor epochs without
/// quiescing readers. The engine holds a reference to the base table; the
/// table must outlive it.
class EstimationEngine {
 public:
  explicit EstimationEngine(const Table& table,
                            EstimationEngineOptions options = {});

  const Table& table() const { return table_; }
  const EstimationEngineOptions& options() const { return options_; }

  // -------------------------------------------------------------------
  // Epoch-pinned read path (steady-state: one atomic load, no mutex)
  // -------------------------------------------------------------------

  /// Pins the current epoch: a refcounted snapshot of the sample state
  /// that stays valid — and keeps producing bit-identical estimates — no
  /// matter how many refreshes are published afterwards. Draws the initial
  /// sample (under the writer mutex) if no epoch exists yet; every later
  /// pin is the lock-free fast path (CacheStats.lock_free_pins counts
  /// them, locked_pins counts first-draw fallthroughs).
  Result<std::shared_ptr<const SampleEpoch>> PinEpoch();

  /// The current epoch without drawing: nullptr before the first sample.
  std::shared_ptr<const SampleEpoch> CurrentEpoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// The sorted sample index for `descriptor` at `epoch`, built at most
  /// once per distinct (key_columns, clustered) pair per epoch.
  Result<std::shared_ptr<const Index>> SampleIndexAt(
      const SampleEpoch& epoch, const IndexDescriptor& descriptor) const;

  /// SampleCF on the epoch's sample under the engine's base metric.
  Result<SampleCFResult> EstimateCFAt(const SampleEpoch& epoch,
                                      const IndexDescriptor& descriptor,
                                      const CompressionScheme& scheme) const;

  /// SampleCF on the epoch's sample under an explicit metric.
  Result<SampleCFResult> EstimateCFWithMetricAt(
      const SampleEpoch& epoch, const IndexDescriptor& descriptor,
      const CompressionScheme& scheme, SizeMetric metric) const;

  /// Compresses the epoch's cached sample index with `scheme`.
  Result<CompressedIndex> CompressOnSampleAt(
      const SampleEpoch& epoch, const IndexDescriptor& descriptor,
      const CompressionScheme& scheme) const;

  /// What-if sizes one candidate at `epoch` (CF' scaled to the full-index
  /// footprint using the epoch's table-size snapshot). Pure function of
  /// (epoch, candidate): concurrent appends cannot perturb the result.
  Result<SizedCandidate> EstimateAt(
      const SampleEpoch& epoch, const CandidateConfiguration& candidate) const;

  /// Exact schema-formula sizing for an uncompressed candidate: no sample
  /// (and hence no epoch, pin, or draw) is involved, so a purely
  /// uncompressed workload never triggers a draw. InvalidArgument when the
  /// scheme compresses any column.
  Result<SizedCandidate> EstimateExact(
      const CandidateConfiguration& candidate) const;

  // -------------------------------------------------------------------
  // Current-epoch conveniences (pin once, then the epoch API)
  // -------------------------------------------------------------------

  /// The shared sample (drawn on first use). The pointer addresses the
  /// current epoch's view and stays valid until the epoch after the *next*
  /// refresh/growth retires; callers that estimate across refreshes should
  /// pin an epoch instead.
  Result<const Table*> SampleTable();

  /// Rows in the current epoch's sample; 0 before the first draw.
  uint64_t sample_rows() const;

  /// The sorted sample index for `descriptor` on the current epoch.
  Result<std::shared_ptr<const Index>> SampleIndex(
      const IndexDescriptor& descriptor);

  /// SampleCF on the current epoch's sample: equals SampleCF(table,
  /// descriptor, scheme, options.base, Random(seed)) bit for bit.
  Result<SampleCFResult> EstimateCF(const IndexDescriptor& descriptor,
                                    const CompressionScheme& scheme);

  /// Compresses the current epoch's cached sample index with `scheme`.
  Result<CompressedIndex> CompressOnSample(const IndexDescriptor& descriptor,
                                           const CompressionScheme& scheme);

  /// What-if sizes one candidate on the current epoch.
  Result<SizedCandidate> Estimate(const CandidateConfiguration& candidate);

  /// What-if sizes a batch of candidates, fanning out across the pool.
  /// The whole batch runs against ONE pinned epoch, so results are
  /// positionally aligned with `candidates`, identical to calling
  /// Estimate() per candidate serially, and internally consistent even
  /// while appends stream in.
  Result<std::vector<SizedCandidate>> EstimateAll(
      std::span<const CandidateConfiguration> candidates);

  // -------------------------------------------------------------------
  // Write path (serialized on the writer mutex; never blocks readers)
  // -------------------------------------------------------------------

  /// Grows the sample to at least `target_rows` rows (clamped to the
  /// epoch's table-size snapshot — the fraction-1.0 draw), drawing it
  /// first at the configured base fraction if needed, and returns the
  /// pinned epoch holding the grown sample. A target at or below the
  /// current size returns the current epoch.
  ///
  /// Default (frozen-draw) engines must use the default uniform-with-
  /// replacement sampler and an engine-owned RNG (no options.rng): growth
  /// resumes the seed's draw stream, so the grown sample is bit-identical
  /// to a fresh draw of target_rows ids under the same seed — every
  /// estimate after growth equals a fixed-fraction run at
  /// target_rows / num_rows. Growth is purely additive (the old sample is
  /// a prefix), so the predecessor epoch's completed sample indexes are
  /// *extended* by merging the new rows into each sorted build
  /// (CacheStats.index_extensions) and seeded into the successor epoch
  /// instead of being rebuilt from scratch.
  ///
  /// maintain_reservoir engines grow by replaying Algorithm R at the larger
  /// capacity over the already-consumed row-id stream (O(items seen) RNG
  /// work, no row bytes touched). The result again equals a fresh draw at
  /// the new capacity, and NotifyAppend keeps composing afterwards; the
  /// successor epoch starts with an empty index cache (reservoir growth
  /// shuffles contents).
  ///
  /// Safe to run concurrently with estimates: in-flight readers keep their
  /// pinned epoch; only callers pinning after the swap see the growth.
  Result<std::shared_ptr<const SampleEpoch>> GrowSampleToEpoch(
      uint64_t target_rows);

  /// GrowSampleToEpoch, reporting just the resulting sample row count.
  Result<uint64_t> GrowSample(uint64_t target_rows);

  /// Folds newly appended base-table rows [range.begin, range.end) into the
  /// maintained reservoir, continuing the Algorithm-R stream from the
  /// initial draw (the resulting reservoir equals a fresh one-pass draw
  /// over the grown table under the same seed and capacity), and publishes
  /// the successor epoch. If the reservoir contents changed, the successor
  /// starts with an empty index cache (sample_version bumps, invalidations
  /// counts the dropped entries); if every row was rejected, the successor
  /// keeps the predecessor's version and carries its index cache — only
  /// the table-size snapshot advances.
  ///
  /// Requires maintain_reservoir; `range` must start exactly where the rows
  /// already offered to the reservoir end (no gaps, no overlaps) and must
  /// not extend past the current table size. If the sample has not been
  /// drawn yet the call is a no-op — the eventual draw sees the full table.
  ///
  /// Safe to run concurrently with estimates (epoch swap; no quiescing).
  Status NotifyAppend(RowRange range);

  /// \brief Work-avoidance and concurrency counters (monotone over the
  /// engine's life; all fields are sampled from shared atomics).
  struct CacheStats {
    uint64_t samples_drawn = 0;
    uint64_t index_builds = 0;
    uint64_t index_cache_hits = 0;
    /// Cached sample indexes extended by sorted-run merge into a growth
    /// successor epoch (merges that avoided a from-scratch rebuild).
    uint64_t index_extensions = 0;
    /// Cached sample-index entries dropped by refreshes/reservoir growth.
    uint64_t invalidations = 0;
    /// Version of the sample contents: 1 after the initial draw, +1 per
    /// refresh or growth that actually changed the sample. Each epoch's
    /// cached indexes are always consistent with its version.
    uint64_t sample_version = 0;
    /// Epoch pins served by the lock-free atomic load — the steady-state
    /// estimate path. After the initial draw, estimates only ever add
    /// here, never to locked_pins (the stress test and concurrency bench
    /// assert exactly that).
    uint64_t lock_free_pins = 0;
    /// Epoch pins that fell through to the writer mutex (initial draw).
    uint64_t locked_pins = 0;
    uint64_t epochs_published = 0;
    /// Epochs destroyed after their last reader unpinned them.
    uint64_t epochs_retired = 0;
  };
  CacheStats cache_stats() const;

  /// The engine's worker pool (created on first use, sized by
  /// options.num_threads). Exposed so layered consumers — the adaptive
  /// flow in estimator/adaptive.h — fan their per-round work across the
  /// same workers instead of spinning a second pool per call.
  ThreadPool* shared_pool() { return Pool(); }

 private:
  /// Draws the initial sample and publishes epoch 1. Caller holds mu_ and
  /// has checked that no epoch exists yet.
  Status DrawInitialLocked() REQUIRES(mu_);
  /// Builds and publishes a successor epoch over `view`. Caller holds mu_.
  std::shared_ptr<SampleEpoch> MakeEpochLocked(
      std::shared_ptr<const TableView> view, uint64_t table_rows)
      REQUIRES(mu_);
  void PublishLocked(std::shared_ptr<SampleEpoch> epoch) REQUIRES(mu_);
  ThreadPool* Pool() EXCLUDES(pool_mu_);

  const Table& table_;
  EstimationEngineOptions options_;

  /// Shared with every published epoch (epochs can outlive the engine
  /// while pinned).
  std::shared_ptr<EpochCounters> counters_;

  /// The published epoch — the entire read path. Readers load it with one
  /// atomic operation and never touch mu_.
  std::atomic<std::shared_ptr<const SampleEpoch>> epoch_;

  /// Writer mutex: serializes the initial draw, NotifyAppend, and
  /// GrowSample. Guards the draw-stream state below; never held while an
  /// estimate runs.
  mutable Mutex mu_;
  /// Writer-side handle on the current sample view (== current epoch's).
  std::shared_ptr<const TableView> sample_ GUARDED_BY(mu_);
  /// Sample-contents version behind the current epoch.
  uint64_t version_ GUARDED_BY(mu_) = 0;
  /// Base-table rows the frozen draw was taken over (the n all frozen-mode
  /// epochs scale by; GrowSample resumes the draw stream against it).
  uint64_t draw_table_rows_ GUARDED_BY(mu_) = 0;

  /// Reservoir state (maintain_reservoir mode only): the Algorithm-R slot
  /// core, the RNG stream it consumes (resumed by NotifyAppend), and the
  /// slot storage — the row ids the current sample view is built from.
  std::optional<ReservoirSampler> reservoir_core_ GUARDED_BY(mu_);
  Random reservoir_rng_ GUARDED_BY(mu_){0};
  std::vector<RowId> reservoir_ids_ GUARDED_BY(mu_);

  /// The frozen-draw RNG stream (default mode, engine-owned seed only).
  /// Kept alive past the initial draw so GrowSample can resume it.
  Random draw_rng_ GUARDED_BY(mu_){0};

  /// Pool creation is guarded separately from mu_ so estimate fan-out can
  /// never contend with the writer path.
  mutable Mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_ GUARDED_BY(pool_mu_);
};

/// The engine's sample-index cache key for `descriptor`: one build per
/// distinct (key_columns, clustered) pair — the cosmetic name is excluded.
/// Shared with the adaptive layer's replicate-index cache and the service's
/// request coalescer so all three key identically.
std::string SampleIndexCacheKey(const IndexDescriptor& descriptor);

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_ENGINE_H_
