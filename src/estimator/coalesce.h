// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// RequestCoalescer — the service's admission layer for concurrent sizing
// requests.
//
// N clients hammering CatalogEstimationService tend to ask for the *same*
// candidates (an advisor's candidate set is shared state; dashboards poll
// the same what-ifs). Per epoch, an estimate is a pure function of
// (table, index key set, scheme), so identical requests landing while one
// is already being computed can share that single computation: the first
// requester is admitted as the owner and computes, everyone else receives
// the same shared_future and just waits. This is the request-level
// complement of the per-epoch index cache: the epoch cache shares the
// *index build* across schemes, the coalescer shares the whole in-flight
// sizing result across callers.
//
// Sharing is deliberately limited to work that is IN FLIGHT: Complete()
// retires the entry as it publishes the outcome, so a request arriving
// after the computation finished is admitted as a fresh owner and
// recomputes through the engine's epoch caches (which make the recompute
// cheap, and whose hit/build counters stay exactly what a coalescer-free
// service would report). Keys embed the epoch identity (sample version +
// table-size snapshot), so a refresh naturally splits concurrent traffic:
// requests pinned to different epochs never merge.
//
// Thread-safe. The one hard protocol rule: whoever is admitted as owner
// MUST eventually call Complete() for that key (with the error status
// inside the outcome if the computation failed) — waiters block on the
// future until then.

#ifndef CFEST_ESTIMATOR_COALESCE_H_
#define CFEST_ESTIMATOR_COALESCE_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "estimator/engine.h"
#include "estimator/epoch.h"

namespace cfest {

/// \brief One coalesced sizing computation's outcome: the sized candidate
/// or the status that failed it. `sized.config` carries the *owner's*
/// configuration — sharers must re-stamp their own (coalescing keys ignore
/// the cosmetic index name and the benefit, which differ between callers
/// asking for structurally identical candidates).
struct SizingOutcome {
  Status status = Status::OK();
  SizedCandidate sized;
};

/// The coalescing identity of (table, candidate) at `epoch`: table name,
/// structural index key (SampleIndexCacheKey — name excluded), the full
/// compression scheme, and the epoch identity (version + table-rows
/// snapshot). Two requests with equal keys are guaranteed bit-identical
/// outcomes, because estimates are pure functions of the pinned epoch.
std::string CoalesceKey(const std::string& table_name,
                        const CandidateConfiguration& candidate,
                        const SampleEpoch& epoch);

/// \brief Deduplicating admission map from coalesce keys to in-flight
/// sizing futures.
class RequestCoalescer {
 public:
  struct Ticket {
    /// True when this caller must compute and Complete() the key.
    bool owner = false;
    /// Trace flow id shared by the owner and every merged waiter of this
    /// key (0 when tracing is disabled): the owner stamps it on its
    /// compute span as the flow source, each sharer on its wait span as a
    /// sink, so the exported trace draws an arrow from the merged request
    /// to the computation that served it.
    uint64_t flow_id = 0;
    std::shared_future<SizingOutcome> future;
  };

  /// \brief Per-table labeled child block of the `cfest.coalescer.*`
  /// counter families. Resolved once per table via CountersForTable (label
  /// resolution at admission-site setup); Admit then increments the block
  /// with plain sharded adds. The registration member is declared last so
  /// it retires final values while the counters still exist.
  struct TableCounters {
    explicit TableCounters(const std::string& table_name)
        : registration(metrics::MetricRegistry::Global().RegisterCounters(
              {{"table", table_name}},
              {{"cfest.coalescer.requests", &requests},
               {"cfest.coalescer.admitted", &admitted},
               {"cfest.coalescer.merged", &merged}})) {}
    metrics::Counter requests;
    metrics::Counter admitted;
    metrics::Counter merged;
    metrics::MetricRegistry::Registration registration;
  };

  /// The per-table counter block for `table_name`, created on first use
  /// and stable for the coalescer's lifetime.
  TableCounters* CountersForTable(const std::string& table_name);

  /// Admits a request: the first caller for a key becomes the owner; every
  /// caller landing while the owner's computation is in flight shares the
  /// owner's future (and its flow id). When `table_counters` is given
  /// (from CountersForTable), traffic is attributed to that table's
  /// labeled children; otherwise to the unlabeled child — either way the
  /// family aggregates (and stats()) count every admission exactly once.
  Ticket Admit(const std::string& key,
               TableCounters* table_counters = nullptr);

  /// Publishes the owner's outcome, releasing every waiter, and retires
  /// the entry (later requests for the key recompute). Must be called
  /// exactly once per owning Admit.
  void Complete(const std::string& key, SizingOutcome outcome);

  /// \brief Traffic counters (monotone). A compat snapshot of the
  /// registry-backed `cfest.coalescer.*` counters below — both views are
  /// bit-identical by construction (they read the same Counter objects).
  struct Stats {
    /// Admit calls.
    uint64_t requests = 0;
    /// Requests admitted as owners (computations actually run).
    uint64_t admitted = 0;
    /// Requests that joined an in-flight computation (work deduplicated).
    uint64_t merged = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<std::promise<SizingOutcome>> promise;
    std::shared_future<SizingOutcome> future;
    uint64_t flow_id = 0;
  };

  mutable Mutex mu_;
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mu_);
  /// Per-table labeled blocks, created lazily by CountersForTable. Block
  /// pointers stay valid for the coalescer's lifetime.
  std::map<std::string, std::unique_ptr<TableCounters>> table_counters_
      GUARDED_BY(mu_);

  /// Unlabeled-child fallback for admissions without a table handle,
  /// registered process-wide under `cfest.coalescer.*`. The registration
  /// member is declared last so it retires the final values into the
  /// registry before the counters destruct.
  metrics::Counter requests_;
  metrics::Counter admitted_;
  metrics::Counter merged_;
  metrics::MetricRegistry::Registration registration_ =
      metrics::MetricRegistry::Global().RegisterCounters(
          {{"cfest.coalescer.requests", &requests_},
           {"cfest.coalescer.admitted", &admitted_},
           {"cfest.coalescer.merged", &merged_}});
};

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_COALESCE_H_
