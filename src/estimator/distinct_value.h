// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Distinct-value estimators from a uniform random sample. The paper (§III-B)
// observes that estimating CF under dictionary compression "is closely
// related to the problem of estimating the number of distinct values using
// sampling which is known to be hard" (its ref [1], Charikar et al., PODS
// 2000). These classical estimators are the natural baselines against
// SampleCF for dictionary compression: plug an estimate D-hat into the
// closed form CF = p/k + D-hat/n.

#ifndef CFEST_ESTIMATOR_DISTINCT_VALUE_H_
#define CFEST_ESTIMATOR_DISTINCT_VALUE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace cfest {

/// \brief The frequency profile of a sampled column: d' and the
/// frequency-of-frequencies f_j ("how many values occur exactly j times").
struct SampleFrequencyProfile {
  uint64_t sample_rows = 0;                  ///< r
  uint64_t distinct_in_sample = 0;           ///< d'
  std::map<uint64_t, uint64_t> freq_counts;  ///< j -> f_j

  uint64_t f(uint64_t j) const {
    auto it = freq_counts.find(j);
    return it == freq_counts.end() ? 0 : it->second;
  }
};

/// Builds the profile of column `col` of a (sample) table.
Result<SampleFrequencyProfile> BuildFrequencyProfile(const Table& sample,
                                                     size_t col);

/// \brief The distinct-value estimators implemented.
enum class DvEstimator {
  kNaive,      // D-hat = d' (no scale-up; what SampleCF's d'-term sees)
  kScaleUp,    // D-hat = d' * n/r (naive linear scale-up)
  kChao84,     // D-hat = d' + f1^2 / (2 f2)
  kShlosser,   // Shlosser's estimator (q = r/n)
  kGee,        // Guaranteed-Error Estimator, Charikar et al. PODS 2000
};

const char* DvEstimatorName(DvEstimator estimator);
std::vector<DvEstimator> AllDvEstimators();

/// Applies the estimator to a profile drawn from a table of n rows. The
/// result is clamped to [d', n].
double EstimateDistinct(DvEstimator estimator,
                        const SampleFrequencyProfile& profile, uint64_t n);

/// Baseline dictionary-compression CF estimate: p/k + D-hat/n.
double DictCFFromDvEstimate(double dv_estimate, uint64_t n,
                            uint32_t pointer_bytes, uint32_t column_width);

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_DISTINCT_VALUE_H_
