// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Closed-form compression-fraction models mirroring the paper's Section III
// analysis, phrased over exactly the Table I symbols:
//
//   n   rows in the table               d   distinct values
//   k   declared tuple width            l_i null-suppressed length of tuple i
//   r   rows in the sample              d'  distinct values in the sample
//
//   CF_NS = sum_i (l_i + h) / (n k)          (h = length-header bytes)
//   CF_DC = p/k + d/n                        (simplified global model)
//   CF_DC_paged = (n p + k sum_i Pg(i)) / (n k)
//
// These are used both for ground truth in tests (analytic-vs-constructive
// consistency) and for the formula-level estimators evaluated in benches.

#ifndef CFEST_ESTIMATOR_ANALYTIC_MODEL_H_
#define CFEST_ESTIMATOR_ANALYTIC_MODEL_H_

#include <cstdint>

#include "common/result.h"
#include "storage/table.h"

namespace cfest {

/// \brief Population statistics of one column (Table I of the paper).
struct ColumnPopulationStats {
  uint64_t n = 0;           ///< rows
  uint64_t d = 0;           ///< distinct values
  uint64_t sum_lengths = 0; ///< sum of null-suppressed lengths l_i
  uint32_t k = 0;           ///< declared (fixed) width
  uint32_t length_header = 1;  ///< h: bytes used to record a length
};

/// Scans a column and computes its population statistics exactly.
Result<ColumnPopulationStats> AnalyzeColumn(const Table& table, size_t col);

/// CF_NS = sum_i (l_i + h) / (n k). Requires n > 0.
double AnalyticNsCF(const ColumnPopulationStats& stats);

/// The paper's simplified global-dictionary model: CF = p/k + d/n with a
/// p-byte pointer per row and each distinct value stored once at width k.
double AnalyticGlobalDictCF(const ColumnPopulationStats& stats,
                            uint32_t pointer_bytes);

/// The paged dictionary model: pointers of `pointer_bits` bits per row plus
/// one k-byte dictionary entry per (value, page) incidence:
/// (n*pointer_bits/8 + k*sum_pg) / (n k).
double AnalyticPagedDictCF(const ColumnPopulationStats& stats,
                           double pointer_bits, uint64_t sum_pg);

/// Theorem 1's bound on the standard deviation of CF'_NS: 1 / (2 sqrt(r)),
/// with r = f*n the sample size.
double Theorem1StdDevBound(uint64_t sample_rows);

/// \brief A symmetric confidence interval around a CF estimate.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 1.0;
  double num_sigmas = 2.0;
};

/// Distribution-free interval for a null-suppression estimate via Theorem 1:
/// estimate +- num_sigmas / (2 sqrt(r)), clamped to [0, inf). Two sigmas
/// give a >= 75% guarantee by Chebyshev and ~95% in practice.
ConfidenceInterval Theorem1ConfidenceInterval(double estimate,
                                              uint64_t sample_rows,
                                              double num_sigmas = 2.0);

/// Sample size r needed for the Theorem-1 bound to guarantee
/// num_sigmas * sigma <= half_width: r = ceil((num_sigmas / (2 w))^2).
uint64_t SampleSizeForHalfWidth(double half_width, double num_sigmas = 2.0);

/// Data-dependent interval for an NS estimate: uses the *sample's* variance
/// of the per-tuple normalized sizes (l_i + h)/k instead of Theorem 1's
/// worst-case 1/4, so it is much tighter on low-variance columns while
/// keeping the same estimate +- num_sigmas * sigma-hat/sqrt(r) shape.
/// `sample` is the drawn sample and `col` the (single) indexed column.
Result<ConfidenceInterval> EmpiricalNsConfidenceInterval(
    const Table& sample, size_t col, double estimate,
    double num_sigmas = 2.0);

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_ANALYTIC_MODEL_H_
