#include "estimator/scheme_advisor.h"

#include <cmath>
#include <limits>

#include "index/index.h"

namespace cfest {
namespace {

/// Can `type` compress a column of `data_type` at all?
bool Applies(CompressionType type, const DataType& data_type) {
  return MakeColumnCompressor(type, data_type).ok();
}

}  // namespace

Result<SchemeRecommendation> RecommendScheme(
    const Table& table, const IndexDescriptor& descriptor,
    const std::vector<CompressionType>& candidates,
    const SampleCFOptions& options, Random* rng) {
  EstimationEngineOptions engine_options;
  engine_options.base = options;
  engine_options.rng = rng;
  EstimationEngine engine(table, engine_options);
  return RecommendScheme(engine, descriptor, candidates);
}

Result<SchemeRecommendation> RecommendScheme(
    EstimationEngine& engine, const IndexDescriptor& descriptor,
    const std::vector<CompressionType>& candidates) {
  std::vector<CompressionType> pool =
      candidates.empty() ? AllCompressionTypes() : candidates;
  // kNone is the do-nothing fallback: a recommendation never inflates a
  // column past its uncompressed size.
  bool has_none = false;
  for (CompressionType t : pool) has_none |= (t == CompressionType::kNone);
  if (!has_none) pool.push_back(CompressionType::kNone);

  // One pinned epoch, one sorted build per key set: every scheme ranked
  // below compresses the same cached sample index, immune to concurrent
  // refreshes.
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const SampleEpoch> epoch,
                         engine.PinEpoch());
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const Index> index,
                         engine.SampleIndexAt(*epoch, descriptor));
  const Schema& schema = index->schema();
  const uint64_t r = index->num_rows();
  if (r == 0) {
    return Status::InvalidArgument("sample is empty; increase the fraction");
  }

  SchemeRecommendation rec;
  rec.sample_rows = r;
  rec.columns.resize(schema.num_columns());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> best_cf(schema.num_columns(),
                              std::numeric_limits<double>::infinity());
  std::vector<CompressionType> best_type(schema.num_columns(),
                                         CompressionType::kNone);
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    rec.columns[c].column_name = schema.column(c).name;
    rec.columns[c].candidate_cf.assign(pool.size(), nan);
  }

  for (size_t cand = 0; cand < pool.size(); ++cand) {
    const CompressionType type = pool[cand];
    // Compress the sample index once with `type` on every column it applies
    // to (kNone elsewhere), then read per-column footprints.
    CompressionScheme scheme;
    scheme.per_column.resize(schema.num_columns(), CompressionType::kNone);
    bool any = false;
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (Applies(type, schema.column(c).type)) {
        scheme.per_column[c] = type;
        any = true;
      }
    }
    if (!any) continue;
    CFEST_ASSIGN_OR_RETURN(
        CompressedIndex compressed,
        engine.CompressOnSampleAt(*epoch, descriptor, scheme));
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (scheme.per_column[c] != type) continue;
      const ColumnCompressionStats& col = compressed.stats().columns[c];
      const double cf =
          static_cast<double>(col.chunk_bytes + col.aux_bytes) /
          (static_cast<double>(r) * schema.width(c));
      rec.columns[c].candidate_cf[cand] = cf;
      if (cf < best_cf[c]) {
        best_cf[c] = cf;
        best_type[c] = type;
      }
    }
  }

  rec.scheme.per_column = best_type;
  double total_bytes = 0.0;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    rec.columns[c].best = best_type[c];
    rec.columns[c].estimated_cf = best_cf[c];
    total_bytes += best_cf[c] * static_cast<double>(r) * schema.width(c);
  }
  rec.estimated_cf =
      total_bytes / (static_cast<double>(r) * schema.row_width());
  return rec;
}

}  // namespace cfest
