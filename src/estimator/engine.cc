#include "estimator/engine.h"

#include <cmath>
#include <utility>

#include "storage/page.h"

namespace cfest {
namespace {

/// Width of one index row without building it.
Result<uint32_t> IndexRowWidth(const Table& table,
                               const IndexDescriptor& index) {
  uint32_t width = 0;
  std::vector<bool> used(table.schema().num_columns(), false);
  for (const std::string& name : index.key_columns) {
    CFEST_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
    if (used[idx]) {
      return Status::InvalidArgument("duplicate key column " + name);
    }
    used[idx] = true;
    width += table.schema().width(idx);
  }
  if (index.clustered) {
    for (size_t i = 0; i < table.schema().num_columns(); ++i) {
      if (!used[i]) width += table.schema().width(i);
    }
  } else {
    width += 8;  // __rid
  }
  return width;
}

}  // namespace

std::string SampleIndexCacheKey(const IndexDescriptor& descriptor) {
  std::string key = descriptor.clustered ? "c" : "n";
  for (const std::string& col : descriptor.key_columns) {
    key += '\x1f';
    key += col;
  }
  return key;
}

bool IsUncompressedScheme(const CompressionScheme& scheme) {
  return scheme.per_column.empty() &&
         scheme.default_type == CompressionType::kNone;
}

Result<uint64_t> EstimateUncompressedIndexBytes(const Table& table,
                                                const IndexDescriptor& index,
                                                size_t page_size) {
  CFEST_ASSIGN_OR_RETURN(uint32_t width, IndexRowWidth(table, index));
  const uint64_t per_page =
      (page_size - kPageHeaderSize) / (width + kSlotSize);
  if (per_page == 0) {
    return Status::InvalidArgument("index row wider than a page");
  }
  const uint64_t n = table.num_rows();
  const uint64_t leaves = n == 0 ? 1 : (n + per_page - 1) / per_page;
  // Internal fan-out: separator key + child pointer per entry.
  uint32_t key_width = 0;
  for (const std::string& name : index.key_columns) {
    CFEST_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
    key_width += table.schema().width(idx);
  }
  const uint64_t fanout = std::max<uint64_t>(
      2, (page_size - kPageHeaderSize) / (key_width + 8 + kSlotSize));
  return (leaves + InternalPageCount(leaves, fanout)) * page_size;
}

EstimationEngine::EstimationEngine(const Table& table,
                                   EstimationEngineOptions options)
    : table_(table), options_(std::move(options)) {}

Status EstimationEngine::EnsureSample() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sample_ != nullptr) return Status::OK();

  if (options_.maintain_reservoir) {
    if (options_.rng != nullptr) {
      return Status::InvalidArgument(
          "maintain_reservoir needs an engine-owned RNG stream (seed), not "
          "an external rng");
    }
    if (table_.num_rows() == 0) {
      return Status::InvalidArgument("cannot sample an empty table");
    }
    uint64_t capacity = options_.reservoir_capacity;
    if (capacity == 0) {
      CFEST_RETURN_NOT_OK(CheckFraction(options_.base.fraction));
      capacity = std::max<uint64_t>(
          1, static_cast<uint64_t>(std::llround(
                 options_.base.fraction *
                 static_cast<double>(table_.num_rows()))));
    }
    reservoir_rng_.Seed(options_.seed);
    reservoir_core_.emplace(capacity);
    reservoir_ids_.clear();
    OfferRowsToReservoir(0, table_.num_rows());
    CFEST_ASSIGN_OR_RETURN(
        sample_, TableView::Make(table_, std::vector<RowId>(reservoir_ids_)));
    ++stats_.samples_drawn;
    ++stats_.sample_version;
    return Status::OK();
  }

  std::unique_ptr<RowSampler> default_sampler;
  const RowSampler* sampler = options_.base.sampler;
  if (sampler == nullptr) {
    default_sampler = MakeUniformWithReplacementSampler();
    sampler = default_sampler.get();
  }
  draw_rng_.Seed(options_.seed);
  Random* rng = options_.rng != nullptr ? options_.rng : &draw_rng_;
  CFEST_ASSIGN_OR_RETURN(
      sample_, sampler->SampleView(table_, options_.base.fraction, rng));
  ++stats_.samples_drawn;
  ++stats_.sample_version;
  return Status::OK();
}

Status EstimationEngine::NotifyAppend(RowRange range) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.maintain_reservoir) {
    return Status::InvalidArgument(
        "NotifyAppend requires maintain_reservoir");
  }
  if (range.begin > range.end || range.end > table_.num_rows()) {
    return Status::OutOfRange(
        "append range [" + std::to_string(range.begin) + ", " +
        std::to_string(range.end) + ") does not address appended rows of a " +
        std::to_string(table_.num_rows()) + "-row table");
  }
  if (range.empty()) return Status::OK();
  // Not drawn yet: the eventual draw scans the whole (grown) table.
  if (sample_ == nullptr) return Status::OK();
  if (range.begin != reservoir_core_->items_seen()) {
    return Status::InvalidArgument(
        "append range begins at row " + std::to_string(range.begin) +
        " but the reservoir has consumed rows up to " +
        std::to_string(reservoir_core_->items_seen()) +
        " (ranges must arrive contiguously)");
  }

  if (!OfferRowsToReservoir(range.begin, range.end)) return Status::OK();

  // The sample contents moved: swap in a fresh view and drop every cached
  // index built on the old contents (they are all stale — an index is a
  // function of every sample row). Untouched appends above cost nothing.
  CFEST_ASSIGN_OR_RETURN(
      sample_, TableView::Make(table_, std::vector<RowId>(reservoir_ids_)));
  stats_.invalidations += indexes_.size();
  indexes_.clear();
  ++stats_.sample_version;
  return Status::OK();
}

bool EstimationEngine::OfferRowsToReservoir(RowId begin, RowId end) {
  bool changed = false;
  for (RowId id = begin; id < end; ++id) {
    const uint64_t slot = reservoir_core_->Offer(&reservoir_rng_);
    if (slot == ReservoirSampler::kSkip) continue;
    if (slot == reservoir_ids_.size()) {
      reservoir_ids_.push_back(id);
    } else {
      reservoir_ids_[static_cast<size_t>(slot)] = id;
    }
    changed = true;
  }
  return changed;
}

Result<const Table*> EstimationEngine::SampleTable() {
  CFEST_RETURN_NOT_OK(EnsureSample());
  return static_cast<const Table*>(sample_.get());
}

uint64_t EstimationEngine::sample_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sample_ == nullptr ? 0 : sample_->num_rows();
}

Result<uint64_t> EstimationEngine::GrowSample(uint64_t target_rows) {
  CFEST_RETURN_NOT_OK(EnsureSample());
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t current = sample_->num_rows();
  // Fraction is capped at 1.0, so the largest comparable fixed-f draw is
  // one id per table row; clamp instead of overshooting that contract.
  const uint64_t target = std::min(target_rows, table_.num_rows());
  if (target <= current) return current;

  if (options_.maintain_reservoir) {
    // Capacity growth is not stream-resumable (a larger reservoir fills
    // longer before its first RNG draw), so replay the consumed row-id
    // stream from the seed at the new capacity: O(items seen) RNG work,
    // no row bytes touched, and the result *is* the fresh draw at the new
    // capacity — NotifyAppend keeps resuming the replayed stream.
    const uint64_t items_seen = reservoir_core_->items_seen();
    reservoir_rng_.Seed(options_.seed);
    reservoir_core_.emplace(target);
    reservoir_ids_.clear();
    OfferRowsToReservoir(0, items_seen);
    CFEST_ASSIGN_OR_RETURN(
        sample_, TableView::Make(table_, std::vector<RowId>(reservoir_ids_)));
    stats_.invalidations += indexes_.size();
    indexes_.clear();
    ++stats_.sample_version;
    return sample_->num_rows();
  }

  if (options_.rng != nullptr) {
    return Status::InvalidArgument(
        "GrowSample needs an engine-owned RNG stream (seed), not an "
        "external rng");
  }
  if (options_.base.sampler != nullptr) {
    return Status::InvalidArgument(
        "GrowSample requires the default uniform-with-replacement sampler "
        "(growth resumes its draw stream)");
  }

  // Resume the seed's with-replacement draw stream: ids [current, target)
  // are exactly the ids a fresh draw of `target` rows would append after
  // the first `current`, so the grown sample equals a fixed-fraction draw
  // at target / num_rows under the same seed.
  std::vector<RowId> delta_ids;
  delta_ids.reserve(static_cast<size_t>(target - current));
  for (uint64_t i = current; i < target; ++i) {
    delta_ids.push_back(draw_rng_.NextBounded(table_.num_rows()));
  }
  std::vector<RowId> grown_ids = sample_->row_ids();
  grown_ids.insert(grown_ids.end(), delta_ids.begin(), delta_ids.end());
  CFEST_ASSIGN_OR_RETURN(std::unique_ptr<TableView> grown,
                         TableView::Make(table_, std::move(grown_ids)));
  CFEST_ASSIGN_OR_RETURN(std::unique_ptr<TableView> delta_view,
                         TableView::Make(table_, std::move(delta_ids)));

  // Growth is additive (the old sample is a prefix of the grown one), so
  // every cached sorted build stays a valid sorted run — merge the delta
  // rows in instead of rebuilding. Delta rows occupy view positions
  // [current, target), which is what their __rid values must be.
  std::unordered_map<std::string, std::shared_future<IndexEntry>> extended;
  for (auto& [key, future] : indexes_) {
    const IndexEntry& entry = future.get();  // quiesced: already ready
    if (!entry.status.ok() || entry.index == nullptr) continue;  // rebuild lazily
    Result<Index> merged =
        entry.index->ExtendedWith(*delta_view, current, options_.base.build);
    if (!merged.ok()) continue;  // drop: the next request rebuilds
    IndexEntry new_entry;
    new_entry.index =
        std::make_shared<const Index>(std::move(merged).ValueOrDie());
    std::promise<IndexEntry> promise;
    promise.set_value(std::move(new_entry));
    extended.emplace(key, promise.get_future().share());
    ++stats_.index_extensions;
  }
  indexes_ = std::move(extended);
  sample_ = std::move(grown);
  ++stats_.sample_version;
  return sample_->num_rows();
}

Result<std::shared_ptr<const Index>> EstimationEngine::SampleIndex(
    const IndexDescriptor& descriptor) {
  CFEST_RETURN_NOT_OK(EnsureSample());
  const std::string key = SampleIndexCacheKey(descriptor);

  std::shared_future<IndexEntry> future;
  bool builder = false;
  std::promise<IndexEntry> promise;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = indexes_.find(key);
    if (it != indexes_.end()) {
      future = it->second;
      ++stats_.index_cache_hits;
    } else {
      future = promise.get_future().share();
      indexes_.emplace(key, future);
      builder = true;
    }
  }

  if (builder) {
    IndexEntry entry;
    Result<Index> built =
        Index::Build(*sample_, descriptor, options_.base.build);
    if (built.ok()) {
      entry.index =
          std::make_shared<const Index>(std::move(built).ValueOrDie());
    } else {
      entry.status = built.status();
    }
    // Publish before touching mu_: GrowSample waits on this future while
    // holding the lock, so the reverse order would turn a violated
    // "quiesce before growing" precondition into a hard deadlock instead
    // of a benign stats lag.
    promise.set_value(std::move(entry));
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.index_builds;
    }
  }

  const IndexEntry& entry = future.get();
  CFEST_RETURN_NOT_OK(entry.status);
  return entry.index;
}

Result<SampleCFResult> EstimationEngine::EstimateCFWithMetric(
    const IndexDescriptor& descriptor, const CompressionScheme& scheme,
    SizeMetric metric) {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const Index> index,
                         SampleIndex(descriptor));
  CFEST_ASSIGN_OR_RETURN(CompressedIndex compressed,
                         index->Compress(scheme, options_.base.build));

  SampleCFResult result;
  result.cf = MeasureCF(index->stats(), compressed.stats(), metric);
  result.sample_rows = index->num_rows();
  result.sample_dictionary_entries = compressed.stats().dictionary_entries;
  result.sample_uncompressed = index->stats();
  result.sample_compressed = compressed.stats();
  return result;
}

Result<SampleCFResult> EstimationEngine::EstimateCF(
    const IndexDescriptor& descriptor, const CompressionScheme& scheme) {
  return EstimateCFWithMetric(descriptor, scheme, options_.base.metric);
}

Result<CompressedIndex> EstimationEngine::CompressOnSample(
    const IndexDescriptor& descriptor, const CompressionScheme& scheme) {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const Index> index,
                         SampleIndex(descriptor));
  return index->Compress(scheme, options_.base.build);
}

Result<SizedCandidate> EstimationEngine::Estimate(
    const CandidateConfiguration& candidate) {
  SizedCandidate sized;
  sized.config = candidate;
  CFEST_ASSIGN_OR_RETURN(
      sized.uncompressed_bytes,
      EstimateUncompressedIndexBytes(table_, candidate.index,
                                     options_.base.build.page_size));

  if (IsUncompressedScheme(candidate.scheme)) {
    sized.estimated_cf = 1.0;
    sized.estimated_bytes = sized.uncompressed_bytes;
    return sized;
  }

  // Capacity planners size whole pages on disk, hence the page metric.
  CFEST_ASSIGN_OR_RETURN(
      SampleCFResult result,
      EstimateCFWithMetric(candidate.index, candidate.scheme,
                           SizeMetric::kPageBytes));
  sized.estimated_cf = result.cf.value;
  sized.estimated_bytes = static_cast<uint64_t>(std::llround(
      result.cf.value * static_cast<double>(sized.uncompressed_bytes)));
  sized.sample_rows = result.sample_rows;
  return sized;
}

ThreadPool* EstimationEngine::Pool() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

Result<std::vector<SizedCandidate>> EstimationEngine::EstimateAll(
    std::span<const CandidateConfiguration> candidates) {
  std::vector<SizedCandidate> results(candidates.size());
  const bool serial = options_.num_threads == 1 || candidates.size() < 2;
  CFEST_RETURN_NOT_OK(StatusParallelFor(
      serial ? nullptr : Pool(), candidates.size(), [&](uint64_t i) {
        CFEST_ASSIGN_OR_RETURN(results[i], Estimate(candidates[i]));
        return Status::OK();
      }));
  return results;
}

EstimationEngine::CacheStats EstimationEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cfest
