#include "estimator/engine.h"

#include <cmath>
#include <utility>

#include "storage/page.h"

namespace cfest {
namespace {

/// Width of one index row without building it.
Result<uint32_t> IndexRowWidth(const Table& table,
                               const IndexDescriptor& index) {
  uint32_t width = 0;
  std::vector<bool> used(table.schema().num_columns(), false);
  for (const std::string& name : index.key_columns) {
    CFEST_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
    if (used[idx]) {
      return Status::InvalidArgument("duplicate key column " + name);
    }
    used[idx] = true;
    width += table.schema().width(idx);
  }
  if (index.clustered) {
    for (size_t i = 0; i < table.schema().num_columns(); ++i) {
      if (!used[i]) width += table.schema().width(i);
    }
  } else {
    width += 8;  // __rid
  }
  return width;
}

/// Cache key for the sample index: schemes on the same key set share one
/// build, so the descriptor's cosmetic name is deliberately excluded.
std::string DescriptorKey(const IndexDescriptor& descriptor) {
  std::string key = descriptor.clustered ? "c" : "n";
  for (const std::string& col : descriptor.key_columns) {
    key += '\x1f';
    key += col;
  }
  return key;
}

bool IsUncompressed(const CompressionScheme& scheme) {
  return scheme.per_column.empty() &&
         scheme.default_type == CompressionType::kNone;
}

}  // namespace

Result<uint64_t> EstimateUncompressedIndexBytes(const Table& table,
                                                const IndexDescriptor& index,
                                                size_t page_size) {
  CFEST_ASSIGN_OR_RETURN(uint32_t width, IndexRowWidth(table, index));
  const uint64_t per_page =
      (page_size - kPageHeaderSize) / (width + kSlotSize);
  if (per_page == 0) {
    return Status::InvalidArgument("index row wider than a page");
  }
  const uint64_t n = table.num_rows();
  const uint64_t leaves = n == 0 ? 1 : (n + per_page - 1) / per_page;
  // Internal fan-out: separator key + child pointer per entry.
  uint32_t key_width = 0;
  for (const std::string& name : index.key_columns) {
    CFEST_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
    key_width += table.schema().width(idx);
  }
  const uint64_t fanout = std::max<uint64_t>(
      2, (page_size - kPageHeaderSize) / (key_width + 8 + kSlotSize));
  return (leaves + InternalPageCount(leaves, fanout)) * page_size;
}

EstimationEngine::EstimationEngine(const Table& table,
                                   EstimationEngineOptions options)
    : table_(table), options_(std::move(options)) {}

Status EstimationEngine::EnsureSample() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sample_ != nullptr) return Status::OK();

  if (options_.maintain_reservoir) {
    if (options_.rng != nullptr) {
      return Status::InvalidArgument(
          "maintain_reservoir needs an engine-owned RNG stream (seed), not "
          "an external rng");
    }
    if (table_.num_rows() == 0) {
      return Status::InvalidArgument("cannot sample an empty table");
    }
    uint64_t capacity = options_.reservoir_capacity;
    if (capacity == 0) {
      CFEST_RETURN_NOT_OK(CheckFraction(options_.base.fraction));
      capacity = std::max<uint64_t>(
          1, static_cast<uint64_t>(std::llround(
                 options_.base.fraction *
                 static_cast<double>(table_.num_rows()))));
    }
    reservoir_rng_.Seed(options_.seed);
    reservoir_core_.emplace(capacity);
    reservoir_ids_.clear();
    OfferRowsToReservoir(0, table_.num_rows());
    CFEST_ASSIGN_OR_RETURN(
        sample_, TableView::Make(table_, std::vector<RowId>(reservoir_ids_)));
    ++stats_.samples_drawn;
    ++stats_.sample_version;
    return Status::OK();
  }

  std::unique_ptr<RowSampler> default_sampler;
  const RowSampler* sampler = options_.base.sampler;
  if (sampler == nullptr) {
    default_sampler = MakeUniformWithReplacementSampler();
    sampler = default_sampler.get();
  }
  Random own_rng(options_.seed);
  Random* rng = options_.rng != nullptr ? options_.rng : &own_rng;
  CFEST_ASSIGN_OR_RETURN(
      sample_, sampler->SampleView(table_, options_.base.fraction, rng));
  ++stats_.samples_drawn;
  ++stats_.sample_version;
  return Status::OK();
}

Status EstimationEngine::NotifyAppend(RowRange range) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.maintain_reservoir) {
    return Status::InvalidArgument(
        "NotifyAppend requires maintain_reservoir");
  }
  if (range.begin > range.end || range.end > table_.num_rows()) {
    return Status::OutOfRange(
        "append range [" + std::to_string(range.begin) + ", " +
        std::to_string(range.end) + ") does not address appended rows of a " +
        std::to_string(table_.num_rows()) + "-row table");
  }
  if (range.empty()) return Status::OK();
  // Not drawn yet: the eventual draw scans the whole (grown) table.
  if (sample_ == nullptr) return Status::OK();
  if (range.begin != reservoir_core_->items_seen()) {
    return Status::InvalidArgument(
        "append range begins at row " + std::to_string(range.begin) +
        " but the reservoir has consumed rows up to " +
        std::to_string(reservoir_core_->items_seen()) +
        " (ranges must arrive contiguously)");
  }

  if (!OfferRowsToReservoir(range.begin, range.end)) return Status::OK();

  // The sample contents moved: swap in a fresh view and drop every cached
  // index built on the old contents (they are all stale — an index is a
  // function of every sample row). Untouched appends above cost nothing.
  CFEST_ASSIGN_OR_RETURN(
      sample_, TableView::Make(table_, std::vector<RowId>(reservoir_ids_)));
  stats_.invalidations += indexes_.size();
  indexes_.clear();
  ++stats_.sample_version;
  return Status::OK();
}

bool EstimationEngine::OfferRowsToReservoir(RowId begin, RowId end) {
  bool changed = false;
  for (RowId id = begin; id < end; ++id) {
    const uint64_t slot = reservoir_core_->Offer(&reservoir_rng_);
    if (slot == ReservoirSampler::kSkip) continue;
    if (slot == reservoir_ids_.size()) {
      reservoir_ids_.push_back(id);
    } else {
      reservoir_ids_[static_cast<size_t>(slot)] = id;
    }
    changed = true;
  }
  return changed;
}

Result<const Table*> EstimationEngine::SampleTable() {
  CFEST_RETURN_NOT_OK(EnsureSample());
  return static_cast<const Table*>(sample_.get());
}

Result<std::shared_ptr<const Index>> EstimationEngine::SampleIndex(
    const IndexDescriptor& descriptor) {
  CFEST_RETURN_NOT_OK(EnsureSample());
  const std::string key = DescriptorKey(descriptor);

  std::shared_future<IndexEntry> future;
  bool builder = false;
  std::promise<IndexEntry> promise;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = indexes_.find(key);
    if (it != indexes_.end()) {
      future = it->second;
      ++stats_.index_cache_hits;
    } else {
      future = promise.get_future().share();
      indexes_.emplace(key, future);
      builder = true;
    }
  }

  if (builder) {
    IndexEntry entry;
    Result<Index> built =
        Index::Build(*sample_, descriptor, options_.base.build);
    if (built.ok()) {
      entry.index =
          std::make_shared<const Index>(std::move(built).ValueOrDie());
    } else {
      entry.status = built.status();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.index_builds;
    }
    promise.set_value(std::move(entry));
  }

  const IndexEntry& entry = future.get();
  CFEST_RETURN_NOT_OK(entry.status);
  return entry.index;
}

Result<SampleCFResult> EstimationEngine::EstimateCFWithMetric(
    const IndexDescriptor& descriptor, const CompressionScheme& scheme,
    SizeMetric metric) {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const Index> index,
                         SampleIndex(descriptor));
  CFEST_ASSIGN_OR_RETURN(CompressedIndex compressed,
                         index->Compress(scheme, options_.base.build));

  SampleCFResult result;
  result.cf = MeasureCF(index->stats(), compressed.stats(), metric);
  result.sample_rows = index->num_rows();
  result.sample_dictionary_entries = compressed.stats().dictionary_entries;
  result.sample_uncompressed = index->stats();
  result.sample_compressed = compressed.stats();
  return result;
}

Result<SampleCFResult> EstimationEngine::EstimateCF(
    const IndexDescriptor& descriptor, const CompressionScheme& scheme) {
  return EstimateCFWithMetric(descriptor, scheme, options_.base.metric);
}

Result<CompressedIndex> EstimationEngine::CompressOnSample(
    const IndexDescriptor& descriptor, const CompressionScheme& scheme) {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const Index> index,
                         SampleIndex(descriptor));
  return index->Compress(scheme, options_.base.build);
}

Result<SizedCandidate> EstimationEngine::Estimate(
    const CandidateConfiguration& candidate) {
  SizedCandidate sized;
  sized.config = candidate;
  CFEST_ASSIGN_OR_RETURN(
      sized.uncompressed_bytes,
      EstimateUncompressedIndexBytes(table_, candidate.index,
                                     options_.base.build.page_size));

  if (IsUncompressed(candidate.scheme)) {
    sized.estimated_cf = 1.0;
    sized.estimated_bytes = sized.uncompressed_bytes;
    return sized;
  }

  // Capacity planners size whole pages on disk, hence the page metric.
  CFEST_ASSIGN_OR_RETURN(
      SampleCFResult result,
      EstimateCFWithMetric(candidate.index, candidate.scheme,
                           SizeMetric::kPageBytes));
  sized.estimated_cf = result.cf.value;
  sized.estimated_bytes = static_cast<uint64_t>(std::llround(
      result.cf.value * static_cast<double>(sized.uncompressed_bytes)));
  return sized;
}

ThreadPool* EstimationEngine::Pool() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

Result<std::vector<SizedCandidate>> EstimationEngine::EstimateAll(
    std::span<const CandidateConfiguration> candidates) {
  std::vector<SizedCandidate> results(candidates.size());
  const bool serial = options_.num_threads == 1 || candidates.size() < 2;
  CFEST_RETURN_NOT_OK(StatusParallelFor(
      serial ? nullptr : Pool(), candidates.size(), [&](uint64_t i) {
        CFEST_ASSIGN_OR_RETURN(results[i], Estimate(candidates[i]));
        return Status::OK();
      }));
  return results;
}

EstimationEngine::CacheStats EstimationEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cfest
