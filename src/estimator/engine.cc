#include "estimator/engine.h"

#include <cmath>
#include <utility>

#include "storage/page.h"

namespace cfest {
namespace {

/// Width of one index row without building it.
Result<uint32_t> IndexRowWidth(const Table& table,
                               const IndexDescriptor& index) {
  uint32_t width = 0;
  std::vector<bool> used(table.schema().num_columns(), false);
  for (const std::string& name : index.key_columns) {
    CFEST_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
    if (used[idx]) {
      return Status::InvalidArgument("duplicate key column " + name);
    }
    used[idx] = true;
    width += table.schema().width(idx);
  }
  if (index.clustered) {
    for (size_t i = 0; i < table.schema().num_columns(); ++i) {
      if (!used[i]) width += table.schema().width(i);
    }
  } else {
    width += 8;  // __rid
  }
  return width;
}

/// Cache key for the sample index: schemes on the same key set share one
/// build, so the descriptor's cosmetic name is deliberately excluded.
std::string DescriptorKey(const IndexDescriptor& descriptor) {
  std::string key = descriptor.clustered ? "c" : "n";
  for (const std::string& col : descriptor.key_columns) {
    key += '\x1f';
    key += col;
  }
  return key;
}

bool IsUncompressed(const CompressionScheme& scheme) {
  return scheme.per_column.empty() &&
         scheme.default_type == CompressionType::kNone;
}

}  // namespace

Result<uint64_t> EstimateUncompressedIndexBytes(const Table& table,
                                                const IndexDescriptor& index,
                                                size_t page_size) {
  CFEST_ASSIGN_OR_RETURN(uint32_t width, IndexRowWidth(table, index));
  const uint64_t per_page =
      (page_size - kPageHeaderSize) / (width + kSlotSize);
  if (per_page == 0) {
    return Status::InvalidArgument("index row wider than a page");
  }
  const uint64_t n = table.num_rows();
  const uint64_t leaves = n == 0 ? 1 : (n + per_page - 1) / per_page;
  // Internal fan-out: separator key + child pointer per entry.
  uint32_t key_width = 0;
  for (const std::string& name : index.key_columns) {
    CFEST_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
    key_width += table.schema().width(idx);
  }
  const uint64_t fanout = std::max<uint64_t>(
      2, (page_size - kPageHeaderSize) / (key_width + 8 + kSlotSize));
  return (leaves + InternalPageCount(leaves, fanout)) * page_size;
}

EstimationEngine::EstimationEngine(const Table& table,
                                   EstimationEngineOptions options)
    : table_(table), options_(std::move(options)) {}

Status EstimationEngine::EnsureSample() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sample_ != nullptr) return Status::OK();

  std::unique_ptr<RowSampler> default_sampler;
  const RowSampler* sampler = options_.base.sampler;
  if (sampler == nullptr) {
    default_sampler = MakeUniformWithReplacementSampler();
    sampler = default_sampler.get();
  }
  Random own_rng(options_.seed);
  Random* rng = options_.rng != nullptr ? options_.rng : &own_rng;
  CFEST_ASSIGN_OR_RETURN(
      sample_, sampler->SampleView(table_, options_.base.fraction, rng));
  ++stats_.samples_drawn;
  return Status::OK();
}

Result<const Table*> EstimationEngine::SampleTable() {
  CFEST_RETURN_NOT_OK(EnsureSample());
  return static_cast<const Table*>(sample_.get());
}

Result<std::shared_ptr<const Index>> EstimationEngine::SampleIndex(
    const IndexDescriptor& descriptor) {
  CFEST_RETURN_NOT_OK(EnsureSample());
  const std::string key = DescriptorKey(descriptor);

  std::shared_future<IndexEntry> future;
  bool builder = false;
  std::promise<IndexEntry> promise;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = indexes_.find(key);
    if (it != indexes_.end()) {
      future = it->second;
      ++stats_.index_cache_hits;
    } else {
      future = promise.get_future().share();
      indexes_.emplace(key, future);
      builder = true;
    }
  }

  if (builder) {
    IndexEntry entry;
    Result<Index> built =
        Index::Build(*sample_, descriptor, options_.base.build);
    if (built.ok()) {
      entry.index =
          std::make_shared<const Index>(std::move(built).ValueOrDie());
    } else {
      entry.status = built.status();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.index_builds;
    }
    promise.set_value(std::move(entry));
  }

  const IndexEntry& entry = future.get();
  CFEST_RETURN_NOT_OK(entry.status);
  return entry.index;
}

Result<SampleCFResult> EstimationEngine::EstimateCFWithMetric(
    const IndexDescriptor& descriptor, const CompressionScheme& scheme,
    SizeMetric metric) {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const Index> index,
                         SampleIndex(descriptor));
  CFEST_ASSIGN_OR_RETURN(CompressedIndex compressed,
                         index->Compress(scheme, options_.base.build));

  SampleCFResult result;
  result.cf = MeasureCF(index->stats(), compressed.stats(), metric);
  result.sample_rows = index->num_rows();
  result.sample_dictionary_entries = compressed.stats().dictionary_entries;
  result.sample_uncompressed = index->stats();
  result.sample_compressed = compressed.stats();
  return result;
}

Result<SampleCFResult> EstimationEngine::EstimateCF(
    const IndexDescriptor& descriptor, const CompressionScheme& scheme) {
  return EstimateCFWithMetric(descriptor, scheme, options_.base.metric);
}

Result<CompressedIndex> EstimationEngine::CompressOnSample(
    const IndexDescriptor& descriptor, const CompressionScheme& scheme) {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const Index> index,
                         SampleIndex(descriptor));
  return index->Compress(scheme, options_.base.build);
}

Result<SizedCandidate> EstimationEngine::Estimate(
    const CandidateConfiguration& candidate) {
  SizedCandidate sized;
  sized.config = candidate;
  CFEST_ASSIGN_OR_RETURN(
      sized.uncompressed_bytes,
      EstimateUncompressedIndexBytes(table_, candidate.index,
                                     options_.base.build.page_size));

  if (IsUncompressed(candidate.scheme)) {
    sized.estimated_cf = 1.0;
    sized.estimated_bytes = sized.uncompressed_bytes;
    return sized;
  }

  // Capacity planners size whole pages on disk, hence the page metric.
  CFEST_ASSIGN_OR_RETURN(
      SampleCFResult result,
      EstimateCFWithMetric(candidate.index, candidate.scheme,
                           SizeMetric::kPageBytes));
  sized.estimated_cf = result.cf.value;
  sized.estimated_bytes = static_cast<uint64_t>(std::llround(
      result.cf.value * static_cast<double>(sized.uncompressed_bytes)));
  return sized;
}

ThreadPool* EstimationEngine::Pool() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

Result<std::vector<SizedCandidate>> EstimationEngine::EstimateAll(
    std::span<const CandidateConfiguration> candidates) {
  std::vector<SizedCandidate> results(candidates.size());
  std::vector<Status> statuses(candidates.size(), Status::OK());
  auto size_one = [&](uint64_t i) {
    Result<SizedCandidate> sized = Estimate(candidates[i]);
    if (sized.ok()) {
      results[i] = std::move(sized).ValueOrDie();
    } else {
      statuses[i] = sized.status();
    }
  };

  const bool serial = options_.num_threads == 1 || candidates.size() < 2;
  if (serial) {
    for (uint64_t i = 0; i < candidates.size(); ++i) size_one(i);
  } else {
    Pool()->ParallelFor(candidates.size(), size_one);
  }

  for (const Status& status : statuses) {
    CFEST_RETURN_NOT_OK(status);
  }
  return results;
}

EstimationEngine::CacheStats EstimationEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cfest
