#include "estimator/engine.h"

#include <cmath>
#include <utility>

#include "common/trace.h"
#include "storage/page.h"

namespace cfest {
namespace {

/// Width of one index row without building it.
Result<uint32_t> IndexRowWidth(const Table& table,
                               const IndexDescriptor& index) {
  uint32_t width = 0;
  std::vector<bool> used(table.schema().num_columns(), false);
  for (const std::string& name : index.key_columns) {
    CFEST_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
    if (used[idx]) {
      return Status::InvalidArgument("duplicate key column " + name);
    }
    used[idx] = true;
    width += table.schema().width(idx);
  }
  if (index.clustered) {
    for (size_t i = 0; i < table.schema().num_columns(); ++i) {
      if (!used[i]) width += table.schema().width(i);
    }
  } else {
    width += 8;  // __rid
  }
  return width;
}

}  // namespace

std::string SampleIndexCacheKey(const IndexDescriptor& descriptor) {
  std::string key = descriptor.clustered ? "c" : "n";
  for (const std::string& col : descriptor.key_columns) {
    key += '\x1f';
    key += col;
  }
  return key;
}

bool IsUncompressedScheme(const CompressionScheme& scheme) {
  return scheme.per_column.empty() &&
         scheme.default_type == CompressionType::kNone;
}

Result<uint64_t> EstimateUncompressedIndexBytes(
    const Table& table, const IndexDescriptor& index, size_t page_size,
    std::optional<uint64_t> num_rows_override) {
  CFEST_ASSIGN_OR_RETURN(uint32_t width, IndexRowWidth(table, index));
  const uint64_t per_page =
      (page_size - kPageHeaderSize) / (width + kSlotSize);
  if (per_page == 0) {
    return Status::InvalidArgument("index row wider than a page");
  }
  const uint64_t n =
      num_rows_override.has_value() ? *num_rows_override : table.num_rows();
  const uint64_t leaves = n == 0 ? 1 : (n + per_page - 1) / per_page;
  // Internal fan-out: separator key + child pointer per entry.
  uint32_t key_width = 0;
  for (const std::string& name : index.key_columns) {
    CFEST_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
    key_width += table.schema().width(idx);
  }
  const uint64_t fanout = std::max<uint64_t>(
      2, (page_size - kPageHeaderSize) / (key_width + 8 + kSlotSize));
  return (leaves + InternalPageCount(leaves, fanout)) * page_size;
}

EstimationEngine::EstimationEngine(const Table& table,
                                   EstimationEngineOptions options)
    : table_(table),
      options_(std::move(options)),
      counters_(std::make_shared<EpochCounters>(options_.table_name)) {}

std::shared_ptr<SampleEpoch> EstimationEngine::MakeEpochLocked(
    std::shared_ptr<const TableView> view, uint64_t table_rows) {
  return std::shared_ptr<SampleEpoch>(
      new SampleEpoch(std::move(view), version_, table_rows, counters_));
}

void EstimationEngine::PublishLocked(std::shared_ptr<SampleEpoch> epoch) {
  sample_ = epoch->sample_view();
  epoch_.store(std::shared_ptr<const SampleEpoch>(std::move(epoch)),
               std::memory_order_release);
}

Status EstimationEngine::DrawInitialLocked() {
  trace::Span span("engine.draw_sample");
  if (options_.maintain_reservoir) {
    if (options_.rng != nullptr) {
      return Status::InvalidArgument(
          "maintain_reservoir needs an engine-owned RNG stream (seed), not "
          "an external rng");
    }
    const uint64_t n = table_.num_rows();
    if (n == 0) {
      return Status::InvalidArgument("cannot sample an empty table");
    }
    uint64_t capacity = options_.reservoir_capacity;
    if (capacity == 0) {
      CFEST_RETURN_NOT_OK(CheckFraction(options_.base.fraction));
      capacity = std::max<uint64_t>(
          1, static_cast<uint64_t>(
                 std::llround(options_.base.fraction * static_cast<double>(n))));
    }
    reservoir_rng_.Seed(options_.seed);
    reservoir_core_.emplace(capacity);
    reservoir_ids_.clear();
    OfferIdRange(&*reservoir_core_, &reservoir_rng_, 0, n, &reservoir_ids_);
    CFEST_ASSIGN_OR_RETURN(
        std::unique_ptr<TableView> view,
        TableView::Make(table_, std::vector<RowId>(reservoir_ids_)));
    counters_->samples_drawn.Increment();
    ++version_;
    PublishLocked(MakeEpochLocked(std::move(view), n));
    return Status::OK();
  }

  std::unique_ptr<RowSampler> default_sampler;
  const RowSampler* sampler = options_.base.sampler;
  if (sampler == nullptr) {
    default_sampler = MakeUniformWithReplacementSampler();
    sampler = default_sampler.get();
  }
  draw_rng_.Seed(options_.seed);
  Random* rng = options_.rng != nullptr ? options_.rng : &draw_rng_;
  const uint64_t n = table_.num_rows();
  CFEST_ASSIGN_OR_RETURN(
      std::unique_ptr<TableView> view,
      sampler->SampleView(table_, options_.base.fraction, rng));
  draw_table_rows_ = n;
  counters_->samples_drawn.Increment();
  ++version_;
  PublishLocked(MakeEpochLocked(std::move(view), n));
  return Status::OK();
}

Result<std::shared_ptr<const SampleEpoch>> EstimationEngine::PinEpoch() {
  // Steady state: one atomic load, no mutex. The shared_ptr refcount is
  // the pin — the epoch (sample view, index cache, sizing snapshot) stays
  // valid however many successors are published while we hold it.
  std::shared_ptr<const SampleEpoch> epoch =
      epoch_.load(std::memory_order_acquire);
  if (epoch != nullptr) {
    counters_->lock_free_pins.Increment();
    return epoch;
  }
  MutexLock lock(mu_);
  epoch = epoch_.load(std::memory_order_acquire);
  if (epoch == nullptr) {
    CFEST_RETURN_NOT_OK(DrawInitialLocked());
    epoch = epoch_.load(std::memory_order_acquire);
  }
  counters_->locked_pins.Increment();
  return epoch;
}

Status EstimationEngine::NotifyAppend(RowRange range) {
  MutexLock lock(mu_);
  if (!options_.maintain_reservoir) {
    return Status::InvalidArgument(
        "NotifyAppend requires maintain_reservoir");
  }
  if (range.begin > range.end || range.end > table_.num_rows()) {
    return Status::OutOfRange(
        "append range [" + std::to_string(range.begin) + ", " +
        std::to_string(range.end) + ") does not address appended rows of a " +
        std::to_string(table_.num_rows()) + "-row table");
  }
  if (range.empty()) return Status::OK();
  // Not drawn yet: the eventual draw scans the whole (grown) table.
  std::shared_ptr<const SampleEpoch> current =
      epoch_.load(std::memory_order_acquire);
  if (current == nullptr) return Status::OK();
  if (range.begin != reservoir_core_->items_seen()) {
    return Status::InvalidArgument(
        "append range begins at row " + std::to_string(range.begin) +
        " but the reservoir has consumed rows up to " +
        std::to_string(reservoir_core_->items_seen()) +
        " (ranges must arrive contiguously)");
  }

  const bool changed = OfferIdRange(&*reservoir_core_, &reservoir_rng_,
                                    range.begin, range.end, &reservoir_ids_);
  if (!changed) {
    // Every appended row was rejected: the sample is unchanged, so the
    // successor epoch keeps the version AND the predecessor's whole index
    // cache (same snapshot map — in-flight builds included) and only the
    // table-size snapshot advances. In-flight readers are untouched.
    std::shared_ptr<SampleEpoch> next =
        MakeEpochLocked(sample_, reservoir_core_->items_seen());
    next->indexes_.store(
        current->indexes_.load(std::memory_order_acquire),
        std::memory_order_relaxed);
    PublishLocked(std::move(next));
    return Status::OK();
  }

  // The sample contents moved: publish a successor epoch with a fresh view
  // and an empty index cache (every cached build is stale — an index is a
  // function of every sample row). Readers pinned to the predecessor keep
  // estimating against it unharmed.
  CFEST_ASSIGN_OR_RETURN(
      std::unique_ptr<TableView> view,
      TableView::Make(table_, std::vector<RowId>(reservoir_ids_)));
  counters_->invalidations.Add(current->CachedIndexCount());
  ++version_;
  PublishLocked(MakeEpochLocked(std::move(view),
                                reservoir_core_->items_seen()));
  return Status::OK();
}

Result<const Table*> EstimationEngine::SampleTable() {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const SampleEpoch> epoch,
                         PinEpoch());
  return static_cast<const Table*>(&epoch->sample());
}

uint64_t EstimationEngine::sample_rows() const {
  std::shared_ptr<const SampleEpoch> epoch =
      epoch_.load(std::memory_order_acquire);
  return epoch == nullptr ? 0 : epoch->sample_rows();
}

Result<std::shared_ptr<const SampleEpoch>> EstimationEngine::GrowSampleToEpoch(
    uint64_t target_rows) {
  CFEST_RETURN_NOT_OK(PinEpoch().status());
  trace::Span span("engine.grow_sample");
  MutexLock lock(mu_);
  std::shared_ptr<const SampleEpoch> current =
      epoch_.load(std::memory_order_acquire);
  const uint64_t current_rows = sample_->num_rows();
  // Fraction is capped at 1.0, so the largest comparable fixed-f draw is
  // one id per consumed table row; clamp to the draw-stream snapshot
  // instead of overshooting that contract (the live table size may be
  // racing ahead under concurrent appends).
  const uint64_t table_limit = options_.maintain_reservoir
                                   ? reservoir_core_->items_seen()
                                   : draw_table_rows_;
  const uint64_t target = std::min(target_rows, table_limit);
  if (target <= current_rows) return current;

  if (options_.maintain_reservoir) {
    // Capacity growth is not stream-resumable (a larger reservoir fills
    // longer before its first RNG draw), so replay the consumed row-id
    // stream from the seed at the new capacity: O(items seen) RNG work,
    // no row bytes touched, and the result *is* the fresh draw at the new
    // capacity — NotifyAppend keeps resuming the replayed stream.
    const uint64_t items_seen = reservoir_core_->items_seen();
    reservoir_rng_.Seed(options_.seed);
    reservoir_core_.emplace(target);
    reservoir_ids_.clear();
    OfferIdRange(&*reservoir_core_, &reservoir_rng_, 0, items_seen,
                 &reservoir_ids_);
    CFEST_ASSIGN_OR_RETURN(
        std::unique_ptr<TableView> view,
        TableView::Make(table_, std::vector<RowId>(reservoir_ids_)));
    counters_->invalidations.Add(current->CachedIndexCount());
    ++version_;
    PublishLocked(MakeEpochLocked(std::move(view), items_seen));
    return epoch_.load(std::memory_order_acquire);
  }

  if (options_.rng != nullptr) {
    return Status::InvalidArgument(
        "GrowSample needs an engine-owned RNG stream (seed), not an "
        "external rng");
  }
  if (options_.base.sampler != nullptr) {
    return Status::InvalidArgument(
        "GrowSample requires the default uniform-with-replacement sampler "
        "(growth resumes its draw stream)");
  }

  // Resume the seed's with-replacement draw stream: ids [current, target)
  // are exactly the ids a fresh draw of `target` rows would append after
  // the first `current`, so the grown sample equals a fixed-fraction draw
  // at target / num_rows under the same seed.
  std::vector<RowId> delta_ids;
  delta_ids.reserve(static_cast<size_t>(target - current_rows));
  for (uint64_t i = current_rows; i < target; ++i) {
    delta_ids.push_back(draw_rng_.NextBounded(draw_table_rows_));
  }
  std::vector<RowId> grown_ids = sample_->row_ids();
  grown_ids.insert(grown_ids.end(), delta_ids.begin(), delta_ids.end());
  CFEST_ASSIGN_OR_RETURN(std::unique_ptr<TableView> grown,
                         TableView::Make(table_, std::move(grown_ids)));
  CFEST_ASSIGN_OR_RETURN(std::unique_ptr<TableView> delta_view,
                         TableView::Make(table_, std::move(delta_ids)));

  ++version_;
  std::shared_ptr<SampleEpoch> next =
      MakeEpochLocked(std::move(grown), draw_table_rows_);

  // Growth is additive (the old sample is a prefix of the grown one), so
  // every completed sorted build of the predecessor stays a valid sorted
  // run — merge the delta rows in and seed the successor epoch instead of
  // rebuilding. Delta rows occupy view positions [current, target), which
  // is what their __rid values must be. In-flight builds are skipped (the
  // successor rebuilds those keys on demand); failed builds retry anyway.
  for (const auto& [key, index] : current->ReadyIndexes()) {
    Result<Index> merged =
        index->ExtendedWith(*delta_view, current_rows, options_.base.build);
    if (!merged.ok()) continue;  // drop: the next request rebuilds
    next->SeedIndex(key, std::make_shared<const Index>(
                             std::move(merged).ValueOrDie()));
    counters_->index_extensions.Increment();
  }
  PublishLocked(std::move(next));
  return epoch_.load(std::memory_order_acquire);
}

Result<uint64_t> EstimationEngine::GrowSample(uint64_t target_rows) {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const SampleEpoch> epoch,
                         GrowSampleToEpoch(target_rows));
  return epoch->sample_rows();
}

Result<std::shared_ptr<const Index>> EstimationEngine::SampleIndexAt(
    const SampleEpoch& epoch, const IndexDescriptor& descriptor) const {
  return epoch.SampleIndex(descriptor, options_.base.build);
}

Result<std::shared_ptr<const Index>> EstimationEngine::SampleIndex(
    const IndexDescriptor& descriptor) {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const SampleEpoch> epoch,
                         PinEpoch());
  return SampleIndexAt(*epoch, descriptor);
}

Result<SampleCFResult> EstimationEngine::EstimateCFWithMetricAt(
    const SampleEpoch& epoch, const IndexDescriptor& descriptor,
    const CompressionScheme& scheme, SizeMetric metric) const {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const Index> index,
                         SampleIndexAt(epoch, descriptor));
  trace::Span span("engine.compress");
  CFEST_ASSIGN_OR_RETURN(CompressedIndex compressed,
                         index->Compress(scheme, options_.base.build));

  SampleCFResult result;
  result.cf = MeasureCF(index->stats(), compressed.stats(), metric);
  result.sample_rows = index->num_rows();
  result.sample_dictionary_entries = compressed.stats().dictionary_entries;
  result.sample_uncompressed = index->stats();
  result.sample_compressed = compressed.stats();
  return result;
}

Result<SampleCFResult> EstimationEngine::EstimateCFAt(
    const SampleEpoch& epoch, const IndexDescriptor& descriptor,
    const CompressionScheme& scheme) const {
  return EstimateCFWithMetricAt(epoch, descriptor, scheme,
                                options_.base.metric);
}

Result<SampleCFResult> EstimationEngine::EstimateCF(
    const IndexDescriptor& descriptor, const CompressionScheme& scheme) {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const SampleEpoch> epoch,
                         PinEpoch());
  return EstimateCFAt(*epoch, descriptor, scheme);
}

Result<CompressedIndex> EstimationEngine::CompressOnSampleAt(
    const SampleEpoch& epoch, const IndexDescriptor& descriptor,
    const CompressionScheme& scheme) const {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const Index> index,
                         SampleIndexAt(epoch, descriptor));
  return index->Compress(scheme, options_.base.build);
}

Result<CompressedIndex> EstimationEngine::CompressOnSample(
    const IndexDescriptor& descriptor, const CompressionScheme& scheme) {
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const SampleEpoch> epoch,
                         PinEpoch());
  return CompressOnSampleAt(*epoch, descriptor, scheme);
}

Result<SizedCandidate> EstimationEngine::EstimateAt(
    const SampleEpoch& epoch, const CandidateConfiguration& candidate) const {
  trace::Span span("engine.estimate");
  // Per-(table, scheme-family) traffic attribution: the labeled child was
  // resolved when the counter block was built, so this is a plain array
  // index plus one sharded add.
  const size_t scheme = static_cast<size_t>(candidate.scheme.default_type);
  if (scheme < counters_->estimates_by_scheme.size()) {
    counters_->estimates_by_scheme[scheme].Increment();
  }
  SizedCandidate sized;
  sized.config = candidate;
  CFEST_ASSIGN_OR_RETURN(
      sized.uncompressed_bytes,
      EstimateUncompressedIndexBytes(table_, candidate.index,
                                     options_.base.build.page_size,
                                     epoch.table_rows()));

  if (IsUncompressedScheme(candidate.scheme)) {
    sized.estimated_cf = 1.0;
    sized.estimated_bytes = sized.uncompressed_bytes;
    return sized;
  }

  // Capacity planners size whole pages on disk, hence the page metric.
  CFEST_ASSIGN_OR_RETURN(
      SampleCFResult result,
      EstimateCFWithMetricAt(epoch, candidate.index, candidate.scheme,
                             SizeMetric::kPageBytes));
  sized.estimated_cf = result.cf.value;
  sized.estimated_bytes = static_cast<uint64_t>(std::llround(
      result.cf.value * static_cast<double>(sized.uncompressed_bytes)));
  sized.sample_rows = result.sample_rows;
  return sized;
}

Result<SizedCandidate> EstimationEngine::EstimateExact(
    const CandidateConfiguration& candidate) const {
  if (!IsUncompressedScheme(candidate.scheme)) {
    return Status::InvalidArgument(
        "EstimateExact requires an uncompressed scheme");
  }
  SizedCandidate sized;
  sized.config = candidate;
  CFEST_ASSIGN_OR_RETURN(
      sized.uncompressed_bytes,
      EstimateUncompressedIndexBytes(table_, candidate.index,
                                     options_.base.build.page_size));
  sized.estimated_cf = 1.0;
  sized.estimated_bytes = sized.uncompressed_bytes;
  return sized;
}

Result<SizedCandidate> EstimationEngine::Estimate(
    const CandidateConfiguration& candidate) {
  if (IsUncompressedScheme(candidate.scheme)) return EstimateExact(candidate);
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const SampleEpoch> epoch,
                         PinEpoch());
  return EstimateAt(*epoch, candidate);
}

ThreadPool* EstimationEngine::Pool() {
  MutexLock lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

Result<std::vector<SizedCandidate>> EstimationEngine::EstimateAll(
    std::span<const CandidateConfiguration> candidates) {
  // One pin for the whole batch: every candidate is sized against the same
  // epoch, so the batch is internally consistent even while appends and
  // refreshes stream in concurrently.
  CFEST_ASSIGN_OR_RETURN(std::shared_ptr<const SampleEpoch> epoch,
                         PinEpoch());
  std::vector<SizedCandidate> results(candidates.size());
  const bool serial = options_.num_threads == 1 || candidates.size() < 2;
  CFEST_RETURN_NOT_OK(StatusParallelFor(
      serial ? nullptr : Pool(), candidates.size(), [&](uint64_t i) {
        CFEST_ASSIGN_OR_RETURN(results[i], EstimateAt(*epoch, candidates[i]));
        return Status::OK();
      }));
  return results;
}

EstimationEngine::CacheStats EstimationEngine::cache_stats() const {
  CacheStats stats;
  // Reads the same metrics::Counter objects the registry aggregates, so
  // this compat struct and a MetricRegistry snapshot agree bit for bit.
  stats.samples_drawn = counters_->samples_drawn.Value();
  stats.index_builds = counters_->index_builds.Value();
  stats.index_cache_hits = counters_->index_cache_hits.Value();
  stats.index_extensions = counters_->index_extensions.Value();
  stats.invalidations = counters_->invalidations.Value();
  stats.lock_free_pins = counters_->lock_free_pins.Value();
  stats.locked_pins = counters_->locked_pins.Value();
  stats.epochs_published = counters_->epochs_published.Value();
  stats.epochs_retired = counters_->epochs_retired.Value();
  std::shared_ptr<const SampleEpoch> epoch =
      epoch_.load(std::memory_order_acquire);
  stats.sample_version = epoch == nullptr ? 0 : epoch->version();
  return stats;
}

}  // namespace cfest
