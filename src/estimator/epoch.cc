#include "estimator/epoch.h"

#include <chrono>

#include "common/trace.h"
#include "estimator/engine.h"


namespace cfest {

SampleEpoch::SampleEpoch(std::shared_ptr<const TableView> sample,
                         uint64_t version, uint64_t table_rows,
                         std::shared_ptr<EpochCounters> counters)
    : sample_(std::move(sample)),
      version_(version),
      table_rows_(table_rows),
      counters_(std::move(counters)),
      indexes_(std::make_shared<const IndexMap>()) {
  counters_->epochs_published.Increment();
}

SampleEpoch::~SampleEpoch() {
  counters_->epochs_retired.Increment();
}

Result<std::shared_ptr<const Index>> SampleEpoch::SampleIndex(
    const IndexDescriptor& descriptor, const IndexBuildOptions& build) const {
  const std::string key = SampleIndexCacheKey(descriptor);

  std::shared_future<IndexEntry> future;
  bool builder = false;
  std::promise<IndexEntry> promise;

  // Lock-free hit path: one acquire load of the immutable snapshot map.
  std::shared_ptr<const IndexMap> snapshot =
      indexes_.load(std::memory_order_acquire);
  auto hit = snapshot->find(key);
  if (hit != snapshot->end()) {
    future = hit->second;
    counters_->index_cache_hits.Increment();
  } else {
    // Miss: register the build under the epoch-local mutex so concurrent
    // missers for the same key share one build. The lock guards only the
    // copy-on-write insert — the build itself runs outside it.
    MutexLock lock(build_mu_);
    snapshot = indexes_.load(std::memory_order_acquire);
    auto raced = snapshot->find(key);
    if (raced != snapshot->end()) {
      future = raced->second;
      counters_->index_cache_hits.Increment();
    } else {
      future = promise.get_future().share();
      auto next = std::make_shared<IndexMap>(*snapshot);
      next->emplace(key, future);
      indexes_.store(std::shared_ptr<const IndexMap>(std::move(next)),
                     std::memory_order_release);
      builder = true;
    }
  }

  if (builder) {
    trace::Span span("engine.index_build");
    IndexEntry entry;
    Result<Index> built = Index::Build(*sample_, descriptor, build);
    if (built.ok()) {
      entry.index =
          std::make_shared<const Index>(std::move(built).ValueOrDie());
    } else {
      entry.status = built.status();
    }
    promise.set_value(std::move(entry));
    counters_->index_builds.Increment();
  }

  const IndexEntry& entry = future.get();
  CFEST_RETURN_NOT_OK(entry.status);
  return entry.index;
}

void SampleEpoch::SeedIndex(const std::string& key,
                            std::shared_ptr<const Index> index) {
  IndexEntry entry;
  entry.index = std::move(index);
  std::promise<IndexEntry> promise;
  promise.set_value(std::move(entry));
  auto current = indexes_.load(std::memory_order_relaxed);
  auto next = std::make_shared<IndexMap>(*current);
  next->insert_or_assign(key, promise.get_future().share());
  indexes_.store(std::shared_ptr<const IndexMap>(std::move(next)),
                 std::memory_order_release);
}

std::vector<std::pair<std::string, std::shared_ptr<const Index>>>
SampleEpoch::ReadyIndexes() const {
  std::shared_ptr<const IndexMap> snapshot =
      indexes_.load(std::memory_order_acquire);
  std::vector<std::pair<std::string, std::shared_ptr<const Index>>> ready;
  ready.reserve(snapshot->size());
  for (const auto& [key, future] : *snapshot) {
    if (future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      continue;  // in-flight build: the successor rebuilds on demand
    }
    const IndexEntry& entry = future.get();
    if (!entry.status.ok() || entry.index == nullptr) continue;
    ready.emplace_back(key, entry.index);
  }
  return ready;
}

uint64_t SampleEpoch::CachedIndexCount() const {
  return indexes_.load(std::memory_order_acquire)->size();
}

}  // namespace cfest
