// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Single-pass streaming SampleCF: maintain a fixed-capacity reservoir
// (Vitter's Algorithm R, the paper's ref [5]) while rows stream by — e.g.
// during a bulk load or table scan — and answer the compression-fraction
// estimate at any point without ever materializing the full table. This is
// how an engine can keep a compression estimate fresh as data arrives.

#ifndef CFEST_ESTIMATOR_STREAMING_H_
#define CFEST_ESTIMATOR_STREAMING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "estimator/sample_cf.h"
#include "sampling/reservoir.h"

namespace cfest {

/// \brief Incrementally samples a row stream and estimates CF on demand.
class StreamingSampleCF {
 public:
  struct Options {
    /// Reservoir capacity r: the sample the estimate is computed from.
    uint64_t sample_capacity = 10000;
    SizeMetric metric = SizeMetric::kDataBytes;
    IndexBuildOptions build = {kDefaultPageSize, /*keep_pages=*/false};
    uint64_t seed = 42;
  };

  /// `schema` describes the incoming encoded rows.
  static Result<StreamingSampleCF> Make(const Schema& schema,
                                        const IndexDescriptor& descriptor,
                                        const CompressionScheme& scheme,
                                        const Options& options);

  /// Offers one encoded row (exactly schema.row_width() bytes) to the
  /// reservoir.
  Status Add(Slice encoded_row);

  uint64_t rows_seen() const { return core_.items_seen(); }
  uint64_t reservoir_size() const { return reservoir_.size(); }

  /// Computes the SampleCF estimate from the current reservoir (builds and
  /// compresses the sample index; callable repeatedly as the stream grows).
  Result<SampleCFResult> Estimate() const;

 private:
  StreamingSampleCF(Schema schema, IndexDescriptor descriptor,
                    CompressionScheme scheme, const Options& options)
      : schema_(std::move(schema)),
        descriptor_(std::move(descriptor)),
        scheme_(std::move(scheme)),
        options_(options),
        rng_(options.seed),
        core_(options.sample_capacity) {}

  Schema schema_;
  IndexDescriptor descriptor_;
  CompressionScheme scheme_;
  Options options_;
  Random rng_;
  /// Shared Algorithm-R slot core (sampling/reservoir.h); `reservoir_` is
  /// the slot storage it assigns into.
  ReservoirSampler core_;
  std::vector<std::string> reservoir_;
};

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_STREAMING_H_
