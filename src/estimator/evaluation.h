// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Monte-Carlo evaluation of SampleCF against exact ground truth: the engine
// behind every accuracy experiment in bench/. Runs m independent trials,
// reports bias, spread, and the paper's expected ratio error.

#ifndef CFEST_ESTIMATOR_EVALUATION_H_
#define CFEST_ESTIMATOR_EVALUATION_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "estimator/sample_cf.h"

namespace cfest {

/// \brief Monte-Carlo evaluation parameters.
struct EvaluationOptions {
  double fraction = 0.01;
  uint32_t trials = 100;
  uint64_t seed = 42;
  const RowSampler* sampler = nullptr;  // null = uniform with replacement
  SizeMetric metric = SizeMetric::kDataBytes;
  IndexBuildOptions build = {kDefaultPageSize, /*keep_pages=*/false};
};

/// \brief Aggregated accuracy of SampleCF over the trials.
struct EvaluationResult {
  CompressionFraction truth;
  /// Per-trial estimates CF'.
  std::vector<double> estimates;
  Summary estimate_summary;
  /// mean(CF') - CF: zero for unbiased estimators (Theorem 1).
  double bias = 0.0;
  /// E[max(CF/CF', CF'/CF)] over trials — the paper's expected ratio error.
  double mean_ratio_error = 1.0;
  double max_ratio_error = 1.0;
  /// Theorem 1's bound 1/(2 sqrt(r)) on the stddev (NS; informational
  /// otherwise).
  double theorem1_bound = 0.0;
  double mean_sample_rows = 0.0;
};

/// Computes ground truth once, then runs `trials` SampleCF draws.
Result<EvaluationResult> EvaluateSampleCF(const Table& table,
                                          const IndexDescriptor& descriptor,
                                          const CompressionScheme& scheme,
                                          const EvaluationOptions& options);

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_EVALUATION_H_
