// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Per-column compression-scheme recommendation from a single sample.
//
// SampleCF answers "how small would this index be under scheme C?"; the
// natural next question a physical-design tool asks is "which C should each
// column use?". This module draws one sample, builds the sample index once,
// compresses it under every candidate algorithm, and picks the smallest
// estimate per column — the sampling-based analogue of how SQL Server's
// page-compression estimator is used in practice.

#ifndef CFEST_ESTIMATOR_SCHEME_ADVISOR_H_
#define CFEST_ESTIMATOR_SCHEME_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "estimator/engine.h"
#include "estimator/sample_cf.h"

namespace cfest {

/// \brief One column's recommendation.
struct ColumnRecommendation {
  std::string column_name;
  CompressionType best = CompressionType::kNone;
  /// Estimated per-column CF under the winner (column bytes / r*width).
  double estimated_cf = 1.0;
  /// Estimated CF for every candidate that applies to this column, in
  /// candidate order (quiet NaN for inapplicable candidates).
  std::vector<double> candidate_cf;
};

/// \brief The full recommendation for an index.
struct SchemeRecommendation {
  /// Per-column winners assembled into a scheme usable with Index::Compress.
  CompressionScheme scheme;
  std::vector<ColumnRecommendation> columns;
  /// Estimated whole-index CF under the recommended scheme.
  double estimated_cf = 1.0;
  /// Rows in the sample the recommendation was computed from.
  uint64_t sample_rows = 0;
};

/// Recommends a per-column scheme for the given index using one sample drawn
/// per `options`. `candidates` defaults (when empty) to every implemented
/// algorithm; candidates that do not apply to a column (e.g. delta on a
/// string) are skipped for that column. kNone is always considered, so a
/// recommendation never inflates a column.
Result<SchemeRecommendation> RecommendScheme(
    const Table& table, const IndexDescriptor& descriptor,
    const std::vector<CompressionType>& candidates,
    const SampleCFOptions& options, Random* rng);

/// Engine-backed variant: the sample and the sorted sample index come from
/// the engine's caches, so ranking all schemes for an index — or for many
/// indexes of the same table — shares one sample and one build per key set
/// with every other estimate the engine serves.
Result<SchemeRecommendation> RecommendScheme(
    EstimationEngine& engine, const IndexDescriptor& descriptor,
    const std::vector<CompressionType>& candidates = {});

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_SCHEME_ADVISOR_H_
