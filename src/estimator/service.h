// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// CatalogEstimationService — cross-table batched what-if sizing.
//
// PR 1's EstimationEngine amortizes one sample across many candidates, but
// only within a single table. A real advisor sizes a candidate set spanning
// a whole schema ("lineitem" *and* "orders") against tables that keep
// growing. The service lifts the engine to catalog level:
//
//   - One lazily created EstimationEngine per catalog table, each seeded by
//     SeedForTable(name) so results are reproducible per table regardless
//     of which candidates arrive first.
//   - EstimateAll groups candidates by table_name and fans the groups'
//     candidates across one shared ThreadPool (per-table engines are built
//     with num_threads = 1 — they never spin nested pools). Results are
//     positionally aligned with the input and bit-identical to running each
//     table's group through its own per-table EstimateAll under the same
//     per-table seeds.
//   - NotifyAppend(table, range) forwards a growth delta to exactly that
//     table's engine (reservoir refresh); every other table's cached
//     samples and indexes are untouched.
//
// The service borrows the catalog; the catalog (and its tables) must
// outlive the service.

#ifndef CFEST_ESTIMATOR_SERVICE_H_
#define CFEST_ESTIMATOR_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "estimator/engine.h"
#include "storage/catalog.h"

namespace cfest {

/// \brief Configuration of a CatalogEstimationService.
struct CatalogEstimationServiceOptions {
  /// Sampling fraction, metric, and index-build options shared by every
  /// per-table engine. base.sampler applies to non-reservoir engines.
  SampleCFOptions base;
  /// Default per-table seed; SeedForTable(name) returns this unless
  /// overridden in table_seeds.
  uint64_t seed = 42;
  /// Per-table seed overrides (table name -> seed).
  std::map<std::string, uint64_t> table_seeds;
  /// Workers of the shared cross-table pool. 0 = hardware concurrency;
  /// 1 = serial.
  uint32_t num_threads = 0;
  /// Create per-table engines in reservoir-maintenance mode so
  /// NotifyAppend can refresh them incrementally.
  bool maintain_reservoirs = false;
  /// Reservoir capacity per engine when maintain_reservoirs is set
  /// (0 = derive from base.fraction at each table's first draw).
  uint64_t reservoir_capacity = 0;
};

/// \brief Catalog-level batched CF estimation: one engine per table, one
/// fan-out per workload.
///
/// Estimate paths are thread-safe. NotifyAppend requires the same quiescing
/// as EstimationEngine::NotifyAppend: no in-flight estimates for that table.
class CatalogEstimationService {
 public:
  explicit CatalogEstimationService(const Catalog& catalog,
                                    CatalogEstimationServiceOptions options = {});

  const Catalog& catalog() const { return catalog_; }
  const CatalogEstimationServiceOptions& options() const { return options_; }

  /// The seed the table's engine draws from: table_seeds override or the
  /// default seed.
  uint64_t SeedForTable(const std::string& table_name) const;

  /// The table's engine, created on first use (NotFound if the table is not
  /// in the catalog). The pointer is stable while the table stays
  /// registered: if the table is removed from the catalog (or removed and
  /// re-added), the cached engine is dropped and lookups fail or rebuild
  /// against the new table — a removed table's engine is never served.
  Result<EstimationEngine*> Engine(const std::string& table_name);

  /// What-if sizes a mixed-table batch: candidates are grouped by
  /// table_name, every group's table engine is resolved (creating engines
  /// as needed), and all candidates fan out across the shared pool.
  /// Results are positionally aligned with `candidates` and bit-identical
  /// to per-table EstimateAll under the same per-table seeds.
  Result<std::vector<SizedCandidate>> EstimateAll(
      std::span<const CandidateConfiguration> candidates);

  /// The service's shared cross-table worker pool (created on first use).
  /// Exposed so layered consumers — the adaptive estimation flow in
  /// estimator/adaptive.h — fan their per-round candidate work across the
  /// same workers instead of spinning a second pool.
  ThreadPool* shared_pool() { return Pool(); }

  /// Forwards an append delta to the named table's engine (see
  /// EstimationEngine::NotifyAppend). A table whose engine has not been
  /// created yet is a no-op — its eventual first draw sees the grown
  /// table. Requires maintain_reservoirs for created engines.
  Status NotifyAppend(const std::string& table_name, RowRange range);

  /// \brief Aggregate work-avoidance counters across every engine created
  /// so far (sums of the per-engine CacheStats; per-engine sample versions
  /// are reduced to an additive refresh count).
  struct Stats {
    uint64_t engines_created = 0;
    uint64_t samples_drawn = 0;
    uint64_t index_builds = 0;
    uint64_t index_cache_hits = 0;
    uint64_t invalidations = 0;
    /// Effective reservoir refreshes (NotifyAppend calls that changed a
    /// reservoir) summed across engines.
    uint64_t refreshes = 0;
  };
  Stats stats() const;

 private:
  /// An engine stamped with the catalog's registration version for its
  /// table at creation time; a version mismatch means the name was
  /// re-bound (removed, or removed and re-added) and the engine is stale.
  struct EngineEntry {
    std::unique_ptr<EstimationEngine> engine;
    uint64_t table_version = 0;
  };

  ThreadPool* Pool();

  const Catalog& catalog_;
  CatalogEstimationServiceOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, EngineEntry> engines_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_SERVICE_H_
