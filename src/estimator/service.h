// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// CatalogEstimationService — cross-table batched what-if sizing for many
// concurrent clients.
//
// PR 1's EstimationEngine amortizes one sample across many candidates, but
// only within a single table. A real advisor sizes a candidate set spanning
// a whole schema ("lineitem" *and* "orders") against tables that keep
// growing, and a live DBMS queries it from many threads at once. The
// service lifts the engine to catalog level:
//
//   - One lazily created EstimationEngine per catalog table, each seeded by
//     SeedForTable(name) so results are reproducible per table regardless
//     of which candidates arrive first.
//   - EstimateAll groups candidates by table_name, pins ONE epoch per
//     distinct table (estimator/epoch.h) for the whole batch, and fans the
//     work across one shared ThreadPool (per-table engines are built with
//     num_threads = 1 — they never spin nested pools). Results are
//     positionally aligned with the input and bit-identical to running each
//     table's group through its own per-table EstimateAll under the same
//     per-table seeds.
//   - Concurrent EstimateAll calls flow through a RequestCoalescer
//     (estimator/coalesce.h): structurally identical candidates at the same
//     epoch share one computation — the first caller computes, everyone
//     else waits on the same future. Estimates are pure functions of the
//     pinned epoch, so sharing is bit-exact.
//   - NotifyAppend(table, range) forwards a growth delta to exactly that
//     table's engine, which publishes a successor epoch without quiescing
//     in-flight estimates; every other table is untouched.
//
// The service borrows the catalog; the catalog (and its tables) must
// outlive the service.

#ifndef CFEST_ESTIMATOR_SERVICE_H_
#define CFEST_ESTIMATOR_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "estimator/coalesce.h"
#include "estimator/engine.h"
#include "storage/catalog.h"

namespace cfest {

/// \brief Configuration of a CatalogEstimationService.
struct CatalogEstimationServiceOptions {
  /// Sampling fraction, metric, and index-build options shared by every
  /// per-table engine. base.sampler applies to non-reservoir engines.
  SampleCFOptions base;
  /// Default per-table seed; SeedForTable(name) returns this unless
  /// overridden in table_seeds.
  uint64_t seed = 42;
  /// Per-table seed overrides (table name -> seed).
  std::map<std::string, uint64_t> table_seeds;
  /// Workers of the shared cross-table pool. 0 = hardware concurrency;
  /// 1 = serial.
  uint32_t num_threads = 0;
  /// Create per-table engines in reservoir-maintenance mode so
  /// NotifyAppend can refresh them incrementally.
  bool maintain_reservoirs = false;
  /// Reservoir capacity per engine when maintain_reservoirs is set
  /// (0 = derive from base.fraction at each table's first draw).
  uint64_t reservoir_capacity = 0;
  /// Deduplicate structurally identical (candidate, epoch) requests across
  /// concurrent EstimateAll calls through the request coalescer (in-flight
  /// work only — completed results are never memoized, so sequential
  /// batches hit the engines' own caches exactly as before). Sharing is
  /// bit-exact; disable only to measure its effect.
  bool coalesce_requests = true;
};

/// \brief Catalog-level batched CF estimation: one engine per table, one
/// fan-out per workload.
///
/// Fully thread-safe: any number of concurrent EstimateAll callers, and
/// NotifyAppend may run concurrently with them — refresh is an epoch swap,
/// not a quiesce (each in-flight batch keeps estimating against the epoch
/// it pinned).
class CatalogEstimationService {
 public:
  explicit CatalogEstimationService(const Catalog& catalog,
                                    CatalogEstimationServiceOptions options = {});

  const Catalog& catalog() const { return catalog_; }
  const CatalogEstimationServiceOptions& options() const { return options_; }

  /// The seed the table's engine draws from: table_seeds override or the
  /// default seed.
  uint64_t SeedForTable(const std::string& table_name) const;

  /// The table's engine, created on first use (NotFound if the table is not
  /// in the catalog). The pointer is stable while the table stays
  /// registered: if the table is removed from the catalog (or removed and
  /// re-added), the cached engine is dropped and lookups fail or rebuild
  /// against the new table — a removed table's engine is never served.
  Result<EstimationEngine*> Engine(const std::string& table_name);

  /// What-if sizes a mixed-table batch: candidates are grouped by
  /// table_name, every group's table engine is resolved (creating engines
  /// as needed), one epoch per distinct table is pinned for the whole
  /// batch, and all candidates fan out across the shared pool — after the
  /// coalescer merges duplicates with identical in-flight or completed
  /// requests. Results are positionally aligned with `candidates` and
  /// bit-identical to per-table EstimateAll under the same per-table seeds.
  Result<std::vector<SizedCandidate>> EstimateAll(
      std::span<const CandidateConfiguration> candidates);

  /// The service's shared cross-table worker pool (created on first use).
  /// Exposed so layered consumers — the adaptive estimation flow in
  /// estimator/adaptive.h — fan their per-round candidate work across the
  /// same workers instead of spinning a second pool.
  ThreadPool* shared_pool() { return Pool(); }

  /// Forwards an append delta to the named table's engine (see
  /// EstimationEngine::NotifyAppend). A table whose engine has not been
  /// created yet is a no-op — its eventual first draw sees the grown
  /// table. Requires maintain_reservoirs for created engines. Safe to run
  /// concurrently with EstimateAll.
  Status NotifyAppend(const std::string& table_name, RowRange range);

  /// \brief Aggregate work-avoidance counters across every engine created
  /// so far (sums of the per-engine CacheStats; per-engine sample versions
  /// are reduced to an additive refresh count), plus the coalescer's
  /// traffic counters.
  struct Stats {
    uint64_t engines_created = 0;
    uint64_t samples_drawn = 0;
    uint64_t index_builds = 0;
    uint64_t index_cache_hits = 0;
    uint64_t invalidations = 0;
    /// Effective reservoir refreshes (NotifyAppend calls that changed a
    /// reservoir) summed across engines.
    uint64_t refreshes = 0;
    /// Epoch pins served lock-free vs through the writer mutex (summed;
    /// locked pins only ever happen on initial draws).
    uint64_t lock_free_pins = 0;
    uint64_t locked_pins = 0;
    uint64_t epochs_published = 0;
    uint64_t epochs_retired = 0;
    /// Coalescer traffic: total requests, computations actually run, and
    /// requests served by merging into an in-flight computation.
    uint64_t coalesce_requests = 0;
    uint64_t coalesce_admitted = 0;
    uint64_t coalesce_merged = 0;
  };
  Stats stats() const;

 private:
  /// An engine stamped with the catalog's registration version for its
  /// table at creation time; a version mismatch means the name was
  /// re-bound (removed, or removed and re-added) and the engine is stale.
  struct EngineEntry {
    std::unique_ptr<EstimationEngine> engine;
    uint64_t table_version = 0;
  };

  ThreadPool* Pool() EXCLUDES(mu_);

  const Catalog& catalog_;
  CatalogEstimationServiceOptions options_;
  RequestCoalescer coalescer_;

  mutable Mutex mu_;
  std::map<std::string, EngineEntry> engines_ GUARDED_BY(mu_);
  std::unique_ptr<ThreadPool> pool_ GUARDED_BY(mu_);
};

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_SERVICE_H_
