#include "estimator/service.h"

#include <chrono>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "estimator/epoch.h"

namespace cfest {

CatalogEstimationService::CatalogEstimationService(
    const Catalog& catalog, CatalogEstimationServiceOptions options)
    : catalog_(catalog), options_(std::move(options)) {}

uint64_t CatalogEstimationService::SeedForTable(
    const std::string& table_name) const {
  auto it = options_.table_seeds.find(table_name);
  return it != options_.table_seeds.end() ? it->second : options_.seed;
}

Result<EstimationEngine*> CatalogEstimationService::Engine(
    const std::string& table_name) {
  MutexLock lock(mu_);
  // Re-validate against the catalog even on a cache hit: a cached engine
  // for a table that was removed (or removed and re-added) must never be
  // served — it borrows the old Table object. The check is by the
  // catalog's per-name registration version, not pointer identity, so a
  // replacement table reusing the freed Table's address is still caught.
  Result<const Table*> table = catalog_.GetTable(table_name);
  if (!table.ok()) {
    engines_.erase(table_name);
    return table.status();
  }
  const uint64_t version = catalog_.TableVersion(table_name);
  auto it = engines_.find(table_name);
  if (it != engines_.end()) {
    if (it->second.table_version == version) return it->second.engine.get();
    engines_.erase(it);  // name re-bound since the engine was created
  }
  EstimationEngineOptions engine_options;
  engine_options.base = options_.base;
  engine_options.seed = SeedForTable(table_name);
  // All parallelism lives in the service's shared pool; per-table engines
  // stay serial so a fan-out never spins nested pools.
  engine_options.num_threads = 1;
  engine_options.maintain_reservoir = options_.maintain_reservoirs;
  engine_options.reservoir_capacity = options_.reservoir_capacity;
  // Per-table metric labels: the engine's cfest.engine.* counters register
  // as this table's children, so snapshots split by table while the
  // family aggregates keep reporting the catalog-wide totals.
  engine_options.table_name = table_name;
  auto engine = std::make_unique<EstimationEngine>(**table, engine_options);
  EstimationEngine* raw = engine.get();
  engines_[table_name] = EngineEntry{std::move(engine), version};
  return raw;
}

ThreadPool* CatalogEstimationService::Pool() {
  MutexLock lock(mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

Result<std::vector<SizedCandidate>> CatalogEstimationService::EstimateAll(
    std::span<const CandidateConfiguration> candidates) {
  trace::Span batch_span("service.estimate_all");
  // Group by table name: resolve each distinct table's engine exactly once
  // (creating it if needed) before any estimation work starts, so a
  // missing table fails the whole batch up front.
  std::map<std::string, EstimationEngine*> group_engines;
  std::vector<EstimationEngine*> engine_of(candidates.size(), nullptr);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const std::string& name = candidates[i].table_name;
    auto it = group_engines.find(name);
    if (it == group_engines.end()) {
      Result<EstimationEngine*> engine = Engine(name);
      if (!engine.ok()) {
        return Status::NotFound("candidate " + std::to_string(i) + " (" +
                                candidates[i].index.name + "): " +
                                engine.status().message());
      }
      it = group_engines.emplace(name, *engine).first;
    }
    engine_of[i] = it->second;
  }

  // Pin ONE epoch per distinct table for the whole batch: every candidate
  // of a table is sized against the same refcounted sample snapshot, so
  // the batch stays internally consistent (and bit-identical to a
  // quiesced run at those epochs) even while appends stream in
  // concurrently. Pinning is the lock-free fast path after each engine's
  // first draw; the draw itself happens here, before fan-out, so worker
  // lambdas never fall through to the writer mutex.
  std::map<std::string, std::shared_ptr<const SampleEpoch>> group_epochs;
  std::vector<const SampleEpoch*> epoch_of(candidates.size(), nullptr);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const std::string& name = candidates[i].table_name;
    auto it = group_epochs.find(name);
    if (it == group_epochs.end()) {
      Result<std::shared_ptr<const SampleEpoch>> epoch =
          group_engines[name]->PinEpoch();
      if (!epoch.ok()) return epoch.status();
      it = group_epochs.emplace(name, *epoch).first;
    }
    epoch_of[i] = it->second.get();
  }

  const bool serial = options_.num_threads == 1 || candidates.size() < 2;
  std::vector<SizedCandidate> results(candidates.size());

  if (!options_.coalesce_requests) {
    // Plain fan-out: every candidate of every group across the shared
    // pool. Per-candidate granularity keeps all workers busy even when
    // group sizes are skewed.
    CFEST_RETURN_NOT_OK(StatusParallelFor(
        serial ? nullptr : Pool(), candidates.size(), [&](uint64_t i) {
          CFEST_ASSIGN_OR_RETURN(
              results[i], engine_of[i]->EstimateAt(*epoch_of[i], candidates[i]));
          return Status::OK();
        }));
    return results;
  }

  // Coalesced admission: structurally identical candidates at the same
  // epoch — within this batch or racing in from concurrent EstimateAll
  // calls — share one computation. Owners compute; sharers just collect
  // the owner's future below. Per-table telemetry handles (labeled
  // admission counters and wait histograms) are resolved once per
  // distinct table here, at batch setup, so admission and collection do
  // no label work per candidate.
  std::map<std::string, RequestCoalescer::TableCounters*> group_counters;
  std::map<std::string, metrics::Histogram*> group_wait_hists;
  std::vector<RequestCoalescer::TableCounters*> counters_of(candidates.size());
  std::vector<metrics::Histogram*> wait_hist_of(candidates.size());
  for (const auto& [name, engine] : group_engines) {
    (void)engine;
    group_counters[name] = coalescer_.CountersForTable(name);
    group_wait_hists[name] = metrics::MetricRegistry::Global().GetHistogram(
        "cfest.coalescer.wait_ns", {{"table", name}});
  }
  std::vector<std::string> keys(candidates.size());
  std::vector<RequestCoalescer::Ticket> tickets(candidates.size());
  std::vector<uint64_t> owned;
  owned.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const std::string& name = candidates[i].table_name;
    counters_of[i] = group_counters[name];
    wait_hist_of[i] = group_wait_hists[name];
    keys[i] = CoalesceKey(name, candidates[i], *epoch_of[i]);
    tickets[i] = coalescer_.Admit(keys[i], counters_of[i]);
    if (tickets[i].owner) owned.push_back(i);
  }

  // Fan only the owned (deduplicated) work across the pool. Owners ALWAYS
  // Complete their key — a failed estimate travels as the outcome's
  // status, never as a thrown-away promise that would strand waiters
  // (including waiters in other threads' batches).
  CFEST_RETURN_NOT_OK(StatusParallelFor(
      serial || owned.size() < 2 ? nullptr : Pool(), owned.size(),
      [&](uint64_t k) {
        const uint64_t i = owned[k];
        SizingOutcome outcome;
        {
          // The owner's compute slice carries the ticket's flow id as the
          // flow SOURCE: every sharer of this key — in this batch or a
          // concurrent one — stamps the same id on its wait span, so the
          // exported trace draws an arrow from the computation to each
          // merged waiter.
          trace::Span compute_span("coalescer.compute");
          if (tickets[i].flow_id != 0) {
            compute_span.SetFlow(tickets[i].flow_id, trace::FlowRole::kSource);
          }
          Result<SizedCandidate> sized =
              engine_of[i]->EstimateAt(*epoch_of[i], candidates[i]);
          if (sized.ok()) {
            outcome.sized = std::move(*sized);
          } else {
            outcome.status = sized.status();
          }
        }
        coalescer_.Complete(keys[i], std::move(outcome));
        return Status::OK();
      }));

  // Collect every result in input order — owners and sharers alike read
  // their future (an owner's is already ready). First failure wins, like
  // the plain fan-out's StatusParallelFor.
  for (size_t i = 0; i < candidates.size(); ++i) {
    SizingOutcome outcome;
    if (!tickets[i].owner) {
      // A sharer may block here on an owner racing in another batch (the
      // owners of THIS batch already completed above); the wait histogram
      // is the coalescer's latency cost of deduplication, recorded into
      // the table's labeled child. The wait span is this flow's SINK —
      // flow-linked to the owning compute span by the shared id.
      trace::Span wait_span("coalescer.wait");
      if (tickets[i].flow_id != 0) {
        wait_span.SetFlow(tickets[i].flow_id, trace::FlowRole::kSink);
      }
      if (metrics::TimingEnabled()) {
        const uint64_t t0 = metrics::NowNanos();
        outcome = tickets[i].future.get();
        wait_hist_of[i]->Record(metrics::NowNanos() - t0);
      } else {
        outcome = tickets[i].future.get();
      }
    } else {
      outcome = tickets[i].future.get();
    }
    if (!outcome.status.ok()) return outcome.status;
    results[i] = std::move(outcome.sized);
    // The coalesce key ignores the cosmetic index name and the caller's
    // benefit, so a shared result may carry the owner's configuration;
    // re-stamp this caller's own.
    results[i].config = candidates[i];
  }
  return results;
}

Status CatalogEstimationService::NotifyAppend(const std::string& table_name,
                                              RowRange range) {
  EstimationEngine* engine = nullptr;
  {
    MutexLock lock(mu_);
    CFEST_RETURN_NOT_OK(catalog_.GetTable(table_name).status());
    auto it = engines_.find(table_name);
    if (it == engines_.end()) return Status::OK();  // nothing cached yet
    if (it->second.table_version != catalog_.TableVersion(table_name)) {
      // The name was re-bound since the engine was created; drop the
      // stale engine — the replacement's first use draws a fresh sample.
      engines_.erase(it);
      return Status::OK();
    }
    engine = it->second.engine.get();
  }
  return engine->NotifyAppend(range);
}

CatalogEstimationService::Stats CatalogEstimationService::stats() const {
  Stats stats;
  {
    MutexLock lock(mu_);
    stats.engines_created = engines_.size();
    for (const auto& [name, entry] : engines_) {
      (void)name;
      const EstimationEngine::CacheStats s = entry.engine->cache_stats();
      stats.samples_drawn += s.samples_drawn;
      stats.index_builds += s.index_builds;
      stats.index_cache_hits += s.index_cache_hits;
      stats.invalidations += s.invalidations;
      // sample_version is 1 after an engine's initial draw and +1 per
      // effective refresh, so the refresh count is version - draws.
      stats.refreshes += s.sample_version - s.samples_drawn;
      stats.lock_free_pins += s.lock_free_pins;
      stats.locked_pins += s.locked_pins;
      stats.epochs_published += s.epochs_published;
      stats.epochs_retired += s.epochs_retired;
    }
  }
  const RequestCoalescer::Stats c = coalescer_.stats();
  stats.coalesce_requests = c.requests;
  stats.coalesce_admitted = c.admitted;
  stats.coalesce_merged = c.merged;
  return stats;
}

}  // namespace cfest
