#include "estimator/service.h"

#include <utility>

namespace cfest {

CatalogEstimationService::CatalogEstimationService(
    const Catalog& catalog, CatalogEstimationServiceOptions options)
    : catalog_(catalog), options_(std::move(options)) {}

uint64_t CatalogEstimationService::SeedForTable(
    const std::string& table_name) const {
  auto it = options_.table_seeds.find(table_name);
  return it != options_.table_seeds.end() ? it->second : options_.seed;
}

Result<EstimationEngine*> CatalogEstimationService::Engine(
    const std::string& table_name) {
  std::lock_guard<std::mutex> lock(mu_);
  // Re-validate against the catalog even on a cache hit: a cached engine
  // for a table that was removed (or removed and re-added) must never be
  // served — it borrows the old Table object. The check is by the
  // catalog's per-name registration version, not pointer identity, so a
  // replacement table reusing the freed Table's address is still caught.
  Result<const Table*> table = catalog_.GetTable(table_name);
  if (!table.ok()) {
    engines_.erase(table_name);
    return table.status();
  }
  const uint64_t version = catalog_.TableVersion(table_name);
  auto it = engines_.find(table_name);
  if (it != engines_.end()) {
    if (it->second.table_version == version) return it->second.engine.get();
    engines_.erase(it);  // name re-bound since the engine was created
  }
  EstimationEngineOptions engine_options;
  engine_options.base = options_.base;
  engine_options.seed = SeedForTable(table_name);
  // All parallelism lives in the service's shared pool; per-table engines
  // stay serial so a fan-out never spins nested pools.
  engine_options.num_threads = 1;
  engine_options.maintain_reservoir = options_.maintain_reservoirs;
  engine_options.reservoir_capacity = options_.reservoir_capacity;
  auto engine = std::make_unique<EstimationEngine>(**table, engine_options);
  EstimationEngine* raw = engine.get();
  engines_[table_name] = EngineEntry{std::move(engine), version};
  return raw;
}

ThreadPool* CatalogEstimationService::Pool() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

Result<std::vector<SizedCandidate>> CatalogEstimationService::EstimateAll(
    std::span<const CandidateConfiguration> candidates) {
  // Group by table name: resolve each distinct table's engine exactly once
  // (creating it if needed) before any estimation work starts, so a
  // missing table fails the whole batch up front.
  std::map<std::string, EstimationEngine*> group_engines;
  std::vector<EstimationEngine*> engine_of(candidates.size(), nullptr);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const std::string& name = candidates[i].table_name;
    auto it = group_engines.find(name);
    if (it == group_engines.end()) {
      Result<EstimationEngine*> engine = Engine(name);
      if (!engine.ok()) {
        return Status::NotFound("candidate " + std::to_string(i) + " (" +
                                candidates[i].index.name + "): " +
                                engine.status().message());
      }
      it = group_engines.emplace(name, *engine).first;
    }
    engine_of[i] = it->second;
  }

  // Fan every candidate of every group across the shared pool. Estimates
  // are order-independent (each engine's sample draw is seeded and happens
  // once, under the engine's own lock), so per-candidate granularity keeps
  // all workers busy even when group sizes are skewed.
  std::vector<SizedCandidate> results(candidates.size());
  const bool serial = options_.num_threads == 1 || candidates.size() < 2;
  CFEST_RETURN_NOT_OK(StatusParallelFor(
      serial ? nullptr : Pool(), candidates.size(), [&](uint64_t i) {
        CFEST_ASSIGN_OR_RETURN(results[i], engine_of[i]->Estimate(candidates[i]));
        return Status::OK();
      }));
  return results;
}

Status CatalogEstimationService::NotifyAppend(const std::string& table_name,
                                              RowRange range) {
  EstimationEngine* engine = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CFEST_RETURN_NOT_OK(catalog_.GetTable(table_name).status());
    auto it = engines_.find(table_name);
    if (it == engines_.end()) return Status::OK();  // nothing cached yet
    if (it->second.table_version != catalog_.TableVersion(table_name)) {
      // The name was re-bound since the engine was created; drop the
      // stale engine — the replacement's first use draws a fresh sample.
      engines_.erase(it);
      return Status::OK();
    }
    engine = it->second.engine.get();
  }
  return engine->NotifyAppend(range);
}

CatalogEstimationService::Stats CatalogEstimationService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.engines_created = engines_.size();
  for (const auto& [name, entry] : engines_) {
    (void)name;
    const EstimationEngine::CacheStats s = entry.engine->cache_stats();
    stats.samples_drawn += s.samples_drawn;
    stats.index_builds += s.index_builds;
    stats.index_cache_hits += s.index_cache_hits;
    stats.invalidations += s.invalidations;
    // sample_version is 1 after an engine's initial draw and +1 per
    // effective refresh, so the refresh count is version - draws.
    stats.refreshes += s.sample_version - s.samples_drawn;
  }
  return stats;
}

}  // namespace cfest
