#include "estimator/evaluation.h"

#include "estimator/analytic_model.h"

namespace cfest {

Result<EvaluationResult> EvaluateSampleCF(const Table& table,
                                          const IndexDescriptor& descriptor,
                                          const CompressionScheme& scheme,
                                          const EvaluationOptions& options) {
  if (options.trials == 0) {
    return Status::InvalidArgument("need at least one trial");
  }
  EvaluationResult result;
  CFEST_ASSIGN_OR_RETURN(
      result.truth, ComputeTrueCF(table, descriptor, scheme, options.metric,
                                  options.build));

  SampleCFOptions sample_options;
  sample_options.fraction = options.fraction;
  sample_options.sampler = options.sampler;
  sample_options.metric = options.metric;
  sample_options.build = options.build;

  Random master(options.seed);
  RunningStats ratio_errors;
  RunningStats sample_rows;
  result.estimates.reserve(options.trials);
  for (uint32_t t = 0; t < options.trials; ++t) {
    Random trial_rng = master.Fork();
    CFEST_ASSIGN_OR_RETURN(
        SampleCFResult trial,
        SampleCF(table, descriptor, scheme, sample_options, &trial_rng));
    result.estimates.push_back(trial.cf.value);
    ratio_errors.Add(RatioError(result.truth.value, trial.cf.value));
    sample_rows.Add(static_cast<double>(trial.sample_rows));
  }
  result.estimate_summary = Summarize(result.estimates);
  result.bias = result.estimate_summary.mean - result.truth.value;
  result.mean_ratio_error = ratio_errors.mean();
  result.max_ratio_error = ratio_errors.max();
  result.mean_sample_rows = sample_rows.mean();
  result.theorem1_bound = Theorem1StdDevBound(
      static_cast<uint64_t>(sample_rows.mean() + 0.5));
  return result;
}

}  // namespace cfest
