#include "estimator/coalesce.h"

#include <utility>

#include "common/trace.h"

namespace cfest {
namespace {

void AppendU64(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

}  // namespace

std::string CoalesceKey(const std::string& table_name,
                        const CandidateConfiguration& candidate,
                        const SampleEpoch& epoch) {
  std::string key;
  key.reserve(table_name.size() + 64);
  // Length-prefix the free-form components so adjacent fields can never
  // alias across requests ("ab"+"c" vs "a"+"bc").
  AppendU64(&key, table_name.size());
  key += table_name;
  const std::string index_key = SampleIndexCacheKey(candidate.index);
  AppendU64(&key, index_key.size());
  key += index_key;
  // The scheme, field by field: default type, per-column overrides, and
  // every CompressionOptions knob that changes encoded bytes.
  key.push_back(static_cast<char>(candidate.scheme.default_type));
  AppendU64(&key, candidate.scheme.per_column.size());
  for (CompressionType type : candidate.scheme.per_column) {
    key.push_back(static_cast<char>(type));
  }
  AppendU64(&key, candidate.scheme.options.global_pointer_bytes);
  key.push_back(candidate.scheme.options.dict_entries_full_width ? 1 : 0);
  key.push_back(candidate.scheme.options.dict_bit_packed_pointers ? 1 : 0);
  // Epoch identity: same version + same table-rows snapshot => the epochs
  // are interchangeable for estimation (identical sample contents and
  // identical full-index scaling), even if they are distinct objects.
  AppendU64(&key, epoch.version());
  AppendU64(&key, epoch.table_rows());
  return key;
}

RequestCoalescer::TableCounters* RequestCoalescer::CountersForTable(
    const std::string& table_name) {
  MutexLock lock(mu_);
  std::unique_ptr<TableCounters>& block = table_counters_[table_name];
  if (block == nullptr) block = std::make_unique<TableCounters>(table_name);
  return block.get();
}

RequestCoalescer::Ticket RequestCoalescer::Admit(
    const std::string& key, TableCounters* table_counters) {
  MutexLock lock(mu_);
  // Attribute to the caller's per-table child when it resolved one, to
  // the unlabeled child otherwise — never both, so the family aggregate
  // counts each admission exactly once.
  metrics::Counter& requests =
      table_counters != nullptr ? table_counters->requests : requests_;
  metrics::Counter& admitted =
      table_counters != nullptr ? table_counters->admitted : admitted_;
  metrics::Counter& merged =
      table_counters != nullptr ? table_counters->merged : merged_;
  requests.Increment();
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    merged.Increment();
    return Ticket{false, it->second.flow_id, it->second.future};
  }
  Entry entry;
  entry.promise = std::make_shared<std::promise<SizingOutcome>>();
  entry.future = entry.promise->get_future().share();
  // Mint the flow id at owner admission so every sharer of this key gets
  // the same id — the correlation the exported trace draws as arrows.
  entry.flow_id = trace::Enabled() ? trace::NextFlowId() : 0;
  Ticket ticket{true, entry.flow_id, entry.future};
  entries_.emplace(key, std::move(entry));
  admitted.Increment();
  return ticket;
}

void RequestCoalescer::Complete(const std::string& key,
                                SizingOutcome outcome) {
  std::shared_ptr<std::promise<SizingOutcome>> promise;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return;
    promise = std::move(it->second.promise);
    // Retire as we publish: the map only ever holds in-flight work, so
    // later identical requests recompute through the engine's epoch
    // caches instead of being served a stale-able memo.
    entries_.erase(it);
  }
  // Fulfill outside the lock: waiters wake straight into their futures
  // without contending on the admission mutex.
  promise->set_value(std::move(outcome));
}

RequestCoalescer::Stats RequestCoalescer::stats() const {
  // Reads the same registry-backed counters a MetricsSnapshot aggregates —
  // the unlabeled fallback plus every per-table block — so the compat
  // struct equals the family aggregates bit for bit. The lock only guards
  // the block map; the counters are themselves thread-safe and monotone.
  Stats stats;
  stats.requests = requests_.Value();
  stats.admitted = admitted_.Value();
  stats.merged = merged_.Value();
  MutexLock lock(mu_);
  for (const auto& [name, block] : table_counters_) {
    (void)name;
    stats.requests += block->requests.Value();
    stats.admitted += block->admitted.Value();
    stats.merged += block->merged.Value();
  }
  return stats;
}

}  // namespace cfest
