#include "estimator/compression_fraction.h"

namespace cfest {

const char* SizeMetricName(SizeMetric metric) {
  switch (metric) {
    case SizeMetric::kDataBytes:
      return "data_bytes";
    case SizeMetric::kUsedBytes:
      return "used_bytes";
    case SizeMetric::kPageBytes:
      return "page_bytes";
  }
  return "unknown";
}

CompressionFraction MeasureCF(const IndexStats& uncompressed,
                              const CompressedIndexStats& compressed,
                              SizeMetric metric) {
  CompressionFraction cf;
  cf.metric = metric;
  switch (metric) {
    case SizeMetric::kDataBytes:
      cf.compressed_bytes = compressed.chunk_bytes + compressed.aux_bytes;
      cf.uncompressed_bytes = uncompressed.row_data_bytes;
      break;
    case SizeMetric::kUsedBytes:
      cf.compressed_bytes = compressed.used_bytes + compressed.aux_bytes;
      cf.uncompressed_bytes = uncompressed.leaf_used_bytes;
      break;
    case SizeMetric::kPageBytes: {
      cf.compressed_bytes = compressed.page_bytes();
      cf.uncompressed_bytes = uncompressed.page_bytes();
      break;
    }
  }
  if (cf.uncompressed_bytes > 0) {
    cf.value = static_cast<double>(cf.compressed_bytes) /
               static_cast<double>(cf.uncompressed_bytes);
  }
  return cf;
}

Result<CompressionFraction> ComputeTrueCF(const Table& table,
                                          const IndexDescriptor& descriptor,
                                          const CompressionScheme& scheme,
                                          SizeMetric metric,
                                          const IndexBuildOptions& options) {
  CFEST_ASSIGN_OR_RETURN(Index index, Index::Build(table, descriptor, options));
  CFEST_ASSIGN_OR_RETURN(CompressedIndex compressed,
                         index.Compress(scheme, options));
  return MeasureCF(index.stats(), compressed.stats(), metric);
}

}  // namespace cfest
