#include "estimator/distinct_value.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace cfest {

Result<SampleFrequencyProfile> BuildFrequencyProfile(const Table& sample,
                                                     size_t col) {
  if (col >= sample.schema().num_columns()) {
    return Status::OutOfRange("column " + std::to_string(col) +
                              " out of range");
  }
  std::unordered_map<std::string, uint64_t> counts;
  for (RowId id = 0; id < sample.num_rows(); ++id) {
    counts[sample.cell(id, col).ToString()]++;
  }
  SampleFrequencyProfile profile;
  profile.sample_rows = sample.num_rows();
  profile.distinct_in_sample = counts.size();
  for (const auto& [value, count] : counts) {
    profile.freq_counts[count]++;
  }
  return profile;
}

const char* DvEstimatorName(DvEstimator estimator) {
  switch (estimator) {
    case DvEstimator::kNaive:
      return "naive_d'";
    case DvEstimator::kScaleUp:
      return "scale_up";
    case DvEstimator::kChao84:
      return "chao84";
    case DvEstimator::kShlosser:
      return "shlosser";
    case DvEstimator::kGee:
      return "GEE";
  }
  return "unknown";
}

std::vector<DvEstimator> AllDvEstimators() {
  return {DvEstimator::kNaive, DvEstimator::kScaleUp, DvEstimator::kChao84,
          DvEstimator::kShlosser, DvEstimator::kGee};
}

double EstimateDistinct(DvEstimator estimator,
                        const SampleFrequencyProfile& profile, uint64_t n) {
  const double r = static_cast<double>(profile.sample_rows);
  const double dprime = static_cast<double>(profile.distinct_in_sample);
  const double f1 = static_cast<double>(profile.f(1));
  double estimate = dprime;
  if (r <= 0.0 || n == 0) return 0.0;

  switch (estimator) {
    case DvEstimator::kNaive:
      estimate = dprime;
      break;
    case DvEstimator::kScaleUp:
      estimate = dprime * static_cast<double>(n) / r;
      break;
    case DvEstimator::kChao84: {
      const double f2 = static_cast<double>(profile.f(2));
      estimate = f2 > 0.0 ? dprime + (f1 * f1) / (2.0 * f2)
                          : dprime + f1 * (f1 - 1.0) / 2.0;
      break;
    }
    case DvEstimator::kShlosser: {
      // Shlosser (1981), as presented by Haas et al. (VLDB 1995):
      //   D = d' + f1 * sum_i (1-q)^i f_i / sum_i i q (1-q)^{i-1} f_i
      const double q = r / static_cast<double>(n);
      double num = 0.0;
      double den = 0.0;
      for (const auto& [i, fi] : profile.freq_counts) {
        const double di = static_cast<double>(i);
        const double dfi = static_cast<double>(fi);
        num += std::pow(1.0 - q, di) * dfi;
        den += di * q * std::pow(1.0 - q, di - 1.0) * dfi;
      }
      estimate = den > 0.0 ? dprime + f1 * num / den : dprime;
      break;
    }
    case DvEstimator::kGee: {
      // Charikar-Chaudhuri-Motwani-Narasayya Guaranteed-Error Estimator:
      //   D = sqrt(n/r) * f1 + sum_{j >= 2} f_j
      double rest = 0.0;
      for (const auto& [j, fj] : profile.freq_counts) {
        if (j >= 2) rest += static_cast<double>(fj);
      }
      estimate = std::sqrt(static_cast<double>(n) / r) * f1 + rest;
      break;
    }
  }
  // A distinct count is at least d' and at most n.
  return std::clamp(estimate, dprime, static_cast<double>(n));
}

double DictCFFromDvEstimate(double dv_estimate, uint64_t n,
                            uint32_t pointer_bytes, uint32_t column_width) {
  if (n == 0 || column_width == 0) return 1.0;
  return static_cast<double>(pointer_bytes) /
             static_cast<double>(column_width) +
         dv_estimate / static_cast<double>(n);
}

}  // namespace cfest
