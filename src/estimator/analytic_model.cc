#include "estimator/analytic_model.h"

#include <cmath>
#include <string>
#include <unordered_set>

#include "common/stats.h"
#include "storage/row_codec.h"

namespace cfest {

Result<ColumnPopulationStats> AnalyzeColumn(const Table& table, size_t col) {
  if (col >= table.schema().num_columns()) {
    return Status::OutOfRange("column " + std::to_string(col) +
                              " out of range");
  }
  ColumnPopulationStats stats;
  const DataType& type = table.schema().column(col).type;
  stats.n = table.num_rows();
  stats.k = type.FixedWidth();
  stats.length_header = LengthHeaderBytes(type);
  std::unordered_set<std::string> distinct;
  for (RowId id = 0; id < table.num_rows(); ++id) {
    Slice cell = table.cell(id, col);
    stats.sum_lengths += NullSuppressedLength(cell, type);
    distinct.insert(cell.ToString());
  }
  stats.d = distinct.size();
  return stats;
}

double AnalyticNsCF(const ColumnPopulationStats& stats) {
  if (stats.n == 0 || stats.k == 0) return 1.0;
  return (static_cast<double>(stats.sum_lengths) +
          static_cast<double>(stats.n) * stats.length_header) /
         (static_cast<double>(stats.n) * static_cast<double>(stats.k));
}

double AnalyticGlobalDictCF(const ColumnPopulationStats& stats,
                            uint32_t pointer_bytes) {
  if (stats.n == 0 || stats.k == 0) return 1.0;
  return static_cast<double>(pointer_bytes) / static_cast<double>(stats.k) +
         static_cast<double>(stats.d) / static_cast<double>(stats.n);
}

double AnalyticPagedDictCF(const ColumnPopulationStats& stats,
                           double pointer_bits, uint64_t sum_pg) {
  if (stats.n == 0 || stats.k == 0) return 1.0;
  const double n = static_cast<double>(stats.n);
  const double k = static_cast<double>(stats.k);
  return (n * pointer_bits / 8.0 + k * static_cast<double>(sum_pg)) / (n * k);
}

double Theorem1StdDevBound(uint64_t sample_rows) {
  if (sample_rows == 0) return 1.0;
  return 1.0 / (2.0 * std::sqrt(static_cast<double>(sample_rows)));
}

ConfidenceInterval Theorem1ConfidenceInterval(double estimate,
                                              uint64_t sample_rows,
                                              double num_sigmas) {
  const double half = num_sigmas * Theorem1StdDevBound(sample_rows);
  ConfidenceInterval ci;
  ci.num_sigmas = num_sigmas;
  ci.lower = estimate - half < 0.0 ? 0.0 : estimate - half;
  ci.upper = estimate + half;
  return ci;
}

uint64_t SampleSizeForHalfWidth(double half_width, double num_sigmas) {
  if (!(half_width > 0.0)) return 0;
  const double r = num_sigmas / (2.0 * half_width);
  return static_cast<uint64_t>(std::ceil(r * r));
}

Result<ConfidenceInterval> EmpiricalNsConfidenceInterval(const Table& sample,
                                                         size_t col,
                                                         double estimate,
                                                         double num_sigmas) {
  if (col >= sample.schema().num_columns()) {
    return Status::OutOfRange("column " + std::to_string(col) +
                              " out of range");
  }
  if (sample.num_rows() < 2) {
    return Status::InvalidArgument(
        "need at least two sampled rows for an empirical interval");
  }
  const DataType& type = sample.schema().column(col).type;
  const double k = static_cast<double>(type.FixedWidth());
  const double h = static_cast<double>(LengthHeaderBytes(type));
  RunningStats stats;
  for (RowId id = 0; id < sample.num_rows(); ++id) {
    const double l =
        static_cast<double>(NullSuppressedLength(sample.cell(id, col), type));
    stats.Add((l + h) / k);
  }
  const double sigma_mean =
      stats.stddev() / std::sqrt(static_cast<double>(sample.num_rows()));
  ConfidenceInterval ci;
  ci.num_sigmas = num_sigmas;
  const double half = num_sigmas * sigma_mean;
  ci.lower = estimate - half < 0.0 ? 0.0 : estimate - half;
  ci.upper = estimate + half;
  return ci;
}

}  // namespace cfest
