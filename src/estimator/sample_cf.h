// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// SampleCF — the estimator under analysis (paper Fig. 2):
//
//   Algorithm SampleCF(T, f, S, C)
//     1. T' = uniform random sample of f*n rows from T
//     2. Build index I'(S) on T'
//     3. Compress index I' using C
//     4. Return CF for index I'
//
// The implementation is deliberately agnostic to the compression algorithm's
// internals: it runs the real index build + compression pipeline on the
// sample and reports the observed fraction, exactly as the estimators
// shipped in commercial systems do.

#ifndef CFEST_ESTIMATOR_SAMPLE_CF_H_
#define CFEST_ESTIMATOR_SAMPLE_CF_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "common/result.h"
#include "compression/scheme.h"
#include "estimator/compression_fraction.h"
#include "index/index.h"
#include "sampling/sampler.h"
#include "storage/table.h"

namespace cfest {

/// \brief Parameters of one SampleCF invocation.
struct SampleCFOptions {
  /// The sampling fraction f of Fig. 2.
  double fraction = 0.01;
  /// Sampler; null means the paper's uniform-with-replacement sampler.
  const RowSampler* sampler = nullptr;
  /// Size convention used for the returned fraction.
  SizeMetric metric = SizeMetric::kDataBytes;
  /// Page size etc. for the sample index build.
  IndexBuildOptions build = {kDefaultPageSize, /*keep_pages=*/false};
};

/// \brief Outcome of one SampleCF invocation.
struct SampleCFResult {
  /// The estimate CF'.
  CompressionFraction cf;
  /// r: rows actually drawn.
  uint64_t sample_rows = 0;
  /// d' summed over key columns' dictionaries (0 for non-dictionary schemes).
  uint64_t sample_dictionary_entries = 0;
  /// Size accounting of the sample index, for diagnostics.
  IndexStats sample_uncompressed;
  CompressedIndexStats sample_compressed;
};

/// Runs SampleCF(T, f, S, C). `rng` drives the sample draw; all other steps
/// are deterministic.
Result<SampleCFResult> SampleCF(const Table& table,
                                const IndexDescriptor& descriptor,
                                const CompressionScheme& scheme,
                                const SampleCFOptions& options, Random* rng);

/// Paper §II-C: "if the (uncompressed) index already exists, we can obtain
/// the random sample more efficiently from the index instead of the base
/// table." Samples the index's rows directly — they are already projected
/// and key-ordered, so the sample index build (sort + projection) is skipped
/// entirely; the sampled rows are streamed straight into the compressor in
/// key order. Ignores options.sampler (the draw is uniform with
/// replacement, the paper's model).
Result<SampleCFResult> SampleCFFromIndex(const Index& index,
                                         const CompressionScheme& scheme,
                                         const SampleCFOptions& options,
                                         Random* rng);

}  // namespace cfest

#endif  // CFEST_ESTIMATOR_SAMPLE_CF_H_
