#include "index/index_scan.h"

#include <algorithm>
#include <cmath>

namespace cfest {

IndexScanner::IndexScanner(const Index* index)
    : index_(index), codec_(index->schema()) {}

Result<std::string> IndexScanner::EncodeProbe(const Row& key,
                                              size_t* prefix_cols) const {
  const Schema& schema = index_->schema();
  if (key.empty() || key.size() > index_->num_key_columns()) {
    return Status::InvalidArgument(
        "probe must supply 1.." +
        std::to_string(index_->num_key_columns()) + " key values, got " +
        std::to_string(key.size()));
  }
  *prefix_cols = key.size();
  std::string probe;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c < key.size()) {
      CFEST_RETURN_NOT_OK(codec_.EncodeCell(key[c], c, &probe));
    } else {
      probe.append(schema.width(c), '\0');
    }
  }
  return probe;
}

uint64_t IndexScanner::LowerBound(Slice probe, size_t prefix_cols) const {
  RowComparator cmp(&index_->schema(), prefix_cols);
  uint64_t lo = 0, hi = index_->num_rows();
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (cmp.Compare(index_->row(mid), probe) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint64_t IndexScanner::UpperBound(Slice probe, size_t prefix_cols) const {
  RowComparator cmp(&index_->schema(), prefix_cols);
  uint64_t lo = 0, hi = index_->num_rows();
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (cmp.Compare(index_->row(mid), probe) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

ScanResult IndexScanner::MakeResult(uint64_t begin, uint64_t end) const {
  ScanResult result;
  result.first_position = begin;
  result.row_count = end > begin ? end - begin : 0;
  // Page-touch accounting over the uncompressed leaf layout.
  const uint64_t per_page = std::max<uint64_t>(
      1, (index_->stats().page_size - kPageHeaderSize) /
             (index_->schema().row_width() + kSlotSize));
  if (result.row_count > 0) {
    const uint64_t first_page = begin / per_page;
    const uint64_t last_page = (end - 1) / per_page;
    result.leaf_pages_touched = last_page - first_page + 1;
  }
  // Levels: 1 (leaf) + internal height.
  uint64_t levels = 1;
  uint64_t level_pages = index_->stats().leaf_pages;
  const uint64_t fanout = index_->fanout();
  while (level_pages > 1) {
    level_pages = (level_pages + fanout - 1) / fanout;
    ++levels;
  }
  result.levels_descended = levels;
  return result;
}

Result<ScanResult> IndexScanner::Lookup(const Row& key) const {
  size_t prefix_cols = 0;
  CFEST_ASSIGN_OR_RETURN(std::string probe, EncodeProbe(key, &prefix_cols));
  const uint64_t begin = LowerBound(Slice(probe), prefix_cols);
  const uint64_t end = UpperBound(Slice(probe), prefix_cols);
  return MakeResult(begin, end);
}

Result<ScanResult> IndexScanner::Scan(const ScanRange& range) const {
  uint64_t begin = 0;
  uint64_t end = index_->num_rows();
  if (range.lower.has_value()) {
    size_t prefix_cols = 0;
    CFEST_ASSIGN_OR_RETURN(std::string probe,
                           EncodeProbe(*range.lower, &prefix_cols));
    begin = LowerBound(Slice(probe), prefix_cols);
  }
  if (range.upper.has_value()) {
    size_t prefix_cols = 0;
    CFEST_ASSIGN_OR_RETURN(std::string probe,
                           EncodeProbe(*range.upper, &prefix_cols));
    end = UpperBound(Slice(probe), prefix_cols);
  }
  if (end < begin) end = begin;
  return MakeResult(begin, end);
}

Result<Row> IndexScanner::DecodeRow(uint64_t position) const {
  if (position >= index_->num_rows()) {
    return Status::OutOfRange("row position " + std::to_string(position) +
                              " >= " + std::to_string(index_->num_rows()));
  }
  return codec_.Decode(index_->row(position));
}

}  // namespace cfest
