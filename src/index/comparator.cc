#include "index/comparator.h"

#include <cstring>

namespace cfest {

int RowComparator::CompareCell(Slice a, Slice b, const DataType& type) {
  if (type.IsString()) {
    return std::memcmp(a.data(), b.data(), a.size());
  }
  // Little-endian two's-complement: decode and compare numerically.
  const uint32_t w = type.FixedWidth();
  uint64_t ua = 0, ub = 0;
  for (uint32_t i = 0; i < w; ++i) {
    ua |= static_cast<uint64_t>(static_cast<unsigned char>(a[i])) << (8 * i);
    ub |= static_cast<uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  if (w < 8) {
    const uint64_t sign = 1ull << (8 * w - 1);
    // Bias so unsigned comparison orders signed values correctly.
    ua ^= sign;
    ub ^= sign;
  } else {
    ua ^= 1ull << 63;
    ub ^= 1ull << 63;
  }
  if (ua < ub) return -1;
  if (ua > ub) return 1;
  return 0;
}

int RowComparator::Compare(Slice a, Slice b) const {
  for (size_t c = 0; c < num_key_columns_; ++c) {
    const DataType& type = schema_->column(c).type;
    const uint32_t off = schema_->offset(c);
    const uint32_t w = schema_->width(c);
    const int r = CompareCell(a.SubSlice(off, w), b.SubSlice(off, w), type);
    if (r != 0) return r;
  }
  return 0;
}

}  // namespace cfest
