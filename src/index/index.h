// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Sort-based bulk construction of B+-tree indexes over in-memory tables, and
// their size accounting. This is the "Build index I'(S) on T'" step of the
// paper's SampleCF algorithm (Fig. 2) as well as the ground-truth path
// ("actually building and compressing the index").
//
// A clustered index materializes the full row with the key columns first; a
// non-clustered index materializes the key columns plus an 8-byte row id
// (named "__rid"), as in classical secondary indexes.

#ifndef CFEST_INDEX_INDEX_H_
#define CFEST_INDEX_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "compression/compressed_index.h"
#include "compression/scheme.h"
#include "index/comparator.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace cfest {

/// \brief What to build an index on: the column sequence S of SampleCF.
struct IndexDescriptor {
  std::string name;
  /// Key columns, outermost first. Must exist in the table schema.
  std::vector<std::string> key_columns;
  /// Clustered: leaf rows carry all table columns (key columns first).
  /// Non-clustered: leaf rows carry key columns + "__rid".
  bool clustered = false;
};

/// \brief Sizes of an uncompressed index.
struct IndexStats {
  uint64_t row_count = 0;
  uint64_t leaf_pages = 0;
  uint64_t internal_pages = 0;
  /// Exact bytes used inside leaf pages (header + records + slots).
  uint64_t leaf_used_bytes = 0;
  /// Pure row bytes: row_count * row_width (the paper's n * k).
  uint64_t row_data_bytes = 0;
  size_t page_size = kDefaultPageSize;

  uint64_t total_pages() const { return leaf_pages + internal_pages; }
  uint64_t page_bytes() const { return total_pages() * page_size; }
};

/// \brief Number of internal B+-tree pages above `leaf_pages` leaves when
/// each internal page holds `fanout` children. 0 for a single leaf.
uint64_t InternalPageCount(uint64_t leaf_pages, uint64_t fanout);

/// \brief A bulk-built index: sorted encoded rows + leaf page accounting.
class Index {
 public:
  /// Sorts the (projected) rows of `table` and packs leaf pages.
  static Result<Index> Build(const Table& table,
                             const IndexDescriptor& descriptor,
                             const IndexBuildOptions& options = {});

  const IndexDescriptor& descriptor() const { return descriptor_; }
  /// Schema of the materialized index rows (keys first, then payload).
  const Schema& schema() const { return schema_; }
  size_t num_key_columns() const { return descriptor_.key_columns.size(); }

  uint64_t num_rows() const { return num_rows_; }
  /// i-th row in key order (zero-copy into the sorted buffer).
  Slice row(uint64_t i) const {
    return Slice(sorted_rows_.data() + static_cast<size_t>(i) * row_width_,
                 row_width_);
  }

  const IndexStats& stats() const { return stats_; }
  /// Leaf page images; empty if built with keep_pages = false.
  const std::vector<Page>& leaf_pages() const { return leaf_pages_; }

  /// Children per internal page for this schema and page size.
  uint64_t fanout() const;

  /// Compresses this index's rows (in key order) with `scheme`.
  /// This is the ground-truth compressed size, and — when the index was built
  /// on a sample — the estimate returned by SampleCF.
  Result<CompressedIndex> Compress(const CompressionScheme& scheme,
                                   const IndexBuildOptions& options = {}) const;

  /// Builds the index that Build() would produce over this index's source
  /// rows followed by the rows of `delta`, without re-sorting the existing
  /// rows: the delta is projected and sorted on its own, then merged into
  /// the sorted run (old rows win ties, matching Build's stable sort over
  /// the concatenation), and the leaf pages are repacked. Cost is
  /// O(delta log delta + total) instead of O(total log total).
  ///
  /// For non-clustered indexes the synthetic "__rid" column numbers rows by
  /// their position in the source table, so the delta's rids start at
  /// `rid_base` — pass the row count of the table this index was built on
  /// (i.e. the delta rows are rows [rid_base, rid_base + delta.num_rows())
  /// of the grown table). `delta` must have the same schema as the original
  /// source table, and `options` the same page size as the original build.
  Result<Index> ExtendedWith(const Table& delta, uint64_t rid_base,
                             const IndexBuildOptions& options = {}) const;

 private:
  Index() = default;

  /// Packs sorted_rows_ into leaf pages and fills the page-level stats.
  Status PackLeafPages(const IndexBuildOptions& options);

  IndexDescriptor descriptor_;
  Schema schema_;
  uint32_t row_width_ = 0;
  uint64_t num_rows_ = 0;
  std::string sorted_rows_;
  IndexStats stats_;
  std::vector<Page> leaf_pages_;
};

}  // namespace cfest

#endif  // CFEST_INDEX_INDEX_H_
