// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Typed comparison of encoded rows: integers compare numerically (their
// little-endian cells do not sort bytewise), strings compare as blank-padded
// byte strings.

#ifndef CFEST_INDEX_COMPARATOR_H_
#define CFEST_INDEX_COMPARATOR_H_

#include <cstdint>

#include "common/slice.h"
#include "storage/schema.h"

namespace cfest {

/// \brief Compares encoded rows on the first `num_key_columns` columns of a
/// schema, column by column.
class RowComparator {
 public:
  RowComparator(const Schema* schema, size_t num_key_columns)
      : schema_(schema), num_key_columns_(num_key_columns) {}

  /// <0, 0, >0 like memcmp. Both rows must be encoded with the schema.
  int Compare(Slice a, Slice b) const;

  bool operator()(Slice a, Slice b) const { return Compare(a, b) < 0; }

  size_t num_key_columns() const { return num_key_columns_; }

 private:
  static int CompareCell(Slice a, Slice b, const DataType& type);

  const Schema* schema_;  // not owned
  size_t num_key_columns_;
};

}  // namespace cfest

#endif  // CFEST_INDEX_COMPARATOR_H_
