#include "index/index.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "compression/kernels.h"

namespace cfest {
namespace {

constexpr const char* kRidColumnName = "__rid";

/// Builds the index-row schema and the mapping from index column to source
/// table column (SIZE_MAX marks the synthetic __rid column).
Status PlanIndexSchema(const Table& table, const IndexDescriptor& descriptor,
                       Schema* schema, std::vector<size_t>* source_columns) {
  if (descriptor.key_columns.empty()) {
    return Status::InvalidArgument("index " + descriptor.name +
                                   " has no key columns");
  }
  std::vector<Column> columns;
  std::vector<size_t> sources;
  std::vector<bool> used(table.schema().num_columns(), false);
  for (const std::string& name : descriptor.key_columns) {
    CFEST_ASSIGN_OR_RETURN(size_t idx, table.schema().ColumnIndex(name));
    if (used[idx]) {
      return Status::InvalidArgument("duplicate key column " + name);
    }
    used[idx] = true;
    columns.push_back(table.schema().column(idx));
    sources.push_back(idx);
  }
  if (descriptor.clustered) {
    for (size_t i = 0; i < table.schema().num_columns(); ++i) {
      if (!used[i]) {
        columns.push_back(table.schema().column(i));
        sources.push_back(i);
      }
    }
  } else {
    columns.push_back(Column{kRidColumnName, Int64Type()});
    sources.push_back(SIZE_MAX);
  }
  CFEST_ASSIGN_OR_RETURN(*schema, Schema::Make(std::move(columns)));
  *source_columns = std::move(sources);
  return Status::OK();
}

/// Appends the projected index rows of `table` to `out`, numbering the
/// synthetic __rid column (source SIZE_MAX) from `rid_base`.
void AppendProjectedRows(const Table& table,
                         const std::vector<size_t>& source_columns,
                         uint64_t rid_base, std::string* out) {
  for (RowId id = 0; id < table.num_rows(); ++id) {
    for (size_t c = 0; c < source_columns.size(); ++c) {
      if (source_columns[c] == SIZE_MAX) {
        const uint64_t rid = rid_base + id;
        char buf[8];
        std::memcpy(buf, &rid, 8);  // little-endian host
        out->append(buf, 8);
      } else {
        Slice cell = table.cell(id, source_columns[c]);
        out->append(cell.data(), cell.size());
      }
    }
  }
}

}  // namespace

uint64_t InternalPageCount(uint64_t leaf_pages, uint64_t fanout) {
  if (leaf_pages <= 1 || fanout < 2) return 0;
  uint64_t total = 0;
  uint64_t level = leaf_pages;
  while (level > 1) {
    level = (level + fanout - 1) / fanout;
    total += level;
  }
  return total;
}

uint64_t Index::fanout() const {
  // Internal entry: separator key (key column widths) + 8-byte child pointer.
  uint64_t key_width = 0;
  for (size_t c = 0; c < num_key_columns(); ++c) key_width += schema_.width(c);
  const uint64_t entry = key_width + 8 + kSlotSize;
  const uint64_t capacity = stats_.page_size - kPageHeaderSize;
  return std::max<uint64_t>(2, capacity / entry);
}

Result<Index> Index::Build(const Table& table,
                           const IndexDescriptor& descriptor,
                           const IndexBuildOptions& options) {
  Index index;
  index.descriptor_ = descriptor;
  std::vector<size_t> source_columns;
  CFEST_RETURN_NOT_OK(
      PlanIndexSchema(table, descriptor, &index.schema_, &source_columns));
  index.row_width_ = index.schema_.row_width();
  index.num_rows_ = table.num_rows();
  index.stats_.page_size = options.page_size;
  index.stats_.row_count = table.num_rows();
  index.stats_.row_data_bytes = table.num_rows() * index.row_width_;

  // Materialize projected rows.
  index.sorted_rows_.reserve(static_cast<size_t>(table.num_rows()) *
                             index.row_width_);
  AppendProjectedRows(table, source_columns, /*rid_base=*/0,
                      &index.sorted_rows_);

  // Sort by key via an offset permutation, then apply it.
  const uint32_t w = index.row_width_;
  std::vector<uint64_t> perm(table.num_rows());
  std::iota(perm.begin(), perm.end(), 0);
  RowComparator cmp(&index.schema_, descriptor.key_columns.size());
  const char* base = index.sorted_rows_.data();
  std::stable_sort(perm.begin(), perm.end(), [&](uint64_t a, uint64_t b) {
    return cmp.Compare(Slice(base + a * w, w), Slice(base + b * w, w)) < 0;
  });
  std::string sorted(index.sorted_rows_.size(), '\0');
  kernels::GatherRows(base, w, perm.data(), perm.size(), sorted.data());
  index.sorted_rows_ = std::move(sorted);

  CFEST_RETURN_NOT_OK(index.PackLeafPages(options));
  return index;
}

Status Index::PackLeafPages(const IndexBuildOptions& options) {
  const uint32_t w = row_width_;
  if (w > PageBuilder::MaxRecordSize(options.page_size)) {
    return Status::InvalidArgument(
        "index row of " + std::to_string(w) +
        " bytes exceeds page capacity (the paper assumes tuple size <= page "
        "size)");
  }
  uint64_t page_id = 0;
  PageBuilder builder(page_id, PageType::kDataLeaf, options.page_size);
  auto flush = [&](PageBuilder* b) {
    Page page = b->Finish();
    stats_.leaf_used_bytes += page.used_bytes();
    ++stats_.leaf_pages;
    if (options.keep_pages) leaf_pages_.push_back(std::move(page));
  };
  for (uint64_t i = 0; i < num_rows_; ++i) {
    if (!builder.Fits(w)) {
      flush(&builder);
      builder = PageBuilder(++page_id, PageType::kDataLeaf, options.page_size);
    }
    CFEST_RETURN_NOT_OK(builder.Add(row(i)));
  }
  if (!builder.empty() || num_rows_ == 0) flush(&builder);

  stats_.internal_pages = InternalPageCount(stats_.leaf_pages, fanout());
  return Status::OK();
}

Result<Index> Index::ExtendedWith(const Table& delta, uint64_t rid_base,
                                  const IndexBuildOptions& options) const {
  if (options.page_size != stats_.page_size) {
    return Status::InvalidArgument(
        "ExtendedWith page size " + std::to_string(options.page_size) +
        " differs from the original build's " +
        std::to_string(stats_.page_size));
  }
  Schema delta_schema;
  std::vector<size_t> source_columns;
  CFEST_RETURN_NOT_OK(
      PlanIndexSchema(delta, descriptor_, &delta_schema, &source_columns));
  if (!(delta_schema == schema_)) {
    return Status::InvalidArgument(
        "delta table schema does not project to this index's row schema");
  }

  // Project and stable-sort the delta on its own.
  const uint32_t w = row_width_;
  std::string delta_rows;
  delta_rows.reserve(static_cast<size_t>(delta.num_rows()) * w);
  AppendProjectedRows(delta, source_columns, rid_base, &delta_rows);
  std::vector<uint64_t> perm(delta.num_rows());
  std::iota(perm.begin(), perm.end(), 0);
  RowComparator cmp(&schema_, descriptor_.key_columns.size());
  const char* dbase = delta_rows.data();
  std::stable_sort(perm.begin(), perm.end(), [&](uint64_t a, uint64_t b) {
    return cmp.Compare(Slice(dbase + a * w, w), Slice(dbase + b * w, w)) < 0;
  });
  // Apply the permutation up front so the merge below walks two contiguous
  // sorted runs instead of chasing perm[] per comparison.
  std::string delta_sorted(delta_rows.size(), '\0');
  kernels::GatherRows(dbase, w, perm.data(), perm.size(),
                      delta_sorted.data());
  const char* dsorted = delta_sorted.data();
  const size_t delta_n = perm.size();

  // Merge the two sorted runs, old rows first on ties: that is exactly the
  // stable sort of [old source rows..., delta rows...], i.e. what Build()
  // produces over the grown source.
  Index merged;
  merged.descriptor_ = descriptor_;
  merged.schema_ = schema_;
  merged.row_width_ = w;
  merged.num_rows_ = num_rows_ + delta.num_rows();
  merged.stats_.page_size = options.page_size;
  merged.stats_.row_count = merged.num_rows_;
  merged.stats_.row_data_bytes = merged.num_rows_ * w;
  merged.sorted_rows_.reserve(static_cast<size_t>(merged.num_rows_) * w);
  uint64_t old_i = 0;
  size_t delta_i = 0;
  while (old_i < num_rows_ && delta_i < delta_n) {
    const Slice old_row = row(old_i);
    const Slice delta_row(dsorted + delta_i * w, w);
    if (cmp.Compare(old_row, delta_row) <= 0) {
      merged.sorted_rows_.append(old_row.data(), w);
      ++old_i;
    } else {
      merged.sorted_rows_.append(delta_row.data(), w);
      ++delta_i;
    }
  }
  for (; old_i < num_rows_; ++old_i) {
    merged.sorted_rows_.append(row(old_i).data(), w);
  }
  if (delta_i < delta_n) {
    merged.sorted_rows_.append(dsorted + delta_i * w,
                               (delta_n - delta_i) * w);
  }

  CFEST_RETURN_NOT_OK(merged.PackLeafPages(options));
  return merged;
}

Result<CompressedIndex> Index::Compress(const CompressionScheme& scheme,
                                        const IndexBuildOptions& options) const {
  CFEST_ASSIGN_OR_RETURN(auto builder,
                         CompressedIndexBuilder::Make(schema_, scheme, options));
  CFEST_RETURN_NOT_OK(builder->AddRows(sorted_rows_.data(), num_rows_));
  return builder->Finish();
}

}  // namespace cfest
