// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Read access to bulk-built indexes: point lookup and range scans over the
// sorted row array, with page-touch accounting so the advisor's cost model
// can price queries against compressed vs uncompressed physical designs.

#ifndef CFEST_INDEX_INDEX_SCAN_H_
#define CFEST_INDEX_INDEX_SCAN_H_

#include <cstdint>
#include <optional>

#include "common/result.h"
#include "index/index.h"
#include "storage/row_codec.h"

namespace cfest {

/// \brief Bounds for a range scan over an index's first key column(s).
/// Empty optionals mean unbounded on that side; bounds are inclusive and are
/// encoded *index rows* compared on the key prefix.
struct ScanRange {
  std::optional<Row> lower;
  std::optional<Row> upper;
};

/// \brief Result of a scan: matching row positions plus touch accounting.
struct ScanResult {
  /// First matching position and count (rows are contiguous in key order).
  uint64_t first_position = 0;
  uint64_t row_count = 0;
  /// Leaf pages the scan touches in the uncompressed index layout.
  uint64_t leaf_pages_touched = 0;
  /// B+-tree levels descended to locate the start (root to leaf).
  uint64_t levels_descended = 0;
};

/// \brief Searches and scans a bulk-built Index.
class IndexScanner {
 public:
  explicit IndexScanner(const Index* index);

  /// Rows whose key prefix equals `key` (key gives a value per key column,
  /// possibly fewer for a prefix match).
  Result<ScanResult> Lookup(const Row& key) const;

  /// Rows within [range.lower, range.upper] on the key prefix.
  Result<ScanResult> Scan(const ScanRange& range) const;

  /// The i-th row of the index (in key order) decoded to Values.
  Result<Row> DecodeRow(uint64_t position) const;

 private:
  /// Encodes a key prefix into a probe row (non-key columns zero-padded).
  Result<std::string> EncodeProbe(const Row& key, size_t* prefix_cols) const;
  /// First position whose key prefix is >= / > the probe.
  uint64_t LowerBound(Slice probe, size_t prefix_cols) const;
  uint64_t UpperBound(Slice probe, size_t prefix_cols) const;
  ScanResult MakeResult(uint64_t begin, uint64_t end) const;

  const Index* index_;  // not owned
  RowCodec codec_;
};

}  // namespace cfest

#endif  // CFEST_INDEX_INDEX_SCAN_H_
