#include "storage/row_codec.h"

#include <cstring>

namespace cfest {
namespace {

void AppendLittleEndian(uint64_t v, uint32_t width, std::string* out) {
  for (uint32_t i = 0; i < width; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

int64_t ReadLittleEndian(Slice cell, uint32_t width) {
  uint64_t v = 0;
  for (uint32_t i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(cell[i])) << (8 * i);
  }
  // Sign-extend narrow integers.
  if (width < 8) {
    const uint64_t sign_bit = 1ull << (8 * width - 1);
    if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Status RowCodec::EncodeCell(const Value& v, size_t col, std::string* out) const {
  const DataType& type = schema_.column(col).type;
  const uint32_t width = type.FixedWidth();
  if (type.IsString()) {
    if (!v.is_string()) {
      return Status::InvalidArgument("column " + schema_.column(col).name +
                                     " expects a string value");
    }
    const std::string& s = v.AsString();
    if (s.size() > width) {
      return Status::OutOfRange("value of length " + std::to_string(s.size()) +
                                " exceeds " + type.ToString() + " for column " +
                                schema_.column(col).name);
    }
    out->append(s);
    out->append(width - s.size(), ' ');  // blank padding, as in the paper
  } else {
    if (v.is_string()) {
      return Status::InvalidArgument("column " + schema_.column(col).name +
                                     " expects an integer value");
    }
    const int64_t iv = v.AsInt();
    if (width < 8) {
      const int64_t lo = -(1ll << (8 * width - 1));
      const int64_t hi = (1ll << (8 * width - 1)) - 1;
      if (iv < lo || iv > hi) {
        return Status::OutOfRange("integer " + std::to_string(iv) +
                                  " does not fit in " + type.ToString());
      }
    }
    AppendLittleEndian(static_cast<uint64_t>(iv), width, out);
  }
  return Status::OK();
}

Status RowCodec::Encode(const Row& row, std::string* out) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()));
  }
  const size_t base = out->size();
  for (size_t c = 0; c < row.size(); ++c) {
    Status st = EncodeCell(row[c], c, out);
    if (!st.ok()) {
      out->resize(base);  // leave *out unchanged on failure
      return st;
    }
  }
  return Status::OK();
}

Result<Value> RowCodec::DecodeCell(Slice encoded_row, size_t col) const {
  if (encoded_row.size() < schema_.row_width()) {
    return Status::Corruption("encoded row too short: " +
                              std::to_string(encoded_row.size()) + " < " +
                              std::to_string(schema_.row_width()));
  }
  const DataType& type = schema_.column(col).type;
  Slice cell = Cell(encoded_row, col);
  if (type.IsString()) {
    size_t len = cell.size();
    while (len > 0 && (cell[len - 1] == ' ' || cell[len - 1] == '\0')) --len;
    return Value::Str(std::string(cell.data(), len));
  }
  return Value::Int(ReadLittleEndian(cell, type.FixedWidth()));
}

Result<Row> RowCodec::Decode(Slice encoded) const {
  Row row;
  row.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    CFEST_ASSIGN_OR_RETURN(Value v, DecodeCell(encoded, c));
    row.push_back(std::move(v));
  }
  return row;
}

uint32_t NullSuppressedLength(Slice cell, const DataType& type) {
  uint32_t len = static_cast<uint32_t>(cell.size());
  if (type.IsString()) {
    while (len > 0 && (cell[len - 1] == ' ' || cell[len - 1] == '\0')) --len;
    return len;
  }
  while (len > 0 && cell[len - 1] == '\0') --len;
  return len;
}

uint32_t LengthHeaderBytes(const DataType& type) {
  return type.FixedWidth() <= 255 ? 1 : 2;
}

}  // namespace cfest
