#include "storage/types.h"

namespace cfest {

std::string DataType::ToString() const {
  switch (id) {
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kDate:
      return "date";
    case TypeId::kDecimal:
      return "decimal";
    case TypeId::kChar:
      return "char(" + std::to_string(length) + ")";
    case TypeId::kVarchar:
      return "varchar(" + std::to_string(length) + ")";
  }
  return "unknown";
}

}  // namespace cfest
