#include "storage/catalog.h"

namespace cfest {

Status Catalog::AddTable(const std::string& name,
                         std::unique_ptr<Table> table) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("table " + name + " already registered");
  }
  return Status::OK();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not in catalog");
  }
  return const_cast<const Table*>(it->second.get());
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace cfest
