#include "storage/catalog.h"

namespace cfest {

Status Catalog::AddTable(const std::string& name,
                         std::unique_ptr<Table> table) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("table " + name + " already registered");
  }
  ++versions_[name];
  return Status::OK();
}

Result<std::unique_ptr<Table>> Catalog::RemoveTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not in catalog");
  }
  std::unique_ptr<Table> table = std::move(it->second);
  tables_.erase(it);
  ++versions_[name];
  return table;
}

uint64_t Catalog::TableVersion(const std::string& name) const {
  auto it = versions_.find(name);
  return it != versions_.end() ? it->second : 0;
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not in catalog");
  }
  return const_cast<const Table*>(it->second.get());
}

Result<Table*> Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not in catalog");
  }
  return it->second.get();
}

Result<RowRange> Catalog::AppendRows(const std::string& name,
                                     std::span<const Row> rows) {
  CFEST_ASSIGN_OR_RETURN(Table * table, GetMutableTable(name));
  // Encode (and thereby validate) every row before touching the table, so
  // a bad row mid-batch appends nothing: consumers tracking the table's
  // append stream (EstimationEngine::NotifyAppend expects contiguous
  // ranges) never see rows that no RowRange accounts for.
  std::string encoded;
  encoded.reserve(rows.size() * table->row_width());
  for (const Row& row : rows) {
    CFEST_RETURN_NOT_OK(table->codec().Encode(row, &encoded));
  }
  RowRange range;
  range.begin = table->num_rows();
  const uint32_t width = table->row_width();
  for (size_t offset = 0; offset < encoded.size(); offset += width) {
    CFEST_RETURN_NOT_OK(
        table->AppendEncodedRow(Slice(encoded.data() + offset, width)));
  }
  range.end = table->num_rows();
  return range;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace cfest
