// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// TableView — a zero-copy row-id indirection over another table.
//
// SampleCF's step 1 used to *materialize* the sampled rows into a fresh
// table (one memcpy per row). A TableView instead keeps the drawn row ids
// and serves `row(i)` straight out of the backing table's buffer, so a
// sample costs O(r) ids instead of O(r * row_width) bytes, and one base
// table can back many concurrent samples. The view implements the Table
// read interface, so index builds, compression, and estimation run on it
// unchanged.
//
// The view holds a non-owning pointer to the base table: the base must
// outlive every view onto it (the EstimationEngine guarantees this by
// holding the base table for its whole lifetime).

#ifndef CFEST_STORAGE_TABLE_VIEW_H_
#define CFEST_STORAGE_TABLE_VIEW_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace cfest {

/// \brief A Table whose rows are a row-id indirection into a base table.
///
/// Row i of the view is row ids[i] of the base; ids may repeat (samples
/// drawn with replacement) and may be in any order.
class TableView final : public Table {
 public:
  /// Validates that every id addresses a base row and builds the view.
  static Result<std::unique_ptr<TableView>> Make(const Table& base,
                                                 std::vector<RowId> ids);

  Slice row(RowId id) const override {
    return base_->row(ids_[static_cast<size_t>(id)]);
  }

  /// A view does not own row storage; append to the base table instead.
  Status AppendEncodedRow(Slice) override {
    return Status::NotSupported("cannot append rows to a TableView");
  }

  const Table& base() const { return *base_; }
  const std::vector<RowId>& row_ids() const { return ids_; }

 private:
  TableView(const Table& base, std::vector<RowId> ids)
      : Table(base.codec()), base_(&base), ids_(std::move(ids)) {
    num_rows_ = ids_.size();
  }

  const Table* base_;
  std::vector<RowId> ids_;
};

}  // namespace cfest

#endif  // CFEST_STORAGE_TABLE_VIEW_H_
