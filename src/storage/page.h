// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Slotted pages: the storage unit indexes are measured in. A page holds a
// header, record data growing upward, and a slot directory growing downward
// from the end, as in classical database storage engines.
//
// Layout (little-endian):
//   [0..8)   page_id
//   [8]      page_type
//   [9]      unused
//   [10..12) slot_count
//   [12..14) free_offset   (first free byte after record data)
//   [14..32) reserved
//   [32..free_offset) record data
//   ...free space...
//   [end - 4*slot_count .. end) slot directory, slot i at end-4*(i+1):
//        {u16 record_offset, u16 record_length}

#ifndef CFEST_STORAGE_PAGE_H_
#define CFEST_STORAGE_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace cfest {

/// Default page size, matching common DBMS configurations (SQL Server: 8 KB).
inline constexpr size_t kDefaultPageSize = 8192;
/// Bytes of fixed page header.
inline constexpr size_t kPageHeaderSize = 32;
/// Bytes per slot directory entry.
inline constexpr size_t kSlotSize = 4;

/// \brief Role of a page inside an index.
enum class PageType : uint8_t {
  kDataLeaf = 0,       // uncompressed leaf holding records
  kInternal = 1,       // B+-tree internal node
  kCompressedLeaf = 2, // leaf holding a compressed page image
  kDictionary = 3,     // global dictionary storage page
};

/// \brief An immutable slotted page image.
class Page {
 public:
  /// Wraps a fully built page buffer (must be exactly page_size bytes).
  static Result<Page> FromBuffer(std::string buffer);

  uint64_t page_id() const;
  PageType type() const;
  uint16_t slot_count() const;
  size_t page_size() const { return buffer_.size(); }

  /// Bytes used by header + record data + slot directory.
  size_t used_bytes() const;
  /// Bytes still available for records (including their slots).
  size_t free_bytes() const;

  /// Zero-copy view of record i. Fails with OutOfRange for bad slots.
  Result<Slice> record(uint16_t i) const;

  const std::string& buffer() const { return buffer_; }

 private:
  explicit Page(std::string buffer) : buffer_(std::move(buffer)) {}
  std::string buffer_;
};

/// \brief Builds slotted pages record by record.
class PageBuilder {
 public:
  explicit PageBuilder(uint64_t page_id, PageType type,
                       size_t page_size = kDefaultPageSize);

  /// True if a record of `size` bytes (plus its slot) still fits.
  bool Fits(size_t size) const;

  /// Adds a record. Returns CapacityExceeded if it does not fit, or
  /// InvalidArgument for records too large for any page of this size.
  Status Add(Slice record);

  uint16_t record_count() const { return static_cast<uint16_t>(slots_.size()); }
  bool empty() const { return slots_.empty(); }
  size_t used_bytes() const {
    return kPageHeaderSize + data_.size() + kSlotSize * slots_.size();
  }
  size_t page_size() const { return page_size_; }

  /// Maximum record payload a single empty page of this size can hold.
  static size_t MaxRecordSize(size_t page_size) {
    return page_size - kPageHeaderSize - kSlotSize;
  }

  /// Serializes the page image (page_size bytes) and resets nothing; the
  /// builder should be discarded after Finish().
  Page Finish();

 private:
  uint64_t page_id_;
  PageType type_;
  size_t page_size_;
  std::string data_;  // record payloads, in insertion order
  struct SlotEntry {
    uint16_t offset;
    uint16_t length;
  };
  std::vector<SlotEntry> slots_;
};

}  // namespace cfest

#endif  // CFEST_STORAGE_PAGE_H_
