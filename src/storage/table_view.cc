#include "storage/table_view.h"

#include <string>

namespace cfest {

Result<std::unique_ptr<TableView>> TableView::Make(const Table& base,
                                                   std::vector<RowId> ids) {
  for (RowId id : ids) {
    if (id >= base.num_rows()) {
      return Status::OutOfRange("view row id " + std::to_string(id) +
                                " >= base table size " +
                                std::to_string(base.num_rows()));
    }
  }
  return std::unique_ptr<TableView>(new TableView(base, std::move(ids)));
}

}  // namespace cfest
