#include "storage/csv.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace cfest {
namespace {

Result<DataType> ParseTypeName(const std::string& name) {
  if (name == "int32") return Int32Type();
  if (name == "int64") return Int64Type();
  if (name == "date") return DateType();
  if (name == "decimal") return DecimalType();
  for (const char* prefix : {"char(", "varchar("}) {
    const std::string p(prefix);
    if (name.size() > p.size() + 1 && name.compare(0, p.size(), p) == 0 &&
        name.back() == ')') {
      const std::string digits = name.substr(p.size(),
                                             name.size() - p.size() - 1);
      char* end = nullptr;
      const unsigned long k = std::strtoul(digits.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || k == 0 || k > 0xFFFF) {
        return Status::InvalidArgument("bad string length in type: " + name);
      }
      return p == "char(" ? CharType(static_cast<uint32_t>(k))
                          : VarcharType(static_cast<uint32_t>(k));
    }
  }
  return Status::InvalidArgument("unknown type: " + name);
}

/// Splits one CSV record starting at *pos; advances *pos past the record's
/// trailing newline. Returns false at end of input. *any_content reports
/// whether the record contained any characters or quoting (so a genuinely
/// blank line is distinguishable from a single quoted-empty field "").
bool NextRecord(const std::string& text, size_t* pos,
                std::vector<std::string>* fields, bool* any_content,
                Status* error) {
  fields->clear();
  *any_content = false;
  if (*pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  while (*pos < text.size()) {
    const char c = text[*pos];
    if (in_quotes) {
      if (c == '"') {
        if (*pos + 1 < text.size() && text[*pos + 1] == '"') {
          field.push_back('"');
          *pos += 2;
          continue;
        }
        in_quotes = false;
        ++*pos;
        continue;
      }
      field.push_back(c);
      ++*pos;
      continue;
    }
    if (c == '"') {
      if (!field.empty()) {
        *error = Status::InvalidArgument(
            "quote inside unquoted CSV field near offset " +
            std::to_string(*pos));
        return false;
      }
      in_quotes = true;
      field_started = true;
      *any_content = true;
      ++*pos;
      continue;
    }
    if (c == ',') {
      fields->push_back(std::move(field));
      field.clear();
      field_started = false;
      *any_content = true;
      ++*pos;
      continue;
    }
    if (c == '\n' || c == '\r') {
      // Consume the newline sequence and finish the record.
      if (c == '\r' && *pos + 1 < text.size() && text[*pos + 1] == '\n') {
        ++*pos;
      }
      ++*pos;
      fields->push_back(std::move(field));
      return true;
    }
    field.push_back(c);
    field_started = true;
    *any_content = true;
    ++*pos;
  }
  if (in_quotes) {
    *error = Status::InvalidArgument("unterminated quoted CSV field");
    return false;
  }
  (void)field_started;
  fields->push_back(std::move(field));
  return true;
}

Result<Value> ParseCell(const std::string& field, const DataType& type,
                        size_t line) {
  if (type.IsString()) {
    if (field.size() > type.FixedWidth()) {
      return Status::OutOfRange("line " + std::to_string(line) + ": value '" +
                                field + "' exceeds " + type.ToString());
    }
    return Value::Str(field);
  }
  if (field.empty()) {
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": empty integer cell");
  }
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": not an integer: '" + field + "'");
  }
  return Value::Int(v);
}

bool NeedsQuoting(const std::string& s) {
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendCsvField(const std::string& s, std::string* out) {
  if (!NeedsQuoting(s)) {
    *out += s;
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Column> columns;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    // Commas inside "char(...)" never occur, so a plain find is safe.
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= item.size()) {
      return Status::InvalidArgument("bad schema item: '" + item +
                                     "' (want name:type)");
    }
    CFEST_ASSIGN_OR_RETURN(DataType type,
                           ParseTypeName(item.substr(colon + 1)));
    columns.push_back(Column{item.substr(0, colon), type});
    pos = comma + 1;
  }
  return Schema::Make(std::move(columns));
}

std::string SchemaToSpec(const Schema& schema) {
  std::string out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += schema.column(c).name + ":" + schema.column(c).type.ToString();
  }
  return out;
}

Result<std::unique_ptr<Table>> LoadCsv(const std::string& content,
                                       const Schema& schema,
                                       bool has_header) {
  TableBuilder builder(schema);
  size_t pos = 0;
  size_t line = 0;
  std::vector<std::string> fields;
  bool any_content = false;
  Status error;
  Row row(schema.num_columns());
  while (NextRecord(content, &pos, &fields, &any_content, &error)) {
    ++line;
    if (line == 1 && has_header) continue;
    if (!any_content) continue;  // genuinely blank line
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line) + ": " +
          std::to_string(fields.size()) + " fields, schema has " +
          std::to_string(schema.num_columns()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      CFEST_ASSIGN_OR_RETURN(row[c],
                             ParseCell(fields[c], schema.column(c).type,
                                       line));
    }
    CFEST_RETURN_NOT_OK(builder.Append(row));
  }
  CFEST_RETURN_NOT_OK(error);
  return builder.Finish();
}

std::string WriteCsv(const Table& table, bool header) {
  std::string out;
  const Schema& schema = table.schema();
  if (header) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out += ",";
      AppendCsvField(schema.column(c).name, &out);
    }
    out += "\n";
  }
  for (RowId id = 0; id < table.num_rows(); ++id) {
    Result<Row> row = table.DecodeRow(id);
    // Rows in a built table always decode.
    const Row& r = *row;
    for (size_t c = 0; c < r.size(); ++c) {
      if (c > 0) out += ",";
      const std::string cell = r[c].ToString();
      if (r.size() == 1 && cell.empty()) {
        out += "\"\"";  // disambiguate a single empty field from a blank line
      } else {
        AppendCsvField(cell, &out);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace cfest
