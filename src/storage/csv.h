// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// CSV import/export and a compact textual schema notation, so the CLI tool
// (tools/samplecf_cli) can estimate compression fractions for user data
// without writing any C++.
//
// Schema spec grammar:  "name:type[,name:type...]" with type one of
//   int32 | int64 | date | decimal | char(k) | varchar(k)
// e.g. "l_orderkey:int64,l_shipmode:char(10),l_comment:varchar(44)".

#ifndef CFEST_STORAGE_CSV_H_
#define CFEST_STORAGE_CSV_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace cfest {

/// Parses the schema notation above.
Result<Schema> ParseSchemaSpec(const std::string& spec);

/// Renders a schema back into the spec notation (inverse of
/// ParseSchemaSpec).
std::string SchemaToSpec(const Schema& schema);

/// Parses RFC-4180-style CSV text (quoted fields, escaped quotes, embedded
/// commas/newlines) into a table. Integer columns accept optional sign;
/// string cells must fit the declared width.
Result<std::unique_ptr<Table>> LoadCsv(const std::string& content,
                                       const Schema& schema,
                                       bool has_header = true);

/// Serializes a table to CSV (with a header row when header == true).
std::string WriteCsv(const Table& table, bool header = true);

}  // namespace cfest

#endif  // CFEST_STORAGE_CSV_H_
