#include "storage/schema.h"

#include <unordered_set>

namespace cfest {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  uint32_t off = 0;
  for (const auto& col : columns_) {
    offsets_.push_back(off);
    off += col.type.FixedWidth();
  }
  row_width_ = off;
}

Result<Schema> Schema::Make(std::vector<Column> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema must have at least one column");
  }
  std::unordered_set<std::string> names;
  for (const auto& col : columns) {
    if (col.name.empty()) {
      return Status::InvalidArgument("column name must be non-empty");
    }
    if (!names.insert(col.name).second) {
      return Status::InvalidArgument("duplicate column name: " + col.name);
    }
    if (col.type.IsString() && col.type.length == 0) {
      return Status::InvalidArgument("string column " + col.name +
                                     " must have positive declared length");
    }
  }
  return Schema(std::move(columns));
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

Result<Schema> Schema::Project(const std::vector<size_t>& indices) const {
  if (indices.empty()) {
    return Status::InvalidArgument("projection must keep at least one column");
  }
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (size_t idx : indices) {
    if (idx >= columns_.size()) {
      return Status::OutOfRange("projection index " + std::to_string(idx) +
                                " out of range");
    }
    cols.push_back(columns_[idx]);
  }
  return Schema::Make(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name + " " + columns_[i].type.ToString();
  }
  out += ")";
  return out;
}

}  // namespace cfest
