// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// A minimal catalog: named tables, so examples and the advisor can refer to
// "lineitem" etc.

#ifndef CFEST_STORAGE_CATALOG_H_
#define CFEST_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace cfest {

/// \brief Owns a set of named tables.
class Catalog {
 public:
  /// Registers a table under `name`. Fails if the name is taken.
  Status AddTable(const std::string& name, std::unique_ptr<Table> table);

  /// Looks up a table; NotFound if absent.
  Result<const Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Names in lexicographic order.
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace cfest

#endif  // CFEST_STORAGE_CATALOG_H_
