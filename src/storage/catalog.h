// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// A minimal catalog: named tables, so examples and the advisor can refer to
// "lineitem" etc. The catalog is also the mutation entry point for growing
// tables: AppendRows is the source of truth for streaming deltas, and the
// RowRange it returns is what estimation-layer consumers (EstimationEngine::
// NotifyAppend, CatalogEstimationService) use to refresh incrementally.
//
// Ownership and lifetime contract:
//   - The catalog owns every registered table (unique_ptr); tables live
//     until RemoveTable hands ownership back or the catalog is destroyed.
//   - Pointers returned by GetTable/GetMutableTable are borrowed from the
//     catalog and stay valid across AddTable/AppendRows of *other* tables,
//     and across AppendRows of the same table (the Table object is stable;
//     only its internal row buffer grows). They are invalidated by
//     RemoveTable of that table and by catalog destruction.
//   - AppendRows never moves existing rows: zero-copy Slices previously
//     obtained from the table stay valid, and concurrent readers may keep
//     scanning published rows while a single appender streams new ones in
//     (see the concurrency contract in storage/table.h).

#ifndef CFEST_STORAGE_CATALOG_H_
#define CFEST_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace cfest {

/// \brief Owns a set of named tables.
class Catalog {
 public:
  /// Registers a table under `name`. Fails if the name is taken.
  Status AddTable(const std::string& name, std::unique_ptr<Table> table);

  /// Unregisters `name` and hands the table's ownership back to the caller;
  /// NotFound if absent. Borrowed pointers to this table become the
  /// caller's responsibility (they stay valid only as long as the returned
  /// unique_ptr lives).
  Result<std::unique_ptr<Table>> RemoveTable(const std::string& name);

  /// Looks up a table; NotFound if absent.
  Result<const Table*> GetTable(const std::string& name) const;

  /// Mutable lookup, for callers that append through the table directly.
  Result<Table*> GetMutableTable(const std::string& name);

  /// Appends `rows` to table `name` and returns the heap row-id range the
  /// new rows occupy — feed it to EstimationEngine::NotifyAppend (or
  /// CatalogEstimationService::NotifyAppend) to refresh samples
  /// incrementally. The batch is atomic: every row is validated against
  /// the table schema before any is appended, so a failed call leaves the
  /// table unchanged and the append stream contiguous.
  Result<RowRange> AppendRows(const std::string& name,
                              std::span<const Row> rows);

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  size_t num_tables() const { return tables_.size(); }

  /// Monotone per-name registration version: bumped every time `name` is
  /// added or removed. Caches keyed on a table name (e.g. the estimation
  /// service's per-table engines) compare this to detect that a name was
  /// re-bound to a different table — pointer identity alone is unreliable
  /// because a freed Table's address can be reused. 0 = never registered.
  uint64_t TableVersion(const std::string& name) const;

  /// Names in lexicographic order.
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, uint64_t> versions_;
};

}  // namespace cfest

#endif  // CFEST_STORAGE_CATALOG_H_
