// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Column and Schema: ordered column definitions with precomputed fixed-width
// offsets for the uncompressed row layout.

#ifndef CFEST_STORAGE_SCHEMA_H_
#define CFEST_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/types.h"

namespace cfest {

/// \brief A named, typed column.
struct Column {
  std::string name;
  DataType type;
};

/// \brief An ordered list of columns plus the derived fixed-width layout.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Validates names are unique & non-empty and string lengths are positive.
  static Result<Schema> Make(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Byte offset of column i within an encoded row.
  uint32_t offset(size_t i) const { return offsets_[i]; }
  /// Fixed byte width of column i.
  uint32_t width(size_t i) const { return columns_[i].type.FixedWidth(); }
  /// Total encoded row width (sum of column widths).
  uint32_t row_width() const { return row_width_; }

  /// Index of the column with the given name, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// A schema containing only the given columns, in the given order.
  Result<Schema> Project(const std::vector<size_t>& indices) const;

  /// "(l_orderkey int64, l_shipmode char(10))"
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    if (columns_.size() != other.columns_.size()) return false;
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name != other.columns_[i].name ||
          !(columns_[i].type == other.columns_[i].type)) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t row_width_ = 0;
};

}  // namespace cfest

#endif  // CFEST_STORAGE_SCHEMA_H_
