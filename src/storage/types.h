// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// SQL-ish data types. The paper's analysis is phrased over char(k) columns
// stored at their full declared width; the row codec therefore uses a
// fixed-width uncompressed layout for every type (VARCHAR is padded to its
// declared maximum, which is exactly the layout null suppression removes).

#ifndef CFEST_STORAGE_TYPES_H_
#define CFEST_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

namespace cfest {

/// \brief Type tags for column values.
enum class TypeId : uint8_t {
  kInt32 = 0,    // 4-byte signed integer
  kInt64 = 1,    // 8-byte signed integer
  kDate = 2,     // days since 1970-01-01, 4 bytes
  kDecimal = 3,  // fixed-point, stored as scaled int64, 8 bytes
  kChar = 4,     // char(k): fixed width, space padded
  kVarchar = 5,  // varchar(k): stored padded in the uncompressed layout
};

/// \brief A concrete column type: tag plus declared length for strings.
struct DataType {
  TypeId id = TypeId::kInt32;
  /// Declared length k for kChar / kVarchar; ignored otherwise.
  uint32_t length = 0;

  bool operator==(const DataType&) const = default;

  bool IsString() const { return id == TypeId::kChar || id == TypeId::kVarchar; }
  bool IsInteger() const {
    return id == TypeId::kInt32 || id == TypeId::kInt64 ||
           id == TypeId::kDate || id == TypeId::kDecimal;
  }

  /// Bytes this type occupies in the uncompressed fixed-width row layout.
  uint32_t FixedWidth() const {
    switch (id) {
      case TypeId::kInt32:
      case TypeId::kDate:
        return 4;
      case TypeId::kInt64:
      case TypeId::kDecimal:
        return 8;
      case TypeId::kChar:
      case TypeId::kVarchar:
        return length;
    }
    return 0;
  }

  /// "int32", "char(20)", ...
  std::string ToString() const;
};

/// Convenience factories.
inline DataType Int32Type() { return {TypeId::kInt32, 0}; }
inline DataType Int64Type() { return {TypeId::kInt64, 0}; }
inline DataType DateType() { return {TypeId::kDate, 0}; }
inline DataType DecimalType() { return {TypeId::kDecimal, 0}; }
inline DataType CharType(uint32_t k) { return {TypeId::kChar, k}; }
inline DataType VarcharType(uint32_t k) { return {TypeId::kVarchar, k}; }

}  // namespace cfest

#endif  // CFEST_STORAGE_TYPES_H_
