#include "storage/page.h"

#include <cstring>

namespace cfest {
namespace {

void PutU16(std::string* buf, size_t pos, uint16_t v) {
  (*buf)[pos] = static_cast<char>(v & 0xFF);
  (*buf)[pos + 1] = static_cast<char>((v >> 8) & 0xFF);
}

uint16_t GetU16(const std::string& buf, size_t pos) {
  return static_cast<uint16_t>(static_cast<unsigned char>(buf[pos])) |
         static_cast<uint16_t>(static_cast<unsigned char>(buf[pos + 1])) << 8;
}

void PutU64(std::string* buf, size_t pos, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*buf)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

uint64_t GetU64(const std::string& buf, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[pos + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

Result<Page> Page::FromBuffer(std::string buffer) {
  if (buffer.size() < kPageHeaderSize) {
    return Status::Corruption("page buffer smaller than header");
  }
  Page page(std::move(buffer));
  // Validate the slot directory.
  const size_t n = page.slot_count();
  if (kPageHeaderSize + kSlotSize * n > page.buffer_.size()) {
    return Status::Corruption("slot directory overruns page");
  }
  for (uint16_t i = 0; i < n; ++i) {
    Result<Slice> r = page.record(i);
    if (!r.ok()) return r.status();
  }
  return page;
}

uint64_t Page::page_id() const { return GetU64(buffer_, 0); }

PageType Page::type() const {
  return static_cast<PageType>(static_cast<unsigned char>(buffer_[8]));
}

uint16_t Page::slot_count() const { return GetU16(buffer_, 10); }

size_t Page::used_bytes() const {
  const uint16_t free_off = GetU16(buffer_, 12);
  return free_off + kSlotSize * slot_count();
}

size_t Page::free_bytes() const { return buffer_.size() - used_bytes(); }

Result<Slice> Page::record(uint16_t i) const {
  if (i >= slot_count()) {
    return Status::OutOfRange("slot " + std::to_string(i) + " >= slot count " +
                              std::to_string(slot_count()));
  }
  const size_t slot_pos = buffer_.size() - kSlotSize * (i + 1);
  const uint16_t off = GetU16(buffer_, slot_pos);
  const uint16_t len = GetU16(buffer_, slot_pos + 2);
  if (off < kPageHeaderSize || off + len > buffer_.size()) {
    return Status::Corruption("slot " + std::to_string(i) +
                              " points outside the page");
  }
  return Slice(buffer_.data() + off, len);
}

PageBuilder::PageBuilder(uint64_t page_id, PageType type, size_t page_size)
    : page_id_(page_id), type_(type), page_size_(page_size) {
  data_.reserve(page_size - kPageHeaderSize);
}

bool PageBuilder::Fits(size_t size) const {
  return used_bytes() + size + kSlotSize <= page_size_;
}

Status PageBuilder::Add(Slice record) {
  if (record.size() > MaxRecordSize(page_size_)) {
    return Status::InvalidArgument(
        "record of " + std::to_string(record.size()) +
        " bytes can never fit a page of " + std::to_string(page_size_));
  }
  if (slots_.size() >= 0xFFFF) {
    return Status::CapacityExceeded("slot directory full");
  }
  if (!Fits(record.size())) {
    return Status::CapacityExceeded("page full");
  }
  const uint16_t offset =
      static_cast<uint16_t>(kPageHeaderSize + data_.size());
  data_.append(record.data(), record.size());
  slots_.push_back({offset, static_cast<uint16_t>(record.size())});
  return Status::OK();
}

Page PageBuilder::Finish() {
  std::string buf(page_size_, '\0');
  PutU64(&buf, 0, page_id_);
  buf[8] = static_cast<char>(type_);
  PutU16(&buf, 10, static_cast<uint16_t>(slots_.size()));
  PutU16(&buf, 12, static_cast<uint16_t>(kPageHeaderSize + data_.size()));
  std::memcpy(buf.data() + kPageHeaderSize, data_.data(), data_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    const size_t slot_pos = buf.size() - kSlotSize * (i + 1);
    PutU16(&buf, slot_pos, slots_[i].offset);
    PutU16(&buf, slot_pos + 2, slots_[i].length);
  }
  Result<Page> page = Page::FromBuffer(std::move(buf));
  // A builder-produced image is structurally valid by construction.
  return std::move(page).ValueOrDie();
}

}  // namespace cfest
