// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Fixed-width row encoding — the "uncompressed index" layout of the paper.
//
// Every column is stored at its declared width: char(k)/varchar(k) are
// space-padded on the right; integers are little-endian two's complement.
// NullSuppressedLength() returns the paper's l_i: the number of bytes that
// remain after suppressing padding blanks (strings) or leading zero bytes
// (integers).

#ifndef CFEST_STORAGE_ROW_CODEC_H_
#define CFEST_STORAGE_ROW_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace cfest {

/// \brief A row at the API boundary: one Value per schema column.
using Row = std::vector<Value>;

/// \brief Encodes/decodes rows to/from the fixed-width uncompressed layout.
class RowCodec {
 public:
  explicit RowCodec(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Appends the encoded row to *out. Fails if arity or types mismatch, or a
  /// string exceeds its declared length.
  Status Encode(const Row& row, std::string* out) const;

  /// Encodes a single cell (value of column col) to *out.
  Status EncodeCell(const Value& v, size_t col, std::string* out) const;

  /// Decodes an encoded row (row_width bytes).
  Result<Row> Decode(Slice encoded) const;

  /// Decodes the cell of column col from an encoded row.
  Result<Value> DecodeCell(Slice encoded_row, size_t col) const;

  /// Zero-copy view of column col's fixed-width cell within an encoded row.
  Slice Cell(Slice encoded_row, size_t col) const {
    return encoded_row.SubSlice(schema_.offset(col), schema_.width(col));
  }

 private:
  Schema schema_;
};

/// \brief The paper's null-suppressed length l of a fixed-width cell.
///
/// Strings: declared width minus trailing blanks (ASCII 0x20) and NULs; a
/// fully blank cell has length 0. Integers: width minus leading zero bytes of
/// the little-endian encoding, i.e. the number of significant bytes (the
/// value 0 has length 0).
uint32_t NullSuppressedLength(Slice cell, const DataType& type);

/// Bytes needed to record a suppressed length for this type: 1 if the
/// declared width fits in one byte (<= 255), else 2. This is the "+1" term of
/// the paper's CF_NS formula generalised to wide columns.
uint32_t LengthHeaderBytes(const DataType& type);

}  // namespace cfest

#endif  // CFEST_STORAGE_ROW_CODEC_H_
