// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// An in-memory heap table holding rows in the fixed-width encoded layout.
// This is the population SampleCF samples from; keeping rows encoded and
// densely packed makes million-row experiments cheap.
//
// Storage is split in two so the table can be *read while it grows*:
//
//   - The bulk-built rows (everything appended through TableBuilder before
//     Finish) live in one contiguous buffer that never changes afterwards.
//   - Post-construction appends land in fixed-size row segments that never
//     move or reallocate once written. The segment directory (spine) grows
//     copy-on-write and is published through an atomic pointer; the row
//     count is published with a release store only after the row bytes are
//     in place.
//
// Concurrency contract: one appender at a time (Catalog::AppendRows and the
// streaming examples are single-writer; callers with several append threads
// must serialize them), any number of concurrent readers. A reader that
// observed `num_rows() == n` may access any row id < n — including from
// other threads, provided the count was communicated with the usual
// happens-before (mutex, atomic, thread start). Slices returned by
// row()/cell() stay valid for the table's lifetime: appends never move
// existing rows. This is what lets the estimation layer's epoch-pinned
// readers (estimator/epoch.h) run zero-copy while appends stream in.

#ifndef CFEST_STORAGE_TABLE_H_
#define CFEST_STORAGE_TABLE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/row_codec.h"
#include "storage/schema.h"

namespace cfest {

/// \brief Identifies a row within a table (heap row id).
using RowId = uint64_t;

/// \brief A half-open range [begin, end) of heap row ids — the unit of an
/// append delta (Catalog::AppendRows returns one; EstimationEngine's
/// NotifyAppend consumes one).
struct RowRange {
  RowId begin = 0;
  RowId end = 0;

  uint64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// \brief An in-memory table of fixed-width encoded rows.
///
/// Construct through TableBuilder. Row access is zero-copy (Slice into the
/// bulk buffer or an append segment). `row()` is the one virtual read hook:
/// TableView (storage/table_view.h) overrides it to serve rows out of
/// another table through a row-id indirection, so a sample can behave like
/// a table without copying any row bytes. Everything else (cells, decoding,
/// sizes) derives from `row()` and `num_rows()`.
///
/// Rows are append-only: existing rows never move ids or change bytes.
/// `AppendRow`/`AppendEncodedRow` may grow the table after construction
/// (the streaming-delta source of truth; Catalog::AppendRows is the usual
/// entry point). See the file comment for the single-writer /
/// many-reader contract; previously returned Slices are NOT invalidated by
/// appends.
class Table {
 public:
  virtual ~Table() = default;

  const Schema& schema() const { return codec_.schema(); }
  const RowCodec& codec() const { return codec_; }

  /// Published row count. The release/acquire pairing with
  /// AppendEncodedRow makes every row id below the returned count safe to
  /// read, even while further appends are in flight.
  uint64_t num_rows() const {
    return num_rows_.load(std::memory_order_acquire);
  }
  uint32_t row_width() const { return codec_.schema().row_width(); }
  /// Total bytes of the uncompressed fixed-width representation (n * k).
  uint64_t data_bytes() const { return num_rows() * row_width(); }

  /// Zero-copy view of an encoded row. id must be < num_rows().
  virtual Slice row(RowId id) const {
    const uint32_t width = row_width();
    if (id < base_rows_) {
      return Slice(buffer_.data() + static_cast<size_t>(id) * width, width);
    }
    const uint64_t off = id - base_rows_;
    const Spine* spine = spine_.load(std::memory_order_acquire);
    const char* segment =
        spine->slots[static_cast<size_t>(off / kAppendSegmentRows)];
    return Slice(segment + static_cast<size_t>(off % kAppendSegmentRows) *
                               width,
                 width);
  }

  /// Zero-copy view of one cell of a row.
  Slice cell(RowId id, size_t col) const {
    return codec_.Cell(row(id), col);
  }

  /// Decodes a row into Values (for display / tests).
  Result<Row> DecodeRow(RowId id) const { return codec_.Decode(row(id)); }

  /// Appends one already-encoded row (exactly row_width() bytes) to the
  /// heap. Views refuse (they do not own row storage). Single writer;
  /// safe against concurrent readers — the row bytes are written into
  /// stable segment storage before the count is released.
  virtual Status AppendEncodedRow(Slice encoded) {
    const uint32_t width = row_width();
    if (encoded.size() != width) {
      return Status::InvalidArgument(
          "encoded row has " + std::to_string(encoded.size()) +
          " bytes, expected " + std::to_string(width));
    }
    const uint64_t n = num_rows_.load(std::memory_order_relaxed);
    const uint64_t off = n - base_rows_;
    const size_t seg_idx = static_cast<size_t>(off / kAppendSegmentRows);
    const size_t seg_off = static_cast<size_t>(off % kAppendSegmentRows);
    Spine* spine = spine_.load(std::memory_order_relaxed);
    if (seg_off == 0) {
      // Fresh segment. Grow the spine copy-on-write if its slot array is
      // full; concurrent readers keep using the old spine, whose slots
      // cover every published row.
      segments_.push_back(std::make_unique<char[]>(
          static_cast<size_t>(kAppendSegmentRows) * width));
      if (spine == nullptr || seg_idx >= spine->slots.size()) {
        auto grown = std::make_unique<Spine>();
        grown->slots.resize(
            spine == nullptr ? size_t{8} : spine->slots.size() * 2, nullptr);
        if (spine != nullptr) {
          std::copy(spine->slots.begin(), spine->slots.end(),
                    grown->slots.begin());
        }
        spine = grown.get();
        spines_.push_back(std::move(grown));
        spine->slots[seg_idx] = segments_.back().get();
        spine_.store(spine, std::memory_order_release);
      } else {
        // Plain write: readers only dereference this slot after acquiring
        // a num_rows() that covers it, which the release store below
        // orders after this write.
        spine->slots[seg_idx] = segments_.back().get();
      }
    }
    std::memcpy(spine->slots[seg_idx] + seg_off * width, encoded.data(),
                width);
    num_rows_.store(n + 1, std::memory_order_release);
    return Status::OK();
  }

  /// Appends one row of Values (validated against the schema).
  Status AppendRow(const Row& r) {
    std::string encoded;
    CFEST_RETURN_NOT_OK(codec_.Encode(r, &encoded));
    return AppendEncodedRow(Slice(encoded));
  }

 protected:
  explicit Table(RowCodec codec) : codec_(std::move(codec)) {}

  RowCodec codec_;
  std::atomic<uint64_t> num_rows_{0};

 private:
  friend class TableBuilder;

  /// Rows per append segment: large enough that the per-segment overhead
  /// (one allocation, one spine slot) vanishes, small enough that a trickle
  /// of appends does not over-allocate.
  static constexpr uint64_t kAppendSegmentRows = 4096;

  /// Immutable-after-publication segment directory.
  struct Spine {
    std::vector<char*> slots;
  };

  std::string buffer_;
  /// Rows living in buffer_ (everything up to TableBuilder::Finish); ids
  /// at or above this resolve through the append segments.
  uint64_t base_rows_ = 0;
  std::atomic<Spine*> spine_{nullptr};
  /// Writer-side ownership. Retired spines are kept until destruction so
  /// readers holding an old directory stay valid (a few pointers each).
  std::vector<std::unique_ptr<Spine>> spines_;
  std::vector<std::unique_ptr<char[]>> segments_;
};

/// \brief Accumulates rows and produces an immutable Table.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema)
      : table_(std::unique_ptr<Table>(new Table(RowCodec(std::move(schema))))) {}

  const Schema& schema() const { return table_->schema(); }

  /// Appends a row of Values (validated against the schema).
  Status Append(const Row& row) {
    CFEST_RETURN_NOT_OK(table_->codec_.Encode(row, &table_->buffer_));
    BumpRow();
    return Status::OK();
  }

  /// Appends an already encoded row (must be exactly row_width bytes).
  Status AppendEncoded(Slice encoded) {
    if (encoded.size() != table_->row_width()) {
      return Status::InvalidArgument(
          "encoded row has " + std::to_string(encoded.size()) +
          " bytes, expected " + std::to_string(table_->row_width()));
    }
    table_->buffer_.append(encoded.data(), encoded.size());
    BumpRow();
    return Status::OK();
  }

  /// Reserves space for n rows.
  void Reserve(uint64_t n) {
    table_->buffer_.reserve(static_cast<size_t>(n) * table_->row_width());
  }

  uint64_t num_rows() const {
    return table_->num_rows_.load(std::memory_order_relaxed);
  }

  /// Finalizes the table. The builder must not be reused afterwards.
  std::unique_ptr<Table> Finish() { return std::move(table_); }

 private:
  void BumpRow() {
    // Single-threaded build: the bulk buffer is only shared once the
    // finished table is handed off (which publishes with its own
    // happens-before), so relaxed is enough here.
    const uint64_t n =
        table_->num_rows_.load(std::memory_order_relaxed) + 1;
    table_->num_rows_.store(n, std::memory_order_relaxed);
    table_->base_rows_ = n;
  }

  std::unique_ptr<Table> table_;
};

}  // namespace cfest

#endif  // CFEST_STORAGE_TABLE_H_
