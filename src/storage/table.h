// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// An in-memory heap table holding rows in the fixed-width encoded layout,
// stored contiguously. This is the population SampleCF samples from; keeping
// rows encoded and contiguous makes million-row experiments cheap.

#ifndef CFEST_STORAGE_TABLE_H_
#define CFEST_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/row_codec.h"
#include "storage/schema.h"

namespace cfest {

/// \brief Identifies a row within a table (heap row id).
using RowId = uint64_t;

/// \brief A half-open range [begin, end) of heap row ids — the unit of an
/// append delta (Catalog::AppendRows returns one; EstimationEngine's
/// NotifyAppend consumes one).
struct RowRange {
  RowId begin = 0;
  RowId end = 0;

  uint64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// \brief An in-memory table of fixed-width encoded rows.
///
/// Construct through TableBuilder. Row access is zero-copy (Slice into the
/// contiguous buffer). `row()` is the one virtual read hook: TableView
/// (storage/table_view.h) overrides it to serve rows out of another table
/// through a row-id indirection, so a sample can behave like a table without
/// copying any row bytes. Everything else (cells, decoding, sizes) derives
/// from `row()` and `num_rows()`.
///
/// Rows are append-only: existing rows never move ids or change bytes, but
/// `AppendRow`/`AppendEncodedRow` may grow the table after construction (the
/// streaming-delta source of truth; Catalog::AppendRows is the usual entry
/// point). Appending may reallocate the row buffer, so any Slice previously
/// obtained from `row()`/`cell()` is invalidated by an append — re-fetch
/// after mutating. Row-id indirections (TableView) remain valid: they
/// re-resolve through `row()` on every access.
class Table {
 public:
  virtual ~Table() = default;

  const Schema& schema() const { return codec_.schema(); }
  const RowCodec& codec() const { return codec_; }

  uint64_t num_rows() const { return num_rows_; }
  uint32_t row_width() const { return codec_.schema().row_width(); }
  /// Total bytes of the uncompressed fixed-width representation (n * k).
  uint64_t data_bytes() const { return num_rows_ * row_width(); }

  /// Zero-copy view of an encoded row. id must be < num_rows().
  virtual Slice row(RowId id) const {
    return Slice(buffer_.data() + static_cast<size_t>(id) * row_width(),
                 row_width());
  }

  /// Zero-copy view of one cell of a row.
  Slice cell(RowId id, size_t col) const {
    return codec_.Cell(row(id), col);
  }

  /// Decodes a row into Values (for display / tests).
  Result<Row> DecodeRow(RowId id) const { return codec_.Decode(row(id)); }

  /// Appends one already-encoded row (exactly row_width() bytes) to the
  /// heap. Views refuse (they do not own row storage). Invalidates
  /// previously returned Slices; see the class comment.
  virtual Status AppendEncodedRow(Slice encoded) {
    if (encoded.size() != row_width()) {
      return Status::InvalidArgument(
          "encoded row has " + std::to_string(encoded.size()) +
          " bytes, expected " + std::to_string(row_width()));
    }
    buffer_.append(encoded.data(), encoded.size());
    ++num_rows_;
    return Status::OK();
  }

  /// Appends one row of Values (validated against the schema).
  Status AppendRow(const Row& r) {
    std::string encoded;
    CFEST_RETURN_NOT_OK(codec_.Encode(r, &encoded));
    return AppendEncodedRow(Slice(encoded));
  }

 protected:
  explicit Table(RowCodec codec) : codec_(std::move(codec)) {}

  RowCodec codec_;
  uint64_t num_rows_ = 0;

 private:
  friend class TableBuilder;
  std::string buffer_;
};

/// \brief Accumulates rows and produces an immutable Table.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema)
      : table_(std::unique_ptr<Table>(new Table(RowCodec(std::move(schema))))) {}

  const Schema& schema() const { return table_->schema(); }

  /// Appends a row of Values (validated against the schema).
  Status Append(const Row& row) {
    CFEST_RETURN_NOT_OK(table_->codec_.Encode(row, &table_->buffer_));
    ++table_->num_rows_;
    return Status::OK();
  }

  /// Appends an already encoded row (must be exactly row_width bytes).
  Status AppendEncoded(Slice encoded) {
    if (encoded.size() != table_->row_width()) {
      return Status::InvalidArgument(
          "encoded row has " + std::to_string(encoded.size()) +
          " bytes, expected " + std::to_string(table_->row_width()));
    }
    table_->buffer_.append(encoded.data(), encoded.size());
    ++table_->num_rows_;
    return Status::OK();
  }

  /// Reserves space for n rows.
  void Reserve(uint64_t n) {
    table_->buffer_.reserve(static_cast<size_t>(n) * table_->row_width());
  }

  uint64_t num_rows() const { return table_->num_rows_; }

  /// Finalizes the table. The builder must not be reused afterwards.
  std::unique_ptr<Table> Finish() { return std::move(table_); }

 private:
  std::unique_ptr<Table> table_;
};

}  // namespace cfest

#endif  // CFEST_STORAGE_TABLE_H_
