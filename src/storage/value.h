// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Value: a typed scalar used at API boundaries (row construction, decoding,
// examples). The hot paths operate on encoded fixed-width cells, not Values.

#ifndef CFEST_STORAGE_VALUE_H_
#define CFEST_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "storage/types.h"

namespace cfest {

/// \brief A scalar of one of the supported SQL-ish types.
///
/// Integers, dates and decimals are carried as int64; strings as std::string
/// (unpadded logical content).
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  static Value Int(int64_t v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  bool operator==(const Value&) const = default;
  /// Total order: integers before strings, then by value.
  bool operator<(const Value& other) const {
    if (rep_.index() != other.rep_.index()) {
      return rep_.index() < other.rep_.index();
    }
    return rep_ < other.rep_;
  }

  std::string ToString() const {
    return is_string() ? AsString() : std::to_string(AsInt());
  }

 private:
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  std::variant<int64_t, std::string> rep_;
};

}  // namespace cfest

#endif  // CFEST_STORAGE_VALUE_H_
