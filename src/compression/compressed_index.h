// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Packing compressed rows into pages, and the size accounting that defines
// the compression fraction.
//
// Page record layout (one record per compressed page):
//   per column: u32 chunk_length, chunk bytes.
// Rows are packed greedily in input order (the index build feeds them sorted
// by key): a page is closed when the next row's exact compressed cost no
// longer fits, mirroring how page-level compression behaves in real engines
// and giving rise to the paper's Pg(i) paging effects.

#ifndef CFEST_COMPRESSION_COMPRESSED_INDEX_H_
#define CFEST_COMPRESSION_COMPRESSED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "compression/scheme.h"
#include "storage/page.h"
#include "storage/schema.h"

namespace cfest {

/// \brief Per-column share of a compressed index's footprint.
struct ColumnCompressionStats {
  CompressionType type = CompressionType::kNone;
  /// Serialized chunk bytes of this column across all pages.
  uint64_t chunk_bytes = 0;
  /// Auxiliary bytes (global dictionary) owned by this column.
  uint64_t aux_bytes = 0;
  /// Dictionary entries materialized for this column (sum Pg(i) / d).
  uint64_t dictionary_entries = 0;
};

/// \brief Size accounting for one compressed (or uncompressed) index.
struct CompressedIndexStats {
  uint64_t row_count = 0;
  /// Pages holding compressed row data.
  uint64_t data_pages = 0;
  /// Pages holding auxiliary state (global dictionaries).
  uint64_t aux_pages = 0;
  /// Exact bytes used inside data pages (headers + records + slots).
  uint64_t used_bytes = 0;
  /// Auxiliary bytes (global dictionary payloads).
  uint64_t aux_bytes = 0;
  /// Sum of serialized column-chunk bytes (content without page framing).
  uint64_t chunk_bytes = 0;
  /// Total dictionary entries materialized (page-level: the paper's
  /// sum over distinct values i of Pg(i); global: d).
  uint64_t dictionary_entries = 0;
  size_t page_size = kDefaultPageSize;
  /// One entry per schema column.
  std::vector<ColumnCompressionStats> columns;

  uint64_t total_pages() const { return data_pages + aux_pages; }
  /// Page-granular footprint in bytes.
  uint64_t page_bytes() const { return total_pages() * page_size; }
  /// Byte-granular footprint: used page bytes plus auxiliary payloads.
  uint64_t content_bytes() const { return used_bytes + aux_bytes; }
};

/// \brief A compressed index: stats, pages (optional), and the compressor
/// state needed to decode them.
class CompressedIndex {
 public:
  const CompressedIndexStats& stats() const { return stats_; }
  const Schema& schema() const { return schema_; }
  const CompressionScheme& scheme() const { return scheme_; }

  /// The retained page images (empty if built with keep_pages = false).
  const std::vector<Page>& pages() const { return pages_; }

  /// Reconstructs all encoded fixed-width rows, in index order. Requires
  /// keep_pages = true at build time. Appends row_width-byte strings.
  Status DecodeAllRows(std::vector<std::string>* rows) const;

 private:
  friend class CompressedIndexBuilder;
  CompressedIndex(Schema schema, CompressionScheme scheme)
      : schema_(std::move(schema)), scheme_(std::move(scheme)) {}

  Schema schema_;
  CompressionScheme scheme_;
  CompressedIndexStats stats_;
  std::vector<Page> pages_;
  std::shared_ptr<ColumnCompressorSet> compressors_;  // decode needs dict state
};

/// \brief Build options for compressed (and uncompressed) index packing.
struct IndexBuildOptions {
  size_t page_size = kDefaultPageSize;
  /// Retain page images (needed for DecodeAllRows; costs memory).
  bool keep_pages = true;
};

/// \brief Streams sorted encoded rows into compressed pages.
class CompressedIndexBuilder {
 public:
  using Options = IndexBuildOptions;

  /// Fails if the scheme does not fit the schema.
  static Result<std::unique_ptr<CompressedIndexBuilder>> Make(
      const Schema& schema, const CompressionScheme& scheme,
      const Options& options = {});

  /// Adds one encoded row (exactly schema.row_width() bytes). Rows should be
  /// fed in index (sorted) order.
  Status Add(Slice encoded_row);

  /// Adds `n` contiguous encoded rows (n * row_width bytes at `rows`).
  /// Equivalent to n Add() calls — identical pages, stats, and errors — but
  /// routes each column through the batched kernels (compression/kernels.h)
  /// when every chunk in the scheme supports them: rows are transposed into
  /// arena-backed column slices and sized/appended per column, not per cell.
  Status AddRows(const char* rows, uint64_t n);

  uint64_t rows_added() const { return rows_added_; }

  /// Closes the final page, validates compressor state, and returns the
  /// compressed index. The builder must not be reused.
  Result<CompressedIndex> Finish();

 private:
  CompressedIndexBuilder(Schema schema, CompressionScheme scheme,
                         std::shared_ptr<ColumnCompressorSet> compressors,
                         const Options& options);

  void OpenPage();
  /// Exact page bytes used if the current chunks (plus `extra` chunk cost)
  /// were serialized now.
  size_t PageCost(size_t extra_chunk_bytes) const;
  Status FlushPage();

  Schema schema_;
  CompressionScheme scheme_;
  Options options_;
  std::shared_ptr<ColumnCompressorSet> compressors_;
  std::vector<std::unique_ptr<ColumnChunkCompressor>> chunks_;
  /// True when every chunk of the scheme implements the batched path.
  bool batch_capable_ = false;
  /// Scratch for the row-major -> column-major transpose of AddRows.
  Arena transpose_arena_;
  std::vector<Page> pages_;
  CompressedIndexStats stats_;
  uint64_t rows_added_ = 0;
  uint64_t next_page_id_ = 0;
  /// Rows the most recently flushed page held — AddRows' batch-size
  /// predictor for a freshly opened page, before the page has its own
  /// per-row cost to extrapolate from.
  uint64_t last_page_rows_ = 0;
  bool finished_ = false;
};

/// Convenience: compresses a batch of encoded rows in one call.
Result<CompressedIndex> CompressRows(const Schema& schema,
                                     const CompressionScheme& scheme,
                                     const std::vector<Slice>& rows,
                                     const CompressedIndexBuilder::Options&
                                         options = {});

}  // namespace cfest

#endif  // CFEST_COMPRESSION_COMPRESSED_INDEX_H_
