// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Column compression interfaces.
//
// Compression operates per column and per page, as the paper describes for
// commercial systems ("each column is compressed independently"; "commercial
// systems typically apply this technique at a page level and the dictionary
// is maintained inline in every page").
//
// A ColumnCompressor is the per-index object for one column (it owns any
// cross-page state, e.g. the global dictionary of the paper's simplified
// model). It hands out ColumnChunkCompressors, one per page, which accept
// fixed-width cells and report their exact serialized cost so the page packer
// can decide when a page is full.

#ifndef CFEST_COMPRESSION_COMPRESSOR_H_
#define CFEST_COMPRESSION_COMPRESSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/types.h"

namespace cfest {

/// \brief The compression algorithms implemented by this library.
enum class CompressionType : uint8_t {
  kNone = 0,              // fixed-width cells verbatim (CF = 1 baseline)
  kNullSuppression = 1,   // paper §II-A, Fig. 1a
  kDictionaryPage = 2,    // paper §II-A, Fig. 1b: per-page inline dictionary
  kDictionaryGlobal = 3,  // paper §III-B simplified model: one global dict
  kRle = 4,               // run-length encoding (refs [7][8] extension)
  kPrefix = 5,            // per-page common-prefix elimination (extension)
  kDelta = 6,             // zigzag-varint deltas for integer keys (extension)
  kPrefixDictionary = 7,  // SQL Server-style prefix+dictionary page pipeline
  kFrameOfReference = 8,  // bit-packed offsets from a per-page base (extension)
};

/// Number of CompressionType values (the enum is dense from 0); sized
/// per-scheme arrays — e.g. the engine's labeled estimate counters — index
/// by static_cast<size_t>(type).
inline constexpr size_t kCompressionTypeCount = 9;

const char* CompressionTypeName(CompressionType type);
Result<CompressionType> CompressionTypeFromName(const std::string& name);

/// \brief Tuning knobs shared by the compressors.
struct CompressionOptions {
  /// Global-dictionary pointer size in bytes (the paper's `p`). Used by
  /// kDictionaryGlobal. If 0, the pointer width is derived from the final
  /// dictionary cardinality as ceil(log2(d)/8) bytes, min 1.
  uint32_t global_pointer_bytes = 4;

  /// kDictionaryPage: store dictionary entries at the full declared width k
  /// (the paper's model) instead of null-suppressed with a length header.
  bool dict_entries_full_width = true;

  /// kDictionaryPage: bit-pack pointers to ceil(log2(d_page)) bits (the
  /// paper's "requires ceil(log2 d) bits"). If false, pointers are byte
  /// aligned at ceil(ceil(log2(d_page))/8) bytes.
  bool dict_bit_packed_pointers = true;

  bool operator==(const CompressionOptions&) const = default;
};

/// \brief Streaming compressor for one column over one page's rows.
///
/// Contract: Cost() is the exact number of bytes Finish() will produce for
/// the cells added so far; CostWith(cell) is the exact cost if `cell` were
/// added next. Cells must be exactly the column's fixed width.
class ColumnChunkCompressor {
 public:
  virtual ~ColumnChunkCompressor() = default;

  /// Exact serialized size (bytes) if `cell` were appended next.
  virtual size_t CostWith(const Slice& cell) = 0;

  /// Appends a cell. Must only be called with fixed-width cells.
  virtual void Add(const Slice& cell) = 0;

  /// True if this chunk implements the batched sizing path below. Batching
  /// is purely a fast path: CostWithBatch/AddBatch over n cells produce
  /// exactly the state and costs of n CostWith/Add calls, so the page packer
  /// may mix the two freely without changing any page split.
  virtual bool SupportsBatch() const { return false; }

  /// Exact serialized size if the `n` contiguous fixed-width cells at
  /// `cells` were all appended next. Only called when SupportsBatch().
  virtual size_t CostWithBatch(const char* cells, size_t n) {
    (void)cells;
    (void)n;
    return Cost();
  }

  /// Appends `n` contiguous fixed-width cells. Only called when
  /// SupportsBatch().
  virtual void AddBatch(const char* cells, size_t n) {
    (void)cells;
    (void)n;
  }

  /// Exact serialized size of the cells added so far.
  virtual size_t Cost() const = 0;

  /// Number of cells added.
  virtual uint32_t count() const = 0;

  /// Serializes the chunk. The chunk must not be used afterwards.
  virtual std::string Finish() = 0;
};

/// \brief Per-index compressor for one column.
class ColumnCompressor {
 public:
  virtual ~ColumnCompressor() = default;

  virtual CompressionType type() const = 0;
  virtual const DataType& data_type() const = 0;

  /// Opens the chunk for the next page of this column.
  virtual std::unique_ptr<ColumnChunkCompressor> NewChunk() = 0;

  /// Decodes a serialized chunk back into fixed-width cells, appending each
  /// cell's bytes to *cells. Exact inverse of chunk Finish().
  virtual Status DecodeChunk(Slice chunk,
                             std::vector<std::string>* cells) const = 0;

  /// Bytes of cross-page auxiliary state this compressor needs stored with
  /// the index (e.g. the global dictionary). 0 for purely page-local schemes.
  virtual uint64_t AuxiliaryBytes() const { return 0; }

  /// Post-hoc validity check, consulted when an index build finishes (e.g.
  /// the global dictionary reports overflow of its fixed-width pointers).
  virtual Status Validate() const { return Status::OK(); }

  /// Total dictionary entries materialized across all pages so far; this is
  /// the paper's sum over distinct values of Pg(i) for the page-level
  /// dictionary, and d for the global model. 0 for non-dictionary schemes.
  virtual uint64_t TotalDictionaryEntries() const { return 0; }
};

/// Creates a compressor for `type` over a column of `data_type`.
Result<std::unique_ptr<ColumnCompressor>> MakeColumnCompressor(
    CompressionType type, const DataType& data_type,
    const CompressionOptions& options = {});

/// All compression types, for parameterized tests and benches.
std::vector<CompressionType> AllCompressionTypes();

}  // namespace cfest

#endif  // CFEST_COMPRESSION_COMPRESSOR_H_
