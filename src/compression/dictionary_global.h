// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Global dictionary compression — the paper's simplified model of §III-B:
// a single index-wide dictionary stores each distinct value once (k bytes
// per entry); every row stores a pointer of p bytes. Under this model
//
//   CF_DC = p/k + d/n
//
// which is exactly what the analytic model and Theorems 2/3 are phrased over.
// The dictionary bytes are reported through ColumnCompressor::AuxiliaryBytes()
// and packed into dedicated dictionary pages by the index builder.
//
// Chunk wire format: u16 row_count, then row_count little-endian p-byte codes.

#ifndef CFEST_COMPRESSION_DICTIONARY_GLOBAL_H_
#define CFEST_COMPRESSION_DICTIONARY_GLOBAL_H_

#include "compression/compressor.h"

namespace cfest {

std::unique_ptr<ColumnCompressor> MakeGlobalDictionaryCompressor(
    const DataType& data_type, const CompressionOptions& options);

}  // namespace cfest

#endif  // CFEST_COMPRESSION_DICTIONARY_GLOBAL_H_
