// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// A CompressionScheme names the algorithm used for each column of an index
// ("each column is compressed independently", paper §II-A); a
// ColumnCompressorSet instantiates the per-column compressors.

#ifndef CFEST_COMPRESSION_SCHEME_H_
#define CFEST_COMPRESSION_SCHEME_H_

#include <memory>
#include <string>
#include <vector>

#include "compression/compressor.h"
#include "storage/schema.h"

namespace cfest {

/// \brief Per-index compression configuration.
struct CompressionScheme {
  /// Algorithm applied to every column without an explicit override.
  CompressionType default_type = CompressionType::kNullSuppression;
  /// Optional per-column override; if non-empty must have one entry per
  /// schema column.
  std::vector<CompressionType> per_column;
  CompressionOptions options;

  static CompressionScheme Uniform(CompressionType type,
                                   CompressionOptions options = {}) {
    CompressionScheme s;
    s.default_type = type;
    s.options = options;
    return s;
  }

  /// "null_suppression" or "mixed(rle,none,...)".
  std::string ToString() const;
};

/// \brief The instantiated per-column compressors for one index build.
class ColumnCompressorSet {
 public:
  /// Validates the scheme against the schema and creates all compressors.
  static Result<ColumnCompressorSet> Make(const Schema& schema,
                                          const CompressionScheme& scheme);

  size_t num_columns() const { return compressors_.size(); }
  ColumnCompressor* column(size_t i) { return compressors_[i].get(); }
  const ColumnCompressor* column(size_t i) const {
    return compressors_[i].get();
  }

  /// Sum of per-column auxiliary bytes (e.g. global dictionaries).
  uint64_t AuxiliaryBytes() const;

  /// Sum of per-column dictionary entry counts (the Pg(i) sums).
  uint64_t TotalDictionaryEntries() const;

  /// First validation failure across columns, if any.
  Status Validate() const;

 private:
  ColumnCompressorSet() = default;
  std::vector<std::unique_ptr<ColumnCompressor>> compressors_;
};

}  // namespace cfest

#endif  // CFEST_COMPRESSION_SCHEME_H_
