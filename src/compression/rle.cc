#include "compression/rle.h"

#include <cassert>
#include <vector>

#include "compression/encoding_util.h"
#include "compression/kernels.h"

namespace cfest {
namespace {

struct Run {
  std::string value;  // fixed-width cell bytes
  uint32_t length = 0;
};

class RleChunk final : public ColumnChunkCompressor {
 public:
  explicit RleChunk(const DataType& type) : type_(type) {}

  size_t CostWith(const Slice& cell) override {
    if (!runs_.empty() && Slice(runs_.back().value) == cell) {
      return Cost();  // extends the open run; u32 length already counted
    }
    return Cost() + 4 + encoding::NullSuppressedCost(cell, type_);
  }

  void Add(const Slice& cell) override {
    assert(cell.size() == type_.FixedWidth());
    if (!runs_.empty() && Slice(runs_.back().value) == cell) {
      ++runs_.back().length;
    } else {
      runs_.push_back({cell.ToString(), 1});
      runs_bytes_ += 4 + encoding::NullSuppressedCost(cell, type_);
    }
    ++count_;
  }

  bool SupportsBatch() const override { return true; }

  size_t CostWithBatch(const char* cells, size_t n) override {
    const uint32_t w = type_.FixedWidth();
    std::vector<uint32_t>& starts = StartsScratch();
    starts.clear();
    const char* prev = runs_.empty() ? nullptr : runs_.back().value.data();
    kernels::RunStarts(cells, w, n, prev, &starts);
    size_t cost = Cost();
    for (const uint32_t s : starts) {
      cost += 4 + encoding::NullSuppressedCost(
                      Slice(cells + static_cast<size_t>(s) * w, w), type_);
    }
    return cost;
  }

  void AddBatch(const char* cells, size_t n) override {
    const uint32_t w = type_.FixedWidth();
    std::vector<uint32_t>& starts = StartsScratch();
    starts.clear();
    const char* prev = runs_.empty() ? nullptr : runs_.back().value.data();
    kernels::RunStarts(cells, w, n, prev, &starts);
    // Cells before the first boundary extend the run left open by Add();
    // a non-zero head implies runs_ is non-empty (cell 0 matched prev).
    const uint32_t head =
        starts.empty() ? static_cast<uint32_t>(n) : starts[0];
    if (head > 0) runs_.back().length += head;
    runs_.reserve(runs_.size() + starts.size());
    for (size_t k = 0; k < starts.size(); ++k) {
      const uint32_t s = starts[k];
      const uint32_t e =
          k + 1 < starts.size() ? starts[k + 1] : static_cast<uint32_t>(n);
      const Slice cell(cells + static_cast<size_t>(s) * w, w);
      runs_.push_back({cell.ToString(), e - s});
      runs_bytes_ += 4 + encoding::NullSuppressedCost(cell, type_);
    }
    count_ += static_cast<uint32_t>(n);
  }

  size_t Cost() const override { return 2 + runs_bytes_; }
  uint32_t count() const override { return count_; }

  std::string Finish() override {
    std::string out;
    out.reserve(Cost());
    encoding::PutU16(&out, static_cast<uint16_t>(runs_.size()));
    for (const Run& run : runs_) {
      encoding::PutU32(&out, run.length);
      encoding::PutNullSuppressed(Slice(run.value), type_, &out);
    }
    return out;
  }

 private:
  static std::vector<uint32_t>& StartsScratch() {
    thread_local std::vector<uint32_t> scratch;
    return scratch;
  }

  DataType type_;
  std::vector<Run> runs_;
  size_t runs_bytes_ = 0;
  uint32_t count_ = 0;
};

class RleCompressor final : public ColumnCompressor {
 public:
  explicit RleCompressor(const DataType& type) : type_(type) {}

  CompressionType type() const override { return CompressionType::kRle; }
  const DataType& data_type() const override { return type_; }

  std::unique_ptr<ColumnChunkCompressor> NewChunk() override {
    return std::make_unique<RleChunk>(type_);
  }

  Status DecodeChunk(Slice chunk,
                     std::vector<std::string>* cells) const override {
    size_t pos = 0;
    uint16_t run_count = 0;
    if (!encoding::GetU16(chunk, &pos, &run_count)) {
      return Status::Corruption("RLE chunk missing run count");
    }
    // Pre-scan the run headers for the total cell count so the expansion
    // loop below reserves once instead of reallocating per push_back.
    // Lenient by design: on any malformed header the scan just stops, and
    // the main loop reports the precise corruption as before.
    {
      const uint32_t header = LengthHeaderBytes(type_);
      uint64_t total = 0;
      size_t p = pos;
      bool complete = true;
      for (uint16_t i = 0; i < run_count && complete; ++i) {
        uint32_t run_length = 0;
        if (!encoding::GetU32(chunk, &p, &run_length) ||
            p + header > chunk.size()) {
          complete = false;
          break;
        }
        uint32_t len = static_cast<unsigned char>(chunk[p]);
        if (header == 2) {
          len |= static_cast<uint32_t>(static_cast<unsigned char>(chunk[p + 1]))
                 << 8;
        }
        p += header + len;
        if (p > chunk.size()) {
          complete = false;
          break;
        }
        total += run_length;
      }
      if (complete && total <= 0xFFFF) {
        cells->reserve(cells->size() + static_cast<size_t>(total));
      }
    }
    uint64_t total_rows = 0;
    for (uint16_t i = 0; i < run_count; ++i) {
      uint32_t run_length = 0;
      if (!encoding::GetU32(chunk, &pos, &run_length)) {
        return Status::Corruption("RLE chunk missing run length");
      }
      if (run_length == 0) {
        return Status::Corruption("RLE zero-length run");
      }
      total_rows += run_length;
      // The page packer caps chunks at 65535 rows; a larger total means a
      // corrupted run length (and would otherwise trigger a giant alloc).
      if (total_rows > 0xFFFF) {
        return Status::Corruption("RLE run lengths exceed chunk row limit");
      }
      std::string cell;
      CFEST_RETURN_NOT_OK(
          encoding::GetNullSuppressed(chunk, &pos, type_, &cell));
      for (uint32_t j = 0; j < run_length; ++j) cells->push_back(cell);
    }
    if (pos != chunk.size()) {
      return Status::Corruption("RLE chunk has trailing bytes");
    }
    return Status::OK();
  }

 private:
  DataType type_;
};

}  // namespace

std::unique_ptr<ColumnCompressor> MakeRleCompressor(const DataType& data_type) {
  return std::make_unique<RleCompressor>(data_type);
}

}  // namespace cfest
