#include "compression/rle.h"

#include <cassert>
#include <vector>

#include "compression/encoding_util.h"

namespace cfest {
namespace {

struct Run {
  std::string value;  // fixed-width cell bytes
  uint32_t length = 0;
};

class RleChunk final : public ColumnChunkCompressor {
 public:
  explicit RleChunk(const DataType& type) : type_(type) {}

  size_t CostWith(const Slice& cell) override {
    if (!runs_.empty() && Slice(runs_.back().value) == cell) {
      return Cost();  // extends the open run; u32 length already counted
    }
    return Cost() + 4 + encoding::NullSuppressedCost(cell, type_);
  }

  void Add(const Slice& cell) override {
    assert(cell.size() == type_.FixedWidth());
    if (!runs_.empty() && Slice(runs_.back().value) == cell) {
      ++runs_.back().length;
    } else {
      runs_.push_back({cell.ToString(), 1});
      runs_bytes_ += 4 + encoding::NullSuppressedCost(cell, type_);
    }
    ++count_;
  }

  size_t Cost() const override { return 2 + runs_bytes_; }
  uint32_t count() const override { return count_; }

  std::string Finish() override {
    std::string out;
    out.reserve(Cost());
    encoding::PutU16(&out, static_cast<uint16_t>(runs_.size()));
    for (const Run& run : runs_) {
      encoding::PutU32(&out, run.length);
      encoding::PutNullSuppressed(Slice(run.value), type_, &out);
    }
    return out;
  }

 private:
  DataType type_;
  std::vector<Run> runs_;
  size_t runs_bytes_ = 0;
  uint32_t count_ = 0;
};

class RleCompressor final : public ColumnCompressor {
 public:
  explicit RleCompressor(const DataType& type) : type_(type) {}

  CompressionType type() const override { return CompressionType::kRle; }
  const DataType& data_type() const override { return type_; }

  std::unique_ptr<ColumnChunkCompressor> NewChunk() override {
    return std::make_unique<RleChunk>(type_);
  }

  Status DecodeChunk(Slice chunk,
                     std::vector<std::string>* cells) const override {
    size_t pos = 0;
    uint16_t run_count = 0;
    if (!encoding::GetU16(chunk, &pos, &run_count)) {
      return Status::Corruption("RLE chunk missing run count");
    }
    uint64_t total_rows = 0;
    for (uint16_t i = 0; i < run_count; ++i) {
      uint32_t run_length = 0;
      if (!encoding::GetU32(chunk, &pos, &run_length)) {
        return Status::Corruption("RLE chunk missing run length");
      }
      if (run_length == 0) {
        return Status::Corruption("RLE zero-length run");
      }
      total_rows += run_length;
      // The page packer caps chunks at 65535 rows; a larger total means a
      // corrupted run length (and would otherwise trigger a giant alloc).
      if (total_rows > 0xFFFF) {
        return Status::Corruption("RLE run lengths exceed chunk row limit");
      }
      std::string cell;
      CFEST_RETURN_NOT_OK(
          encoding::GetNullSuppressed(chunk, &pos, type_, &cell));
      for (uint32_t j = 0; j < run_length; ++j) cells->push_back(cell);
    }
    if (pos != chunk.size()) {
      return Status::Corruption("RLE chunk has trailing bytes");
    }
    return Status::OK();
  }

 private:
  DataType type_;
};

}  // namespace

std::unique_ptr<ColumnCompressor> MakeRleCompressor(const DataType& data_type) {
  return std::make_unique<RleCompressor>(data_type);
}

}  // namespace cfest
