// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Page-level dictionary compression (paper §II-A, Fig. 1b): each page carries
// an inline dictionary of the distinct values occurring in that page; rows
// store pointers of ceil(log2(d_page)) bits. A value occurring in Pg(i)
// pages is therefore materialized Pg(i) times — the paging effect the paper's
// CF_DC formula with the Pg(i) sum captures.
//
// Chunk wire format:
//   u16 dict_count, u8 ptr_bits,
//   dictionary entries (full fixed width, or NS-encoded per options),
//   u16 row_count, bit-packed pointers (LSB-first, padded to a whole byte).

#ifndef CFEST_COMPRESSION_DICTIONARY_PAGE_H_
#define CFEST_COMPRESSION_DICTIONARY_PAGE_H_

#include "compression/compressor.h"

namespace cfest {

std::unique_ptr<ColumnCompressor> MakePageDictionaryCompressor(
    const DataType& data_type, const CompressionOptions& options);

}  // namespace cfest

#endif  // CFEST_COMPRESSION_DICTIONARY_PAGE_H_
