// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Delta compression for integer-typed columns (extension; refs [7][8] of the
// paper survey it as a classic index-key technique). Index keys arrive
// sorted, so consecutive deltas are small; each chunk stores the first value
// verbatim and zigzag-varint deltas for the rest. Falls back to plain NS
// semantics for string columns (delta over bytes is meaningless), which the
// factory rejects instead.
//
// Chunk wire format:
//   u16 count, then for count > 0: 8-byte first value (LE),
//   then count-1 zigzag varint deltas.

#ifndef CFEST_COMPRESSION_DELTA_H_
#define CFEST_COMPRESSION_DELTA_H_

#include "compression/compressor.h"

namespace cfest {

/// Fails for non-integer columns.
Result<std::unique_ptr<ColumnCompressor>> MakeDeltaCompressor(
    const DataType& data_type);

}  // namespace cfest

#endif  // CFEST_COMPRESSION_DELTA_H_
