#include "compression/encoding_util.h"

namespace cfest {
namespace encoding {

void PutNullSuppressed(const Slice& cell, const DataType& type,
                       std::string* out) {
  const uint32_t len = NullSuppressedLength(cell, type);
  if (LengthHeaderBytes(type) == 1) {
    out->push_back(static_cast<char>(len & 0xFF));
  } else {
    PutU16(out, static_cast<uint16_t>(len));
  }
  out->append(cell.data(), len);
}

Status GetNullSuppressed(Slice in, size_t* pos, const DataType& type,
                         std::string* cell_out) {
  uint32_t len = 0;
  if (LengthHeaderBytes(type) == 1) {
    if (*pos + 1 > in.size()) {
      return Status::Corruption("truncated NS length header");
    }
    len = static_cast<unsigned char>(in[*pos]);
    *pos += 1;
  } else {
    uint16_t l16 = 0;
    if (!GetU16(in, pos, &l16)) {
      return Status::Corruption("truncated NS length header");
    }
    len = l16;
  }
  if (len > type.FixedWidth()) {
    return Status::Corruption("NS length exceeds column width");
  }
  if (*pos + len > in.size()) {
    return Status::Corruption("truncated NS payload");
  }
  PadCell(Slice(in.data() + *pos, len), type, cell_out);
  *pos += len;
  return Status::OK();
}

void PadCell(Slice payload, const DataType& type, std::string* cell_out) {
  cell_out->append(payload.data(), payload.size());
  const char pad = type.IsString() ? ' ' : '\0';
  cell_out->append(type.FixedWidth() - payload.size(), pad);
}

}  // namespace encoding
}  // namespace cfest
