#include "compression/kernels.h"

#include <bit>
#include <cstring>

#include "common/metrics.h"

#if defined(__x86_64__) || defined(__i386__)
#define CFEST_KERNELS_X86 1
#include <immintrin.h>
#else
#define CFEST_KERNELS_X86 0
#endif

namespace cfest {
namespace kernels {
namespace {

// ---------------------------------------------------------------------------
// Byte-predicate bitmasks.
//
// The vector paths reduce both hot predicates — "is this byte padding?"
// (NS length scan) and "are these bytes equal?" (RLE boundary scan) — to a
// bitmask with one bit per byte, built 16/32 bytes per instruction, then
// answer the per-cell question with O(1) word ops on the mask. That shape
// handles every cell width, alignment, and tail length uniformly, which is
// what keeps the variants bit-identical to the scalar references.
// ---------------------------------------------------------------------------

/// Mask words needed for `bytes` bits plus one guard word so unaligned
/// 64-bit extraction never reads past the array.
size_t MaskWords(size_t bytes) { return bytes / 64 + 2; }

void BuildNonPadMaskScalar(const char* data, size_t bytes, bool is_string,
                           uint64_t* mask) {
  std::memset(mask, 0, MaskWords(bytes) * sizeof(uint64_t));
  for (size_t i = 0; i < bytes; ++i) {
    const char c = data[i];
    const bool pad = is_string ? (c == ' ' || c == '\0') : (c == '\0');
    if (!pad) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

#if CFEST_KERNELS_X86

__attribute__((target("sse4.2"))) void BuildNonPadMaskSse42(
    const char* data, size_t bytes, bool is_string, uint64_t* mask) {
  std::memset(mask, 0, MaskWords(bytes) * sizeof(uint64_t));
  const __m128i blanks = _mm_set1_epi8(' ');
  const __m128i zeros = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= bytes; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    __m128i pad = _mm_cmpeq_epi8(v, zeros);
    if (is_string) pad = _mm_or_si128(pad, _mm_cmpeq_epi8(v, blanks));
    const uint64_t nonpad =
        static_cast<uint16_t>(~_mm_movemask_epi8(pad));
    mask[i >> 6] |= nonpad << (i & 63);
  }
  for (; i < bytes; ++i) {
    const char c = data[i];
    const bool pad = is_string ? (c == ' ' || c == '\0') : (c == '\0');
    if (!pad) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

__attribute__((target("avx2"))) void BuildNonPadMaskAvx2(const char* data,
                                                         size_t bytes,
                                                         bool is_string,
                                                         uint64_t* mask) {
  std::memset(mask, 0, MaskWords(bytes) * sizeof(uint64_t));
  const __m256i blanks = _mm256_set1_epi8(' ');
  const __m256i zeros = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    __m256i pad = _mm256_cmpeq_epi8(v, zeros);
    if (is_string) pad = _mm256_or_si256(pad, _mm256_cmpeq_epi8(v, blanks));
    const uint64_t nonpad =
        static_cast<uint32_t>(~_mm256_movemask_epi8(pad));
    mask[i >> 6] |= nonpad << (i & 63);
  }
  for (; i < bytes; ++i) {
    const char c = data[i];
    const bool pad = is_string ? (c == ' ' || c == '\0') : (c == '\0');
    if (!pad) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

// ---------------------------------------------------------------------------
// Narrow-cell NS length fast path.
//
// The dominant sizing widths are the integer FixedWidths 4 and 8 (and
// char(4)/char(8)): one cmpeq+movemask covers 4-8 whole cells, and each
// cell's length is bit_width() of its slice of the inverted pad mask —
// no mask array, no per-cell word extraction.
// ---------------------------------------------------------------------------

/// Finishes the last n - i cells through the scalar reference.
inline uint64_t NsNarrowTail(const char* cells, uint32_t width, size_t n,
                             size_t i, bool is_string, uint32_t* out) {
  uint64_t total = 0;
  for (; i < n; ++i) {
    const char* cell = cells + i * width;
    uint32_t len = width;
    if (is_string) {
      while (len > 0 && (cell[len - 1] == ' ' || cell[len - 1] == '\0')) {
        --len;
      }
    } else {
      while (len > 0 && cell[len - 1] == '\0') --len;
    }
    total += len;
    if (out != nullptr) out[i] = len;
  }
  return total;
}

/// W is the cell width (4 or 8); kOut selects the per-cell store. The
/// constexpr trip count fully unrolls the extraction, so each cell costs
/// one shift+mask+bit_width on the inverted movemask.
template <uint32_t W, bool kOut>
__attribute__((target("sse4.2"))) uint64_t NsNarrowSse42(const char* cells,
                                                         size_t n,
                                                         bool is_string,
                                                         uint32_t* out) {
  const __m128i blanks = _mm_set1_epi8(' ');
  const __m128i zeros = _mm_setzero_si128();
  constexpr uint32_t kPerVec = 16 / W;
  constexpr uint32_t kCellMask = W == 8 ? 0xFFu : 0xFu;
  uint64_t total = 0;
  size_t i = 0;
  for (; i + kPerVec <= n; i += kPerVec) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cells + i * W));
    __m128i pad = _mm_cmpeq_epi8(v, zeros);
    if (is_string) pad = _mm_or_si128(pad, _mm_cmpeq_epi8(v, blanks));
    const uint32_t nonpad = static_cast<uint16_t>(~_mm_movemask_epi8(pad));
    for (uint32_t c = 0; c < kPerVec; ++c) {
      const uint32_t len = static_cast<uint32_t>(
          std::bit_width((nonpad >> (c * W)) & kCellMask));
      total += len;
      if constexpr (kOut) out[i + c] = len;
    }
  }
  return total + NsNarrowTail(cells, W, n, i, is_string, kOut ? out : nullptr);
}

template <uint32_t W, bool kOut>
__attribute__((target("avx2"))) uint64_t NsNarrowAvx2(const char* cells,
                                                      size_t n, bool is_string,
                                                      uint32_t* out) {
  const __m256i blanks = _mm256_set1_epi8(' ');
  const __m256i zeros = _mm256_setzero_si256();
  constexpr uint32_t kPerVec = 32 / W;
  constexpr uint32_t kCellMask = W == 8 ? 0xFFu : 0xFu;
  uint64_t total = 0;
  size_t i = 0;
  for (; i + kPerVec <= n; i += kPerVec) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cells + i * W));
    __m256i pad = _mm256_cmpeq_epi8(v, zeros);
    if (is_string) pad = _mm256_or_si256(pad, _mm256_cmpeq_epi8(v, blanks));
    const uint32_t nonpad =
        static_cast<uint32_t>(~_mm256_movemask_epi8(pad));
    for (uint32_t c = 0; c < kPerVec; ++c) {
      const uint32_t len = static_cast<uint32_t>(
          std::bit_width((nonpad >> (c * W)) & kCellMask));
      total += len;
      if constexpr (kOut) out[i + c] = len;
    }
  }
  return total + NsNarrowTail(cells, W, n, i, is_string, kOut ? out : nullptr);
}

/// Dispatches the width-4/8 NS fast path at the given vector level.
/// Returns the total; writes per-cell lengths when out != nullptr.
uint64_t NsNarrow(SimdLevel level, const char* cells, uint32_t width,
                  size_t n, bool is_string, uint32_t* out) {
  if (level == SimdLevel::kAvx2) {
    if (width == 8) {
      return out != nullptr ? NsNarrowAvx2<8, true>(cells, n, is_string, out)
                            : NsNarrowAvx2<8, false>(cells, n, is_string, out);
    }
    return out != nullptr ? NsNarrowAvx2<4, true>(cells, n, is_string, out)
                          : NsNarrowAvx2<4, false>(cells, n, is_string, out);
  }
  if (width == 8) {
    return out != nullptr ? NsNarrowSse42<8, true>(cells, n, is_string, out)
                          : NsNarrowSse42<8, false>(cells, n, is_string, out);
  }
  return out != nullptr ? NsNarrowSse42<4, true>(cells, n, is_string, out)
                        : NsNarrowSse42<4, false>(cells, n, is_string, out);
}

// ---------------------------------------------------------------------------
// Run-boundary scans: whole-cell windowed compares.
//
// One unaligned vector compare of cell i against cell i-1 answers a
// boundary in a single cmpeq+movemask; for w <= half a vector, the window
// [cell i-1, cell i] vs [cell i, cell i+1] answers two boundaries at once.
// Only boundaries whose window stays inside the slice take the vector
// path; the last few fall back to memcmp, keeping results bit-identical.
// ---------------------------------------------------------------------------

/// Calls visit(i) for every boundary i in [1, n) where cell i != cell i-1.
template <typename Visitor>
__attribute__((target("sse4.2"))) void NeqBoundariesSse42(const char* cells,
                                                          uint32_t w, size_t n,
                                                          Visitor&& visit) {
  const size_t bytes = n * w;
  size_t i = 1;
  if (w <= 8) {
    const uint32_t want = (1u << w) - 1;
    for (; i + 1 < n && i * w + 16 <= bytes; i += 2) {
      const __m128i a = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cells + (i - 1) * w));
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cells + i * w));
      const uint32_t m =
          static_cast<uint16_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(a, b)));
      if ((m & want) != want) visit(i);
      if (((m >> w) & want) != want) visit(i + 1);
    }
  } else if (w <= 16) {
    const uint32_t want = w == 16 ? 0xFFFFu : (1u << w) - 1;
    for (; i < n && i * w + 16 <= bytes; ++i) {
      const __m128i a = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cells + (i - 1) * w));
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cells + i * w));
      const uint32_t m =
          static_cast<uint16_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(a, b)));
      if ((m & want) != want) visit(i);
    }
  } else {
    for (; i < n; ++i) {
      const char* a = cells + (i - 1) * w;
      const char* b = cells + i * w;
      bool eq = true;
      size_t off = 0;
      for (; off + 16 <= w; off += 16) {
        const __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + off));
        const __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + off));
        if (_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) != 0xFFFF) {
          eq = false;
          break;
        }
      }
      if (eq && off < w) eq = std::memcmp(a + off, b + off, w - off) == 0;
      if (!eq) visit(i);
    }
    return;
  }
  for (; i < n; ++i) {
    if (std::memcmp(cells + i * w, cells + (i - 1) * w, w) != 0) visit(i);
  }
}

template <typename Visitor>
__attribute__((target("avx2"))) void NeqBoundariesAvx2(const char* cells,
                                                       uint32_t w, size_t n,
                                                       Visitor&& visit) {
  const size_t bytes = n * w;
  size_t i = 1;
  if (w <= 16) {
    const uint32_t want = w == 16 ? 0xFFFFu : (1u << w) - 1;
    for (; i + 1 < n && i * w + 32 <= bytes; i += 2) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cells + (i - 1) * w));
      const __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cells + i * w));
      const uint32_t m = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(a, b)));
      if ((m & want) != want) visit(i);
      if (((m >> w) & want) != want) visit(i + 1);
    }
  } else if (w <= 32) {
    const uint32_t want = w == 32 ? 0xFFFFFFFFu : (1u << w) - 1;
    for (; i < n && i * w + 32 <= bytes; ++i) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cells + (i - 1) * w));
      const __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cells + i * w));
      const uint32_t m = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(a, b)));
      if ((m & want) != want) visit(i);
    }
  } else {
    for (; i < n; ++i) {
      const char* a = cells + (i - 1) * w;
      const char* b = cells + i * w;
      bool eq = true;
      size_t off = 0;
      for (; off + 32 <= w; off += 32) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + off));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + off));
        if (static_cast<uint32_t>(_mm256_movemask_epi8(
                _mm256_cmpeq_epi8(va, vb))) != 0xFFFFFFFFu) {
          eq = false;
          break;
        }
      }
      if (eq && off < w) eq = std::memcmp(a + off, b + off, w - off) == 0;
      if (!eq) visit(i);
    }
    return;
  }
  for (; i < n; ++i) {
    if (std::memcmp(cells + i * w, cells + (i - 1) * w, w) != 0) visit(i);
  }
}

/// Counting twin of NeqBoundaries*: no visitor, so the accumulation is a
/// branchless flag add and the loop stays free of data-dependent jumps.
__attribute__((target("sse4.2"))) size_t CountBoundariesSse42(
    const char* cells, uint32_t w, size_t n) {
  const size_t bytes = n * w;
  size_t runs = 0;
  size_t i = 1;
  if (w <= 8) {
    const uint32_t want = (1u << w) - 1;
    for (; i + 1 < n && i * w + 16 <= bytes; i += 2) {
      const __m128i a = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cells + (i - 1) * w));
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cells + i * w));
      const uint32_t m =
          static_cast<uint16_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(a, b)));
      runs += static_cast<size_t>((m & want) != want);
      runs += static_cast<size_t>(((m >> w) & want) != want);
    }
  } else if (w <= 16) {
    const uint32_t want = w == 16 ? 0xFFFFu : (1u << w) - 1;
    for (; i < n && i * w + 16 <= bytes; ++i) {
      const __m128i a = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cells + (i - 1) * w));
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cells + i * w));
      const uint32_t m =
          static_cast<uint16_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(a, b)));
      runs += static_cast<size_t>((m & want) != want);
    }
  } else {
    size_t local = 0;
    const auto count = [&local](size_t) { ++local; };
    NeqBoundariesSse42(cells, w, n, count);
    return local;
  }
  for (; i < n; ++i) {
    runs += static_cast<size_t>(
        std::memcmp(cells + i * w, cells + (i - 1) * w, w) != 0);
  }
  return runs;
}

__attribute__((target("avx2"))) size_t CountBoundariesAvx2(const char* cells,
                                                           uint32_t w,
                                                           size_t n) {
  const size_t bytes = n * w;
  size_t runs = 0;
  size_t i = 1;
  if (w <= 16) {
    const uint32_t want = w == 16 ? 0xFFFFu : (1u << w) - 1;
    for (; i + 1 < n && i * w + 32 <= bytes; i += 2) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cells + (i - 1) * w));
      const __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cells + i * w));
      const uint32_t m = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(a, b)));
      runs += static_cast<size_t>((m & want) != want);
      runs += static_cast<size_t>(((m >> w) & want) != want);
    }
  } else if (w <= 32) {
    const uint32_t want = w == 32 ? 0xFFFFFFFFu : (1u << w) - 1;
    for (; i < n && i * w + 32 <= bytes; ++i) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cells + (i - 1) * w));
      const __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cells + i * w));
      const uint32_t m = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(a, b)));
      runs += static_cast<size_t>((m & want) != want);
    }
  } else {
    size_t local = 0;
    const auto count = [&local](size_t) { ++local; };
    NeqBoundariesAvx2(cells, w, n, count);
    return local;
  }
  for (; i < n; ++i) {
    runs += static_cast<size_t>(
        std::memcmp(cells + i * w, cells + (i - 1) * w, w) != 0);
  }
  return runs;
}

#endif  // CFEST_KERNELS_X86

void BuildNonPadMask(const char* data, size_t bytes, bool is_string,
                     uint64_t* mask) {
#if CFEST_KERNELS_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      BuildNonPadMaskAvx2(data, bytes, is_string, mask);
      return;
    case SimdLevel::kSse42:
      BuildNonPadMaskSse42(data, bytes, is_string, mask);
      return;
    case SimdLevel::kScalar:
      break;
  }
#endif
  BuildNonPadMaskScalar(data, bytes, is_string, mask);
}

/// `nbits` (<= 64) mask bits starting at `bit_off`. Relies on the guard
/// word MaskWords() reserves.
inline uint64_t ExtractBits(const uint64_t* mask, size_t bit_off,
                            uint32_t nbits) {
  const size_t word = bit_off >> 6;
  const unsigned sh = static_cast<unsigned>(bit_off & 63);
  uint64_t bits = mask[word] >> sh;
  if (sh != 0) bits |= mask[word + 1] << (64 - sh);
  if (nbits < 64) bits &= (uint64_t{1} << nbits) - 1;
  return bits;
}

/// Null-suppressed length of the cell whose non-pad mask starts at
/// `base_bit`: one past the highest set bit, 0 if none.
inline uint32_t LengthFromMask(const uint64_t* mask, size_t base_bit,
                               uint32_t width) {
  uint32_t rem = width;
  while (rem > 0) {
    uint32_t chunk = rem & 63;
    if (chunk == 0) chunk = 64;
    rem -= chunk;
    const uint64_t bits = ExtractBits(mask, base_bit + rem, chunk);
    if (bits != 0) {
      return rem + static_cast<uint32_t>(std::bit_width(bits));
    }
  }
  return 0;
}

/// Reusable per-thread mask scratch: the engine's fan-out threads each keep
/// one, so steady-state kernel calls allocate nothing.
std::vector<uint64_t>& MaskScratch() {
  thread_local std::vector<uint64_t> scratch;
  return scratch;
}

uint64_t* MaskFor(size_t bytes) {
  std::vector<uint64_t>& scratch = MaskScratch();
  if (scratch.size() < MaskWords(bytes)) scratch.resize(MaskWords(bytes));
  return scratch.data();
}

}  // namespace

// ---------------------------------------------------------------------------
// Scalar references.
// ---------------------------------------------------------------------------

namespace scalar {

void NullSuppressedLengths(const char* cells, uint32_t width, size_t n,
                           bool is_string, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const char* cell = cells + i * width;
    uint32_t len = width;
    if (is_string) {
      while (len > 0 && (cell[len - 1] == ' ' || cell[len - 1] == '\0')) {
        --len;
      }
    } else {
      while (len > 0 && cell[len - 1] == '\0') --len;
    }
    out[i] = len;
  }
}

uint64_t TotalNullSuppressedLength(const char* cells, uint32_t width,
                                   size_t n, bool is_string) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    const char* cell = cells + i * width;
    uint32_t len = width;
    if (is_string) {
      while (len > 0 && (cell[len - 1] == ' ' || cell[len - 1] == '\0')) {
        --len;
      }
    } else {
      while (len > 0 && cell[len - 1] == '\0') --len;
    }
    total += len;
  }
  return total;
}

void RunStarts(const char* cells, uint32_t width, size_t n,
               const char* prev_cell, std::vector<uint32_t>* starts) {
  if (n == 0) return;
  if (prev_cell == nullptr || std::memcmp(prev_cell, cells, width) != 0) {
    starts->push_back(0);
  }
  for (size_t i = 1; i < n; ++i) {
    if (std::memcmp(cells + i * width, cells + (i - 1) * width, width) != 0) {
      starts->push_back(static_cast<uint32_t>(i));
    }
  }
}

size_t CountRuns(const char* cells, uint32_t width, size_t n,
                 const char* prev_cell) {
  if (n == 0) return 0;
  size_t runs = 0;
  if (prev_cell == nullptr || std::memcmp(prev_cell, cells, width) != 0) {
    ++runs;
  }
  for (size_t i = 1; i < n; ++i) {
    if (std::memcmp(cells + i * width, cells + (i - 1) * width, width) != 0) {
      ++runs;
    }
  }
  return runs;
}

void DecodeInts(const char* cells, uint32_t width, size_t n, int64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const char* cell = cells + i * width;
    uint64_t v = 0;
    for (uint32_t b = 0; b < width; ++b) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(cell[b]))
           << (8 * b);
    }
    if (width < 8) {
      const uint64_t sign = uint64_t{1} << (8 * width - 1);
      if (v & sign) v |= ~((sign << 1) - 1);
    }
    out[i] = static_cast<int64_t>(v);
  }
}

MinMax MinMaxInts(const int64_t* values, size_t n) {
  MinMax mm{values[0], values[0]};
  for (size_t i = 1; i < n; ++i) {
    if (values[i] < mm.min) mm.min = values[i];
    if (values[i] > mm.max) mm.max = values[i];
  }
  return mm;
}

uint64_t HashBytes(const char* data, size_t n) {
  // FNV-1a 64.
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

void GatherRows(const char* rows, uint32_t width, const uint64_t* perm,
                size_t n, char* out) {
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(out + i * width, rows + perm[i] * width, width);
  }
}

void GatherStrided(const char* src, size_t stride, uint32_t width, size_t n,
                   char* out) {
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(out + i * width, src + i * stride, width);
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Dispatched entry points.
// ---------------------------------------------------------------------------

/// Per-level dispatch counters for the batch-granular kernels (one count
/// per kernel call, amortized over the n cells it scans — the per-probe
/// HashBytes path is deliberately NOT counted; see the overhead policy in
/// estimator/README.md).
namespace {

void CountDispatch(SimdLevel level) {
  static metrics::Counter* const counters[] = {
      metrics::MetricRegistry::Global().GetCounter(
          "cfest.kernels.dispatch_scalar"),
      metrics::MetricRegistry::Global().GetCounter(
          "cfest.kernels.dispatch_sse42"),
      metrics::MetricRegistry::Global().GetCounter(
          "cfest.kernels.dispatch_avx2")};
  counters[static_cast<int>(level)]->Increment();
}

}  // namespace

void NullSuppressedLengths(const char* cells, uint32_t width, size_t n,
                           bool is_string, uint32_t* out) {
  if (n == 0 || width == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const SimdLevel level = ActiveSimdLevel();
  CountDispatch(level);
  if (level == SimdLevel::kScalar || n * width < 64) {
    scalar::NullSuppressedLengths(cells, width, n, is_string, out);
    return;
  }
#if CFEST_KERNELS_X86
  if (width == 4 || width == 8) {
    NsNarrow(level, cells, width, n, is_string, out);
    return;
  }
#endif
  const size_t bytes = n * width;
  uint64_t* mask = MaskFor(bytes);
  BuildNonPadMask(cells, bytes, is_string, mask);
  for (size_t i = 0; i < n; ++i) {
    out[i] = LengthFromMask(mask, i * width, width);
  }
}

uint64_t TotalNullSuppressedLength(const char* cells, uint32_t width,
                                   size_t n, bool is_string) {
  if (n == 0 || width == 0) return 0;
  const SimdLevel level = ActiveSimdLevel();
  CountDispatch(level);
  if (level == SimdLevel::kScalar || n * width < 64) {
    return scalar::TotalNullSuppressedLength(cells, width, n, is_string);
  }
#if CFEST_KERNELS_X86
  if (width == 4 || width == 8) {
    return NsNarrow(level, cells, width, n, is_string, nullptr);
  }
#endif
  const size_t bytes = n * width;
  uint64_t* mask = MaskFor(bytes);
  BuildNonPadMask(cells, bytes, is_string, mask);
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += LengthFromMask(mask, i * width, width);
  }
  return total;
}

void RunStarts(const char* cells, uint32_t width, size_t n,
               const char* prev_cell, std::vector<uint32_t>* starts) {
  if (n == 0) return;
  if (width == 0) {
    // Zero-width cells are all equal; at most the slice opens one run.
    if (prev_cell == nullptr) starts->push_back(0);
    return;
  }
  const SimdLevel level = ActiveSimdLevel();
  CountDispatch(level);
  if (level == SimdLevel::kScalar || n < 2 || (n - 1) * width < 64) {
    scalar::RunStarts(cells, width, n, prev_cell, starts);
    return;
  }
  if (prev_cell == nullptr || std::memcmp(prev_cell, cells, width) != 0) {
    starts->push_back(0);
  }
#if CFEST_KERNELS_X86
  const auto collect = [starts](size_t i) {
    starts->push_back(static_cast<uint32_t>(i));
  };
  if (level == SimdLevel::kAvx2) {
    NeqBoundariesAvx2(cells, width, n, collect);
  } else {
    NeqBoundariesSse42(cells, width, n, collect);
  }
#else
  for (size_t i = 1; i < n; ++i) {
    if (std::memcmp(cells + i * width, cells + (i - 1) * width, width) != 0) {
      starts->push_back(static_cast<uint32_t>(i));
    }
  }
#endif
}

size_t CountRuns(const char* cells, uint32_t width, size_t n,
                 const char* prev_cell) {
  if (n == 0) return 0;
  if (width == 0) return prev_cell == nullptr ? 1 : 0;
  const SimdLevel level = ActiveSimdLevel();
  CountDispatch(level);
  if (level == SimdLevel::kScalar || n < 2 || (n - 1) * width < 64) {
    return scalar::CountRuns(cells, width, n, prev_cell);
  }
  size_t runs = 0;
  if (prev_cell == nullptr || std::memcmp(prev_cell, cells, width) != 0) {
    ++runs;
  }
#if CFEST_KERNELS_X86
  if (level == SimdLevel::kAvx2) {
    runs += CountBoundariesAvx2(cells, width, n);
  } else {
    runs += CountBoundariesSse42(cells, width, n);
  }
#else
  for (size_t i = 1; i < n; ++i) {
    if (std::memcmp(cells + i * width, cells + (i - 1) * width, width) != 0) {
      ++runs;
    }
  }
#endif
  return runs;
}

void DecodeInts(const char* cells, uint32_t width, size_t n, int64_t* out) {
  if (width == 8) {
    // Little-endian host: 8-byte cells are already the int64 encoding.
    std::memcpy(out, cells, n * sizeof(int64_t));
    return;
  }
  scalar::DecodeInts(cells, width, n, out);
}

#if CFEST_KERNELS_X86

namespace {

__attribute__((target("sse4.2"))) MinMax MinMaxIntsSse42(
    const int64_t* values, size_t n) {
  __m128i vmin = _mm_set1_epi64x(values[0]);
  __m128i vmax = vmin;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    vmin = _mm_blendv_epi8(vmin, v, _mm_cmpgt_epi64(vmin, v));
    vmax = _mm_blendv_epi8(vmax, v, _mm_cmpgt_epi64(v, vmax));
  }
  alignas(16) int64_t lanes[2];
  MinMax mm{values[0], values[0]};
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), vmin);
  for (int64_t v : lanes) mm.min = v < mm.min ? v : mm.min;
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), vmax);
  for (int64_t v : lanes) mm.max = v > mm.max ? v : mm.max;
  for (; i < n; ++i) {
    if (values[i] < mm.min) mm.min = values[i];
    if (values[i] > mm.max) mm.max = values[i];
  }
  return mm;
}

__attribute__((target("avx2"))) MinMax MinMaxIntsAvx2(const int64_t* values,
                                                      size_t n) {
  __m256i vmin = _mm256_set1_epi64x(values[0]);
  __m256i vmax = vmin;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    vmin = _mm256_blendv_epi8(vmin, v, _mm256_cmpgt_epi64(vmin, v));
    vmax = _mm256_blendv_epi8(vmax, v, _mm256_cmpgt_epi64(v, vmax));
  }
  alignas(32) int64_t lanes[4];
  MinMax mm{values[0], values[0]};
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  for (int64_t v : lanes) mm.min = v < mm.min ? v : mm.min;
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmax);
  for (int64_t v : lanes) mm.max = v > mm.max ? v : mm.max;
  for (; i < n; ++i) {
    if (values[i] < mm.min) mm.min = values[i];
    if (values[i] > mm.max) mm.max = values[i];
  }
  return mm;
}

__attribute__((target("sse4.2"))) uint64_t HashBytesCrc(const char* data,
                                                        size_t n) {
  uint64_t crc = 0xFFFFFFFFu;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t chunk;
    std::memcpy(&chunk, data + i, 8);
    crc = _mm_crc32_u64(crc, chunk);
  }
  for (; i < n; ++i) {
    crc = _mm_crc32_u8(static_cast<uint32_t>(crc),
                       static_cast<unsigned char>(data[i]));
  }
  // Widen the 32-bit CRC and fold in the length so short keys spread over
  // the full 64-bit range the probe tables mask down from.
  return (crc ^ (static_cast<uint64_t>(n) << 32)) * 0x9E3779B97F4A7C15ull;
}

}  // namespace

#endif  // CFEST_KERNELS_X86

MinMax MinMaxInts(const int64_t* values, size_t n) {
#if CFEST_KERNELS_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      if (n >= 8) return MinMaxIntsAvx2(values, n);
      break;
    case SimdLevel::kSse42:
      if (n >= 4) return MinMaxIntsSse42(values, n);
      break;
    case SimdLevel::kScalar:
      break;
  }
#endif
  return scalar::MinMaxInts(values, n);
}

uint64_t HashBytes(const char* data, size_t n) {
#if CFEST_KERNELS_X86
  if (ActiveSimdLevel() >= SimdLevel::kSse42) return HashBytesCrc(data, n);
#endif
  return scalar::HashBytes(data, n);
}

void GatherRows(const char* rows, uint32_t width, const uint64_t* perm,
                size_t n, char* out) {
  // Width-specialized copies compile to straight vector moves; the generic
  // tail handles any row shape.
  switch (width) {
    case 8:
      for (size_t i = 0; i < n; ++i) {
        std::memcpy(out + i * 8, rows + perm[i] * 8, 8);
      }
      return;
    case 16:
      for (size_t i = 0; i < n; ++i) {
        std::memcpy(out + i * 16, rows + perm[i] * 16, 16);
      }
      return;
    case 24:
      for (size_t i = 0; i < n; ++i) {
        std::memcpy(out + i * 24, rows + perm[i] * 24, 24);
      }
      return;
    case 32:
      for (size_t i = 0; i < n; ++i) {
        std::memcpy(out + i * 32, rows + perm[i] * 32, 32);
      }
      return;
    default:
      for (size_t i = 0; i < n; ++i) {
        std::memcpy(out + i * width, rows + perm[i] * width, width);
      }
      return;
  }
}

void GatherStrided(const char* src, size_t stride, uint32_t width, size_t n,
                   char* out) {
  switch (width) {
    case 4:
      for (size_t i = 0; i < n; ++i) {
        std::memcpy(out + i * 4, src + i * stride, 4);
      }
      return;
    case 8:
      for (size_t i = 0; i < n; ++i) {
        std::memcpy(out + i * 8, src + i * stride, 8);
      }
      return;
    case 16:
      for (size_t i = 0; i < n; ++i) {
        std::memcpy(out + i * 16, src + i * stride, 16);
      }
      return;
    default:
      for (size_t i = 0; i < n; ++i) {
        std::memcpy(out + i * width, src + i * stride, width);
      }
      return;
  }
}

}  // namespace kernels
}  // namespace cfest
