#include "compression/compressed_index.h"

#include <algorithm>

#include "compression/encoding_util.h"
#include "compression/kernels.h"
#include "storage/row_codec.h"

namespace cfest {

Status CompressedIndex::DecodeAllRows(std::vector<std::string>* rows) const {
  if (stats_.row_count > 0 && pages_.empty()) {
    return Status::InvalidArgument(
        "index was built with keep_pages = false; pages unavailable");
  }
  const size_t ncols = schema_.num_columns();
  for (const Page& page : pages_) {
    CFEST_ASSIGN_OR_RETURN(Slice record, page.record(0));
    std::vector<std::vector<std::string>> columns(ncols);
    size_t pos = 0;
    for (size_t c = 0; c < ncols; ++c) {
      uint32_t chunk_len = 0;
      if (!encoding::GetU32(record, &pos, &chunk_len)) {
        return Status::Corruption("compressed page missing chunk length");
      }
      if (pos + chunk_len > record.size()) {
        return Status::Corruption("compressed chunk overruns page record");
      }
      CFEST_RETURN_NOT_OK(compressors_->column(c)->DecodeChunk(
          record.SubSlice(pos, chunk_len), &columns[c]));
      pos += chunk_len;
    }
    const size_t page_rows = columns.empty() ? 0 : columns[0].size();
    for (size_t c = 1; c < ncols; ++c) {
      if (columns[c].size() != page_rows) {
        return Status::Corruption("column chunks disagree on row count");
      }
    }
    for (size_t r = 0; r < page_rows; ++r) {
      std::string row;
      row.reserve(schema_.row_width());
      for (size_t c = 0; c < ncols; ++c) row += columns[c][r];
      rows->push_back(std::move(row));
    }
  }
  return Status::OK();
}

CompressedIndexBuilder::CompressedIndexBuilder(
    Schema schema, CompressionScheme scheme,
    std::shared_ptr<ColumnCompressorSet> compressors, const Options& options)
    : schema_(std::move(schema)),
      scheme_(std::move(scheme)),
      options_(options),
      compressors_(std::move(compressors)) {
  stats_.page_size = options_.page_size;
  stats_.columns.resize(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    stats_.columns[c].type = compressors_->column(c)->type();
  }
  OpenPage();
  batch_capable_ = !chunks_.empty();
  for (const auto& chunk : chunks_) {
    batch_capable_ = batch_capable_ && chunk->SupportsBatch();
  }
}

Result<std::unique_ptr<CompressedIndexBuilder>> CompressedIndexBuilder::Make(
    const Schema& schema, const CompressionScheme& scheme,
    const Options& options) {
  if (options.page_size < kPageHeaderSize + kSlotSize + 64) {
    return Status::InvalidArgument("page size too small: " +
                                   std::to_string(options.page_size));
  }
  if (options.page_size > 0xFFFF) {
    return Status::InvalidArgument(
        "page size exceeds 16-bit slot addressing: " +
        std::to_string(options.page_size));
  }
  CFEST_ASSIGN_OR_RETURN(ColumnCompressorSet set,
                         ColumnCompressorSet::Make(schema, scheme));
  auto shared = std::make_shared<ColumnCompressorSet>(std::move(set));
  return std::unique_ptr<CompressedIndexBuilder>(new CompressedIndexBuilder(
      schema, scheme, std::move(shared), options));
}

void CompressedIndexBuilder::OpenPage() {
  chunks_.clear();
  chunks_.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    chunks_.push_back(compressors_->column(c)->NewChunk());
  }
}

size_t CompressedIndexBuilder::PageCost(size_t extra_chunk_bytes) const {
  // Page header + one slot + per-column u32 chunk-length framing + chunks.
  size_t cost = kPageHeaderSize + kSlotSize + 4 * schema_.num_columns() +
                extra_chunk_bytes;
  for (const auto& chunk : chunks_) cost += chunk->Cost();
  return cost;
}

Status CompressedIndexBuilder::Add(Slice encoded_row) {
  if (finished_) return Status::InvalidArgument("builder already finished");
  if (encoded_row.size() != schema_.row_width()) {
    return Status::InvalidArgument(
        "encoded row has " + std::to_string(encoded_row.size()) +
        " bytes, expected " + std::to_string(schema_.row_width()));
  }
  // Chunk row counts are u16 on the wire; a page whose rows cost ~0 bytes
  // (e.g. a 0-bit-pointer dictionary page holding one distinct value) must
  // still be closed before the count wraps.
  if (chunks_[0]->count() >= 0xFFFF) {
    CFEST_RETURN_NOT_OK(FlushPage());
    OpenPage();
  }
  // Exact prospective page size if this row joined the current page.
  size_t prospective = kPageHeaderSize + kSlotSize + 4 * schema_.num_columns();
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    prospective += chunks_[c]->CostWith(
        encoded_row.SubSlice(schema_.offset(c), schema_.width(c)));
  }
  if (prospective > options_.page_size) {
    if (chunks_[0]->count() == 0) {
      return Status::CapacityExceeded(
          "a single row compresses to more than one page (" +
          std::to_string(prospective) + " > " +
          std::to_string(options_.page_size) + " bytes)");
    }
    CFEST_RETURN_NOT_OK(FlushPage());
    OpenPage();
    return Add(encoded_row);
  }
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    chunks_[c]->Add(
        encoded_row.SubSlice(schema_.offset(c), schema_.width(c)));
  }
  ++rows_added_;
  return Status::OK();
}

Status CompressedIndexBuilder::AddRows(const char* rows, uint64_t n) {
  if (finished_) return Status::InvalidArgument("builder already finished");
  const size_t row_width = schema_.row_width();
  const size_t ncols = schema_.num_columns();
  if (!batch_capable_) {
    for (uint64_t i = 0; i < n; ++i) {
      CFEST_RETURN_NOT_OK(Add(Slice(rows + i * row_width, row_width)));
    }
    return Status::OK();
  }
  // Page splits are identical to the per-row path: a batch is accepted only
  // when its exact total prospective page cost fits, and chunk costs are
  // monotone nondecreasing in the cells added, so whenever a whole batch
  // fits every prefix fits too — the per-row path would not have flushed
  // mid-batch. Near a page boundary the batch halves until it fits or
  // degenerates to Add(), which performs the flush exactly as before.
  constexpr uint64_t kFallbackBatchRows = 1024;
  std::vector<char*> cols(ncols);
  uint64_t i = 0;
  const size_t framing = kPageHeaderSize + kSlotSize + 4 * ncols;
  while (i < n) {
    if (chunks_[0]->count() >= 0xFFFF) {
      CFEST_RETURN_NOT_OK(FlushPage());
      OpenPage();
    }
    const uint64_t room = 0xFFFF - chunks_[0]->count();
    // Size the attempt to the page's remaining capacity instead of a fixed
    // chunk: the per-row cost observed on the current page (or the
    // previous page's row count when this one is still empty) predicts how
    // many more rows fit. The exact cost check below stays the gate — a
    // bad prediction costs one halving round, never correctness — but a
    // good one fills the page in one transpose + one cost pass where the
    // fixed 1024-row chunk took many (large pages), or avoided repeated
    // halving (small pages).
    uint64_t predicted = kFallbackBatchRows;
    const uint64_t page_rows = chunks_[0]->count();
    if (page_rows > 0) {
      const size_t used = PageCost(0);
      const size_t chunk_bytes = used - framing;
      if (chunk_bytes == 0) {
        predicted = room;  // rows currently cost nothing (0-bit pointers)
      } else {
        // Ceil per-row cost under-predicts the fit, so the attempt is
        // usually accepted on its first cost pass.
        const size_t per_row = (chunk_bytes + page_rows - 1) / page_rows;
        const size_t remaining =
            options_.page_size > used ? options_.page_size - used : 0;
        predicted = remaining / per_row;
      }
    } else if (last_page_rows_ > 0) {
      predicted = last_page_rows_;
    }
    uint64_t batch =
        std::min(std::min(n - i, room), std::max<uint64_t>(predicted, 1));
    // Transpose once at the attempted size; halved retries size prefixes of
    // the same contiguous column slices.
    transpose_arena_.Reset();
    for (size_t c = 0; c < ncols; ++c) {
      const uint32_t w = schema_.width(c);
      cols[c] = transpose_arena_.Allocate(batch * w);
      kernels::GatherStrided(rows + i * row_width + schema_.offset(c),
                             row_width, w, batch, cols[c]);
    }
    for (;;) {
      size_t prospective = framing;
      for (size_t c = 0; c < ncols; ++c) {
        prospective += chunks_[c]->CostWithBatch(cols[c], batch);
      }
      if (prospective <= options_.page_size) {
        for (size_t c = 0; c < ncols; ++c) {
          chunks_[c]->AddBatch(cols[c], batch);
        }
        rows_added_ += batch;
        i += batch;
        break;
      }
      if (batch == 1) {
        // Delegates the flush (or the single-oversized-row error) to Add().
        CFEST_RETURN_NOT_OK(Add(Slice(rows + i * row_width, row_width)));
        ++i;
        break;
      }
      batch /= 2;
    }
  }
  return Status::OK();
}

Status CompressedIndexBuilder::FlushPage() {
  last_page_rows_ = chunks_[0]->count();
  std::string record;
  for (size_t c = 0; c < chunks_.size(); ++c) {
    std::string bytes = chunks_[c]->Finish();
    encoding::PutU32(&record, static_cast<uint32_t>(bytes.size()));
    record += bytes;
    stats_.chunk_bytes += bytes.size();
    stats_.columns[c].chunk_bytes += bytes.size();
  }
  PageBuilder builder(next_page_id_++, PageType::kCompressedLeaf,
                      options_.page_size);
  CFEST_RETURN_NOT_OK(builder.Add(Slice(record)));
  Page page = builder.Finish();
  stats_.used_bytes += page.used_bytes();
  ++stats_.data_pages;
  if (options_.keep_pages) pages_.push_back(std::move(page));
  return Status::OK();
}

Result<CompressedIndex> CompressedIndexBuilder::Finish() {
  if (finished_) return Status::InvalidArgument("builder already finished");
  finished_ = true;
  if (chunks_[0]->count() > 0 || rows_added_ == 0) {
    // Flush the trailing partial page; an empty index still owns one page
    // (real engines allocate the root/first leaf eagerly).
    CFEST_RETURN_NOT_OK(FlushPage());
  }
  CFEST_RETURN_NOT_OK(compressors_->Validate());

  stats_.row_count = rows_added_;
  stats_.aux_bytes = compressors_->AuxiliaryBytes();
  stats_.dictionary_entries = compressors_->TotalDictionaryEntries();
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    stats_.columns[c].aux_bytes = compressors_->column(c)->AuxiliaryBytes();
    stats_.columns[c].dictionary_entries =
        compressors_->column(c)->TotalDictionaryEntries();
  }
  const size_t aux_capacity = options_.page_size - kPageHeaderSize;
  stats_.aux_pages = (stats_.aux_bytes + aux_capacity - 1) / aux_capacity;

  CompressedIndex index(schema_, scheme_);
  index.stats_ = stats_;
  index.pages_ = std::move(pages_);
  index.compressors_ = compressors_;
  return index;
}

Result<CompressedIndex> CompressRows(
    const Schema& schema, const CompressionScheme& scheme,
    const std::vector<Slice>& rows,
    const CompressedIndexBuilder::Options& options) {
  CFEST_ASSIGN_OR_RETURN(auto builder,
                         CompressedIndexBuilder::Make(schema, scheme, options));
  for (const Slice& row : rows) {
    CFEST_RETURN_NOT_OK(builder->Add(row));
  }
  return builder->Finish();
}

}  // namespace cfest
