#include "compression/null_suppression.h"

#include <cassert>

#include "compression/encoding_util.h"

namespace cfest {
namespace {

// ---------------------------------------------------------------------------
// Null suppression
// ---------------------------------------------------------------------------

class NsChunk final : public ColumnChunkCompressor {
 public:
  explicit NsChunk(const DataType& type) : type_(type) { buf_.reserve(256); }

  size_t CostWith(const Slice& cell) override {
    return Cost() + encoding::NullSuppressedCost(cell, type_);
  }

  void Add(const Slice& cell) override {
    assert(cell.size() == type_.FixedWidth());
    encoding::PutNullSuppressed(cell, type_, &buf_);
    ++count_;
  }

  size_t Cost() const override { return 2 + buf_.size(); }
  uint32_t count() const override { return count_; }

  std::string Finish() override {
    std::string out;
    out.reserve(Cost());
    encoding::PutU16(&out, static_cast<uint16_t>(count_));
    out += buf_;
    return out;
  }

 private:
  DataType type_;
  std::string buf_;
  uint32_t count_ = 0;
};

class NsCompressor final : public ColumnCompressor {
 public:
  explicit NsCompressor(const DataType& type) : type_(type) {}

  CompressionType type() const override {
    return CompressionType::kNullSuppression;
  }
  const DataType& data_type() const override { return type_; }

  std::unique_ptr<ColumnChunkCompressor> NewChunk() override {
    return std::make_unique<NsChunk>(type_);
  }

  Status DecodeChunk(Slice chunk,
                     std::vector<std::string>* cells) const override {
    size_t pos = 0;
    uint16_t count = 0;
    if (!encoding::GetU16(chunk, &pos, &count)) {
      return Status::Corruption("NS chunk missing count");
    }
    for (uint16_t i = 0; i < count; ++i) {
      std::string cell;
      CFEST_RETURN_NOT_OK(encoding::GetNullSuppressed(chunk, &pos, type_, &cell));
      cells->push_back(std::move(cell));
    }
    if (pos != chunk.size()) {
      return Status::Corruption("NS chunk has trailing bytes");
    }
    return Status::OK();
  }

 private:
  DataType type_;
};

// ---------------------------------------------------------------------------
// Raw pass-through
// ---------------------------------------------------------------------------

class NoneChunk final : public ColumnChunkCompressor {
 public:
  explicit NoneChunk(const DataType& type) : type_(type) {}

  size_t CostWith(const Slice& cell) override {
    return Cost() + cell.size();
  }

  void Add(const Slice& cell) override {
    assert(cell.size() == type_.FixedWidth());
    buf_.append(cell.data(), cell.size());
    ++count_;
  }

  size_t Cost() const override { return 2 + buf_.size(); }
  uint32_t count() const override { return count_; }

  std::string Finish() override {
    std::string out;
    encoding::PutU16(&out, static_cast<uint16_t>(count_));
    out += buf_;
    return out;
  }

 private:
  DataType type_;
  std::string buf_;
  uint32_t count_ = 0;
};

class NoneCompressor final : public ColumnCompressor {
 public:
  explicit NoneCompressor(const DataType& type) : type_(type) {}

  CompressionType type() const override { return CompressionType::kNone; }
  const DataType& data_type() const override { return type_; }

  std::unique_ptr<ColumnChunkCompressor> NewChunk() override {
    return std::make_unique<NoneChunk>(type_);
  }

  Status DecodeChunk(Slice chunk,
                     std::vector<std::string>* cells) const override {
    size_t pos = 0;
    uint16_t count = 0;
    if (!encoding::GetU16(chunk, &pos, &count)) {
      return Status::Corruption("raw chunk missing count");
    }
    const uint32_t w = type_.FixedWidth();
    if (pos + static_cast<size_t>(count) * w != chunk.size()) {
      return Status::Corruption("raw chunk size mismatch");
    }
    for (uint16_t i = 0; i < count; ++i) {
      cells->emplace_back(chunk.data() + pos, w);
      pos += w;
    }
    return Status::OK();
  }

 private:
  DataType type_;
};

}  // namespace

std::unique_ptr<ColumnCompressor> MakeNullSuppressionCompressor(
    const DataType& data_type) {
  return std::make_unique<NsCompressor>(data_type);
}

std::unique_ptr<ColumnCompressor> MakeNoneCompressor(
    const DataType& data_type) {
  return std::make_unique<NoneCompressor>(data_type);
}

}  // namespace cfest
