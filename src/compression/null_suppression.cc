#include "compression/null_suppression.h"

#include <cassert>
#include <vector>

#include "compression/encoding_util.h"
#include "compression/kernels.h"

namespace cfest {
namespace {

// ---------------------------------------------------------------------------
// Null suppression
// ---------------------------------------------------------------------------

class NsChunk final : public ColumnChunkCompressor {
 public:
  explicit NsChunk(const DataType& type) : type_(type) { buf_.reserve(256); }

  size_t CostWith(const Slice& cell) override {
    return Cost() + encoding::NullSuppressedCost(cell, type_);
  }

  void Add(const Slice& cell) override {
    assert(cell.size() == type_.FixedWidth());
    encoding::PutNullSuppressed(cell, type_, &buf_);
    ++count_;
  }

  bool SupportsBatch() const override { return true; }

  size_t CostWithBatch(const char* cells, size_t n) override {
    const uint32_t w = type_.FixedWidth();
    return Cost() + n * LengthHeaderBytes(type_) +
           kernels::TotalNullSuppressedLength(cells, w, n, type_.IsString());
  }

  void AddBatch(const char* cells, size_t n) override {
    const uint32_t w = type_.FixedWidth();
    const uint32_t header = LengthHeaderBytes(type_);
    thread_local std::vector<uint32_t> lengths;
    if (lengths.size() < n) lengths.resize(n);
    kernels::NullSuppressedLengths(cells, w, n, type_.IsString(),
                                   lengths.data());
    uint64_t payload = 0;
    for (size_t i = 0; i < n; ++i) payload += lengths[i];
    buf_.reserve(buf_.size() + n * header + payload);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t len = lengths[i];
      buf_.push_back(static_cast<char>(len & 0xFF));
      if (header == 2) buf_.push_back(static_cast<char>((len >> 8) & 0xFF));
      buf_.append(cells + i * w, len);
    }
    count_ += static_cast<uint32_t>(n);
  }

  size_t Cost() const override { return 2 + buf_.size(); }
  uint32_t count() const override { return count_; }

  std::string Finish() override {
    std::string out;
    out.reserve(Cost());
    encoding::PutU16(&out, static_cast<uint16_t>(count_));
    out += buf_;
    return out;
  }

 private:
  DataType type_;
  std::string buf_;
  uint32_t count_ = 0;
};

class NsCompressor final : public ColumnCompressor {
 public:
  explicit NsCompressor(const DataType& type) : type_(type) {}

  CompressionType type() const override {
    return CompressionType::kNullSuppression;
  }
  const DataType& data_type() const override { return type_; }

  std::unique_ptr<ColumnChunkCompressor> NewChunk() override {
    return std::make_unique<NsChunk>(type_);
  }

  Status DecodeChunk(Slice chunk,
                     std::vector<std::string>* cells) const override {
    size_t pos = 0;
    uint16_t count = 0;
    if (!encoding::GetU16(chunk, &pos, &count)) {
      return Status::Corruption("NS chunk missing count");
    }
    for (uint16_t i = 0; i < count; ++i) {
      std::string cell;
      CFEST_RETURN_NOT_OK(encoding::GetNullSuppressed(chunk, &pos, type_, &cell));
      cells->push_back(std::move(cell));
    }
    if (pos != chunk.size()) {
      return Status::Corruption("NS chunk has trailing bytes");
    }
    return Status::OK();
  }

 private:
  DataType type_;
};

// ---------------------------------------------------------------------------
// Raw pass-through
// ---------------------------------------------------------------------------

class NoneChunk final : public ColumnChunkCompressor {
 public:
  explicit NoneChunk(const DataType& type) : type_(type) {}

  size_t CostWith(const Slice& cell) override {
    return Cost() + cell.size();
  }

  void Add(const Slice& cell) override {
    assert(cell.size() == type_.FixedWidth());
    buf_.append(cell.data(), cell.size());
    ++count_;
  }

  bool SupportsBatch() const override { return true; }

  size_t CostWithBatch(const char* cells, size_t n) override {
    (void)cells;
    return Cost() + n * type_.FixedWidth();
  }

  void AddBatch(const char* cells, size_t n) override {
    buf_.append(cells, n * type_.FixedWidth());
    count_ += static_cast<uint32_t>(n);
  }

  size_t Cost() const override { return 2 + buf_.size(); }
  uint32_t count() const override { return count_; }

  std::string Finish() override {
    std::string out;
    encoding::PutU16(&out, static_cast<uint16_t>(count_));
    out += buf_;
    return out;
  }

 private:
  DataType type_;
  std::string buf_;
  uint32_t count_ = 0;
};

class NoneCompressor final : public ColumnCompressor {
 public:
  explicit NoneCompressor(const DataType& type) : type_(type) {}

  CompressionType type() const override { return CompressionType::kNone; }
  const DataType& data_type() const override { return type_; }

  std::unique_ptr<ColumnChunkCompressor> NewChunk() override {
    return std::make_unique<NoneChunk>(type_);
  }

  Status DecodeChunk(Slice chunk,
                     std::vector<std::string>* cells) const override {
    size_t pos = 0;
    uint16_t count = 0;
    if (!encoding::GetU16(chunk, &pos, &count)) {
      return Status::Corruption("raw chunk missing count");
    }
    const uint32_t w = type_.FixedWidth();
    if (pos + static_cast<size_t>(count) * w != chunk.size()) {
      return Status::Corruption("raw chunk size mismatch");
    }
    for (uint16_t i = 0; i < count; ++i) {
      cells->emplace_back(chunk.data() + pos, w);
      pos += w;
    }
    return Status::OK();
  }

 private:
  DataType type_;
};

}  // namespace

std::unique_ptr<ColumnCompressor> MakeNullSuppressionCompressor(
    const DataType& data_type) {
  return std::make_unique<NsCompressor>(data_type);
}

std::unique_ptr<ColumnCompressor> MakeNoneCompressor(
    const DataType& data_type) {
  return std::make_unique<NoneCompressor>(data_type);
}

}  // namespace cfest
