// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Run-length encoding over the sorted index order (extension beyond the
// paper's two techniques; see its refs [7][8]). Sorted index leaves make
// equal keys adjacent, so RLE approaches the global-dictionary bound without
// any dictionary.
//
// Chunk wire format:
//   u16 run_count, then per run: u32 run_length, NS-encoded value.

#ifndef CFEST_COMPRESSION_RLE_H_
#define CFEST_COMPRESSION_RLE_H_

#include "compression/compressor.h"

namespace cfest {

std::unique_ptr<ColumnCompressor> MakeRleCompressor(const DataType& data_type);

}  // namespace cfest

#endif  // CFEST_COMPRESSION_RLE_H_
