#include "compression/dictionary_page.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "common/bit_util.h"
#include "compression/encoding_util.h"
#include "compression/kernels.h"

namespace cfest {
namespace {

class PageDictCompressor;

class PageDictChunk final : public ColumnChunkCompressor {
 public:
  PageDictChunk(const DataType& type, const CompressionOptions& options,
                uint64_t* total_dict_entries)
      : type_(type),
        options_(options),
        total_dict_entries_(total_dict_entries) {}

  size_t CostWith(const Slice& cell) override {
    const bool is_new = slots_[FindSlot(cell.data(), cell.size())] == 0;
    const size_t dict_count = entries_.size() + (is_new ? 1 : 0);
    const size_t dict_bytes =
        dict_bytes_ +
        (is_new ? EntryCost(cell) : 0);
    return ChunkCost(dict_count, dict_bytes, codes_.size() + 1);
  }

  void Add(const Slice& cell) override {
    assert(cell.size() == type_.FixedWidth());
    const size_t slot = FindSlot(cell.data(), cell.size());
    uint32_t code;
    if (slots_[slot] != 0) {
      code = slots_[slot] - 1;
    } else {
      code = static_cast<uint32_t>(entries_.size());
      slots_[slot] = code + 1;
      entries_.emplace_back(cell.data(), cell.size());
      dict_bytes_ += EntryCost(cell);
      if ((entries_.size() + 1) * 4 > slots_.size() * 3) Grow();
    }
    codes_.push_back(code);
  }

  bool SupportsBatch() const override { return true; }

  /// Exact batch cost including intra-batch dictionary dedup: the batch's
  /// new distinct values are tentatively inserted into the probe table
  /// (capacity pre-grown so no rehash can move them) and rolled back —
  /// zeroing exactly the slots the batch filled restores the table, since
  /// tentative entries only ever extend existing probe chains.
  size_t CostWithBatch(const char* cells, size_t n) override {
    const uint32_t w = type_.FixedWidth();
    const size_t base_entries = entries_.size();
    const size_t base_bytes = dict_bytes_;
    EnsureCapacity(n);
    std::vector<size_t> added;
    for (size_t i = 0; i < n; ++i) {
      const char* cell = cells + i * w;
      const size_t slot = FindSlot(cell, w);
      if (slots_[slot] != 0) continue;
      slots_[slot] = static_cast<uint32_t>(entries_.size()) + 1;
      entries_.emplace_back(cell, w);
      dict_bytes_ += EntryCost(Slice(cell, w));
      added.push_back(slot);
    }
    const size_t cost =
        ChunkCost(entries_.size(), dict_bytes_, codes_.size() + n);
    for (size_t slot : added) slots_[slot] = 0;
    entries_.resize(base_entries);
    dict_bytes_ = base_bytes;
    return cost;
  }

  void AddBatch(const char* cells, size_t n) override {
    const uint32_t w = type_.FixedWidth();
    EnsureCapacity(n);
    codes_.reserve(codes_.size() + n);
    for (size_t i = 0; i < n; ++i) {
      const char* cell = cells + i * w;
      const size_t slot = FindSlot(cell, w);
      uint32_t code;
      if (slots_[slot] != 0) {
        code = slots_[slot] - 1;
      } else {
        code = static_cast<uint32_t>(entries_.size());
        slots_[slot] = code + 1;
        entries_.emplace_back(cell, w);
        dict_bytes_ += EntryCost(Slice(cell, w));
      }
      codes_.push_back(code);
    }
  }

  size_t Cost() const override {
    return ChunkCost(entries_.size(), dict_bytes_, codes_.size());
  }

  uint32_t count() const override {
    return static_cast<uint32_t>(codes_.size());
  }

  std::string Finish() override;

 private:
  size_t EntryCost(const Slice& cell) const {
    return options_.dict_entries_full_width
               ? type_.FixedWidth()
               : encoding::NullSuppressedCost(cell, type_);
  }

  int PointerBits(size_t dict_count) const {
    int bits = BitsFor(dict_count);
    if (!options_.dict_bit_packed_pointers) {
      bits = static_cast<int>(BytesForBits(bits)) * 8;
    }
    return bits;
  }

  size_t ChunkCost(size_t dict_count, size_t dict_bytes,
                   size_t row_count) const {
    const int bits = PointerBits(dict_count);
    return 2 + 1 + dict_bytes + 2 +
           BytesForBits(bits * row_count);
  }

  /// Linear probe: the slot holding `cell`'s code + 1, or the empty slot
  /// where it would be inserted. Codes are assigned in first-appearance
  /// order, so the hash (kernels::HashBytes — CRC or FNV depending on the
  /// active SIMD level) never influences any serialized byte.
  size_t FindSlot(const char* cell, size_t size) const {
    const size_t mask = slots_.size() - 1;
    size_t i = kernels::HashBytes(cell, size) & mask;
    while (slots_[i] != 0) {
      const std::string& entry = entries_[slots_[i] - 1];
      if (entry.size() == size &&
          std::memcmp(entry.data(), cell, size) == 0) {
        return i;
      }
      i = (i + 1) & mask;
    }
    return i;
  }

  /// Keeps the table under 75% load even if the next `extra` inserts are
  /// all new — the batch paths grow up front so no rehash can happen (and
  /// invalidate remembered slots) mid-batch.
  void EnsureCapacity(size_t extra) {
    while ((entries_.size() + extra + 1) * 4 > slots_.size() * 3) Grow();
  }

  void Grow() {
    std::vector<uint32_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    const size_t mask = slots_.size() - 1;
    for (const uint32_t stored : old) {
      if (stored == 0) continue;
      const std::string& entry = entries_[stored - 1];
      size_t i = kernels::HashBytes(entry.data(), entry.size()) & mask;
      while (slots_[i] != 0) i = (i + 1) & mask;
      slots_[i] = stored;
    }
  }

  DataType type_;
  CompressionOptions options_;
  uint64_t* total_dict_entries_;  // owned by the parent compressor

  /// Open-addressing probe table: entry code + 1, 0 = empty. Power-of-two
  /// sized, grown at 75% load. Replaces the old per-probe
  /// std::string-keyed map — CostWith was allocating a key per call on the
  /// page packer's hottest loop.
  std::vector<uint32_t> slots_ = std::vector<uint32_t>(256, 0);
  std::vector<std::string> entries_;  // insertion order
  size_t dict_bytes_ = 0;
  std::vector<uint32_t> codes_;
};

std::string PageDictChunk::Finish() {
  const int bits = PointerBits(entries_.size());
  std::string out;
  out.reserve(Cost());
  encoding::PutU16(&out, static_cast<uint16_t>(entries_.size()));
  out.push_back(static_cast<char>(bits));
  for (const std::string& entry : entries_) {
    if (options_.dict_entries_full_width) {
      out += entry;
    } else {
      encoding::PutNullSuppressed(Slice(entry), type_, &out);
    }
  }
  encoding::PutU16(&out, static_cast<uint16_t>(codes_.size()));
  BitWriter writer(&out);
  for (uint32_t code : codes_) {
    writer.Put(code, bits);
  }
  *total_dict_entries_ += entries_.size();
  return out;
}

class PageDictCompressor final : public ColumnCompressor {
 public:
  PageDictCompressor(const DataType& type, const CompressionOptions& options)
      : type_(type), options_(options) {}

  CompressionType type() const override {
    return CompressionType::kDictionaryPage;
  }
  const DataType& data_type() const override { return type_; }

  std::unique_ptr<ColumnChunkCompressor> NewChunk() override {
    return std::make_unique<PageDictChunk>(type_, options_,
                                           &total_dict_entries_);
  }

  Status DecodeChunk(Slice chunk,
                     std::vector<std::string>* cells) const override {
    size_t pos = 0;
    uint16_t dict_count = 0;
    if (!encoding::GetU16(chunk, &pos, &dict_count)) {
      return Status::Corruption("page-dict chunk missing dict count");
    }
    if (pos + 1 > chunk.size()) {
      return Status::Corruption("page-dict chunk missing pointer width");
    }
    const int bits = static_cast<unsigned char>(chunk[pos]);
    ++pos;
    if (bits > 32) {
      return Status::Corruption("page-dict pointer width too large");
    }
    std::vector<std::string> entries;
    entries.reserve(dict_count);
    const uint32_t w = type_.FixedWidth();
    for (uint16_t i = 0; i < dict_count; ++i) {
      if (options_.dict_entries_full_width) {
        if (pos + w > chunk.size()) {
          return Status::Corruption("truncated page-dict entry");
        }
        entries.emplace_back(chunk.data() + pos, w);
        pos += w;
      } else {
        std::string cell;
        CFEST_RETURN_NOT_OK(
            encoding::GetNullSuppressed(chunk, &pos, type_, &cell));
        entries.push_back(std::move(cell));
      }
    }
    uint16_t row_count = 0;
    if (!encoding::GetU16(chunk, &pos, &row_count)) {
      return Status::Corruption("page-dict chunk missing row count");
    }
    if (row_count > 0 && dict_count == 0) {
      return Status::Corruption("page-dict rows with empty dictionary");
    }
    BitReader reader(chunk.SubSlice(pos, chunk.size() - pos));
    for (uint16_t i = 0; i < row_count; ++i) {
      uint64_t code = 0;
      if (!reader.Get(bits, &code)) {
        return Status::Corruption("truncated page-dict pointer stream");
      }
      if (code >= dict_count) {
        return Status::Corruption("page-dict pointer out of range");
      }
      cells->push_back(entries[static_cast<size_t>(code)]);
    }
    return Status::OK();
  }

  uint64_t TotalDictionaryEntries() const override {
    return total_dict_entries_;
  }

 private:
  DataType type_;
  CompressionOptions options_;
  uint64_t total_dict_entries_ = 0;  // the paper's sum_i Pg(i)
};

}  // namespace

std::unique_ptr<ColumnCompressor> MakePageDictionaryCompressor(
    const DataType& data_type, const CompressionOptions& options) {
  return std::make_unique<PageDictCompressor>(data_type, options);
}

}  // namespace cfest
