// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Frame-of-reference (FOR) compression for integer columns (extension;
// standard in column stores). Each page chunk stores a base value (the
// minimum) and bit-packs every value as an offset of ceil(log2(max-min+1))
// bits. Unlike delta, FOR does not require sorted input and supports random
// access within the chunk.
//
// Chunk wire format:
//   u16 count; for count > 0: 8-byte base (LE), u8 offset_bits,
//   bit-packed offsets (LSB-first, padded to a whole byte).

#ifndef CFEST_COMPRESSION_FRAME_OF_REFERENCE_H_
#define CFEST_COMPRESSION_FRAME_OF_REFERENCE_H_

#include "compression/compressor.h"

namespace cfest {

/// Fails for non-integer columns.
Result<std::unique_ptr<ColumnCompressor>> MakeFrameOfReferenceCompressor(
    const DataType& data_type);

}  // namespace cfest

#endif  // CFEST_COMPRESSION_FRAME_OF_REFERENCE_H_
