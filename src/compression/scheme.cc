#include "compression/scheme.h"

namespace cfest {

std::string CompressionScheme::ToString() const {
  if (per_column.empty()) return CompressionTypeName(default_type);
  std::string out = "mixed(";
  for (size_t i = 0; i < per_column.size(); ++i) {
    if (i > 0) out += ",";
    out += CompressionTypeName(per_column[i]);
  }
  out += ")";
  return out;
}

Result<ColumnCompressorSet> ColumnCompressorSet::Make(
    const Schema& schema, const CompressionScheme& scheme) {
  if (!scheme.per_column.empty() &&
      scheme.per_column.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "scheme lists " + std::to_string(scheme.per_column.size()) +
        " columns but schema has " + std::to_string(schema.num_columns()));
  }
  ColumnCompressorSet set;
  set.compressors_.reserve(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    const CompressionType type =
        scheme.per_column.empty() ? scheme.default_type : scheme.per_column[i];
    CFEST_ASSIGN_OR_RETURN(
        auto compressor,
        MakeColumnCompressor(type, schema.column(i).type, scheme.options));
    set.compressors_.push_back(std::move(compressor));
  }
  return set;
}

uint64_t ColumnCompressorSet::AuxiliaryBytes() const {
  uint64_t total = 0;
  for (const auto& c : compressors_) total += c->AuxiliaryBytes();
  return total;
}

uint64_t ColumnCompressorSet::TotalDictionaryEntries() const {
  uint64_t total = 0;
  for (const auto& c : compressors_) total += c->TotalDictionaryEntries();
  return total;
}

Status ColumnCompressorSet::Validate() const {
  for (const auto& c : compressors_) {
    CFEST_RETURN_NOT_OK(c->Validate());
  }
  return Status::OK();
}

}  // namespace cfest
