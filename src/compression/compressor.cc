#include "compression/compressor.h"

#include "compression/combined.h"
#include "compression/delta.h"
#include "compression/frame_of_reference.h"
#include "compression/dictionary_global.h"
#include "compression/dictionary_page.h"
#include "compression/null_suppression.h"
#include "compression/prefix.h"
#include "compression/rle.h"

namespace cfest {

const char* CompressionTypeName(CompressionType type) {
  switch (type) {
    case CompressionType::kNone:
      return "none";
    case CompressionType::kNullSuppression:
      return "null_suppression";
    case CompressionType::kDictionaryPage:
      return "dictionary_page";
    case CompressionType::kDictionaryGlobal:
      return "dictionary_global";
    case CompressionType::kRle:
      return "rle";
    case CompressionType::kPrefix:
      return "prefix";
    case CompressionType::kDelta:
      return "delta";
    case CompressionType::kPrefixDictionary:
      return "prefix_dictionary";
    case CompressionType::kFrameOfReference:
      return "frame_of_reference";
  }
  return "unknown";
}

Result<CompressionType> CompressionTypeFromName(const std::string& name) {
  for (CompressionType t : AllCompressionTypes()) {
    if (name == CompressionTypeName(t)) return t;
  }
  return Status::NotFound("unknown compression type: " + name);
}

std::vector<CompressionType> AllCompressionTypes() {
  return {CompressionType::kNone,
          CompressionType::kNullSuppression,
          CompressionType::kDictionaryPage,
          CompressionType::kDictionaryGlobal,
          CompressionType::kRle,
          CompressionType::kPrefix,
          CompressionType::kDelta,
          CompressionType::kPrefixDictionary,
          CompressionType::kFrameOfReference};
}

Result<std::unique_ptr<ColumnCompressor>> MakeColumnCompressor(
    CompressionType type, const DataType& data_type,
    const CompressionOptions& options) {
  if (data_type.FixedWidth() == 0) {
    return Status::InvalidArgument("cannot compress zero-width column type " +
                                   data_type.ToString());
  }
  switch (type) {
    case CompressionType::kNone:
      return MakeNoneCompressor(data_type);
    case CompressionType::kNullSuppression:
      return MakeNullSuppressionCompressor(data_type);
    case CompressionType::kDictionaryPage:
      return MakePageDictionaryCompressor(data_type, options);
    case CompressionType::kDictionaryGlobal:
      return MakeGlobalDictionaryCompressor(data_type, options);
    case CompressionType::kRle:
      return MakeRleCompressor(data_type);
    case CompressionType::kPrefix:
      return MakePrefixCompressor(data_type);
    case CompressionType::kDelta:
      return MakeDeltaCompressor(data_type);
    case CompressionType::kPrefixDictionary:
      return MakeCombinedPageCompressor(data_type);
    case CompressionType::kFrameOfReference:
      return MakeFrameOfReferenceCompressor(data_type);
  }
  return Status::NotSupported("unhandled compression type");
}

}  // namespace cfest
