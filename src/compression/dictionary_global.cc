#include "compression/dictionary_global.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "compression/encoding_util.h"
#include "compression/kernels.h"

namespace cfest {
namespace {

class GlobalDictCompressor;

class GlobalDictChunk final : public ColumnChunkCompressor {
 public:
  GlobalDictChunk(GlobalDictCompressor* parent, uint32_t pointer_bytes)
      : parent_(parent), pointer_bytes_(pointer_bytes) {}

  size_t CostWith(const Slice& cell) override;
  void Add(const Slice& cell) override;
  bool SupportsBatch() const override { return true; }
  size_t CostWithBatch(const char* cells, size_t n) override;
  void AddBatch(const char* cells, size_t n) override;

  size_t Cost() const override {
    return 2 + codes_.size() * pointer_bytes_;
  }

  uint32_t count() const override {
    return static_cast<uint32_t>(codes_.size());
  }

  std::string Finish() override {
    std::string out;
    out.reserve(Cost());
    encoding::PutU16(&out, static_cast<uint16_t>(codes_.size()));
    for (uint32_t code : codes_) {
      for (uint32_t b = 0; b < pointer_bytes_; ++b) {
        out.push_back(static_cast<char>((code >> (8 * b)) & 0xFF));
      }
    }
    return out;
  }

 private:
  GlobalDictCompressor* parent_;
  uint32_t pointer_bytes_;
  std::vector<uint32_t> codes_;
};

class GlobalDictCompressor final : public ColumnCompressor {
 public:
  GlobalDictCompressor(const DataType& type, const CompressionOptions& options)
      : type_(type),
        pointer_bytes_(options.global_pointer_bytes == 0
                           ? 4
                           : options.global_pointer_bytes) {}

  CompressionType type() const override {
    return CompressionType::kDictionaryGlobal;
  }
  const DataType& data_type() const override { return type_; }

  std::unique_ptr<ColumnChunkCompressor> NewChunk() override {
    return std::make_unique<GlobalDictChunk>(this, pointer_bytes_);
  }

  Status DecodeChunk(Slice chunk,
                     std::vector<std::string>* cells) const override {
    size_t pos = 0;
    uint16_t row_count = 0;
    if (!encoding::GetU16(chunk, &pos, &row_count)) {
      return Status::Corruption("global-dict chunk missing row count");
    }
    if (pos + static_cast<size_t>(row_count) * pointer_bytes_ != chunk.size()) {
      return Status::Corruption("global-dict chunk size mismatch");
    }
    for (uint16_t i = 0; i < row_count; ++i) {
      uint64_t code = 0;
      for (uint32_t b = 0; b < pointer_bytes_; ++b) {
        code |= static_cast<uint64_t>(
                    static_cast<unsigned char>(chunk[pos + b]))
                << (8 * b);
      }
      pos += pointer_bytes_;
      if (code >= entries_.size()) {
        return Status::Corruption("global-dict pointer out of range");
      }
      cells->push_back(entries_[static_cast<size_t>(code)]);
    }
    return Status::OK();
  }

  /// The paper's d * k: every distinct value stored once at full width.
  uint64_t AuxiliaryBytes() const override {
    return static_cast<uint64_t>(entries_.size()) * type_.FixedWidth();
  }

  uint64_t TotalDictionaryEntries() const override { return entries_.size(); }

  Status Validate() const override {
    const uint64_t capacity =
        pointer_bytes_ >= 4 ? ~uint64_t{0} : (uint64_t{1} << (8 * pointer_bytes_));
    if (entries_.size() > capacity) {
      return Status::CapacityExceeded(
          "global dictionary has " + std::to_string(entries_.size()) +
          " entries but " + std::to_string(pointer_bytes_) +
          "-byte pointers address only " + std::to_string(capacity));
    }
    return Status::OK();
  }

  /// Codes are assigned in first-appearance order, so the probe table is an
  /// internal accelerator only: the hash function (kernels::HashBytes, CRC
  /// or FNV depending on the active SIMD level) never influences the codes
  /// or any serialized byte.
  uint32_t Encode(const Slice& cell) {
    const size_t slot = FindSlot(cell);
    if (slots_[slot] != 0) return slots_[slot] - 1;
    const uint32_t code = static_cast<uint32_t>(entries_.size());
    entries_.push_back(cell.ToString());
    slots_[slot] = code + 1;
    if ((entries_.size() + 1) * 4 > slots_.size() * 3) Grow();
    return code;
  }

  uint32_t pointer_bytes() const { return pointer_bytes_; }

 private:
  /// Linear probe: the slot holding `cell`'s code + 1, or the empty slot
  /// where it would be inserted.
  size_t FindSlot(const Slice& cell) const {
    const size_t mask = slots_.size() - 1;
    size_t i = kernels::HashBytes(cell.data(), cell.size()) & mask;
    while (slots_[i] != 0) {
      const std::string& entry = entries_[slots_[i] - 1];
      if (entry.size() == cell.size() &&
          std::memcmp(entry.data(), cell.data(), entry.size()) == 0) {
        return i;
      }
      i = (i + 1) & mask;
    }
    return i;
  }

  void Grow() {
    std::vector<uint32_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    const size_t mask = slots_.size() - 1;
    for (const uint32_t stored : old) {
      if (stored == 0) continue;
      const std::string& entry = entries_[stored - 1];
      size_t i = kernels::HashBytes(entry.data(), entry.size()) & mask;
      while (slots_[i] != 0) i = (i + 1) & mask;
      slots_[i] = stored;
    }
  }

  DataType type_;
  uint32_t pointer_bytes_;
  /// Open-addressing probe table: entry code + 1, 0 = empty. Power-of-two
  /// sized, grown at 75% load.
  std::vector<uint32_t> slots_ = std::vector<uint32_t>(1024, 0);
  std::vector<std::string> entries_;
};

size_t GlobalDictChunk::CostWith(const Slice& cell) {
  (void)cell;  // cost is independent of the value under the global model
  return Cost() + pointer_bytes_;
}

void GlobalDictChunk::Add(const Slice& cell) {
  codes_.push_back(parent_->Encode(cell));
}

size_t GlobalDictChunk::CostWithBatch(const char* cells, size_t n) {
  (void)cells;  // cost is independent of the values under the global model
  return Cost() + n * pointer_bytes_;
}

void GlobalDictChunk::AddBatch(const char* cells, size_t n) {
  const uint32_t w = parent_->data_type().FixedWidth();
  codes_.reserve(codes_.size() + n);
  for (size_t i = 0; i < n; ++i) {
    codes_.push_back(parent_->Encode(Slice(cells + i * w, w)));
  }
}

}  // namespace

std::unique_ptr<ColumnCompressor> MakeGlobalDictionaryCompressor(
    const DataType& data_type, const CompressionOptions& options) {
  return std::make_unique<GlobalDictCompressor>(data_type, options);
}

}  // namespace cfest
