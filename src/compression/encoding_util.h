// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Shared wire-format helpers for compressed column chunks. All chunk formats
// are little-endian and self-delimiting.

#ifndef CFEST_COMPRESSION_ENCODING_UTIL_H_
#define CFEST_COMPRESSION_ENCODING_UTIL_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/row_codec.h"
#include "storage/types.h"

namespace cfest {
namespace encoding {

inline void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Reads a u16/u32 at *pos, advancing it. Returns false on overrun.
inline bool GetU16(Slice in, size_t* pos, uint16_t* v) {
  if (*pos + 2 > in.size()) return false;
  *v = static_cast<uint16_t>(static_cast<unsigned char>(in[*pos])) |
       static_cast<uint16_t>(static_cast<unsigned char>(in[*pos + 1])) << 8;
  *pos += 2;
  return true;
}

inline bool GetU32(Slice in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<unsigned char>(in[*pos + i]))
         << (8 * i);
  }
  *v = r;
  *pos += 4;
  return true;
}

/// Bytes a null-suppressed cell of this column costs on the wire:
/// length header + suppressed payload.
inline size_t NullSuppressedCost(const Slice& cell, const DataType& type) {
  return LengthHeaderBytes(type) + NullSuppressedLength(cell, type);
}

/// Appends length header + suppressed payload of `cell`.
void PutNullSuppressed(const Slice& cell, const DataType& type,
                       std::string* out);

/// Reads one null-suppressed cell at *pos, appending the re-padded
/// fixed-width cell bytes to *cell_out.
Status GetNullSuppressed(Slice in, size_t* pos, const DataType& type,
                         std::string* cell_out);

/// Re-pads a suppressed payload to the column's fixed width: blanks for
/// strings, zero bytes for integers.
void PadCell(Slice payload, const DataType& type, std::string* cell_out);

}  // namespace encoding
}  // namespace cfest

#endif  // CFEST_COMPRESSION_ENCODING_UTIL_H_
