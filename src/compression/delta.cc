#include "compression/delta.h"

#include <cassert>

#include "compression/encoding_util.h"

namespace cfest {
namespace {

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

size_t VarintSize(uint64_t v) {
  size_t bytes = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++bytes;
  }
  return bytes;
}

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(Slice in, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 63) {
    const unsigned char byte = static_cast<unsigned char>(in[*pos]);
    ++*pos;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

int64_t DecodeCellValue(const Slice& cell, uint32_t width) {
  uint64_t v = 0;
  for (uint32_t i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(cell[i])) << (8 * i);
  }
  if (width < 8) {
    const uint64_t sign = 1ull << (8 * width - 1);
    if (v & sign) v |= ~((sign << 1) - 1);
  }
  return static_cast<int64_t>(v);
}

class DeltaChunk final : public ColumnChunkCompressor {
 public:
  explicit DeltaChunk(const DataType& type) : type_(type) {}

  size_t CostWith(const Slice& cell) override {
    const int64_t v = DecodeCellValue(cell, type_.FixedWidth());
    if (count_ == 0) return Cost() + 8;
    return Cost() + VarintSize(ZigZag(v - prev_));
  }

  void Add(const Slice& cell) override {
    assert(cell.size() == type_.FixedWidth());
    const int64_t v = DecodeCellValue(cell, type_.FixedWidth());
    if (count_ == 0) {
      for (int i = 0; i < 8; ++i) {
        buf_.push_back(
            static_cast<char>((static_cast<uint64_t>(v) >> (8 * i)) & 0xFF));
      }
    } else {
      PutVarint(ZigZag(v - prev_), &buf_);
    }
    prev_ = v;
    ++count_;
  }

  size_t Cost() const override { return 2 + buf_.size(); }
  uint32_t count() const override { return count_; }

  std::string Finish() override {
    std::string out;
    out.reserve(Cost());
    encoding::PutU16(&out, static_cast<uint16_t>(count_));
    out += buf_;
    return out;
  }

 private:
  DataType type_;
  std::string buf_;
  int64_t prev_ = 0;
  uint32_t count_ = 0;
};

class DeltaCompressor final : public ColumnCompressor {
 public:
  explicit DeltaCompressor(const DataType& type) : type_(type) {}

  CompressionType type() const override { return CompressionType::kDelta; }
  const DataType& data_type() const override { return type_; }

  std::unique_ptr<ColumnChunkCompressor> NewChunk() override {
    return std::make_unique<DeltaChunk>(type_);
  }

  Status DecodeChunk(Slice chunk,
                     std::vector<std::string>* cells) const override {
    size_t pos = 0;
    uint16_t count = 0;
    if (!encoding::GetU16(chunk, &pos, &count)) {
      return Status::Corruption("delta chunk missing count");
    }
    if (count == 0) {
      if (pos != chunk.size()) {
        return Status::Corruption("delta chunk has trailing bytes");
      }
      return Status::OK();
    }
    if (pos + 8 > chunk.size()) {
      return Status::Corruption("delta chunk missing first value");
    }
    int64_t value = 0;
    {
      uint64_t raw = 0;
      for (int i = 0; i < 8; ++i) {
        raw |= static_cast<uint64_t>(
                   static_cast<unsigned char>(chunk[pos + i]))
               << (8 * i);
      }
      value = static_cast<int64_t>(raw);
      pos += 8;
    }
    AppendCell(value, cells);
    for (uint16_t i = 1; i < count; ++i) {
      uint64_t zz = 0;
      if (!GetVarint(chunk, &pos, &zz)) {
        return Status::Corruption("delta chunk truncated varint");
      }
      value += UnZigZag(zz);
      AppendCell(value, cells);
    }
    if (pos != chunk.size()) {
      return Status::Corruption("delta chunk has trailing bytes");
    }
    return Status::OK();
  }

 private:
  void AppendCell(int64_t v, std::vector<std::string>* cells) const {
    std::string cell;
    const uint32_t w = type_.FixedWidth();
    for (uint32_t i = 0; i < w; ++i) {
      cell.push_back(
          static_cast<char>((static_cast<uint64_t>(v) >> (8 * i)) & 0xFF));
    }
    cells->push_back(std::move(cell));
  }

  DataType type_;
};

}  // namespace

Result<std::unique_ptr<ColumnCompressor>> MakeDeltaCompressor(
    const DataType& data_type) {
  if (!data_type.IsInteger()) {
    return Status::InvalidArgument(
        "delta compression requires an integer column, got " +
        data_type.ToString());
  }
  return {std::make_unique<DeltaCompressor>(data_type)};
}

}  // namespace cfest
