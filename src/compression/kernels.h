// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Hardware-fast sizing kernels. These are the inner loops of SampleCF's
// per-row cost model — null-suppressed length scans, RLE run-boundary
// detection, frame-of-reference min/max, dictionary probing, and the
// sorted-row gathers of the sample-index build — lifted out of the per-cell
// virtual-call path into batch primitives over contiguous fixed-width cell
// slices.
//
// Every kernel has a scalar reference implementation (namespace
// kernels::scalar) that defines the semantics, and vector variants
// (SSE4.2 / AVX2 on x86-64) selected at runtime via ActiveSimdLevel()
// (common/simd.h). All variants are bit-identical by contract;
// tests/kernels_test.cc pins that across fuzzed widths, alignments, odd
// tails, and empty/single-cell slices, and bench/bench_micro_kernels.cc
// gates the vector variants' speedups.
//
// Cell layout: `cells` points at `n` contiguous cells of exactly `width`
// bytes each — the column-major slices the batched compress path
// (compression/compressed_index.cc) transposes index rows into.

#ifndef CFEST_COMPRESSION_KERNELS_H_
#define CFEST_COMPRESSION_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/simd.h"

namespace cfest {
namespace kernels {

// ---------------------------------------------------------------------------
// Null-suppression length scan (the paper's l_i / NS "bit-width" kernel).
// ---------------------------------------------------------------------------

/// Per-cell null-suppressed lengths, matching NullSuppressedLength()
/// (storage/row_codec.h): strings drop trailing blanks (0x20) and NULs,
/// integers drop trailing zero bytes of the little-endian encoding.
/// `out` receives n entries.
void NullSuppressedLengths(const char* cells, uint32_t width, size_t n,
                           bool is_string, uint32_t* out);

/// Sum of the per-cell lengths above, without materializing them.
uint64_t TotalNullSuppressedLength(const char* cells, uint32_t width,
                                   size_t n, bool is_string);

// ---------------------------------------------------------------------------
// RLE run-boundary detection.
// ---------------------------------------------------------------------------

/// Appends to *starts the index of every cell that opens a new run.
/// `prev_cell` is the value of the run open before this slice (null if
/// none): cell 0 starts a run iff prev_cell is null or differs from it.
/// Indices are strictly increasing, in [0, n).
void RunStarts(const char* cells, uint32_t width, size_t n,
               const char* prev_cell, std::vector<uint32_t>* starts);

/// Number of runs RunStarts would report, without materializing them.
size_t CountRuns(const char* cells, uint32_t width, size_t n,
                 const char* prev_cell);

// ---------------------------------------------------------------------------
// Integer decode + min/max (frame-of-reference sizing).
// ---------------------------------------------------------------------------

/// Decodes n little-endian two's-complement cells of 1..8 bytes into
/// sign-extended int64s (matching frame_of_reference.cc's DecodeCellValue).
void DecodeInts(const char* cells, uint32_t width, size_t n, int64_t* out);

struct MinMax {
  int64_t min = 0;
  int64_t max = 0;
};

/// Min and max of n > 0 int64 values.
MinMax MinMaxInts(const int64_t* values, size_t n);

// ---------------------------------------------------------------------------
// Hashing (dictionary probe) and row gathers (index build/merge).
// ---------------------------------------------------------------------------

/// 64-bit hash of a byte range. CRC32C-based where SSE4.2 is active, FNV-1a
/// otherwise. The hash value is an internal probe accelerator only — no
/// on-disk or estimate bytes ever depend on it, so the variants need not
/// (and do not) agree with each other.
uint64_t HashBytes(const char* data, size_t n);

/// out[i] = rows[perm[i]] for n fixed-width rows: the permutation-apply of
/// the sample-index sort and the delta sort of ExtendedWith.
void GatherRows(const char* rows, uint32_t width, const uint64_t* perm,
                size_t n, char* out);

/// Strided gather: out receives n contiguous `width`-byte cells read at
/// `stride`-byte steps from src (the row-major → column-major transpose of
/// the batched compress path).
void GatherStrided(const char* src, size_t stride, uint32_t width, size_t n,
                   char* out);

// ---------------------------------------------------------------------------
// Scalar references. Same contracts; always the plain per-cell loops.
// Exposed so tests can pin bit-identity and benches can measure honestly.
// ---------------------------------------------------------------------------

namespace scalar {
void NullSuppressedLengths(const char* cells, uint32_t width, size_t n,
                           bool is_string, uint32_t* out);
uint64_t TotalNullSuppressedLength(const char* cells, uint32_t width,
                                   size_t n, bool is_string);
void RunStarts(const char* cells, uint32_t width, size_t n,
               const char* prev_cell, std::vector<uint32_t>* starts);
size_t CountRuns(const char* cells, uint32_t width, size_t n,
                 const char* prev_cell);
void DecodeInts(const char* cells, uint32_t width, size_t n, int64_t* out);
MinMax MinMaxInts(const int64_t* values, size_t n);
uint64_t HashBytes(const char* data, size_t n);
void GatherRows(const char* rows, uint32_t width, const uint64_t* perm,
                size_t n, char* out);
void GatherStrided(const char* src, size_t stride, uint32_t width, size_t n,
                   char* out);
}  // namespace scalar

}  // namespace kernels
}  // namespace cfest

#endif  // CFEST_COMPRESSION_KERNELS_H_
