// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Null suppression (paper §II-A, Fig. 1a): each cell is stored as its actual
// (pad-stripped) bytes plus a length header — "abc" in a char(20) costs
// 3 + 1 bytes instead of 20.
//
// Chunk wire format:
//   u16 count, then per cell: length header (u8 or u16) + payload bytes.

#ifndef CFEST_COMPRESSION_NULL_SUPPRESSION_H_
#define CFEST_COMPRESSION_NULL_SUPPRESSION_H_

#include "compression/compressor.h"

namespace cfest {

/// \brief Factory for the null-suppression column compressor.
std::unique_ptr<ColumnCompressor> MakeNullSuppressionCompressor(
    const DataType& data_type);

/// \brief Raw pass-through "compressor" storing cells at fixed width
/// (baseline with CF = 1; chunk format: u16 count + count*k bytes).
std::unique_ptr<ColumnCompressor> MakeNoneCompressor(const DataType& data_type);

}  // namespace cfest

#endif  // CFEST_COMPRESSION_NULL_SUPPRESSION_H_
