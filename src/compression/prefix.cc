#include "compression/prefix.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "compression/encoding_util.h"

namespace cfest {
namespace {

/// Length of the longest common prefix of two byte strings.
size_t CommonPrefixLen(const Slice& a, const Slice& b) {
  const size_t limit = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

class PrefixChunk final : public ColumnChunkCompressor {
 public:
  explicit PrefixChunk(const DataType& type)
      : type_(type), len_hdr_(LengthHeaderBytes(type)) {}

  size_t CostWith(const Slice& cell) override {
    const uint32_t l = NullSuppressedLength(cell, type_);
    size_t prefix = prefix_len_;
    if (values_.empty()) {
      prefix = l;  // the first value's full suppressed bytes form the prefix
    } else {
      prefix = std::min(prefix,
                        CommonPrefixLen(Slice(cell.data(), l), PrefixSlice()));
    }
    const size_t n = values_.size() + 1;
    // sum of suffix lengths = sum of l_i - n * prefix
    return ChunkCost(n, sum_lengths_ + l, prefix);
  }

  void Add(const Slice& cell) override {
    assert(cell.size() == type_.FixedWidth());
    const uint32_t l = NullSuppressedLength(cell, type_);
    if (values_.empty()) {
      prefix_len_ = l;
    } else {
      prefix_len_ = std::min(
          prefix_len_,
          CommonPrefixLen(Slice(cell.data(), l), PrefixSlice()));
    }
    values_.emplace_back(cell.data(), l);
    sum_lengths_ += l;
  }

  size_t Cost() const override {
    return ChunkCost(values_.size(), sum_lengths_, prefix_len_);
  }

  uint32_t count() const override {
    return static_cast<uint32_t>(values_.size());
  }

  std::string Finish() override {
    std::string out;
    out.reserve(Cost());
    encoding::PutU16(&out, static_cast<uint16_t>(values_.size()));
    PutLen(&out, values_.empty() ? 0 : prefix_len_);
    if (!values_.empty()) {
      out.append(values_.front().data(), prefix_len_);
    }
    for (const std::string& v : values_) {
      PutLen(&out, v.size() - prefix_len_);
      out.append(v.data() + prefix_len_, v.size() - prefix_len_);
    }
    return out;
  }

 private:
  Slice PrefixSlice() const {
    return Slice(values_.front().data(), prefix_len_);
  }

  void PutLen(std::string* out, size_t len) const {
    if (len_hdr_ == 1) {
      out->push_back(static_cast<char>(len & 0xFF));
    } else {
      encoding::PutU16(out, static_cast<uint16_t>(len));
    }
  }

  size_t ChunkCost(size_t n, size_t total_lengths, size_t prefix) const {
    if (n == 0) return 2 + len_hdr_;
    return 2 + len_hdr_ + prefix + n * len_hdr_ + (total_lengths - n * prefix);
  }

  DataType type_;
  uint32_t len_hdr_;
  std::vector<std::string> values_;  // null-suppressed payloads
  size_t sum_lengths_ = 0;
  size_t prefix_len_ = 0;
};

class PrefixCompressor final : public ColumnCompressor {
 public:
  explicit PrefixCompressor(const DataType& type) : type_(type) {}

  CompressionType type() const override { return CompressionType::kPrefix; }
  const DataType& data_type() const override { return type_; }

  std::unique_ptr<ColumnChunkCompressor> NewChunk() override {
    return std::make_unique<PrefixChunk>(type_);
  }

  Status DecodeChunk(Slice chunk,
                     std::vector<std::string>* cells) const override {
    const uint32_t len_hdr = LengthHeaderBytes(type_);
    size_t pos = 0;
    uint16_t count = 0;
    if (!encoding::GetU16(chunk, &pos, &count)) {
      return Status::Corruption("prefix chunk missing count");
    }
    uint32_t prefix_len = 0;
    CFEST_RETURN_NOT_OK(GetLen(chunk, &pos, len_hdr, &prefix_len));
    if (pos + prefix_len > chunk.size()) {
      return Status::Corruption("truncated prefix bytes");
    }
    const Slice prefix(chunk.data() + pos, prefix_len);
    pos += prefix_len;
    for (uint16_t i = 0; i < count; ++i) {
      uint32_t suffix_len = 0;
      CFEST_RETURN_NOT_OK(GetLen(chunk, &pos, len_hdr, &suffix_len));
      if (pos + suffix_len > chunk.size()) {
        return Status::Corruption("truncated prefix-chunk suffix");
      }
      if (prefix_len + suffix_len > type_.FixedWidth()) {
        return Status::Corruption("prefix-chunk cell exceeds column width");
      }
      std::string payload(prefix.data(), prefix.size());
      payload.append(chunk.data() + pos, suffix_len);
      pos += suffix_len;
      std::string cell;
      encoding::PadCell(Slice(payload), type_, &cell);
      cells->push_back(std::move(cell));
    }
    if (pos != chunk.size()) {
      return Status::Corruption("prefix chunk has trailing bytes");
    }
    return Status::OK();
  }

 private:
  static Status GetLen(Slice chunk, size_t* pos, uint32_t len_hdr,
                       uint32_t* len) {
    if (len_hdr == 1) {
      if (*pos + 1 > chunk.size()) {
        return Status::Corruption("truncated length header");
      }
      *len = static_cast<unsigned char>(chunk[*pos]);
      *pos += 1;
      return Status::OK();
    }
    uint16_t l16 = 0;
    if (!encoding::GetU16(chunk, pos, &l16)) {
      return Status::Corruption("truncated length header");
    }
    *len = l16;
    return Status::OK();
  }

  DataType type_;
};

}  // namespace

std::unique_ptr<ColumnCompressor> MakePrefixCompressor(
    const DataType& data_type) {
  return std::make_unique<PrefixCompressor>(data_type);
}

}  // namespace cfest
