#include "compression/frame_of_reference.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/bit_util.h"
#include "compression/encoding_util.h"
#include "compression/kernels.h"

namespace cfest {
namespace {

int64_t DecodeCellValue(const Slice& cell, uint32_t width) {
  uint64_t v = 0;
  for (uint32_t i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(cell[i])) << (8 * i);
  }
  if (width < 8) {
    const uint64_t sign = 1ull << (8 * width - 1);
    if (v & sign) v |= ~((sign << 1) - 1);
  }
  return static_cast<int64_t>(v);
}

/// Bits to encode offsets in [0, span] (span as unsigned difference).
int OffsetBits(uint64_t span) {
  if (span == 0) return 0;
  if (span == ~uint64_t{0}) return 64;
  return BitsFor(span + 1);
}

class ForChunk final : public ColumnChunkCompressor {
 public:
  explicit ForChunk(const DataType& type) : type_(type) {}

  size_t CostWith(const Slice& cell) override {
    const int64_t v = DecodeCellValue(cell, type_.FixedWidth());
    const int64_t lo = values_.empty() ? v : std::min(min_, v);
    const int64_t hi = values_.empty() ? v : std::max(max_, v);
    return ChunkCost(values_.size() + 1,
                     static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo));
  }

  void Add(const Slice& cell) override {
    assert(cell.size() == type_.FixedWidth());
    const int64_t v = DecodeCellValue(cell, type_.FixedWidth());
    if (values_.empty()) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    values_.push_back(v);
  }

  bool SupportsBatch() const override { return true; }

  size_t CostWithBatch(const char* cells, size_t n) override {
    if (n == 0) return Cost();
    const uint32_t w = type_.FixedWidth();
    std::vector<int64_t>& decoded = DecodeScratch();
    if (decoded.size() < n) decoded.resize(n);
    kernels::DecodeInts(cells, w, n, decoded.data());
    const kernels::MinMax mm = kernels::MinMaxInts(decoded.data(), n);
    const int64_t lo = values_.empty() ? mm.min : std::min(min_, mm.min);
    const int64_t hi = values_.empty() ? mm.max : std::max(max_, mm.max);
    return ChunkCost(values_.size() + n,
                     static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo));
  }

  void AddBatch(const char* cells, size_t n) override {
    if (n == 0) return;
    const uint32_t w = type_.FixedWidth();
    const size_t old = values_.size();
    values_.resize(old + n);
    kernels::DecodeInts(cells, w, n, values_.data() + old);
    const kernels::MinMax mm = kernels::MinMaxInts(values_.data() + old, n);
    if (old == 0) {
      min_ = mm.min;
      max_ = mm.max;
    } else {
      min_ = std::min(min_, mm.min);
      max_ = std::max(max_, mm.max);
    }
  }

  size_t Cost() const override {
    if (values_.empty()) return 2;
    return ChunkCost(values_.size(),
                     static_cast<uint64_t>(max_) - static_cast<uint64_t>(min_));
  }

  uint32_t count() const override {
    return static_cast<uint32_t>(values_.size());
  }

  std::string Finish() override {
    std::string out;
    out.reserve(Cost());
    encoding::PutU16(&out, static_cast<uint16_t>(values_.size()));
    if (values_.empty()) return out;
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<char>(
          (static_cast<uint64_t>(min_) >> (8 * i)) & 0xFF));
    }
    const int bits =
        OffsetBits(static_cast<uint64_t>(max_) - static_cast<uint64_t>(min_));
    out.push_back(static_cast<char>(bits));
    BitWriter writer(&out);
    for (int64_t v : values_) {
      writer.Put(static_cast<uint64_t>(v) - static_cast<uint64_t>(min_), bits);
    }
    return out;
  }

 private:
  static std::vector<int64_t>& DecodeScratch() {
    thread_local std::vector<int64_t> scratch;
    return scratch;
  }

  size_t ChunkCost(size_t n, uint64_t span) const {
    if (n == 0) return 2;
    return 2 + 8 + 1 + BytesForBits(static_cast<size_t>(OffsetBits(span)) * n);
  }

  DataType type_;
  std::vector<int64_t> values_;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

class ForCompressor final : public ColumnCompressor {
 public:
  explicit ForCompressor(const DataType& type) : type_(type) {}

  CompressionType type() const override {
    return CompressionType::kFrameOfReference;
  }
  const DataType& data_type() const override { return type_; }

  std::unique_ptr<ColumnChunkCompressor> NewChunk() override {
    return std::make_unique<ForChunk>(type_);
  }

  Status DecodeChunk(Slice chunk,
                     std::vector<std::string>* cells) const override {
    size_t pos = 0;
    uint16_t count = 0;
    if (!encoding::GetU16(chunk, &pos, &count)) {
      return Status::Corruption("FOR chunk missing count");
    }
    if (count == 0) {
      if (pos != chunk.size()) {
        return Status::Corruption("FOR chunk has trailing bytes");
      }
      return Status::OK();
    }
    if (pos + 9 > chunk.size()) {
      return Status::Corruption("FOR chunk missing base/width");
    }
    uint64_t base = 0;
    for (int i = 0; i < 8; ++i) {
      base |= static_cast<uint64_t>(static_cast<unsigned char>(chunk[pos + i]))
              << (8 * i);
    }
    pos += 8;
    const int bits = static_cast<unsigned char>(chunk[pos]);
    ++pos;
    if (bits > 64) return Status::Corruption("FOR offset width too large");
    BitReader reader(chunk.SubSlice(pos, chunk.size() - pos));
    const uint32_t w = type_.FixedWidth();
    for (uint16_t i = 0; i < count; ++i) {
      uint64_t offset = 0;
      if (!reader.Get(bits, &offset)) {
        return Status::Corruption("FOR chunk truncated offsets");
      }
      const uint64_t v = base + offset;
      std::string cell;
      for (uint32_t b = 0; b < w; ++b) {
        cell.push_back(static_cast<char>((v >> (8 * b)) & 0xFF));
      }
      cells->push_back(std::move(cell));
    }
    return Status::OK();
  }

 private:
  DataType type_;
};

}  // namespace

Result<std::unique_ptr<ColumnCompressor>> MakeFrameOfReferenceCompressor(
    const DataType& data_type) {
  if (!data_type.IsInteger()) {
    return Status::InvalidArgument(
        "frame-of-reference requires an integer column, got " +
        data_type.ToString());
  }
  return {std::make_unique<ForCompressor>(data_type)};
}

}  // namespace cfest
