// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Per-page common-prefix compression (extension; SQL Server's row/page
// compression applies a similar prefix pass before dictionary encoding).
// The longest prefix shared by *all* null-suppressed cells in the page is
// stored once; each cell stores only its suffix.
//
// Chunk wire format:
//   u16 count, length header + prefix bytes,
//   then per cell: length header + suffix bytes.

#ifndef CFEST_COMPRESSION_PREFIX_H_
#define CFEST_COMPRESSION_PREFIX_H_

#include "compression/compressor.h"

namespace cfest {

std::unique_ptr<ColumnCompressor> MakePrefixCompressor(
    const DataType& data_type);

}  // namespace cfest

#endif  // CFEST_COMPRESSION_PREFIX_H_
