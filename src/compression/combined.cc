#include "compression/combined.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <vector>

#include "common/bit_util.h"
#include "compression/encoding_util.h"

namespace cfest {
namespace {

size_t CommonPrefixLen(const Slice& a, const Slice& b) {
  const size_t limit = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

class CombinedChunk final : public ColumnChunkCompressor {
 public:
  CombinedChunk(const DataType& type, uint64_t* total_dict_entries)
      : type_(type),
        len_hdr_(LengthHeaderBytes(type)),
        total_dict_entries_(total_dict_entries) {}

  size_t CostWith(const Slice& cell) override {
    const uint32_t l = NullSuppressedLength(cell, type_);
    const std::string key(cell.data(), l);
    size_t dict_count = entries_.size();
    size_t sum_lens = sum_entry_lengths_;
    size_t prefix = prefix_len_;
    if (dict_index_.find(key) == dict_index_.end()) {
      ++dict_count;
      sum_lens += l;
      prefix = entries_.empty()
                   ? l
                   : std::min(prefix,
                              CommonPrefixLen(Slice(key), PrefixSlice()));
    }
    return ChunkCost(dict_count, sum_lens, prefix, codes_.size() + 1);
  }

  void Add(const Slice& cell) override {
    assert(cell.size() == type_.FixedWidth());
    const uint32_t l = NullSuppressedLength(cell, type_);
    std::string key(cell.data(), l);
    auto [it, inserted] = dict_index_.emplace(
        std::move(key), static_cast<uint32_t>(entries_.size()));
    if (inserted) {
      if (entries_.empty()) {
        prefix_len_ = l;
      } else {
        prefix_len_ = std::min(
            prefix_len_, CommonPrefixLen(Slice(it->first), PrefixSlice()));
      }
      entries_.push_back(it->first);
      sum_entry_lengths_ += l;
    }
    codes_.push_back(it->second);
  }

  size_t Cost() const override {
    return ChunkCost(entries_.size(), sum_entry_lengths_, prefix_len_,
                     codes_.size());
  }

  uint32_t count() const override {
    return static_cast<uint32_t>(codes_.size());
  }

  std::string Finish() override {
    const int bits = BitsFor(entries_.size());
    std::string out;
    out.reserve(Cost());
    encoding::PutU16(&out, static_cast<uint16_t>(entries_.size()));
    out.push_back(static_cast<char>(bits));
    const size_t prefix = entries_.empty() ? 0 : prefix_len_;
    PutLen(&out, prefix);
    if (!entries_.empty()) {
      out.append(entries_.front().data(), prefix);
    }
    for (const std::string& entry : entries_) {
      PutLen(&out, entry.size() - prefix);
      out.append(entry.data() + prefix, entry.size() - prefix);
    }
    encoding::PutU16(&out, static_cast<uint16_t>(codes_.size()));
    BitWriter writer(&out);
    for (uint32_t code : codes_) writer.Put(code, bits);
    *total_dict_entries_ += entries_.size();
    return out;
  }

 private:
  Slice PrefixSlice() const {
    return Slice(entries_.front().data(), prefix_len_);
  }

  void PutLen(std::string* out, size_t len) const {
    if (len_hdr_ == 1) {
      out->push_back(static_cast<char>(len & 0xFF));
    } else {
      encoding::PutU16(out, static_cast<uint16_t>(len));
    }
  }

  size_t ChunkCost(size_t dict_count, size_t sum_lens, size_t prefix,
                   size_t row_count) const {
    int bits = BitsFor(dict_count);
    const size_t entry_region =
        dict_count == 0
            ? len_hdr_
            : len_hdr_ + prefix + dict_count * len_hdr_ +
                  (sum_lens - dict_count * prefix);
    return 2 + 1 + entry_region + 2 + BytesForBits(bits * row_count);
  }

  DataType type_;
  uint32_t len_hdr_;
  uint64_t* total_dict_entries_;  // owned by the parent compressor
  std::unordered_map<std::string, uint32_t> dict_index_;
  std::vector<std::string> entries_;  // null-suppressed payloads
  size_t sum_entry_lengths_ = 0;
  size_t prefix_len_ = 0;
  std::vector<uint32_t> codes_;
};

class CombinedCompressor final : public ColumnCompressor {
 public:
  explicit CombinedCompressor(const DataType& type) : type_(type) {}

  CompressionType type() const override {
    return CompressionType::kPrefixDictionary;
  }
  const DataType& data_type() const override { return type_; }

  std::unique_ptr<ColumnChunkCompressor> NewChunk() override {
    return std::make_unique<CombinedChunk>(type_, &total_dict_entries_);
  }

  uint64_t TotalDictionaryEntries() const override {
    return total_dict_entries_;
  }

  Status DecodeChunk(Slice chunk,
                     std::vector<std::string>* cells) const override {
    const uint32_t len_hdr = LengthHeaderBytes(type_);
    size_t pos = 0;
    uint16_t dict_count = 0;
    if (!encoding::GetU16(chunk, &pos, &dict_count)) {
      return Status::Corruption("combined chunk missing dict count");
    }
    if (pos + 1 > chunk.size()) {
      return Status::Corruption("combined chunk missing pointer width");
    }
    const int bits = static_cast<unsigned char>(chunk[pos]);
    ++pos;
    if (bits > 32) {
      return Status::Corruption("combined pointer width too large");
    }
    uint32_t prefix_len = 0;
    CFEST_RETURN_NOT_OK(GetLen(chunk, &pos, len_hdr, &prefix_len));
    if (pos + prefix_len > chunk.size()) {
      return Status::Corruption("combined chunk truncated prefix");
    }
    const Slice prefix(chunk.data() + pos, prefix_len);
    pos += prefix_len;
    std::vector<std::string> entries;
    entries.reserve(dict_count);
    for (uint16_t i = 0; i < dict_count; ++i) {
      uint32_t suffix_len = 0;
      CFEST_RETURN_NOT_OK(GetLen(chunk, &pos, len_hdr, &suffix_len));
      if (pos + suffix_len > chunk.size()) {
        return Status::Corruption("combined chunk truncated suffix");
      }
      if (prefix_len + suffix_len > type_.FixedWidth()) {
        return Status::Corruption("combined entry exceeds column width");
      }
      std::string payload(prefix.data(), prefix.size());
      payload.append(chunk.data() + pos, suffix_len);
      pos += suffix_len;
      std::string cell;
      encoding::PadCell(Slice(payload), type_, &cell);
      entries.push_back(std::move(cell));
    }
    uint16_t row_count = 0;
    if (!encoding::GetU16(chunk, &pos, &row_count)) {
      return Status::Corruption("combined chunk missing row count");
    }
    if (row_count > 0 && dict_count == 0) {
      return Status::Corruption("combined rows with empty dictionary");
    }
    BitReader reader(chunk.SubSlice(pos, chunk.size() - pos));
    for (uint16_t i = 0; i < row_count; ++i) {
      uint64_t code = 0;
      if (!reader.Get(bits, &code)) {
        return Status::Corruption("combined chunk truncated pointers");
      }
      if (code >= dict_count) {
        return Status::Corruption("combined pointer out of range");
      }
      cells->push_back(entries[static_cast<size_t>(code)]);
    }
    return Status::OK();
  }

 private:
  uint64_t total_dict_entries_ = 0;

  static Status GetLen(Slice chunk, size_t* pos, uint32_t len_hdr,
                       uint32_t* len) {
    if (len_hdr == 1) {
      if (*pos + 1 > chunk.size()) {
        return Status::Corruption("truncated length header");
      }
      *len = static_cast<unsigned char>(chunk[*pos]);
      *pos += 1;
      return Status::OK();
    }
    uint16_t l16 = 0;
    if (!encoding::GetU16(chunk, pos, &l16)) {
      return Status::Corruption("truncated length header");
    }
    *len = l16;
    return Status::OK();
  }

  DataType type_;
};

}  // namespace

std::unique_ptr<ColumnCompressor> MakeCombinedPageCompressor(
    const DataType& data_type) {
  return std::make_unique<CombinedCompressor>(data_type);
}

}  // namespace cfest
