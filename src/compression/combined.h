// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Combined prefix + dictionary page compression — the pipeline SQL Server's
// PAGE compression actually applies (prefix pass, then dictionary pass) and
// therefore the closest model to the estimator the paper's authors shipped.
// Per page: the distinct values share one common prefix stored once; the
// dictionary stores each distinct value's *suffix* (null-suppressed); rows
// store bit-packed ceil(log2 d_page) pointers.
//
// Chunk wire format:
//   u16 dict_count, u8 ptr_bits,
//   length header + prefix bytes,
//   per entry: length header + suffix bytes,
//   u16 row_count, bit-packed pointers.

#ifndef CFEST_COMPRESSION_COMBINED_H_
#define CFEST_COMPRESSION_COMBINED_H_

#include "compression/compressor.h"

namespace cfest {

std::unique_ptr<ColumnCompressor> MakeCombinedPageCompressor(
    const DataType& data_type);

}  // namespace cfest

#endif  // CFEST_COMPRESSION_COMBINED_H_
