#include "server/telemetry_http.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/metrics.h"

namespace cfest {
namespace {

/// Hard cap on a request head; a scraper's GET line plus headers fits in a
/// fraction of this, and anything larger is dropped rather than buffered.
constexpr size_t kMaxRequestBytes = 16 * 1024;

std::string StatusLine(int code) {
  switch (code) {
    case 200: return "HTTP/1.1 200 OK\r\n";
    case 404: return "HTTP/1.1 404 Not Found\r\n";
    case 405: return "HTTP/1.1 405 Method Not Allowed\r\n";
    default:  return "HTTP/1.1 500 Internal Server Error\r\n";
  }
}

std::string RenderResponse(int code, const std::string& content_type,
                           const std::string& body) {
  std::string out = StatusLine(code);
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a scraper hanging up mid-response must surface as an
    // error return, not a process-wide SIGPIPE.
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer gone; nothing to recover
    }
    sent += static_cast<size_t>(n);
  }
}

/// Reads until the end of the request head (blank line) or the size cap.
/// Any request body is ignored — all supported routes are GET.
std::string ReadRequestHead(int fd) {
  std::string head;
  char buf[2048];
  while (head.size() < kMaxRequestBytes &&
         head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    head.append(buf, static_cast<size_t>(n));
  }
  return head;
}

}  // namespace

TelemetryHttpServer::~TelemetryHttpServer() { Stop(); }

Status TelemetryHttpServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("telemetry server already running on port " +
                                 std::to_string(port_));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind port " + std::to_string(port) + ": " +
                            message);
  }
  if (::listen(fd, /*backlog=*/16) != 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen: " + message);
  }
  // Read the bound port back — with port 0 the kernel picked one.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname: " + message);
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TelemetryHttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() (not just close) wakes the accept thread out of its
  // blocking accept; the loop then sees running_ == false and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void TelemetryHttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down (or the socket broke for good);
      // either way the loop is done.
      if (!running_.load(std::memory_order_acquire)) break;
      break;
    }
    HandleConnection(client);
    ::close(client);
  }
}

void TelemetryHttpServer::HandleConnection(int client_fd) {
  const std::string head = ReadRequestHead(client_fd);
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  // "GET /path HTTP/1.1" — split on the two spaces.
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? "" : request_line.substr(0, sp1);
  std::string path = sp2 == std::string::npos
                         ? ""
                         : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Scrapers may append query parameters; the routes ignore them.
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    SendAll(client_fd, RenderResponse(405, "text/plain; charset=utf-8",
                                      "method not allowed\n"));
    return;
  }
  if (path == "/healthz") {
    SendAll(client_fd,
            RenderResponse(200, "text/plain; charset=utf-8", "ok\n"));
    return;
  }
  if (path == "/metrics") {
    const metrics::MetricsSnapshot snapshot =
        metrics::MetricRegistry::Global().Snapshot();
    SendAll(client_fd,
            RenderResponse(200, "text/plain; version=0.0.4; charset=utf-8",
                           snapshot.ToPrometheusText()));
    return;
  }
  if (path == "/metrics.json") {
    const metrics::MetricsSnapshot snapshot =
        metrics::MetricRegistry::Global().Snapshot();
    SendAll(client_fd,
            RenderResponse(200, "application/json", snapshot.ToJson()));
    return;
  }
  SendAll(client_fd,
          RenderResponse(404, "text/plain; charset=utf-8", "not found\n"));
}

}  // namespace cfest
