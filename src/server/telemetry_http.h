// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// TelemetryHttpServer — a minimal embedded HTTP endpoint for live metric
// scraping. Plain blocking POSIX sockets, one background accept thread, no
// third-party dependencies: just enough HTTP/1.1 to serve a Prometheus
// scraper or a curl in a CI step.
//
// Routes (GET only):
//   /metrics       Prometheus text exposition of the global registry
//                  (text/plain; version=0.0.4), including labeled children.
//   /metrics.json  The same snapshot as JSON (application/json).
//   /healthz       Liveness probe; responds "ok\n" (text/plain).
// Anything else is 404; non-GET methods are 405.
//
// Every response is rendered fresh per request from
// MetricRegistry::Global().Snapshot() — the server holds no metric state of
// its own, so it can start before, during, or after the instrumented work.
// Connections are handled serially on the accept thread (Connection: close,
// Content-Length always set); a telemetry scrape every few seconds does not
// need concurrency, and serial handling keeps the server trivially correct.
//
// Lifecycle: Start(port) binds (port 0 picks an ephemeral port — use
// port() to learn it, handy for tests and for CI scrapes), Stop() shuts
// the listener down and joins the thread. Stop is idempotent and is also
// called from the destructor.

#ifndef CFEST_SERVER_TELEMETRY_HTTP_H_
#define CFEST_SERVER_TELEMETRY_HTTP_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"

namespace cfest {

class TelemetryHttpServer {
 public:
  TelemetryHttpServer() = default;
  ~TelemetryHttpServer();

  TelemetryHttpServer(const TelemetryHttpServer&) = delete;
  TelemetryHttpServer& operator=(const TelemetryHttpServer&) = delete;

  /// Binds `port` on all interfaces and starts the accept thread. Port 0
  /// binds an ephemeral port (read it back with port()). Fails if the
  /// server is already running or the bind/listen fails.
  Status Start(uint16_t port);

  /// Shuts the listener down and joins the accept thread. Safe to call
  /// when not running, and safe to call more than once.
  void Stop();

  /// Whether the accept thread is running.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound TCP port (the ephemeral port when Start was given 0);
  /// 0 when the server is not running.
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int client_fd);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace cfest

#endif  // CFEST_SERVER_TELEMETRY_HTTP_H_
