#include "common/status.h"

namespace cfest {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kCapacityExceeded:
      return "Capacity exceeded";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace cfest
