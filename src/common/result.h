// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Result<T>: a value or an error Status (Arrow-style).

#ifndef CFEST_COMMON_RESULT_H_
#define CFEST_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace cfest {

/// \brief Holds either a successfully computed T or an error Status.
///
/// Use `CFEST_ASSIGN_OR_RETURN(auto v, Expr())` to unwrap inside functions
/// that themselves return Status/Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status; OK if this result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// The contained value. Requires ok().
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(rep_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace cfest

#define CFEST_CONCAT_IMPL(a, b) a##b
#define CFEST_CONCAT(a, b) CFEST_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// binds the value to `lhs` (which may include a declaration).
#define CFEST_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  CFEST_ASSIGN_OR_RETURN_IMPL(CFEST_CONCAT(_res_, __LINE__), lhs, rexpr)

#define CFEST_ASSIGN_OR_RETURN_IMPL(res, lhs, rexpr) \
  auto res = (rexpr);                                \
  if (!res.ok()) return res.status();                \
  lhs = std::move(res).ValueOrDie()

#endif  // CFEST_COMMON_RESULT_H_
