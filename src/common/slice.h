// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Slice: a non-owning view of a byte range (RocksDB idiom). Used for zero-copy
// access into page buffers and encoded rows.

#ifndef CFEST_COMMON_SLICE_H_
#define CFEST_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace cfest {

/// \brief A pointer + length view over externally owned bytes.
///
/// The caller must guarantee the underlying storage outlives the Slice.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* d, size_t n) : data_(d), size_(n) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drops the first n bytes from this slice.
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  /// A sub-view [offset, offset+len). Clamps len to the available bytes.
  Slice SubSlice(size_t offset, size_t len) const {
    assert(offset <= size_);
    if (len > size_ - offset) len = size_ - offset;
    return Slice(data_ + offset, len);
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const { return {data_, size_}; }

  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

  bool StartsWith(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.Compare(b) < 0;
}

}  // namespace cfest

#endif  // CFEST_COMMON_SLICE_H_
