// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Plain-text table rendering and byte formatting for the benchmark harness;
// every experiment binary prints paper-style rows through TablePrinter.

#ifndef CFEST_COMMON_FORMAT_H_
#define CFEST_COMMON_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace cfest {

/// "1.2 KiB", "3.4 MiB", ... (binary units).
std::string HumanBytes(uint64_t bytes);

/// Strict decimal parse of an unsigned integer argument: the whole string
/// must be consumed and fit in uint64 (no sign, no suffix — "10GB" and
/// "junk" are errors, not 10 and 0 as bare strtoull would yield).
Result<uint64_t> ParseUint64(const std::string& text);

/// Strict parse of a floating-point argument: the whole string must be
/// consumed and the value finite ("0.05x" and "nanx" are errors, not 0.05
/// and 0 as bare atof would yield).
Result<double> ParseDouble(const std::string& text);

/// Fixed-precision double ("0.4213").
std::string FormatDouble(double v, int precision = 4);

/// \brief Accumulates rows and renders an aligned ASCII table.
///
/// Used by every experiment binary in bench/ so the output shape matches the
/// paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header rule. Missing cells render empty.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cfest

#endif  // CFEST_COMMON_FORMAT_H_
