// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Plain-text table rendering and byte formatting for the benchmark harness;
// every experiment binary prints paper-style rows through TablePrinter.

#ifndef CFEST_COMMON_FORMAT_H_
#define CFEST_COMMON_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cfest {

/// "1.2 KiB", "3.4 MiB", ... (binary units).
std::string HumanBytes(uint64_t bytes);

/// Fixed-precision double ("0.4213").
std::string FormatDouble(double v, int precision = 4);

/// \brief Accumulates rows and renders an aligned ASCII table.
///
/// Used by every experiment binary in bench/ so the output shape matches the
/// paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header rule. Missing cells render empty.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cfest

#endif  // CFEST_COMMON_FORMAT_H_
