// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// A minimal one-object JSON writer: collects key/value pairs and renders
// one flat (optionally nested) JSON object. Used for the machine-readable
// result lines the bench binaries and samplecf_cli print next to their
// human tables, so CI and notebooks can scrape output without parsing
// TablePrinter columns. Escaping and number formatting live here, once.

#ifndef CFEST_COMMON_JSON_WRITER_H_
#define CFEST_COMMON_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace cfest {

/// \brief Incrementally built JSON object (insertion-ordered fields).
class JsonWriter {
 public:
  JsonWriter() = default;
  /// Convenience for the bench convention of a leading "experiment" field.
  explicit JsonWriter(std::string experiment) {
    AddString("experiment", std::move(experiment));
  }

  void AddString(const std::string& key, const std::string& value) {
    // Built with append rather than operator+ chains: GCC 12's -Wrestrict
    // false-positives on `const char* + std::string&&` (PR105329).
    std::string quoted;
    quoted += '"';
    quoted += Escape(value);
    quoted += '"';
    fields_.emplace_back(key, std::move(quoted));
  }
  void AddDouble(const std::string& key, double value) {
    fields_.emplace_back(key, FormatJsonDouble(value));
  }
  void AddInt(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void AddBool(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  /// Numeric arrays, for per-round / per-candidate series (e.g. rows
  /// sampled per adaptive growth round).
  void AddIntArray(const std::string& key, const std::vector<int64_t>& v) {
    std::string out = "[";
    for (size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(v[i]);
    }
    out += "]";
    fields_.emplace_back(key, std::move(out));
  }
  void AddDoubleArray(const std::string& key, const std::vector<double>& v) {
    std::string out = "[";
    for (size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out += ",";
      out += FormatJsonDouble(v[i]);
    }
    out += "]";
    fields_.emplace_back(key, std::move(out));
  }
  /// Nested object built with another writer.
  void AddObject(const std::string& key, const JsonWriter& value) {
    fields_.emplace_back(key, value.ToString());
  }
  /// Array of nested objects (e.g. one entry per candidate).
  void AddObjectArray(const std::string& key,
                      const std::vector<JsonWriter>& values) {
    std::string out = "[";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ",";
      out += values[i].ToString();
    }
    out += "]";
    fields_.emplace_back(key, std::move(out));
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += '"';
      out += Escape(fields_[i].first);
      out += "\":";
      out += fields_[i].second;
    }
    out += "}";
    return out;
  }

  /// Prints the object on its own line, prefixed so it is easy to grep.
  void Print() const { std::printf("JSON %s\n", ToString().c_str()); }

 private:
  static std::string FormatJsonDouble(double value) {
    if (!std::isfinite(value)) {
      // JSON has no nan/inf literals; null keeps the line parseable.
      return "null";
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return buffer;
  }

  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      const unsigned char u = static_cast<unsigned char>(c);
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (u < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x", u);
        out += buffer;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace cfest

#endif  // CFEST_COMMON_JSON_WRITER_H_
