#include "common/random.h"

#include <cmath>

namespace cfest {
namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Random::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  has_gauss_ = false;
}

uint64_t Random::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift rejection method: unbiased for any bound > 0.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Random::NextInRange(int64_t lo, int64_t hi) {
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Random::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Random::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  gauss_ = v * mul;
  has_gauss_ = true;
  return u * mul;
}

Random Random::Fork() { return Random(NextU64()); }

}  // namespace cfest
