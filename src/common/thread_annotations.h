// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Clang thread-safety annotation macros (the Abseil/GUARDED_BY model).
//
// The concurrent core of this codebase — the epoch-swapped engine read
// path, the request coalescer's owner/sharer handoff, the thread pool, the
// sharded metric registry — keeps its locking discipline in invariants
// ("guarded by the writer mutex", "REQUIRES mu_ held"). These macros turn
// those invariants into compiler-checked contracts: under clang the build
// runs with -Wthread-safety -Werror (see CMakeLists.txt), so acquiring the
// wrong lock, forgetting one, or calling a REQUIRES method unlocked fails
// the build instead of waiting for TSan to get lucky.
//
// Under compilers without the attribute (GCC) every macro expands to
// nothing, so annotated code builds everywhere; only clang enforces.
//
// Use the annotated wrappers in common/mutex.h (Mutex, MutexLock, CondVar)
// rather than std::mutex directly — raw std::mutex carries no capability
// attributes, so the analysis cannot see it (tools/cfest_lint.py enforces
// that rule tree-wide).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef CFEST_COMMON_THREAD_ANNOTATIONS_H_
#define CFEST_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define CFEST_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CFEST_THREAD_ANNOTATION(x)  // no-op
#endif

/// Declares a type as a lockable capability ("mutex").
#define CAPABILITY(x) CFEST_THREAD_ANNOTATION(capability(x))

/// Declares a RAII type whose lifetime is an acquire/release pair.
#define SCOPED_CAPABILITY CFEST_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex(es).
#define GUARDED_BY(x) CFEST_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is guarded by the given mutex(es).
#define PT_GUARDED_BY(x) CFEST_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the given mutex(es) held.
#define REQUIRES(...) \
  CFEST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with the given mutex(es) held shared.
#define REQUIRES_SHARED(...) \
  CFEST_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the given mutex(es) and does not release them.
#define ACQUIRE(...) CFEST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the given mutex(es).
#define RELEASE(...) CFEST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the mutex(es) when it returns the given value.
#define TRY_ACQUIRE(...) \
  CFEST_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must be called with the given mutex(es) NOT held.
#define EXCLUDES(...) CFEST_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the mutex guarding its result.
#define RETURN_CAPABILITY(x) CFEST_THREAD_ANNOTATION(lock_returned(x))

/// Runtime assertion that the calling thread holds the mutex(es).
#define ASSERT_CAPABILITY(x) CFEST_THREAD_ANNOTATION(assert_capability(x))

/// Opts a function out of the analysis. Use sparingly, with a comment
/// saying which external discipline makes the access safe (e.g. move
/// operations, which require the caller to serialize all access anyway).
#define NO_THREAD_SAFETY_ANALYSIS \
  CFEST_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // CFEST_COMMON_THREAD_ANNOTATIONS_H_
