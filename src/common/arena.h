// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// A bump allocator for per-candidate scratch. The estimation fan-out sizes
// hundreds of candidates, and each candidate's compress pass needs
// short-lived buffers (column transposes, decoded integer slices, NS length
// arrays) whose lifetimes all end together — exactly the arena pattern.
// Allocate() is a pointer bump; Reset() recycles every block for the next
// batch without returning memory to the global allocator, so the steady
// state of a sizing loop performs no heap traffic at all.

#ifndef CFEST_COMMON_ARENA_H_
#define CFEST_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace cfest {

/// \brief Block-chained bump allocator. Not thread-safe; one per owner.
class Arena {
 public:
  explicit Arena(size_t min_block_bytes = 1 << 16)
      : min_block_bytes_(min_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `align` (a power
  /// of two). The pointer stays valid until Reset() or destruction.
  char* Allocate(size_t bytes, size_t align = 16) {
    size_t pos = (pos_ + (align - 1)) & ~(align - 1);
    if (block_ >= blocks_.size() || pos + bytes > blocks_[block_].size) {
      NextBlock(bytes + align);
      pos = (pos_ + (align - 1)) & ~(align - 1);
    }
    char* out = blocks_[block_].data.get() + pos;
    pos_ = pos + bytes;
    bytes_allocated_ += bytes;
    return out;
  }

  /// Typed convenience: `count` default-aligned elements of T.
  template <typename T>
  T* AllocateArray(size_t count) {
    return reinterpret_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Makes every block available again. Previously returned pointers are
  /// invalidated; no memory is released.
  void Reset() {
    block_ = 0;
    pos_ = 0;
    bytes_allocated_ = 0;
  }

  /// Live bytes handed out since the last Reset().
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total bytes reserved from the global allocator over the arena's life.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  /// Advances to a block with at least `need` free bytes, allocating one
  /// (geometrically grown) if no retained block is large enough.
  void NextBlock(size_t need) {
    while (block_ + 1 < blocks_.size()) {
      ++block_;
      pos_ = 0;
      if (blocks_[block_].size >= need) return;
    }
    size_t size = min_block_bytes_;
    if (!blocks_.empty()) size = blocks_.back().size * 2;
    if (size < need) size = need;
    blocks_.push_back(Block{std::unique_ptr<char[]>(new char[size]), size});
    block_ = blocks_.size() - 1;
    pos_ = 0;
  }

  size_t min_block_bytes_;
  std::vector<Block> blocks_;
  size_t block_ = 0;  // current block index (valid if blocks_ non-empty)
  size_t pos_ = 0;    // bump offset within the current block
  size_t bytes_allocated_ = 0;
};

}  // namespace cfest

#endif  // CFEST_COMMON_ARENA_H_
