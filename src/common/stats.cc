#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cfest {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  RunningStats rs;
  for (double v : values) rs.Add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = QuantileSorted(sorted, 0.50);
  s.p90 = QuantileSorted(sorted, 0.90);
  s.p99 = QuantileSorted(sorted, 0.99);
  return s;
}

double RatioError(double truth, double estimate) {
  if (truth <= 0.0 && estimate <= 0.0) return 1.0;
  if (truth <= 0.0 || estimate <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(truth / estimate, estimate / truth);
}

double RelativeError(double truth, double estimate) {
  return std::abs(estimate - truth) / std::abs(truth);
}

}  // namespace cfest
