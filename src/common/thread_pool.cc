#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/metrics.h"
#include "common/trace.h"

namespace cfest {
namespace {

/// Process-wide pool metrics (all pools share them: the observability
/// question is "how busy is task execution", not "which pool").
struct PoolMetrics {
  metrics::Counter* tasks =
      metrics::MetricRegistry::Global().GetCounter("cfest.threadpool.tasks");
  metrics::Gauge* queue_depth = metrics::MetricRegistry::Global().GetGauge(
      "cfest.threadpool.queue_depth");
  metrics::Histogram* task_ns = metrics::MetricRegistry::Global().GetHistogram(
      "cfest.threadpool.task_ns");
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = new PoolMetrics();  // never destroyed
  return *metrics;
}

}  // namespace

ThreadPool::ThreadPool(uint32_t num_threads) {
  num_threads = ResolveThreadCount(num_threads);
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    while (in_flight_ != 0) all_done_.Wait(mu_);
    shutting_down_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  Metrics().queue_depth->Add(1);
  task_ready_.NotifyOne();
}

void ThreadPool::SubmitBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    MutexLock lock(mu_);
    for (std::function<void()>& task : tasks) tasks_.push(std::move(task));
    in_flight_ += tasks.size();
  }
  Metrics().queue_depth->Add(static_cast<int64_t>(tasks.size()));
  task_ready_.NotifyAll();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::ParallelFor(uint64_t n,
                             const std::function<void(uint64_t)>& body) {
  if (n == 0) return;
  if (n == 1 || num_threads() == 1) {
    for (uint64_t i = 0; i < n; ++i) body(i);
    return;
  }
  // The calling thread participates: it drains the same shared counter so a
  // ParallelFor never deadlocks even if every worker is busy elsewhere.
  // State lives in one shared block because queued drains may still be
  // running their final iteration when the caller wakes up and returns.
  struct SharedState {
    std::atomic<uint64_t> next{0};
    Mutex mu;
    CondVar all_done;
    uint64_t done GUARDED_BY(mu) = 0;
  };
  auto state = std::make_shared<SharedState>();
  const uint64_t tasks = std::min<uint64_t>(num_threads(), n);
  auto drain = [state, n, &body] {
    uint64_t completed = 0;
    for (uint64_t i = state->next++; i < n; i = state->next++) {
      body(i);
      ++completed;
    }
    if (completed == 0) return;
    MutexLock lock(state->mu);
    state->done += completed;
    if (state->done == n) state->all_done.NotifyAll();
  };
  if (tasks > 1) {
    SubmitBatch(std::vector<std::function<void()>>(
        static_cast<size_t>(tasks - 1), drain));
  }
  drain();
  MutexLock lock(state->mu);
  while (state->done != n) state->all_done.Wait(state->mu);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && tasks_.empty()) task_ready_.Wait(mu_);
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    Metrics().queue_depth->Add(-1);
    Metrics().tasks->Increment();
    {
      trace::Span span("threadpool.task");
      metrics::ScopedTimer timer(Metrics().task_ns);
      task();
    }
    {
      MutexLock lock(mu_);
      --in_flight_;
    }
    all_done_.NotifyAll();
  }
}

}  // namespace cfest
