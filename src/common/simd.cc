#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace cfest {
namespace {

#if defined(__x86_64__) || defined(__i386__)
#define CFEST_SIMD_X86 1
#else
#define CFEST_SIMD_X86 0
#endif

SimdLevel ProbeMaxLevel() {
#if CFEST_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse42;
#endif
  return SimdLevel::kScalar;
}

SimdLevel EnvLevel() {
  const char* env = std::getenv("CFEST_SIMD");
  if (env == nullptr) return MaxSimdLevel();
  if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(env, "sse42") == 0) return SimdLevel::kSse42;
  if (std::strcmp(env, "avx2") == 0) return SimdLevel::kAvx2;
  // Unrecognized values fall back to the probed maximum (correctness does
  // not depend on the level, so a typo must not change results — only
  // which equally-correct implementation runs).
  return MaxSimdLevel();
}

// -1 == no programmatic pin; otherwise a SimdLevel value.
std::atomic<int> g_pinned_level{-1};

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse42:
      return "sse42";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel MaxSimdLevel() {
  static const SimdLevel level = ProbeMaxLevel();
  return level;
}

SimdLevel ActiveSimdLevel() {
  const int pinned = g_pinned_level.load(std::memory_order_relaxed);
  SimdLevel wanted;
  if (pinned >= 0) {
    wanted = static_cast<SimdLevel>(pinned);
  } else {
    static const SimdLevel env_level = EnvLevel();
    wanted = env_level;
  }
  const SimdLevel max = MaxSimdLevel();
  return wanted > max ? max : wanted;
}

void SetSimdLevel(SimdLevel level) {
  g_pinned_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ResetSimdLevel() {
  g_pinned_level.store(-1, std::memory_order_relaxed);
}

}  // namespace cfest
