#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>

#include "common/metrics.h"
#include "common/mutex.h"

namespace cfest {
namespace trace {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<size_t> g_ring_capacity{kDefaultRingCapacity};
/// Trace time base: records store offsets from it so exported timestamps
/// start near zero. Reset() re-bases.
std::atomic<uint64_t> g_base_ns{0};

/// One thread's bounded span ring. The owning thread appends under `mu`;
/// collectors lock the same mutex — uncontended in steady state, since
/// collection happens at export time.
struct ThreadBuffer {
  explicit ThreadBuffer(size_t cap, uint32_t id)
      : capacity(std::max<size_t>(16, cap)), thread_id(id) {
    ring.reserve(capacity);
  }

  Mutex mu;
  std::vector<SpanRecord> ring GUARDED_BY(mu);
  size_t capacity GUARDED_BY(mu);
  /// Records ever appended; the ring holds the last min(total, capacity).
  uint64_t total GUARDED_BY(mu) = 0;
  uint32_t thread_id;
};

struct BufferList {
  Mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers GUARDED_BY(mu);
  uint32_t next_thread_id GUARDED_BY(mu) = 0;
};

BufferList& Buffers() {
  static BufferList* list = new BufferList();  // never destroyed
  return *list;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    BufferList& list = Buffers();
    MutexLock lock(list.mu);
    auto created = std::make_shared<ThreadBuffer>(
        g_ring_capacity.load(std::memory_order_relaxed),
        list.next_thread_id++);
    list.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

thread_local uint32_t tls_depth = 0;

/// Ring-wrap accounting: overwritten spans are silently gone from the
/// trace, so count them where dashboards can see them. The child pointer
/// is resolved once (function-local static), keeping the wrap branch at
/// one sharded counter add.
metrics::Counter* DroppedSpansCounter() {
  static metrics::Counter* counter =
      metrics::MetricRegistry::Global().GetCounter("cfest.trace.dropped_spans");
  return counter;
}

void Append(SpanRecord record) {
  ThreadBuffer& buffer = LocalBuffer();
  record.thread_id = buffer.thread_id;
  MutexLock lock(buffer.mu);
  if (buffer.ring.size() < buffer.capacity) {
    buffer.ring.push_back(record);
  } else {
    buffer.ring[buffer.total % buffer.capacity] = record;
    DroppedSpansCounter()->Increment();
  }
  ++buffer.total;
}

std::string EscapeJson(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned char>(c));
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

bool Enabled() {
#ifdef CFEST_METRICS_DISABLED
  return false;
#else
  return g_enabled.load(std::memory_order_relaxed);
#endif
}

void SetEnabled(bool enabled) {
#ifdef CFEST_METRICS_DISABLED
  (void)enabled;
#else
  if (enabled && g_base_ns.load(std::memory_order_relaxed) == 0) {
    g_base_ns.store(metrics::NowNanos(), std::memory_order_relaxed);
  }
  g_enabled.store(enabled, std::memory_order_relaxed);
#endif
}

void SetRingCapacity(size_t records) {
  const size_t cap = std::max<size_t>(16, records);
  g_ring_capacity.store(cap, std::memory_order_relaxed);
  // Resize existing buffers too (dropping their retained records), so the
  // new bound holds process-wide and not just for threads yet to record.
  BufferList& list = Buffers();
  MutexLock lock(list.mu);
  for (const std::shared_ptr<ThreadBuffer>& buffer : list.buffers) {
    MutexLock buffer_lock(buffer->mu);
    buffer->capacity = cap;
    buffer->ring.clear();
    buffer->ring.reserve(cap);
    buffer->total = 0;
  }
}

uint64_t NextFlowId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Span::Span(const char* name) : name_(name) {
  if (!Enabled()) return;
  active_ = true;
  ++tls_depth;
  start_ns_ = metrics::NowNanos();
}

void Span::SetFlow(uint64_t flow_id, FlowRole role) {
  if (!active_) return;
  flow_id_ = flow_id;
  flow_role_ = role;
}

Span::~Span() {
  if (!active_) return;
  const uint64_t end_ns = metrics::NowNanos();
  const uint32_t depth = --tls_depth;
  const uint64_t base = g_base_ns.load(std::memory_order_relaxed);
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_ > base ? start_ns_ - base : 0;
  record.duration_ns = end_ns - start_ns_;
  record.flow_id = flow_id_;
  record.depth = depth;
  record.flow_role = flow_role_;
  Append(record);
}

std::vector<SpanRecord> CollectRecords() {
  std::vector<SpanRecord> records;
  BufferList& list = Buffers();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(list.mu);
    buffers = list.buffers;
  }
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    MutexLock lock(buffer->mu);
    const size_t n = buffer->ring.size();
    // Oldest-first: when wrapped, the oldest record sits at total % cap.
    const size_t head =
        n < buffer->capacity ? 0 : buffer->total % buffer->capacity;
    for (size_t i = 0; i < n; ++i) {
      records.push_back(buffer->ring[(head + i) % n]);
    }
  }
  return records;
}

uint64_t TotalStarted() {
  uint64_t total = 0;
  BufferList& list = Buffers();
  MutexLock lock(list.mu);
  for (const std::shared_ptr<ThreadBuffer>& buffer : list.buffers) {
    MutexLock buffer_lock(buffer->mu);
    total += buffer->total;
  }
  return total;
}

std::string ExportChromeTraceJson() {
  const std::vector<SpanRecord> records = CollectRecords();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buffer[64];
  for (const SpanRecord& record : records) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += EscapeJson(record.name);
    out += "\",\"cat\":\"cfest\",\"ph\":\"X\",\"ts\":";
    std::snprintf(buffer, sizeof(buffer), "%.3f",
                  static_cast<double>(record.start_ns) / 1000.0);
    out += buffer;
    out += ",\"dur\":";
    std::snprintf(buffer, sizeof(buffer), "%.3f",
                  static_cast<double>(record.duration_ns) / 1000.0);
    out += buffer;
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(record.thread_id);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(record.depth);
    out += "}}";
    if (record.flow_id == 0 || record.flow_role == FlowRole::kNone) continue;
    // Flow record bound to this slice: `s` (flow start) at the source
    // span's end, `f` with bp:"e" at each sink span's end. A sink's
    // future.get() returns only after the source completed, so the arrow
    // always points forward in time. The flow carries one shared display
    // name so viewers group the arrows; slices keep their own names.
    const uint64_t end_ns = record.start_ns + record.duration_ns;
    out += ",{\"name\":\"coalesce\",\"cat\":\"cfest\",\"ph\":\"";
    out += record.flow_role == FlowRole::kSource ? "s" : "f";
    out += "\",\"id\":";
    out += std::to_string(record.flow_id);
    if (record.flow_role == FlowRole::kSink) out += ",\"bp\":\"e\"";
    out += ",\"ts\":";
    std::snprintf(buffer, sizeof(buffer), "%.3f",
                  static_cast<double>(end_ns) / 1000.0);
    out += buffer;
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(record.thread_id);
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void Reset() {
  BufferList& list = Buffers();
  MutexLock lock(list.mu);
  for (const std::shared_ptr<ThreadBuffer>& buffer : list.buffers) {
    MutexLock buffer_lock(buffer->mu);
    buffer->ring.clear();
    buffer->total = 0;
  }
  g_base_ns.store(metrics::NowNanos(), std::memory_order_relaxed);
}

}  // namespace trace
}  // namespace cfest
