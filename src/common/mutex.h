// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Annotated mutex primitives: the only locking types this codebase uses.
//
// cfest::Mutex / MutexLock / CondVar wrap the std primitives 1:1 (zero
// runtime overhead beyond the inlined calls) and carry clang thread-safety
// capability attributes (common/thread_annotations.h), so every locking
// invariant — which fields a mutex guards, which methods require it held —
// is machine-checked under -Wthread-safety -Werror instead of living in
// comments.
//
// Raw std::mutex / std::lock_guard / std::condition_variable are banned
// outside this header: the analysis cannot see through types without
// capability attributes, so one raw mutex punches a silent hole in the
// proof. tools/cfest_lint.py (rule raw-mutex) enforces the ban tree-wide.
//
// CondVar deliberately has no predicate-taking Wait: a predicate lambda's
// body is analyzed as a separate function that does not know the mutex is
// held, defeating GUARDED_BY on everything it reads. Write the standard
//
//   MutexLock lock(mu_);
//   while (!condition) cv_.Wait(mu_);
//
// loop instead — the loop body is then visibly inside the critical
// section, and the analysis checks `condition`'s guarded reads for free.

#ifndef CFEST_COMMON_MUTEX_H_
#define CFEST_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace cfest {

/// \brief A std::mutex with thread-safety capability annotations.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock: acquires in the constructor, releases in the
/// destructor (std::lock_guard, annotated).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable waiting on a cfest::Mutex.
///
/// Wait atomically releases `mu`, blocks, and reacquires `mu` before
/// returning — so a `while (!cond) cv.Wait(mu);` loop rechecks `cond`
/// under the lock, exactly like std::condition_variable. Spurious wakeups
/// are possible; always wait in a loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands ownership back without unlocking, so the capability
    // `mu` is held continuously as far as callers are concerned.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cfest

#endif  // CFEST_COMMON_MUTEX_H_
