// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Status: lightweight error propagation without exceptions, in the style of
// RocksDB / Apache Arrow. All fallible cfest APIs return Status or Result<T>.

#ifndef CFEST_COMMON_STATUS_H_
#define CFEST_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace cfest {

/// \brief Error category for a failed operation.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kCorruption = 5,
  kNotSupported = 6,
  kCapacityExceeded = 7,
  kInternal = 8,
};

/// \brief Human-readable name for a status code ("OK", "Invalid argument", ...).
const char* StatusCodeName(StatusCode code);

/// \brief The outcome of a fallible operation.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Statuses are cheap to move and copy (copy duplicates the message).
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<Rep>(Rep{code, std::move(msg)})) {}

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Message for error statuses; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }
  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsCapacityExceeded() const { return code() == StatusCode::kCapacityExceeded; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<Rep> rep_;  // nullptr == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cfest

/// Propagates a non-OK Status out of the enclosing function.
#define CFEST_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::cfest::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#endif  // CFEST_COMMON_STATUS_H_
