// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Process-wide metric registry: named counters, gauges, and log-bucketed
// latency histograms, exportable as one MetricsSnapshot (JSON or
// Prometheus text).
//
// Design constraints, in order:
//
//   1. The engine's steady-state read path must not gain shared-cacheline
//      writes. Counters and histograms are therefore sharded: each holds a
//      small power-of-two array of cache-line-aligned atomic cells, and a
//      thread adds to the cell picked by its (process-unique) thread
//      index. Aggregation happens at snapshot time, not on the hot path.
//   2. Legacy stats structs (EstimationEngine::CacheStats, the coalescer's
//      Stats, LazyAdvisorStats) keep their exact semantics: they are
//      backed by Counter objects and read with Value(), so the compat
//      struct and the registry report bit-identical numbers by
//      construction (tests/metrics_test.cc and bench_observability pin
//      this).
//   3. Component-local counter blocks (one per engine, per coalescer, per
//      lazy-advisor run) register under shared process-wide names. The
//      registry keeps raw pointers to live instances plus a per-child
//      "retired" total that absorbs an instance's final value when its
//      RAII Registration dies — so registry totals stay monotone and
//      exact across engine churn. The Registration member must be declared
//      AFTER the counters it registers (members destruct in reverse
//      order, so the handle folds values while the counters still exist).
//
// Labels: every metric name is a FAMILY of children keyed by a small fixed
// LabelSet (e.g. {table=lineitem} or {table=orders, scheme=rle}). The
// empty label set is the classic unlabeled child, so the label-free API is
// unchanged. Label resolution (string canonicalization + registry lookup)
// happens once, at instrumentation-site setup, when a child or an
// instance-block registration is obtained — the returned Counter/Gauge/
// Histogram pointers keep the exact lock-free sharded fast path. Snapshot
// aggregates every child (labeled, unlabeled, and retired) into the
// name-keyed maps, so the unlabeled aggregate view is bit-identical to a
// registry without labels; per-child values are exported alongside as
// labeled series (JSON `labeled_*` objects; Prometheus `name{k="v"}`
// samples next to the label-less aggregate sample).
//
// Naming scheme: `cfest.<component>.<metric>` (dots map to underscores in
// the Prometheus encoding). Counters count events; `*_ns` histograms hold
// nanosecond latencies.
//
// Timing (clock reads feeding histograms) is runtime-gated by
// SetTimingEnabled so the always-on cost is exactly the counter adds the
// legacy structs already paid for. Compiling with CFEST_METRICS_DISABLED
// shrinks every counter to a single cell, disables timing permanently, and
// makes snapshots empty — the "registry compiled out" baseline
// bench_observability compares against.

#ifndef CFEST_COMMON_METRICS_H_
#define CFEST_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/mutex.h"

namespace cfest {
namespace metrics {

inline constexpr size_t kCacheLineBytes = 64;

/// Shards per sharded metric: a power of two, sized once from hardware
/// concurrency (1 when CFEST_METRICS_DISABLED).
size_t ShardCount();

/// Process-unique dense index of the calling thread (first call assigns).
inline size_t ThreadIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// One label dimension of a metric child: key/value pair. Keys should be
/// short fixed identifiers (`table`, `scheme`); values are free-form and
/// escaped by the exporters.
using Label = std::pair<std::string, std::string>;

/// A small fixed set of labels identifying one child of a metric family.
/// Order-insensitive: the registry canonicalizes by sorting on key, so
/// {{a,1},{b,2}} and {{b,2},{a,1}} name the same child. Empty = the
/// unlabeled child (the classic label-free API).
using LabelSet = std::vector<Label>;

/// \brief Monotone counter with per-thread sharded cells. Add is one
/// relaxed fetch_add on a cacheline owned (in steady state) by the calling
/// thread's shard; Value sums the cells.
class Counter {
 public:
  Counter();
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    cells_[ThreadIndex() & mask_].value.fetch_add(delta,
                                                  std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (size_t i = 0; i <= mask_; ++i) {
      total += cells_[i].value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(kCacheLineBytes) Cell {
    std::atomic<uint64_t> value{0};
  };
  size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
};

/// \brief Last-writer-wins signed gauge (queue depths, sizes). A single
/// atomic: gauges are written on enqueue/dequeue edges, not per-row.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Histogram buckets: bucket 0 holds the value 0; bucket i (1..64) holds
/// values in [2^(i-1), 2^i - 1] — i.e. values whose bit width is i.
inline constexpr size_t kHistogramBuckets = 65;

size_t HistogramBucketIndex(uint64_t value);
/// Inclusive upper bound of bucket `index` (UINT64_MAX for the last).
uint64_t HistogramBucketUpperBound(size_t index);

/// \brief Aggregated histogram contents (a snapshot; plain data).
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  void Merge(const HistogramData& other);

  /// Quantile estimate from the log2 buckets: a value v such that a
  /// fraction `q` of the recorded values is <= v, linearly interpolated
  /// within the bucket where the q-th rank lands. Buckets are exact only
  /// at their power-of-two boundaries, so the estimate's relative error is
  /// bounded by the bucket width (a factor of 2) — plenty for p50/p99
  /// latency dashboards, which is what the exported snapshots feed. `q`
  /// is clamped to [0, 1]; an empty histogram reports 0.
  double Quantile(double q) const;
};

/// \brief Log2-bucketed histogram with sharded cells, for latency-style
/// values (nanoseconds by convention; suffix names with `_ns`).
class Histogram {
 public:
  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    Shard& shard = shards_[ThreadIndex() & mask_];
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    shard.buckets[HistogramBucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  HistogramData Data() const;

  /// Quantile over a fresh shard aggregation: Data().Quantile(q).
  double Quantile(double q) const { return Data().Quantile(q); }

 private:
  struct alignas(kCacheLineBytes) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };
  size_t mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
};

/// Runtime gate for the clock reads that feed latency histograms and trace
/// spans. Counters are NOT gated (they back the legacy stats structs).
/// Always false under CFEST_METRICS_DISABLED.
bool TimingEnabled();
void SetTimingEnabled(bool enabled);

/// Monotonic nanoseconds (steady_clock), the histogram/trace time base.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// \brief Point-in-time aggregation of every registered metric.
///
/// The name-keyed maps hold the family AGGREGATES (every child — labeled,
/// unlabeled, retired — summed/merged), bit-identical to what a label-free
/// registry would report. The labeled_* maps list each labeled child
/// separately (families with no labeled children do not appear there).
struct MetricsSnapshot {
  struct LabeledCounter {
    LabelSet labels;
    uint64_t value = 0;
  };
  struct LabeledGauge {
    LabelSet labels;
    int64_t value = 0;
  };
  struct LabeledHistogram {
    LabelSet labels;
    HistogramData data;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  std::map<std::string, std::vector<LabeledCounter>> labeled_counters;
  std::map<std::string, std::vector<LabeledGauge>> labeled_gauges;
  std::map<std::string, std::vector<LabeledHistogram>> labeled_histograms;

  /// Aggregate value of a counter family by name (0 when absent).
  uint64_t CounterValue(const std::string& name) const;

  /// Value of one labeled counter child (0 when absent). `labels` may be
  /// given in any order.
  uint64_t LabeledCounterValue(const std::string& name,
                               const LabelSet& labels) const;

  /// Nested JSON: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, buckets, p50, p99}},
  /// "labeled_counters": {name: [{labels, value}]}, ...}.
  JsonWriter ToJsonWriter() const;
  std::string ToJson() const;

  /// Prometheus text exposition: `# HELP` + `# TYPE` per family, the
  /// label-less sample carrying the family aggregate, one `name{k="v"}`
  /// sample per labeled child (label values escaped per the exposition
  /// format), and histograms rendered as cumulative `_bucket{le="..."}`
  /// series plus `_p50`/`_p99` gauges. Dots in names become underscores.
  std::string ToPrometheusText() const;
};

/// \brief The process-wide (name, labels) → metric map.
///
/// Two registration styles:
///   - GetCounter/GetGauge/GetHistogram return a process-lifetime singleton
///     child for a (name, labels) pair (created on first request) — for
///     component-independent metrics like thread-pool or kernel-dispatch
///     counts. The label-free overloads are the unlabeled child.
///   - RegisterCounters attaches short(er)-lived instance counters (an
///     engine's EpochCounters block, one lazy run's stats block) to shared
///     names, optionally under a LabelSet (e.g. {table=X}). The snapshot
///     value of a child is singleton + live instances + retired total, so
///     it is monotone and exact across instance churn; the family
///     aggregate sums its children.
///
/// Thread-safe. Metric pointers returned by Get* are valid for the process
/// lifetime.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Counter* GetCounter(const std::string& name, const LabelSet& labels);
  Gauge* GetGauge(const std::string& name);
  Gauge* GetGauge(const std::string& name, const LabelSet& labels);
  Histogram* GetHistogram(const std::string& name);
  Histogram* GetHistogram(const std::string& name, const LabelSet& labels);

  /// RAII handle for a batch of instance-counter registrations; its
  /// destructor folds each counter's final Value into the child's retired
  /// total and detaches the pointers. Declare it after the counters it
  /// registers.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept;
    Registration& operator=(Registration&& other) noexcept;
    ~Registration();

   private:
    friend class MetricRegistry;
    Registration(MetricRegistry* registry, std::string labels_key,
                 std::vector<std::pair<std::string, const Counter*>> counters)
        : registry_(registry),
          labels_key_(std::move(labels_key)),
          counters_(std::move(counters)) {}
    void Release();

    MetricRegistry* registry_ = nullptr;
    std::string labels_key_;
    std::vector<std::pair<std::string, const Counter*>> counters_;
  };

  [[nodiscard]] Registration RegisterCounters(
      std::vector<std::pair<std::string, const Counter*>> counters);

  /// Registers the batch as instances of each name's `labels` child — the
  /// per-table form of the instance-block pattern. One Registration covers
  /// one label set; a component spanning label values holds one block (and
  /// one Registration) per value.
  [[nodiscard]] Registration RegisterCounters(
      const LabelSet& labels,
      std::vector<std::pair<std::string, const Counter*>> counters);

  /// Empty under CFEST_METRICS_DISABLED; otherwise every known name.
  MetricsSnapshot Snapshot() const;

 private:
  MetricRegistry() = default;
  void Retire(const std::string& labels_key,
              const std::vector<std::pair<std::string, const Counter*>>&
                  counters);

  /// One child of a counter family: the (name, labels) singleton plus any
  /// registered instance blocks and their retired totals.
  struct CounterChild {
    LabelSet labels;  // canonical (sorted) form
    std::unique_ptr<Counter> owned;
    uint64_t retired = 0;
    std::vector<const Counter*> instances;
  };
  struct GaugeChild {
    LabelSet labels;
    std::unique_ptr<Gauge> gauge;
  };
  struct HistogramChild {
    LabelSet labels;
    std::unique_ptr<Histogram> histogram;
  };
  /// Children are keyed by the canonical label encoding ("" = unlabeled).
  template <typename Child>
  struct Family {
    std::map<std::string, Child> children;
  };

  mutable Mutex mu_;
  std::map<std::string, Family<CounterChild>> counters_ GUARDED_BY(mu_);
  std::map<std::string, Family<GaugeChild>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, Family<HistogramChild>> histograms_ GUARDED_BY(mu_);
};

/// \brief Stopwatch that records its lifetime into a histogram when timing
/// is enabled (and reads no clock otherwise).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(TimingEnabled() ? histogram : nullptr),
        start_(histogram_ != nullptr ? NowNanos() : 0) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(NowNanos() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_;
};

}  // namespace metrics
}  // namespace cfest

#endif  // CFEST_COMMON_METRICS_H_
