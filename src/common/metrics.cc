#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <thread>

namespace cfest {
namespace metrics {
namespace {

size_t ComputeShardCount() {
#ifdef CFEST_METRICS_DISABLED
  return 1;
#else
  const unsigned hw = std::thread::hardware_concurrency();
  size_t shards = 1;
  while (shards < hw && shards < 32) shards *= 2;
  return std::max<size_t>(4, shards);
#endif
}

std::atomic<bool>& TimingFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

/// `cfest.engine.lock_free_pins` → `cfest_engine_lock_free_pins`.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

}  // namespace

size_t ShardCount() {
  static const size_t count = ComputeShardCount();
  return count;
}

Counter::Counter()
    : mask_(ShardCount() - 1), cells_(new Cell[ShardCount()]) {}

size_t HistogramBucketIndex(uint64_t value) {
  return value == 0 ? 0 : 64 - static_cast<size_t>(std::countl_zero(value));
}

uint64_t HistogramBucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= 64) return UINT64_MAX;
  return (uint64_t{1} << index) - 1;
}

void HistogramData::Merge(const HistogramData& other) {
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= rank) {
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (i - 1));
      const double upper = static_cast<double>(HistogramBucketUpperBound(i));
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      return lower + within * (upper - lower);
    }
    cumulative = next;
  }
  return static_cast<double>(HistogramBucketUpperBound(kHistogramBuckets - 1));
}

Histogram::Histogram()
    : mask_(ShardCount() - 1), shards_(new Shard[ShardCount()]) {}

HistogramData Histogram::Data() const {
  HistogramData data;
  for (size_t s = 0; s <= mask_; ++s) {
    const Shard& shard = shards_[s];
    data.count += shard.count.load(std::memory_order_relaxed);
    data.sum += shard.sum.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      data.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return data;
}

bool TimingEnabled() {
#ifdef CFEST_METRICS_DISABLED
  return false;
#else
  return TimingFlag().load(std::memory_order_relaxed);
#endif
}

void SetTimingEnabled(bool enabled) {
  TimingFlag().store(enabled, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

JsonWriter MetricsSnapshot::ToJsonWriter() const {
  JsonWriter counters_json;
  for (const auto& [name, value] : counters) {
    counters_json.AddInt(name, static_cast<int64_t>(value));
  }
  JsonWriter gauges_json;
  for (const auto& [name, value] : gauges) {
    gauges_json.AddInt(name, value);
  }
  JsonWriter histograms_json;
  for (const auto& [name, data] : histograms) {
    JsonWriter h;
    h.AddInt("count", static_cast<int64_t>(data.count));
    h.AddInt("sum", static_cast<int64_t>(data.sum));
    // Trailing all-zero buckets carry no information; trim them so the
    // artifact stays readable (the bucket at index i always means the
    // same value range regardless of how many are printed).
    size_t top = kHistogramBuckets;
    while (top > 0 && data.buckets[top - 1] == 0) --top;
    std::vector<int64_t> buckets;
    buckets.reserve(top);
    for (size_t i = 0; i < top; ++i) {
      buckets.push_back(static_cast<int64_t>(data.buckets[i]));
    }
    h.AddIntArray("buckets", buckets);
    h.AddDouble("p50", data.Quantile(0.5));
    h.AddDouble("p99", data.Quantile(0.99));
    histograms_json.AddObject(name, h);
  }
  JsonWriter out;
  out.AddBool("timing_enabled", TimingEnabled());
  out.AddObject("counters", counters_json);
  out.AddObject("gauges", gauges_json);
  out.AddObject("histograms", histograms_json);
  return out;
}

std::string MetricsSnapshot::ToJson() const { return ToJsonWriter().ToString(); }

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string p = PrometheusName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string p = PrometheusName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, data] : histograms) {
    const std::string p = PrometheusName(name);
    out += "# TYPE " + p + " histogram\n";
    uint64_t cumulative = 0;
    size_t top = kHistogramBuckets;
    while (top > 0 && data.buckets[top - 1] == 0) --top;
    for (size_t i = 0; i < top; ++i) {
      cumulative += data.buckets[i];
      out += p + "_bucket{le=\"" +
             std::to_string(HistogramBucketUpperBound(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(data.count) + "\n";
    out += p + "_sum " + std::to_string(data.sum) + "\n";
    out += p + "_count " + std::to_string(data.count) + "\n";
    // Precomputed quantiles as gauges (the bucket-derived estimates, so
    // dashboards without a PromQL histogram_quantile still get p50/p99).
    out += "# TYPE " + p + "_p50 gauge\n";
    out += p + "_p50 " + std::to_string(data.Quantile(0.5)) + "\n";
    out += "# TYPE " + p + "_p99 gauge\n";
    out += p + "_p99 " + std::to_string(data.Quantile(0.99)) + "\n";
  }
  return out;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  CounterEntry& entry = counters_[name];
  if (entry.owned == nullptr) entry.owned = std::make_unique<Counter>();
  return entry.owned.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Gauge>& gauge = gauges_[name];
  if (gauge == nullptr) gauge = std::make_unique<Gauge>();
  return gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Histogram>& histogram = histograms_[name];
  if (histogram == nullptr) histogram = std::make_unique<Histogram>();
  return histogram.get();
}

MetricRegistry::Registration MetricRegistry::RegisterCounters(
    std::vector<std::pair<std::string, const Counter*>> counters) {
  {
    MutexLock lock(mu_);
    for (const auto& [name, counter] : counters) {
      counters_[name].instances.push_back(counter);
    }
  }
  return Registration(this, std::move(counters));
}

void MetricRegistry::Retire(
    const std::vector<std::pair<std::string, const Counter*>>& counters) {
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters) {
    CounterEntry& entry = counters_[name];
    entry.retired += counter->Value();
    auto it = std::find(entry.instances.begin(), entry.instances.end(),
                        counter);
    if (it != entry.instances.end()) entry.instances.erase(it);
  }
}

MetricRegistry::Registration::Registration(Registration&& other) noexcept
    : registry_(other.registry_), counters_(std::move(other.counters_)) {
  other.registry_ = nullptr;
  other.counters_.clear();
}

MetricRegistry::Registration& MetricRegistry::Registration::operator=(
    Registration&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    counters_ = std::move(other.counters_);
    other.registry_ = nullptr;
    other.counters_.clear();
  }
  return *this;
}

MetricRegistry::Registration::~Registration() { Release(); }

void MetricRegistry::Registration::Release() {
  if (registry_ != nullptr) registry_->Retire(counters_);
  registry_ = nullptr;
  counters_.clear();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
#ifdef CFEST_METRICS_DISABLED
  return snapshot;
#else
  MutexLock lock(mu_);
  for (const auto& [name, entry] : counters_) {
    uint64_t total = entry.retired;
    if (entry.owned != nullptr) total += entry.owned->Value();
    for (const Counter* instance : entry.instances) {
      total += instance->Value();
    }
    snapshot.counters.emplace(name, total);
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->Data());
  }
  return snapshot;
#endif
}

}  // namespace metrics
}  // namespace cfest
