#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <thread>

namespace cfest {
namespace metrics {
namespace {

size_t ComputeShardCount() {
#ifdef CFEST_METRICS_DISABLED
  return 1;
#else
  const unsigned hw = std::thread::hardware_concurrency();
  size_t shards = 1;
  while (shards < hw && shards < 32) shards *= 2;
  return std::max<size_t>(4, shards);
#endif
}

std::atomic<bool>& TimingFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

/// Canonical child identity: labels sorted by key (ties by value), so the
/// same set in any order resolves to the same child.
LabelSet CanonicalLabels(const LabelSet& labels) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

/// Length-prefixed encoding of a canonical label set — the child map key.
/// Prefixes make adjacent fields unambiguous ("ab"+"c" vs "a"+"bc"); the
/// empty set encodes to "" (the unlabeled child).
std::string EncodeLabels(const LabelSet& canonical) {
  std::string out;
  for (const auto& [key, value] : canonical) {
    for (const std::string* part : {&key, &value}) {
      uint64_t n = part->size();
      for (int shift = 56; shift >= 0; shift -= 8) {
        out.push_back(static_cast<char>((n >> shift) & 0xFF));
      }
      out += *part;
    }
  }
  return out;
}

/// `cfest.engine.lock_free_pins` → `cfest_engine_lock_free_pins`.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

/// Label names are a strict subset of metric names (no colon).
std::string PrometheusLabelName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

/// Exposition-format label value escaping: backslash, double-quote, and
/// line-feed are the three characters the format requires escaping.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// `{k="v",k2="v2"}` for a non-empty set; "" for the unlabeled child.
std::string RenderLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += PrometheusLabelName(key);
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  out += "}";
  return out;
}

/// `{table="x",le="15"}` — a child's labels plus the bucket bound, also
/// usable with an empty set (plain `{le="15"}`).
std::string RenderLabelsWithLe(const LabelSet& labels,
                               const std::string& le) {
  std::string out = "{";
  for (const auto& [key, value] : labels) {
    out += PrometheusLabelName(key);
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

void AppendHelpAndType(std::string* out, const std::string& p,
                       const std::string& dotted, const char* type) {
  *out += "# HELP " + p + " cfest metric " + dotted + "\n";
  *out += "# TYPE " + p + " " + type + "\n";
}

void AppendHistogramSeries(std::string* out, const std::string& p,
                           const LabelSet& labels,
                           const HistogramData& data) {
  const std::string label_text = RenderLabels(labels);
  uint64_t cumulative = 0;
  size_t top = kHistogramBuckets;
  while (top > 0 && data.buckets[top - 1] == 0) --top;
  for (size_t i = 0; i < top; ++i) {
    cumulative += data.buckets[i];
    *out += p + "_bucket" +
            RenderLabelsWithLe(labels,
                               std::to_string(HistogramBucketUpperBound(i))) +
            " " + std::to_string(cumulative) + "\n";
  }
  *out += p + "_bucket" + RenderLabelsWithLe(labels, "+Inf") + " " +
          std::to_string(data.count) + "\n";
  *out += p + "_sum" + label_text + " " + std::to_string(data.sum) + "\n";
  *out += p + "_count" + label_text + " " + std::to_string(data.count) + "\n";
}

JsonWriter LabelsToJson(const LabelSet& labels) {
  JsonWriter out;
  for (const auto& [key, value] : labels) {
    out.AddString(key, value);
  }
  return out;
}

JsonWriter HistogramDataToJson(const HistogramData& data) {
  JsonWriter h;
  h.AddInt("count", static_cast<int64_t>(data.count));
  h.AddInt("sum", static_cast<int64_t>(data.sum));
  // Trailing all-zero buckets carry no information; trim them so the
  // artifact stays readable (the bucket at index i always means the
  // same value range regardless of how many are printed).
  size_t top = kHistogramBuckets;
  while (top > 0 && data.buckets[top - 1] == 0) --top;
  std::vector<int64_t> buckets;
  buckets.reserve(top);
  for (size_t i = 0; i < top; ++i) {
    buckets.push_back(static_cast<int64_t>(data.buckets[i]));
  }
  h.AddIntArray("buckets", buckets);
  h.AddDouble("p50", data.Quantile(0.5));
  h.AddDouble("p99", data.Quantile(0.99));
  return h;
}

}  // namespace

size_t ShardCount() {
  static const size_t count = ComputeShardCount();
  return count;
}

Counter::Counter()
    : mask_(ShardCount() - 1), cells_(new Cell[ShardCount()]) {}

size_t HistogramBucketIndex(uint64_t value) {
  return value == 0 ? 0 : 64 - static_cast<size_t>(std::countl_zero(value));
}

uint64_t HistogramBucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= 64) return UINT64_MAX;
  return (uint64_t{1} << index) - 1;
}

void HistogramData::Merge(const HistogramData& other) {
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= rank) {
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (i - 1));
      const double upper = static_cast<double>(HistogramBucketUpperBound(i));
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      return lower + within * (upper - lower);
    }
    cumulative = next;
  }
  return static_cast<double>(HistogramBucketUpperBound(kHistogramBuckets - 1));
}

Histogram::Histogram()
    : mask_(ShardCount() - 1), shards_(new Shard[ShardCount()]) {}

HistogramData Histogram::Data() const {
  HistogramData data;
  for (size_t s = 0; s <= mask_; ++s) {
    const Shard& shard = shards_[s];
    data.count += shard.count.load(std::memory_order_relaxed);
    data.sum += shard.sum.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      data.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return data;
}

bool TimingEnabled() {
#ifdef CFEST_METRICS_DISABLED
  return false;
#else
  return TimingFlag().load(std::memory_order_relaxed);
#endif
}

void SetTimingEnabled(bool enabled) {
  TimingFlag().store(enabled, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

uint64_t MetricsSnapshot::LabeledCounterValue(const std::string& name,
                                              const LabelSet& labels) const {
  auto it = labeled_counters.find(name);
  if (it == labeled_counters.end()) return 0;
  const LabelSet canonical = CanonicalLabels(labels);
  for (const LabeledCounter& child : it->second) {
    if (child.labels == canonical) return child.value;
  }
  return 0;
}

JsonWriter MetricsSnapshot::ToJsonWriter() const {
  JsonWriter counters_json;
  for (const auto& [name, value] : counters) {
    counters_json.AddInt(name, static_cast<int64_t>(value));
  }
  JsonWriter gauges_json;
  for (const auto& [name, value] : gauges) {
    gauges_json.AddInt(name, value);
  }
  JsonWriter histograms_json;
  for (const auto& [name, data] : histograms) {
    histograms_json.AddObject(name, HistogramDataToJson(data));
  }
  JsonWriter labeled_counters_json;
  for (const auto& [name, children] : labeled_counters) {
    std::vector<JsonWriter> entries;
    entries.reserve(children.size());
    for (const LabeledCounter& child : children) {
      JsonWriter entry;
      entry.AddObject("labels", LabelsToJson(child.labels));
      entry.AddInt("value", static_cast<int64_t>(child.value));
      entries.push_back(std::move(entry));
    }
    labeled_counters_json.AddObjectArray(name, entries);
  }
  JsonWriter labeled_gauges_json;
  for (const auto& [name, children] : labeled_gauges) {
    std::vector<JsonWriter> entries;
    entries.reserve(children.size());
    for (const LabeledGauge& child : children) {
      JsonWriter entry;
      entry.AddObject("labels", LabelsToJson(child.labels));
      entry.AddInt("value", child.value);
      entries.push_back(std::move(entry));
    }
    labeled_gauges_json.AddObjectArray(name, entries);
  }
  JsonWriter labeled_histograms_json;
  for (const auto& [name, children] : labeled_histograms) {
    std::vector<JsonWriter> entries;
    entries.reserve(children.size());
    for (const LabeledHistogram& child : children) {
      JsonWriter entry;
      entry.AddObject("labels", LabelsToJson(child.labels));
      entry.AddObject("data", HistogramDataToJson(child.data));
      entries.push_back(std::move(entry));
    }
    labeled_histograms_json.AddObjectArray(name, entries);
  }
  JsonWriter out;
  out.AddBool("timing_enabled", TimingEnabled());
  out.AddObject("counters", counters_json);
  out.AddObject("gauges", gauges_json);
  out.AddObject("histograms", histograms_json);
  out.AddObject("labeled_counters", labeled_counters_json);
  out.AddObject("labeled_gauges", labeled_gauges_json);
  out.AddObject("labeled_histograms", labeled_histograms_json);
  return out;
}

std::string MetricsSnapshot::ToJson() const { return ToJsonWriter().ToString(); }

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string p = PrometheusName(name);
    AppendHelpAndType(&out, p, name, "counter");
    out += p + " " + std::to_string(value) + "\n";
    auto it = labeled_counters.find(name);
    if (it != labeled_counters.end()) {
      for (const LabeledCounter& child : it->second) {
        out += p + RenderLabels(child.labels) + " " +
               std::to_string(child.value) + "\n";
      }
    }
  }
  for (const auto& [name, value] : gauges) {
    const std::string p = PrometheusName(name);
    AppendHelpAndType(&out, p, name, "gauge");
    out += p + " " + std::to_string(value) + "\n";
    auto it = labeled_gauges.find(name);
    if (it != labeled_gauges.end()) {
      for (const LabeledGauge& child : it->second) {
        out += p + RenderLabels(child.labels) + " " +
               std::to_string(child.value) + "\n";
      }
    }
  }
  for (const auto& [name, data] : histograms) {
    const std::string p = PrometheusName(name);
    AppendHelpAndType(&out, p, name, "histogram");
    AppendHistogramSeries(&out, p, /*labels=*/{}, data);
    auto it = labeled_histograms.find(name);
    if (it != labeled_histograms.end()) {
      for (const LabeledHistogram& child : it->second) {
        AppendHistogramSeries(&out, p, child.labels, child.data);
      }
    }
    // Precomputed quantiles as gauges (the bucket-derived estimates, so
    // dashboards without a PromQL histogram_quantile still get p50/p99),
    // for the aggregate and for every labeled child.
    AppendHelpAndType(&out, p + "_p50", name + " p50", "gauge");
    out += p + "_p50 " + std::to_string(data.Quantile(0.5)) + "\n";
    if (it != labeled_histograms.end()) {
      for (const LabeledHistogram& child : it->second) {
        out += p + "_p50" + RenderLabels(child.labels) + " " +
               std::to_string(child.data.Quantile(0.5)) + "\n";
      }
    }
    AppendHelpAndType(&out, p + "_p99", name + " p99", "gauge");
    out += p + "_p99 " + std::to_string(data.Quantile(0.99)) + "\n";
    if (it != labeled_histograms.end()) {
      for (const LabeledHistogram& child : it->second) {
        out += p + "_p99" + RenderLabels(child.labels) + " " +
               std::to_string(child.data.Quantile(0.99)) + "\n";
      }
    }
  }
  return out;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  return GetCounter(name, {});
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const LabelSet& labels) {
  const LabelSet canonical = CanonicalLabels(labels);
  std::string key = EncodeLabels(canonical);
  MutexLock lock(mu_);
  CounterChild& child = counters_[name].children[key];
  if (child.owned == nullptr) {
    child.labels = canonical;
    child.owned = std::make_unique<Counter>();
  }
  return child.owned.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  return GetGauge(name, {});
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const LabelSet& labels) {
  const LabelSet canonical = CanonicalLabels(labels);
  std::string key = EncodeLabels(canonical);
  MutexLock lock(mu_);
  GaugeChild& child = gauges_[name].children[key];
  if (child.gauge == nullptr) {
    child.labels = canonical;
    child.gauge = std::make_unique<Gauge>();
  }
  return child.gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, {});
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const LabelSet& labels) {
  const LabelSet canonical = CanonicalLabels(labels);
  std::string key = EncodeLabels(canonical);
  MutexLock lock(mu_);
  HistogramChild& child = histograms_[name].children[key];
  if (child.histogram == nullptr) {
    child.labels = canonical;
    child.histogram = std::make_unique<Histogram>();
  }
  return child.histogram.get();
}

MetricRegistry::Registration MetricRegistry::RegisterCounters(
    std::vector<std::pair<std::string, const Counter*>> counters) {
  return RegisterCounters({}, std::move(counters));
}

MetricRegistry::Registration MetricRegistry::RegisterCounters(
    const LabelSet& labels,
    std::vector<std::pair<std::string, const Counter*>> counters) {
  const LabelSet canonical = CanonicalLabels(labels);
  std::string key = EncodeLabels(canonical);
  {
    MutexLock lock(mu_);
    for (const auto& [name, counter] : counters) {
      CounterChild& child = counters_[name].children[key];
      if (child.instances.empty() && child.owned == nullptr &&
          child.retired == 0) {
        child.labels = canonical;
      }
      child.instances.push_back(counter);
    }
  }
  return Registration(this, std::move(key), std::move(counters));
}

void MetricRegistry::Retire(
    const std::string& labels_key,
    const std::vector<std::pair<std::string, const Counter*>>& counters) {
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters) {
    CounterChild& child = counters_[name].children[labels_key];
    child.retired += counter->Value();
    auto it = std::find(child.instances.begin(), child.instances.end(),
                        counter);
    if (it != child.instances.end()) child.instances.erase(it);
  }
}

MetricRegistry::Registration::Registration(Registration&& other) noexcept
    : registry_(other.registry_),
      labels_key_(std::move(other.labels_key_)),
      counters_(std::move(other.counters_)) {
  other.registry_ = nullptr;
  other.counters_.clear();
}

MetricRegistry::Registration& MetricRegistry::Registration::operator=(
    Registration&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    labels_key_ = std::move(other.labels_key_);
    counters_ = std::move(other.counters_);
    other.registry_ = nullptr;
    other.counters_.clear();
  }
  return *this;
}

MetricRegistry::Registration::~Registration() { Release(); }

void MetricRegistry::Registration::Release() {
  if (registry_ != nullptr) registry_->Retire(labels_key_, counters_);
  registry_ = nullptr;
  labels_key_.clear();
  counters_.clear();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
#ifdef CFEST_METRICS_DISABLED
  return snapshot;
#else
  MutexLock lock(mu_);
  for (const auto& [name, family] : counters_) {
    uint64_t aggregate = 0;
    for (const auto& [key, child] : family.children) {
      (void)key;
      uint64_t total = child.retired;
      if (child.owned != nullptr) total += child.owned->Value();
      for (const Counter* instance : child.instances) {
        total += instance->Value();
      }
      aggregate += total;
      if (!child.labels.empty()) {
        snapshot.labeled_counters[name].push_back({child.labels, total});
      }
    }
    snapshot.counters.emplace(name, aggregate);
  }
  for (const auto& [name, family] : gauges_) {
    int64_t aggregate = 0;
    for (const auto& [key, child] : family.children) {
      (void)key;
      const int64_t value =
          child.gauge != nullptr ? child.gauge->Value() : 0;
      aggregate += value;
      if (!child.labels.empty()) {
        snapshot.labeled_gauges[name].push_back({child.labels, value});
      }
    }
    snapshot.gauges.emplace(name, aggregate);
  }
  for (const auto& [name, family] : histograms_) {
    HistogramData aggregate;
    for (const auto& [key, child] : family.children) {
      (void)key;
      if (child.histogram == nullptr) continue;
      HistogramData data = child.histogram->Data();
      aggregate.Merge(data);
      if (!child.labels.empty()) {
        snapshot.labeled_histograms[name].push_back(
            {child.labels, std::move(data)});
      }
    }
    snapshot.histograms.emplace(name, aggregate);
  }
  return snapshot;
#endif
}

}  // namespace metrics
}  // namespace cfest
