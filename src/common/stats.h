// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Streaming and batch statistics used by the estimator-evaluation harness:
// Welford accumulation, percentiles, and the paper's ratio-error metric.

#ifndef CFEST_COMMON_STATS_H_
#define CFEST_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace cfest {

/// \brief Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Batch summary of a sample: moments plus order statistics.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes a Summary over values (copies and sorts internally).
Summary Summarize(const std::vector<double>& values);

/// \brief The paper's ratio error: max(truth/estimate, estimate/truth) >= 1.
///
/// Degenerate inputs (zero or negative on exactly one side) map to +infinity;
/// 0/0 maps to 1 (a zero estimate of a zero quantity is exact).
double RatioError(double truth, double estimate);

/// Relative error |estimate - truth| / truth (truth must be nonzero).
double RelativeError(double truth, double estimate);

/// Linearly interpolated q-quantile (q in [0,1]) of a *sorted* vector.
double QuantileSorted(const std::vector<double>& sorted, double q);

}  // namespace cfest

#endif  // CFEST_COMMON_STATS_H_
