// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Bit-level utilities: bit widths and LSB-first bit-packed streams. The
// page-level dictionary compressor stores pointers of ceil(log2(d_page)) bits
// each, exactly as the paper describes ("which in general requires
// ceil(log2 d) bits").

#ifndef CFEST_COMMON_BIT_UTIL_H_
#define CFEST_COMMON_BIT_UTIL_H_

#include <cassert>
#include <cstdint>
#include <string>

#include "common/slice.h"

namespace cfest {

/// Number of bits needed to represent values in [0, n): ceil(log2(n)).
/// BitsFor(0) == BitsFor(1) == 0 (a single value needs no bits).
inline int BitsFor(uint64_t n) {
  if (n <= 1) return 0;
  int bits = 0;
  uint64_t v = n - 1;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

/// Bytes needed to hold `bits` bits.
inline size_t BytesForBits(size_t bits) { return (bits + 7) / 8; }

/// \brief Appends fixed-width little-endian bit fields to a byte buffer.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Appends the low `width` bits of value (LSB first). width in [0, 64].
  void Put(uint64_t value, int width) {
    assert(width >= 0 && width <= 64);
    if (width < 64) value &= (uint64_t{1} << width) - 1;
    int remaining = width;
    if (bit_pos_ != 0) {
      // Top up the partially filled tail byte.
      const int space = 8 - bit_pos_;
      const int take = remaining < space ? remaining : space;
      const unsigned low =
          static_cast<unsigned>(value) & ((1u << take) - 1);
      out_->back() = static_cast<char>(
          static_cast<unsigned char>(out_->back()) | (low << bit_pos_));
      value >>= take;
      remaining -= take;
      bit_pos_ = (bit_pos_ + take) & 7;
    }
    while (remaining >= 8) {
      out_->push_back(static_cast<char>(value & 0xFF));
      value >>= 8;
      remaining -= 8;
    }
    if (remaining > 0) {
      out_->push_back(static_cast<char>(value & ((1u << remaining) - 1)));
      bit_pos_ = remaining;
    }
  }

  /// Pads to the next byte boundary with zero bits.
  void Align() { bit_pos_ = 0; }

  size_t bits_written() const {
    return out_->size() * 8 - (bit_pos_ == 0 ? 0 : (8 - bit_pos_));
  }

 private:
  std::string* out_;
  int bit_pos_ = 0;  // next free bit within out_->back(); 0 == byte boundary
};

/// \brief Reads fixed-width little-endian bit fields from a byte buffer.
class BitReader {
 public:
  explicit BitReader(Slice data) : data_(data) {}

  /// Reads `width` bits; returns false on exhaustion.
  bool Get(int width, uint64_t* value) {
    assert(width >= 0 && width <= 64);
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      const size_t byte = pos_ >> 3;
      if (byte >= data_.size()) return false;
      const int bit =
          (static_cast<unsigned char>(data_[byte]) >> (pos_ & 7)) & 1;
      v |= static_cast<uint64_t>(bit) << i;
      ++pos_;
    }
    *value = v;
    return true;
  }

  /// Skips to the next byte boundary.
  void Align() { pos_ = (pos_ + 7) & ~size_t{7}; }

  size_t bit_position() const { return pos_; }

 private:
  Slice data_;
  size_t pos_ = 0;
};

}  // namespace cfest

#endif  // CFEST_COMMON_BIT_UTIL_H_
