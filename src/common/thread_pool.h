// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// A small fixed-size worker pool for fanning independent estimation work
// across cores. The advisor stack sizes dozens of candidate configurations
// per request; each candidate is CPU-bound (index build + compression on the
// sample) and shares only read-only state, so a plain task queue is all the
// machinery needed. Callers that require determinism must make each task's
// output depend only on its own inputs (e.g. a per-task forked RNG), never
// on execution order — ParallelFor writes results by index for exactly this
// reason.

#ifndef CFEST_COMMON_THREAD_POOL_H_
#define CFEST_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace cfest {

/// \brief Fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// num_threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(uint32_t num_threads = 0);

  /// The worker count `num_threads` resolves to — the constructor's
  /// "0 = hardware concurrency" rule, exposed so reports can print the
  /// actual count without duplicating the policy.
  static uint32_t ResolveThreadCount(uint32_t num_threads) {
    if (num_threads > 0) return num_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  /// Blocks until all submitted tasks have finished, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Enqueues a batch of tasks under one lock acquisition and one
  /// wake-all. The fan-out paths (ParallelFor, the estimation services)
  /// use this instead of N Submit calls, which would take the queue lock
  /// and signal the condition variable once per task.
  void SubmitBatch(std::vector<std::function<void()>> tasks);

  /// Blocks until every task submitted so far has completed.
  void Wait();

  /// Runs body(0..n-1) across the pool and blocks until all complete.
  /// Iterations may run in any order and concurrently.
  void ParallelFor(uint64_t n, const std::function<void(uint64_t)>& body);

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar task_ready_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mu_);
  uint64_t in_flight_ GUARDED_BY(mu_) = 0;  // queued + running
  bool shutting_down_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Runs body(0..n-1) — serially when `pool` is null or n < 2, across the
/// pool otherwise — always completing every iteration, then returns the
/// first non-OK Status in index order (not completion order, so the
/// outcome is independent of scheduling). The batch-estimation fan-outs
/// (EstimationEngine / CatalogEstimationService) share this shape.
template <typename Body>
Status StatusParallelFor(ThreadPool* pool, uint64_t n, const Body& body) {
  std::vector<Status> statuses(n, Status::OK());
  auto run_one = [&](uint64_t i) { statuses[i] = body(i); };
  if (pool == nullptr || n < 2) {
    for (uint64_t i = 0; i < n; ++i) run_one(i);
  } else {
    pool->ParallelFor(n, run_one);
  }
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace cfest

#endif  // CFEST_COMMON_THREAD_POOL_H_
