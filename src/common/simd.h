// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// SIMD capability detection and the dispatch policy for the kernel layer
// (compression/kernels.h). Every kernel has a scalar reference
// implementation; the vector variants are selected at runtime from the
// active level, so one binary runs correctly on any x86-64 and on non-x86
// targets (where the level is always kScalar).
//
// The active level can be lowered — never raised past what the CPU
// supports — either programmatically (SetSimdLevel, used by tests to pin
// the scalar path) or with the CFEST_SIMD environment variable
// (`scalar`, `sse42`, `avx2`), read once on first use. Estimates are
// bit-identical across levels by construction; the override exists for
// benchmarking the scalar references and for debugging.

#ifndef CFEST_COMMON_SIMD_H_
#define CFEST_COMMON_SIMD_H_

#include <cstdint>

namespace cfest {

/// \brief Instruction-set tiers the kernel layer dispatches over.
enum class SimdLevel : uint8_t {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

const char* SimdLevelName(SimdLevel level);

/// Best level this CPU supports (probed once; kScalar off x86).
SimdLevel MaxSimdLevel();

/// Level the kernels dispatch on: min(MaxSimdLevel(), override), where the
/// override comes from SetSimdLevel() or, failing that, CFEST_SIMD.
SimdLevel ActiveSimdLevel();

/// Pins the active level (clamped to MaxSimdLevel()). Not thread-safe
/// against concurrent kernel calls; intended for test/bench setup.
void SetSimdLevel(SimdLevel level);

/// Drops any SetSimdLevel() pin, returning to the CFEST_SIMD/default policy.
void ResetSimdLevel();

}  // namespace cfest

#endif  // CFEST_COMMON_SIMD_H_
