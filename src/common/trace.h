// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Scoped trace spans: RAII timers with parent/child nesting, recorded into
// a bounded per-thread ring buffer and exportable as Chrome
// `chrome://tracing` / Perfetto JSON (load the file via chrome://tracing
// or https://ui.perfetto.dev).
//
// Tracing is OFF by default; a Span constructed while tracing is disabled
// reads no clock and records nothing (one relaxed atomic load). When
// enabled, each completed span appends one fixed-size record — name
// pointer, start, duration, depth — to its thread's ring buffer. Rings are
// bounded (SetRingCapacity, default kDefaultRingCapacity records), so a
// long traced run keeps the most recent spans per thread instead of
// growing without limit; TotalStarted() minus CollectRecords().size()
// tells how many wrapped away.
//
// Span names must have static storage duration (string literals): records
// store the pointer, never copy the text.
//
// Nesting: records carry an explicit per-thread depth, and the exported
// "X" (complete) events nest naturally in the viewer because a child's
// [ts, ts+dur] interval lies inside its parent's.
//
// Flows: spans on different threads can be correlated by stamping a shared
// flow id (Span::SetFlow with a NextFlowId() value): one span is the flow
// SOURCE (the computation that produced a result) and any number are
// SINKS (consumers that waited on it). The export emits Chrome-trace
// `s`/`f` flow records bound to the spans' slices, so Perfetto draws an
// arrow from the source to each sink — e.g. from a coalesced request's
// owner compute span to every merged waiter's wait span. When a ring
// wraps, the overwritten spans are counted in the
// `cfest.trace.dropped_spans` registry counter so truncation is
// detectable from a metrics snapshot.
//
// Ring buffers are owned by a process-wide list (shared_ptr), so records
// from exited threads survive until Reset(). The writer path takes the
// buffer's own uncontended mutex — spans mark operations (an estimate, an
// index build, a pool task), not per-row work, so this costs nanoseconds
// on events that take microseconds.

#ifndef CFEST_COMMON_TRACE_H_
#define CFEST_COMMON_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cfest {
namespace trace {

inline constexpr size_t kDefaultRingCapacity = 8192;

/// Whether spans currently record. Cheap (one relaxed load).
bool Enabled();
/// Turns span recording on/off process-wide. Always off (and ignored)
/// under CFEST_METRICS_DISABLED.
void SetEnabled(bool enabled);

/// Sets the per-thread ring capacity, in records, process-wide: buffers
/// created later use it, and existing buffers are resized immediately —
/// dropping their retained records and zeroing their TotalStarted
/// contribution. Clamped to >= 16.
void SetRingCapacity(size_t records);

/// Role of a span in a cross-thread flow (see SetFlow).
enum class FlowRole : uint8_t {
  kNone = 0,
  /// The span that produced the flowed result (arrow tail).
  kSource = 1,
  /// A span that consumed/waited on the result (arrow head).
  kSink = 2,
};

/// One completed span.
struct SpanRecord {
  const char* name = nullptr;
  /// Nanoseconds since the trace time base (last Reset / process start).
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  /// Shared flow id correlating this span with spans on other threads
  /// (0 = not part of a flow).
  uint64_t flow_id = 0;
  /// Small dense id of the recording thread.
  uint32_t thread_id = 0;
  /// Nesting depth at the span's start (0 = top level on its thread).
  uint32_t depth = 0;
  FlowRole flow_role = FlowRole::kNone;
};

/// Mints a process-unique nonzero flow id.
uint64_t NextFlowId();

/// \brief RAII span: times its scope and records on destruction.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Marks this span as one endpoint of flow `flow_id` (from NextFlowId).
  /// One source and any number of sinks sharing an id are linked in the
  /// exported trace. No-op while tracing is disabled.
  void SetFlow(uint64_t flow_id, FlowRole role);

 private:
  const char* name_;
  uint64_t start_ns_ = 0;
  uint64_t flow_id_ = 0;
  FlowRole flow_role_ = FlowRole::kNone;
  bool active_ = false;
};

/// Every record currently retained, across all threads (exited ones
/// included), ordered per thread oldest-first.
std::vector<SpanRecord> CollectRecords();

/// Spans started (and finished) since the last Reset, including records
/// that have since wrapped away.
uint64_t TotalStarted();

/// Chrome trace-event JSON of the retained records:
/// {"traceEvents":[{"name","ph":"X","ts","dur","pid","tid","args":{...}}]}
/// with ts/dur in microseconds. Spans carrying a flow id additionally emit
/// a flow record bound to their slice: `ph:"s"` (start) at the source
/// span's end, `ph:"f"` with `bp:"e"` (end, bind-to-enclosing) at each
/// sink span's end, matched by `id` — the format Perfetto renders as
/// arrows.
std::string ExportChromeTraceJson();

/// Drops every retained record, zeroes TotalStarted, and restarts the
/// trace time base. Does not change Enabled().
void Reset();

}  // namespace trace
}  // namespace cfest

#endif  // CFEST_COMMON_TRACE_H_
