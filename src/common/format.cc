#include "common/format.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cfest {

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[40];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace cfest
