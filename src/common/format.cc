#include "common/format.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace cfest {

Result<uint64_t> ParseUint64(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  // strtoull accepts leading whitespace, signs, and "0x"; reject anything
  // but plain decimal digits up front so "-1" cannot wrap around and " 1"
  // cannot hide in a flag value.
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("\"" + text +
                                     "\" is not an unsigned integer");
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::InvalidArgument("\"" + text + "\" overflows uint64");
  }
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("\"" + text +
                                   "\" is not an unsigned integer");
  }
  return static_cast<uint64_t>(value);
}

Result<double> ParseDouble(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  // Restrict to plain decimal/scientific notation before handing to
  // strtod, which would otherwise also accept leading whitespace,
  // "inf"/"nan", and C99 hex floats ("0x10" parsing as 16 is exactly the
  // silent-garbage class these parsers exist to reject).
  for (char c : text) {
    if ((c < '0' || c > '9') && c != '.' && c != 'e' && c != 'E' &&
        c != '+' && c != '-') {
      return Status::InvalidArgument("\"" + text + "\" is not a number");
    }
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || end == text.c_str()) {
    return Status::InvalidArgument("\"" + text + "\" is not a number");
  }
  if (errno == ERANGE || !std::isfinite(value)) {
    return Status::InvalidArgument("\"" + text +
                                   "\" is out of range for double");
  }
  return value;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[40];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace cfest
