// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Deterministic, fast pseudo-random number generation (xoshiro256**).
// Every stochastic component of cfest takes an explicit seed so that all
// experiments are reproducible bit-for-bit.

#ifndef CFEST_COMMON_RANDOM_H_
#define CFEST_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cfest {

/// \brief xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded via splitmix64.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can be plugged into
/// <random> distributions as well.
class Random {
 public:
  using result_type = uint64_t;

  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return NextU64(); }

  /// Next raw 64 random bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless unbiased method.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Fisher-Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each trial of
  /// a Monte-Carlo experiment its own stream.
  Random Fork();

 private:
  uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace cfest

#endif  // CFEST_COMMON_RANDOM_H_
