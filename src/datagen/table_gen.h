// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Declarative synthetic table generation: each column specifies its type,
// distinct-value count d, value-frequency distribution, and (for strings)
// the actual-length distribution. Experiments describe their workload as a
// vector of ColumnSpec.

#ifndef CFEST_DATAGEN_TABLE_GEN_H_
#define CFEST_DATAGEN_TABLE_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "datagen/distribution.h"
#include "datagen/string_gen.h"
#include "storage/table.h"

namespace cfest {

/// \brief Frequency-distribution choice for a generated column.
struct FrequencySpec {
  enum class Kind { kUniform, kZipf, kSelfSimilar, kSequential };
  Kind kind = Kind::kUniform;
  double skew = 1.0;  // zipf theta or self-similar h

  static FrequencySpec Uniform() { return {Kind::kUniform, 0.0}; }
  static FrequencySpec Zipf(double theta) { return {Kind::kZipf, theta}; }
  static FrequencySpec SelfSimilar(double h) {
    return {Kind::kSelfSimilar, h};
  }
  static FrequencySpec Sequential() { return {Kind::kSequential, 0.0}; }
};

/// \brief Generator description for one column.
struct ColumnSpec {
  std::string name;
  DataType type;
  /// Number of distinct values d. 0 means "all values unique" (d = n),
  /// generated directly from the row index.
  uint64_t distinct = 0;
  FrequencySpec frequency;
  /// Strings only: distribution of actual (pre-padding) lengths.
  LengthSpec length;

  static ColumnSpec String(std::string name, uint32_t k, uint64_t d,
                           FrequencySpec freq = FrequencySpec::Uniform(),
                           LengthSpec len = LengthSpec::Uniform(1, 0)) {
    ColumnSpec spec;
    spec.name = std::move(name);
    spec.type = CharType(k);
    spec.distinct = d;
    spec.frequency = freq;
    spec.length = len;
    return spec;
  }

  static ColumnSpec Integer(std::string name, uint64_t d,
                            FrequencySpec freq = FrequencySpec::Uniform()) {
    ColumnSpec spec;
    spec.name = std::move(name);
    spec.type = Int64Type();
    spec.distinct = d;
    spec.frequency = freq;
    return spec;
  }
};

/// Generates an n-row table from the column specs, deterministically in
/// `seed`.
Result<std::unique_ptr<Table>> GenerateTable(
    const std::vector<ColumnSpec>& specs, uint64_t n, uint64_t seed);

}  // namespace cfest

#endif  // CFEST_DATAGEN_TABLE_GEN_H_
