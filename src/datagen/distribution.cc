#include "datagen/distribution.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace cfest {
namespace {

Status CheckDomain(uint64_t d) {
  if (d == 0) {
    return Status::InvalidArgument("distribution domain must be positive");
  }
  return Status::OK();
}

class UniformDistribution final : public Distribution {
 public:
  explicit UniformDistribution(uint64_t d) : d_(d) {}
  std::string name() const override { return "uniform"; }
  uint64_t domain() const override { return d_; }
  uint64_t Next(Random* rng) override { return rng->NextBounded(d_); }

 private:
  uint64_t d_;
};

class ZipfDistribution final : public Distribution {
 public:
  ZipfDistribution(uint64_t d, double theta) : d_(d), theta_(theta) {
    cdf_.resize(d);
    double total = 0.0;
    for (uint64_t i = 0; i < d; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  std::string name() const override {
    return "zipf(" + std::to_string(theta_) + ")";
  }
  uint64_t domain() const override { return d_; }

  uint64_t Next(Random* rng) override {
    const double u = rng->NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<uint64_t>(it - cdf_.begin());
  }

 private:
  uint64_t d_;
  double theta_;
  std::vector<double> cdf_;
};

class SelfSimilarDistribution final : public Distribution {
 public:
  SelfSimilarDistribution(uint64_t d, double h) : d_(d), h_(h) {}

  std::string name() const override {
    return "selfsimilar(" + std::to_string(h_) + ")";
  }
  uint64_t domain() const override { return d_; }

  uint64_t Next(Random* rng) override {
    // Gray et al.'s recursive 80-20 construction in closed form.
    const double u = rng->NextDouble();
    const double exponent = std::log(h_) / std::log(1.0 - h_);
    const uint64_t v = static_cast<uint64_t>(
        static_cast<double>(d_) * std::pow(u, exponent));
    return std::min(v, d_ - 1);
  }

 private:
  uint64_t d_;
  double h_;
};

class SequentialDistribution final : public Distribution {
 public:
  explicit SequentialDistribution(uint64_t d) : d_(d) {}
  std::string name() const override { return "sequential"; }
  uint64_t domain() const override { return d_; }
  uint64_t Next(Random* /*rng*/) override {
    const uint64_t v = next_;
    next_ = (next_ + 1) % d_;
    return v;
  }

 private:
  uint64_t d_;
  uint64_t next_ = 0;
};

}  // namespace

Result<std::unique_ptr<Distribution>> MakeUniformDistribution(uint64_t d) {
  CFEST_RETURN_NOT_OK(CheckDomain(d));
  return {std::make_unique<UniformDistribution>(d)};
}

Result<std::unique_ptr<Distribution>> MakeZipfDistribution(uint64_t d,
                                                           double theta) {
  CFEST_RETURN_NOT_OK(CheckDomain(d));
  if (!(theta > 0.0)) {
    return Status::InvalidArgument("zipf exponent must be positive");
  }
  return {std::make_unique<ZipfDistribution>(d, theta)};
}

Result<std::unique_ptr<Distribution>> MakeSelfSimilarDistribution(uint64_t d,
                                                                  double h) {
  CFEST_RETURN_NOT_OK(CheckDomain(d));
  if (!(h > 0.0) || h > 0.5) {
    return Status::InvalidArgument("self-similar skew must be in (0, 0.5]");
  }
  return {std::make_unique<SelfSimilarDistribution>(d, h)};
}

Result<std::unique_ptr<Distribution>> MakeSequentialDistribution(uint64_t d) {
  CFEST_RETURN_NOT_OK(CheckDomain(d));
  return {std::make_unique<SequentialDistribution>(d)};
}

}  // namespace cfest
