// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Generation of char(k) string pools with controlled null-suppressed lengths
// and guaranteed distinctness. Null suppression's CF depends only on the
// distribution of actual lengths l_i, so experiments specify it directly.

#ifndef CFEST_DATAGEN_STRING_GEN_H_
#define CFEST_DATAGEN_STRING_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace cfest {

/// \brief How the actual (pre-padding) lengths of generated strings are drawn.
struct LengthSpec {
  enum class Kind {
    kConstant,  // every string has length `min`
    kUniform,   // uniform in [min, max]
    kBimodal,   // half `min`, half `max` (maximizes NS estimator variance)
    kFull,      // every string uses the full declared width k
  };
  Kind kind = Kind::kUniform;
  uint32_t min = 1;
  uint32_t max = 0;  // 0 = declared width

  static LengthSpec Constant(uint32_t len) {
    return {Kind::kConstant, len, len};
  }
  static LengthSpec Uniform(uint32_t min, uint32_t max) {
    return {Kind::kUniform, min, max};
  }
  static LengthSpec Bimodal(uint32_t lo, uint32_t hi) {
    return {Kind::kBimodal, lo, hi};
  }
  static LengthSpec Full() { return {Kind::kFull, 0, 0}; }
};

/// \brief A pool of d distinct strings for a char(k) column.
///
/// String i embeds the index i in base-36 so distinctness is structural; the
/// remaining characters are random lowercase fill. Lengths follow the spec
/// (clamped so the index digits always fit).
class StringPool {
 public:
  /// Builds the pool. Fails if k cannot hold the index digits for d values.
  static Result<StringPool> Make(uint64_t d, uint32_t declared_width,
                                 const LengthSpec& spec, Random* rng);

  uint64_t size() const { return strings_.size(); }
  const std::string& Get(uint64_t i) const { return strings_[i]; }

  /// Average actual length over the pool.
  double MeanLength() const;

 private:
  std::vector<std::string> strings_;
};

/// Draws a length from the spec for a column of declared width k.
uint32_t DrawLength(const LengthSpec& spec, uint32_t declared_width,
                    Random* rng);

}  // namespace cfest

#endif  // CFEST_DATAGEN_STRING_GEN_H_
