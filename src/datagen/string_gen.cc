#include "datagen/string_gen.h"

#include <algorithm>

#include "common/status.h"

namespace cfest {
namespace {

constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";

/// Base-36 digits of v, fixed width.
std::string IndexDigits(uint64_t v, uint32_t width) {
  std::string out(width, '0');
  for (uint32_t i = 0; i < width; ++i) {
    out[width - 1 - i] = kDigits[v % 36];
    v /= 36;
  }
  return out;
}

uint32_t DigitsNeeded(uint64_t d) {
  uint32_t digits = 1;
  uint64_t capacity = 36;
  while (capacity < d) {
    // 36^digits values representable; grow until >= d.
    capacity *= 36;
    ++digits;
  }
  return digits;
}

}  // namespace

uint32_t DrawLength(const LengthSpec& spec, uint32_t declared_width,
                    Random* rng) {
  const uint32_t max =
      spec.max == 0 ? declared_width : std::min(spec.max, declared_width);
  const uint32_t min = std::min(spec.min, max);
  switch (spec.kind) {
    case LengthSpec::Kind::kConstant:
      return min;
    case LengthSpec::Kind::kUniform:
      return static_cast<uint32_t>(rng->NextInRange(min, max));
    case LengthSpec::Kind::kBimodal:
      return rng->NextBernoulli(0.5) ? min : max;
    case LengthSpec::Kind::kFull:
      return declared_width;
  }
  return max;
}

Result<StringPool> StringPool::Make(uint64_t d, uint32_t declared_width,
                                    const LengthSpec& spec, Random* rng) {
  if (d == 0) {
    return Status::InvalidArgument("string pool needs at least one value");
  }
  const uint32_t digits = DigitsNeeded(d);
  if (digits > declared_width) {
    return Status::InvalidArgument(
        "char(" + std::to_string(declared_width) + ") cannot hold " +
        std::to_string(d) + " distinct values (needs " +
        std::to_string(digits) + " index digits)");
  }
  StringPool pool;
  pool.strings_.reserve(d);
  for (uint64_t i = 0; i < d; ++i) {
    uint32_t len = DrawLength(spec, declared_width, rng);
    len = std::max(len, digits);  // the index digits must fit
    std::string s = IndexDigits(i, digits);
    while (s.size() < len) {
      s.push_back(kDigits[10 + rng->NextBounded(26)]);
    }
    pool.strings_.push_back(std::move(s));
  }
  return pool;
}

double StringPool::MeanLength() const {
  if (strings_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : strings_) total += static_cast<double>(s.size());
  return total / static_cast<double>(strings_.size());
}

}  // namespace cfest
