// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Value-frequency distributions over a domain of d distinct values. The
// paper's dictionary-compression results hinge on the relationship between
// d and n and on how skewed the frequencies are, so experiments sweep these
// generators.

#ifndef CFEST_DATAGEN_DISTRIBUTION_H_
#define CFEST_DATAGEN_DISTRIBUTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace cfest {

/// \brief Draws value indexes in [0, domain).
class Distribution {
 public:
  virtual ~Distribution() = default;
  virtual std::string name() const = 0;
  virtual uint64_t domain() const = 0;
  virtual uint64_t Next(Random* rng) = 0;
};

/// Uniform over [0, d).
Result<std::unique_ptr<Distribution>> MakeUniformDistribution(uint64_t d);

/// Zipf with exponent theta (> 0) over [0, d): P(i) proportional to
/// 1/(i+1)^theta. Uses an inverse-CDF table (O(d) memory, O(log d) draws).
Result<std::unique_ptr<Distribution>> MakeZipfDistribution(uint64_t d,
                                                           double theta);

/// Self-similar (the classic "80-20 rule" generator from Gray et al.):
/// skew h in (0, 0.5]; h = 0.2 sends 80% of draws to the first 20% of values.
Result<std::unique_ptr<Distribution>> MakeSelfSimilarDistribution(uint64_t d,
                                                                  double h);

/// Deterministic round-robin 0, 1, ..., d-1, 0, 1, ... (exactly equal
/// frequencies, no sampling noise).
Result<std::unique_ptr<Distribution>> MakeSequentialDistribution(uint64_t d);

}  // namespace cfest

#endif  // CFEST_DATAGEN_DISTRIBUTION_H_
