#include "datagen/table_gen.h"

#include <algorithm>

#include "common/status.h"
#include "storage/row_codec.h"

namespace cfest {
namespace {

Result<std::unique_ptr<Distribution>> MakeDistribution(
    const FrequencySpec& freq, uint64_t d) {
  switch (freq.kind) {
    case FrequencySpec::Kind::kUniform:
      return MakeUniformDistribution(d);
    case FrequencySpec::Kind::kZipf:
      return MakeZipfDistribution(d, freq.skew);
    case FrequencySpec::Kind::kSelfSimilar:
      return MakeSelfSimilarDistribution(d, freq.skew);
    case FrequencySpec::Kind::kSequential:
      return MakeSequentialDistribution(d);
  }
  return Status::NotSupported("unhandled frequency kind");
}

/// Per-column generator state.
struct ColumnState {
  ColumnSpec spec;
  std::unique_ptr<Distribution> dist;  // null when spec.distinct == 0
  std::unique_ptr<StringPool> pool;    // strings with finite d
  Random rng;

  Result<Value> Next(uint64_t row_index) {
    uint64_t v;
    if (spec.distinct == 0) {
      v = row_index;
    } else {
      v = dist->Next(&rng);
    }
    if (spec.type.IsString()) {
      if (pool != nullptr) return Value::Str(pool->Get(v));
      // Unique string from the row index. Built with append rather than
      // `const char* + std::string&&`: GCC 12's -Wrestrict false-positives
      // on the operator+ overload (PR105329) and CI promotes to -Werror.
      std::string s = "v";
      s += std::to_string(v);
      if (s.size() > spec.type.length) {
        return Status::InvalidArgument(
            "column " + spec.name + ": row index " + std::to_string(v) +
            " does not fit " + spec.type.ToString());
      }
      return Value::Str(std::move(s));
    }
    return Value::Int(static_cast<int64_t>(v));
  }
};

}  // namespace

Result<std::unique_ptr<Table>> GenerateTable(
    const std::vector<ColumnSpec>& specs, uint64_t n, uint64_t seed) {
  if (specs.empty()) {
    return Status::InvalidArgument("need at least one column spec");
  }
  std::vector<Column> columns;
  columns.reserve(specs.size());
  for (const auto& spec : specs) {
    columns.push_back(Column{spec.name, spec.type});
  }
  CFEST_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));

  Random master(seed);
  std::vector<ColumnState> states;
  states.reserve(specs.size());
  for (const auto& spec : specs) {
    ColumnState state;
    state.spec = spec;
    state.rng = master.Fork();
    if (spec.distinct > 0) {
      CFEST_ASSIGN_OR_RETURN(state.dist,
                             MakeDistribution(spec.frequency, spec.distinct));
      if (spec.type.IsString()) {
        CFEST_ASSIGN_OR_RETURN(
            StringPool pool,
            StringPool::Make(spec.distinct, spec.type.length, spec.length,
                             &state.rng));
        state.pool = std::make_unique<StringPool>(std::move(pool));
      }
    }
    states.push_back(std::move(state));
  }

  TableBuilder builder(schema);
  builder.Reserve(n);
  Row row(specs.size());
  for (uint64_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < states.size(); ++c) {
      CFEST_ASSIGN_OR_RETURN(row[c], states[c].Next(i));
    }
    CFEST_RETURN_NOT_OK(builder.Append(row));
  }
  return builder.Finish();
}

}  // namespace cfest
