// Copyright (c) the samplecf authors. Licensed under the MIT license.
//
// Synthetic TPC-H table generators (lineitem, orders, part, customer,
// supplier) with the standard schemas and cardinality ratios. Scale factor
// 1.0 corresponds to 6M lineitem rows; experiments typically run sf = 0.01.

#ifndef CFEST_DATAGEN_TPCH_TABLES_H_
#define CFEST_DATAGEN_TPCH_TABLES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace cfest {
namespace tpch {

/// \brief Generation parameters.
struct TpchOptions {
  double scale_factor = 0.01;
  uint64_t seed = 20100301;  // ICDE 2010 :-)
};

/// Row counts at a scale factor (per the TPC-H specification ratios).
uint64_t LineitemRows(double sf);
uint64_t OrdersRows(double sf);
uint64_t PartRows(double sf);
uint64_t CustomerRows(double sf);
uint64_t SupplierRows(double sf);

/// The standard schemas.
Schema LineitemSchema();
Schema OrdersSchema();
Schema PartSchema();
Schema CustomerSchema();
Schema SupplierSchema();
Schema NationSchema();
Schema RegionSchema();

/// Individual generators.
Result<std::unique_ptr<Table>> GenerateLineitem(const TpchOptions& options);
Result<std::unique_ptr<Table>> GenerateOrders(const TpchOptions& options);
Result<std::unique_ptr<Table>> GeneratePart(const TpchOptions& options);
Result<std::unique_ptr<Table>> GenerateCustomer(const TpchOptions& options);
Result<std::unique_ptr<Table>> GenerateSupplier(const TpchOptions& options);
/// Fixed-size reference tables (25 nations / 5 regions at every sf).
Result<std::unique_ptr<Table>> GenerateNation(const TpchOptions& options);
Result<std::unique_ptr<Table>> GenerateRegion(const TpchOptions& options);

/// Generates all seven tables into a catalog under their standard names.
Result<std::unique_ptr<Catalog>> GenerateCatalog(const TpchOptions& options);

}  // namespace tpch
}  // namespace cfest

#endif  // CFEST_DATAGEN_TPCH_TABLES_H_
