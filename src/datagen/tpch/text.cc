#include "datagen/tpch/text.h"

#include <cstdio>

namespace cfest {
namespace tpch {
namespace {

// Word pool approximating the TPC-H comment grammar vocabulary.
const char* kWords[] = {
    "furiously",  "quickly",   "slowly",     "carefully", "blithely",
    "daringly",   "boldly",    "silently",   "evenly",    "finally",
    "express",    "special",   "regular",    "pending",   "ironic",
    "unusual",    "final",     "bold",       "silent",    "even",
    "packages",   "deposits",  "requests",   "accounts",  "instructions",
    "foxes",      "pinto",     "beans",      "theodolites", "platelets",
    "dependencies", "excuses", "ideas",      "courts",    "dolphins",
    "sheaves",    "sauternes", "warhorses",  "asymptotes", "somas",
    "sleep",      "wake",      "haggle",     "nag",       "cajole",
    "integrate",  "detect",    "solve",      "engage",    "maintain",
    "among",      "above",     "beneath",    "against",   "along",
    "the",        "of",        "carefully",  "quick",     "fluffy",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

const std::vector<std::string>* MakeList(std::initializer_list<const char*> v) {
  auto* out = new std::vector<std::string>;
  for (const char* s : v) out->push_back(s);
  return out;
}

}  // namespace

const std::vector<std::string>& ReturnFlags() {
  static const auto* kList = MakeList({"R", "A", "N"});
  return *kList;
}

const std::vector<std::string>& LineStatuses() {
  static const auto* kList = MakeList({"O", "F"});
  return *kList;
}

const std::vector<std::string>& ShipModes() {
  static const auto* kList =
      MakeList({"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"});
  return *kList;
}

const std::vector<std::string>& ShipInstructs() {
  static const auto* kList = MakeList(
      {"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"});
  return *kList;
}

const std::vector<std::string>& OrderPriorities() {
  static const auto* kList = MakeList(
      {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"});
  return *kList;
}

const std::vector<std::string>& OrderStatuses() {
  static const auto* kList = MakeList({"O", "F", "P"});
  return *kList;
}

const std::vector<std::string>& MarketSegments() {
  static const auto* kList = MakeList(
      {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"});
  return *kList;
}

const std::vector<std::string>& Nations() {
  static const auto* kList = MakeList(
      {"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
       "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
       "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
       "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"});
  return *kList;
}

const std::vector<std::string>& Regions() {
  static const auto* kList =
      MakeList({"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"});
  return *kList;
}

const std::vector<std::string>& PartContainers() {
  static const auto* kList = [] {
    static const char* kSizes[] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
    static const char* kKinds[] = {"CASE", "BOX", "BAG",  "JAR",
                                   "PKG",  "PACK", "CAN", "DRUM"};
    auto* out = new std::vector<std::string>;
    for (const char* s : kSizes) {
      for (const char* k : kKinds) {
        out->push_back(std::string(s) + " " + k);
      }
    }
    return out;
  }();
  return *kList;
}

const std::vector<std::string>& PartTypes() {
  static const auto* kList = [] {
    static const char* kA[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                               "ECONOMY", "PROMO"};
    static const char* kB[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                               "BRUSHED"};
    static const char* kC[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
    auto* out = new std::vector<std::string>;
    for (const char* a : kA) {
      for (const char* b : kB) {
        for (const char* c : kC) {
          out->push_back(std::string(a) + " " + b + " " + c);
        }
      }
    }
    return out;
  }();
  return *kList;
}

const std::vector<std::string>& PartNameWords() {
  static const auto* kList = MakeList(
      {"almond",    "antique",   "aquamarine", "azure",     "beige",
       "bisque",    "black",     "blanched",   "blue",      "blush",
       "brown",     "burlywood", "burnished",  "chartreuse", "chiffon",
       "chocolate", "coral",     "cornflower", "cornsilk",  "cream",
       "cyan",      "dark",      "deep",       "dim",       "dodger",
       "drab",      "firebrick", "floral",     "forest",    "frosted",
       "gainsboro", "ghost",     "goldenrod",  "green",     "grey",
       "honeydew",  "hot",       "hotpink",    "indian",    "ivory",
       "khaki",     "lace",      "lavender",   "lawn",      "lemon",
       "light",     "lime",      "linen",      "magenta",   "maroon",
       "medium",    "metallic",  "midnight",   "mint",      "misty",
       "moccasin",  "navajo",    "navy",       "olive",     "orange",
       "orchid",    "pale",      "papaya",     "peach",     "peru",
       "pink",      "plum",      "powder",     "puff",      "purple",
       "red",       "rose",      "rosy",       "royal",     "saddle",
       "salmon",    "sandy",     "seashell",   "sienna",    "sky",
       "slate",     "smoke",     "snow",       "spring",    "steel",
       "tan",       "thistle",   "tomato",     "turquoise", "violet",
       "wheat",     "white"});
  return *kList;
}

std::string Brand(Random* rng) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "Brand#%llu%llu",
                static_cast<unsigned long long>(1 + rng->NextBounded(5)),
                static_cast<unsigned long long>(1 + rng->NextBounded(5)));
  return buf;
}

std::string PartName(Random* rng) {
  const auto& words = PartNameWords();
  std::string out;
  for (int i = 0; i < 5; ++i) {
    if (i > 0) out += " ";
    out += words[rng->NextBounded(words.size())];
  }
  return out;
}

std::string Comment(uint32_t max_len, Random* rng) {
  const uint32_t target = static_cast<uint32_t>(
      rng->NextInRange(max_len / 3 > 0 ? max_len / 3 : 1, max_len));
  std::string out;
  while (out.size() < target) {
    if (!out.empty()) out += " ";
    out += kWords[rng->NextBounded(kNumWords)];
  }
  if (out.size() > max_len) out.resize(max_len);
  // Avoid a dangling partial word's trailing space.
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string Phone(uint32_t nation_key, Random* rng) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02u-%03u-%03u-%04u", 10 + nation_key,
                static_cast<unsigned>(100 + rng->NextBounded(900)),
                static_cast<unsigned>(100 + rng->NextBounded(900)),
                static_cast<unsigned>(1000 + rng->NextBounded(9000)));
  return buf;
}

std::string Clerk(uint64_t clerk_count, Random* rng) {
  return Name("Clerk", 1 + rng->NextBounded(clerk_count), 9);
}

std::string Name(const std::string& prefix, uint64_t key, uint32_t digits) {
  std::string num = std::to_string(key);
  if (num.size() < digits) num.insert(0, digits - num.size(), '0');
  return prefix + "#" + num;
}

std::string Address(uint32_t max_len, Random* rng) {
  static const char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,";
  const uint32_t len =
      static_cast<uint32_t>(rng->NextInRange(10, max_len));
  std::string out;
  out.reserve(len);
  for (uint32_t i = 0; i < len; ++i) {
    out.push_back(kChars[rng->NextBounded(sizeof(kChars) - 1)]);
  }
  // Addresses must not end in a blank (it would be lost to null suppression).
  if (out.back() == ' ') out.back() = 'x';
  return out;
}

int64_t RandomDate(Random* rng) {
  // 1992-01-01 is day 8035 since epoch; the range spans 2557 days.
  return 8035 + static_cast<int64_t>(rng->NextBounded(2557));
}

int64_t RandomCents(int64_t min_cents, int64_t max_cents, Random* rng) {
  return rng->NextInRange(min_cents, max_cents);
}

}  // namespace tpch
}  // namespace cfest
